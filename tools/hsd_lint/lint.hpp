#pragma once
// hsd_lint — self-contained static analysis for the repo's determinism,
// concurrency, hygiene, and architecture invariants. A preprocessor-aware
// lexer (lexer.hpp) feeds per-line rules plus whole-project passes
// (passes.hpp): include-graph layering against layers.toml, task-capture
// safety for deferred APIs, and the HSD_*/obs identifier registry. See
// DESIGN.md "Static analysis: hsd_lint" for the rule catalogue,
// suppression syntax, and baseline workflow.

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace hsd::lint {

struct Diagnostic {
  std::string file;  // path relative to the scan root, forward slashes
  int line = 0;      // 1-based; 0 for file/project-level findings
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string name;
  std::string category;  // determinism | concurrency | hygiene | layering |
                         // capture-safety | registry
  std::string summary;
};

/// File-wide exemptions: maps relative path -> set of rule names.
/// Text format, one entry per line: `path/from/root.cpp:rule-name`.
/// Blank lines and lines starting with `#` are ignored.
class AllowList {
 public:
  AllowList() = default;

  /// Parses `text`; returns false (and fills `error`) on malformed lines.
  bool parse(const std::string& text, std::string* error);

  /// Loads from a file; missing file is an error.
  bool load(const std::filesystem::path& path, std::string* error);

  bool allows(const std::string& rel_path, const std::string& rule) const;
  std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, std::set<std::string>> entries_;
};

/// Grandfathered findings, one per line as `path:line:rule`. A finding
/// matching an entry is suppressed (counted, not reported); entries that
/// no longer match anything are reported back as stale so the baseline
/// can be burned down. Blank lines and `#` comments are ignored.
class Baseline {
 public:
  Baseline() = default;

  bool parse(const std::string& text, std::string* error);
  bool load(const std::filesystem::path& path, std::string* error);

  static std::string key_of(const Diagnostic& d);
  bool contains(const std::string& key) const { return entries_.count(key) > 0; }
  const std::set<std::string>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }

 private:
  std::set<std::string> entries_;
};

struct Options {
  /// Root the scan (and allowlist paths) are relative to.
  std::filesystem::path root = ".";
  /// Directories under root to scan when no explicit paths are given.
  std::vector<std::string> scan_dirs = {"src", "tests", "bench", "examples", "tools"};
  /// Explicit files/directories (relative to root or absolute); when
  /// non-empty these replace the default scan_dirs sweep.
  std::vector<std::string> paths;
  AllowList allowlist;
  Baseline baseline;
};

struct RunResult {
  /// Findings that survived suppressions, allowlisting, and the baseline,
  /// sorted by (file, line, rule).
  std::vector<Diagnostic> findings;
  /// Findings matched (and swallowed) by the baseline.
  std::size_t baselined = 0;
  /// Baseline entries that matched nothing — stale, remove them.
  std::vector<std::string> stale_baseline;
};

/// All rules, for --list-rules and the docs.
const std::vector<RuleInfo>& rules();

/// Category of a rule name ("io" for the synthetic io-error rule).
std::string category_of(const std::string& rule);

/// Lints one file whose content is `text` and whose path relative to the
/// scan root is `rel_path` (line rules only; used by unit tests).
std::vector<Diagnostic> lint_text(const std::string& rel_path, const std::string& text,
                                  const AllowList& allowlist);

/// Full scan: line rules plus the project passes. The layering pass runs
/// when `<root>/layers.toml` or `<root>/tools/hsd_lint/layers.toml`
/// exists; the registry pass when `<root>/src/common/registry.hpp` exists.
RunResult run_full(const Options& options);

/// Compatibility wrapper: run_full().findings.
std::vector<Diagnostic> run(const Options& options);

/// `path:line: error: [rule] message` — one line per diagnostic.
std::string format(const Diagnostic& d);

/// GitHub Actions annotation: `::error file=...,line=...::[rule] message`.
std::string format_github(const Diagnostic& d);

/// Schema-stable JSON document for CI consumption:
///   {"tool":"hsd_lint","schema_version":1,
///    "summary":{"findings":N,"baselined":N,"stale_baseline":N},
///    "findings":[{"file","line","rule","category","message"}...],
///    "stale_baseline":["file:line:rule"...]}
std::string to_json(const RunResult& result);

}  // namespace hsd::lint
