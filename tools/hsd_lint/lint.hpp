#pragma once
// hsd_lint — self-contained static analysis for the repo's determinism,
// concurrency, and hygiene invariants. Token/line-level scanner; no
// libclang. See DESIGN.md "Static analysis: hsd_lint" for the rule
// catalogue and suppression syntax.

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace hsd::lint {

struct Diagnostic {
  std::string file;  // path relative to the scan root, forward slashes
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string name;
  std::string category;  // determinism | concurrency | hygiene
  std::string summary;
};

/// File-wide exemptions: maps relative path -> set of rule names.
/// Text format, one entry per line: `path/from/root.cpp:rule-name`.
/// Blank lines and lines starting with `#` are ignored.
class AllowList {
 public:
  AllowList() = default;

  /// Parses `text`; returns false (and fills `error`) on malformed lines.
  bool parse(const std::string& text, std::string* error);

  /// Loads from a file; missing file is an error.
  bool load(const std::filesystem::path& path, std::string* error);

  bool allows(const std::string& rel_path, const std::string& rule) const;
  std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, std::set<std::string>> entries_;
};

struct Options {
  /// Root the scan (and allowlist paths) are relative to.
  std::filesystem::path root = ".";
  /// Directories under root to scan when no explicit paths are given.
  std::vector<std::string> scan_dirs = {"src", "tests", "bench", "examples"};
  /// Explicit files/directories (relative to root or absolute); when
  /// non-empty these replace the default scan_dirs sweep.
  std::vector<std::string> paths;
  AllowList allowlist;
};

/// All rules, for --list-rules and the docs.
const std::vector<RuleInfo>& rules();

/// Lints one file whose content is `text` and whose path relative to the
/// scan root is `rel_path` (used for rule scoping and allowlist lookup).
std::vector<Diagnostic> lint_text(const std::string& rel_path, const std::string& text,
                                  const AllowList& allowlist);

/// Scans per Options. Files that cannot be read produce a diagnostic with
/// rule "io-error".
std::vector<Diagnostic> run(const Options& options);

/// `path:line: error: [rule] message` — one line per diagnostic.
std::string format(const Diagnostic& d);

}  // namespace hsd::lint
