#pragma once
// Shared preprocessor-aware lexer for hsd_lint. One scan of a translation
// unit produces three coordinated views:
//
//   1. `tokens`   — the code token stream (identifiers, literals, puncts)
//                   with 1-based line numbers. Comment text, string/char
//                   literal *contents* (kept on the token), and
//                   preprocessor directive bodies never appear as code
//                   tokens, so token-level passes (capture safety,
//                   identifier registry) cannot be fooled by commented-out
//                   or quoted code.
//   2. `includes` — every #include directive with its target and whether
//                   it used angle brackets, feeding the cross-file
//                   include-dependency graph.
//   3. `lines`    — per-line (code, comment) channels with literal bodies
//                   blanked, which the legacy line rules and the
//                   `hsd-lint: allow(...)` suppression parser ride on.
//
// The lexer understands line continuations, raw strings, and nested block
// comments spanning lines; it does not expand macros or evaluate #if
// conditions (both arms of a conditional are scanned — a violation hidden
// behind #if 0 is still a violation waiting to come back).

#include <string>
#include <vector>

namespace hsd::lint {

enum class TokKind {
  kIdent,    // identifiers and keywords, including `this`
  kNumber,   // numeric literal (pp-number, loosely)
  kString,   // string literal; text holds the *contents* without quotes
  kChar,     // character literal; text holds the contents without quotes
  kPunct,    // punctuation; multi-char for -> :: && || and digraph-free C++
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based
};

struct IncludeDirective {
  std::string target;  // path between the quotes/brackets
  bool angled = false;
  int line = 0;  // 1-based
};

/// Per-line view used by the line rules: code with literal bodies blanked
/// (a string literal becomes `""`, a char literal `''`) and the comment
/// text that shared the line.
struct SourceLine {
  std::string code;
  std::string comment;
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  std::vector<SourceLine> lines;  // lines[i] is source line i+1
};

/// Lexes `text` (one file's contents). Never throws on malformed input;
/// unterminated constructs simply end at EOF.
LexedFile lex(const std::string& text);

}  // namespace hsd::lint
