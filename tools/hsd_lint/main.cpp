// hsd_lint CLI. Exit codes: 0 clean, 1 violations found, 2 usage/IO error.
//
//   hsd_lint [--root DIR] [--allowlist FILE|none] [--baseline FILE|none]
//            [--write-baseline FILE] [--json] [--github-annotations]
//            [--list-rules] [paths...]
//
// With no paths, scans src/ tests/ bench/ examples/ tools/ under --root
// (default: current directory). The default allowlist is
// <root>/tools/hsd_lint/allowlist.txt and the default baseline is
// <root>/tools/hsd_lint/baseline.txt, each when it exists.
//
// Baseline workflow: `--write-baseline FILE` records every current finding
// as `path:line:rule` and exits 0; subsequent runs suppress exactly those
// entries, so only NEW findings fail. Entries that stop matching are
// reported as stale (and fail the run) to force burn-down.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--allowlist FILE|none] "
               "[--baseline FILE|none] [--write-baseline FILE] [--json] "
               "[--github-annotations] [--list-rules] [paths...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  hsd::lint::Options options;
  std::string allowlist_arg;
  std::string baseline_arg;
  std::string write_baseline_arg;
  bool list_rules = false;
  bool json = false;
  bool github = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) return usage(argv[0]);
      options.root = argv[i];
    } else if (arg == "--allowlist") {
      if (++i >= argc) return usage(argv[0]);
      allowlist_arg = argv[i];
    } else if (arg == "--baseline") {
      if (++i >= argc) return usage(argv[0]);
      baseline_arg = argv[i];
    } else if (arg == "--write-baseline") {
      if (++i >= argc) return usage(argv[0]);
      write_baseline_arg = argv[i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--github-annotations") {
      github = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      options.paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const auto& r : hsd::lint::rules()) {
      std::printf("%-24s %-16s %s\n", r.name.c_str(), r.category.c_str(),
                  r.summary.c_str());
    }
    return 0;
  }

  std::string err;
  if (allowlist_arg == "none") {
    // explicit opt-out
  } else if (!allowlist_arg.empty()) {
    if (!options.allowlist.load(allowlist_arg, &err)) {
      std::fprintf(stderr, "hsd_lint: %s\n", err.c_str());
      return 2;
    }
  } else {
    const std::filesystem::path def = options.root / "tools" / "hsd_lint" / "allowlist.txt";
    if (std::filesystem::exists(def) && !options.allowlist.load(def, &err)) {
      std::fprintf(stderr, "hsd_lint: %s\n", err.c_str());
      return 2;
    }
  }

  // When writing a fresh baseline, don't subtract the old one.
  if (write_baseline_arg.empty()) {
    if (baseline_arg == "none") {
      // explicit opt-out
    } else if (!baseline_arg.empty()) {
      if (!options.baseline.load(baseline_arg, &err)) {
        std::fprintf(stderr, "hsd_lint: %s\n", err.c_str());
        return 2;
      }
    } else {
      const std::filesystem::path def = options.root / "tools" / "hsd_lint" / "baseline.txt";
      if (std::filesystem::exists(def) && !options.baseline.load(def, &err)) {
        std::fprintf(stderr, "hsd_lint: %s\n", err.c_str());
        return 2;
      }
    }
  }

  const hsd::lint::RunResult result = hsd::lint::run_full(options);

  if (!write_baseline_arg.empty()) {
    std::ofstream os(write_baseline_arg);
    if (!os) {
      std::fprintf(stderr, "hsd_lint: cannot write baseline: %s\n",
                   write_baseline_arg.c_str());
      return 2;
    }
    os << "# hsd_lint baseline: grandfathered findings, one `path:line:rule`\n"
       << "# per line. Regenerate with --write-baseline; remove entries as\n"
       << "# they are fixed. New findings are never added automatically.\n";
    for (const auto& d : result.findings) {
      os << hsd::lint::Baseline::key_of(d) << "\n";
    }
    std::fprintf(stderr, "hsd_lint: wrote %zu baseline entr%s to %s\n",
                 result.findings.size(), result.findings.size() == 1 ? "y" : "ies",
                 write_baseline_arg.c_str());
    return 0;
  }

  if (json) {
    std::cout << hsd::lint::to_json(result) << "\n";
  } else {
    for (const auto& d : result.findings) {
      std::cout << hsd::lint::format(d) << "\n";
    }
    for (const auto& stale : result.stale_baseline) {
      std::cout << "stale baseline entry (fixed? remove it): " << stale << "\n";
    }
  }
  if (github) {
    for (const auto& d : result.findings) {
      std::cout << hsd::lint::format_github(d) << "\n";
    }
  }

  const bool failed = !result.findings.empty() || !result.stale_baseline.empty();
  if (failed) {
    std::fprintf(stderr, "hsd_lint: %zu violation(s), %zu stale baseline entr%s\n",
                 result.findings.size(), result.stale_baseline.size(),
                 result.stale_baseline.size() == 1 ? "y" : "ies");
    return 1;
  }
  if (result.baselined > 0) {
    std::fprintf(stderr, "hsd_lint: clean (%zu baselined finding%s remaining)\n",
                 result.baselined, result.baselined == 1 ? "" : "s");
  }
  return 0;
}
