// hsd_lint CLI. Exit codes: 0 clean, 1 violations found, 2 usage/IO error.
//
//   hsd_lint [--root DIR] [--allowlist FILE|none] [--list-rules] [paths...]
//
// With no paths, scans src/ tests/ bench/ examples/ under --root
// (default: current directory). The default allowlist is
// <root>/tools/hsd_lint/allowlist.txt when it exists.

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--allowlist FILE|none] [--list-rules] "
               "[paths...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  hsd::lint::Options options;
  std::string allowlist_arg;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) return usage(argv[0]);
      options.root = argv[i];
    } else if (arg == "--allowlist") {
      if (++i >= argc) return usage(argv[0]);
      allowlist_arg = argv[i];
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      options.paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const auto& r : hsd::lint::rules()) {
      std::printf("%-24s %-12s %s\n", r.name.c_str(), r.category.c_str(),
                  r.summary.c_str());
    }
    return 0;
  }

  std::string err;
  if (allowlist_arg == "none") {
    // explicit opt-out
  } else if (!allowlist_arg.empty()) {
    if (!options.allowlist.load(allowlist_arg, &err)) {
      std::fprintf(stderr, "hsd_lint: %s\n", err.c_str());
      return 2;
    }
  } else {
    const std::filesystem::path def = options.root / "tools" / "hsd_lint" / "allowlist.txt";
    if (std::filesystem::exists(def) && !options.allowlist.load(def, &err)) {
      std::fprintf(stderr, "hsd_lint: %s\n", err.c_str());
      return 2;
    }
  }

  const auto diagnostics = hsd::lint::run(options);
  for (const auto& d : diagnostics) {
    std::cout << hsd::lint::format(d) << "\n";
  }
  if (!diagnostics.empty()) {
    std::cerr << "hsd_lint: " << diagnostics.size() << " violation(s)\n";
    return 1;
  }
  return 0;
}
