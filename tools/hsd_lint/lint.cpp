#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "lexer.hpp"
#include "model.hpp"
#include "passes.hpp"

namespace hsd::lint {

namespace {

// ---------------------------------------------------------------------------
// Small string helpers
// ---------------------------------------------------------------------------

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool contains(const std::string& s, const std::string& sub) {
  return s.find(sub) != std::string::npos;
}

/// Whole-word occurrence of `w` in `s` (both boundaries non-word chars).
bool contains_word(const std::string& s, const std::string& w) {
  std::size_t pos = 0;
  while ((pos = s.find(w, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_word_char(s[pos - 1]);
    const std::size_t end = pos + w.size();
    const bool right_ok = end >= s.size() || !is_word_char(s[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

/// Whole word `w` followed (after optional whitespace) by '('.
bool contains_call(const std::string& s, const std::string& w) {
  std::size_t pos = 0;
  while ((pos = s.find(w, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_word_char(s[pos - 1]);
    std::size_t end = pos + w.size();
    if (left_ok) {
      std::size_t j = end;
      while (j < s.size() && (s[j] == ' ' || s[j] == '\t')) ++j;
      if (j < s.size() && s[j] == '(') return true;
    }
    pos = end;
  }
  return false;
}

std::string ltrim(const std::string& s) {
  std::size_t i = 0;
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  return s.substr(i);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool has_extension(const std::string& rel, std::initializer_list<const char*> exts) {
  for (const char* e : exts) {
    const std::string ext(e);
    if (rel.size() >= ext.size() &&
        rel.compare(rel.size() - ext.size(), ext.size(), ext) == 0) {
      return true;
    }
  }
  return false;
}

/// Parses every `hsd-lint: allow(a, b)` clause in a comment string.
std::set<std::string> parse_allows(const std::string& comment) {
  std::set<std::string> out;
  static const std::string kTag = "hsd-lint:";
  std::size_t pos = 0;
  while ((pos = comment.find(kTag, pos)) != std::string::npos) {
    std::size_t p = comment.find("allow(", pos);
    if (p == std::string::npos) break;
    p += 6;
    const std::size_t close = comment.find(')', p);
    if (close == std::string::npos) break;
    std::string inside = comment.substr(p, close - p);
    std::string token;
    std::istringstream is(inside);
    while (std::getline(is, token, ',')) {
      // trim
      const auto b = token.find_first_not_of(" \t");
      const auto e = token.find_last_not_of(" \t");
      if (b != std::string::npos) out.insert(token.substr(b, e - b + 1));
    }
    pos = close;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule catalogue
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"no-rand", "determinism",
     "bans rand()/srand()/std::random_device and unseeded std engines; seed "
     "explicitly via hsd::stats::Rng / runtime::derive_seed"},
    {"no-wall-clock", "determinism",
     "bans wall-clock/steady-clock reads outside src/obs, src/runtime, "
     "src/serve, bench/, tools/"},
    {"no-unordered-in-core", "determinism",
     "bans std::unordered_map/set in src/core, src/gmm, src/data (iteration "
     "order is nondeterministic)"},
    {"no-unordered-route-agg", "determinism",
     "bans std::unordered_map/set in src/serve, src/obs: iteration feeding "
     "routing decisions or metric aggregation output must be ordered"},
    {"no-raw-thread", "concurrency",
     "bans raw std::thread/std::async/OpenMP outside src/runtime; use "
     "runtime::parallel_for / TaskGroup"},
    {"thread-member-join", "concurrency",
     "a std::thread member outside src/runtime requires a join()/stop()/"
     "shutdown() path somewhere in the same file"},
    {"atomic-memory-order", "concurrency",
     "atomic load/store/RMW must spell an explicit std::memory_order"},
    {"no-mutable-static", "concurrency",
     "bans mutable static-storage locals in src/ library code"},
    {"using-namespace-header", "hygiene", "bans using namespace in headers"},
    {"pragma-once", "hygiene", "every header must contain #pragma once"},
    {"no-stdio", "hygiene",
     "bans printf/std::cout in src/ library code; return data, don't print"},
    {"no-raw-assert", "hygiene",
     "bans raw assert(); use HSD_CHECK/HSD_DCHECK from common/check.hpp"},
    {"no-reinterpret-cast", "hygiene",
     "bans reinterpret_cast in src/ (UB-prone type punning); use std::memcpy"},
    {"no-raw-simd", "hygiene",
     "bans raw SIMD (__AVX2__/__AVX512*, immintrin.h, _mm256_*/_mm512_*, "
     "__builtin_cpu_supports) outside src/tensor/backend/; extend a Backend "
     "so the scalar reference and differential tests stay authoritative"},
    // --- project passes ----------------------------------------------------
    {"layer-violation", "layering",
     "an #include edge between src/ modules that the layers.toml DAG does "
     "not allow; add the dependency to the manifest deliberately or break "
     "the edge"},
    {"include-cycle", "layering",
     "a cyclic #include chain among scanned files; cycles make build order "
     "and incremental rebuilds fragile"},
    {"layer-unlisted-module", "layering",
     "a src/ module exists on disk but is not declared in layers.toml; "
     "every module must declare its allowed dependencies"},
    {"layer-manifest-drift", "layering",
     "layers.toml declares a module whose src/ directory does not exist"},
    {"layer-manifest-error", "layering",
     "layers.toml is malformed or its declared dependency graph has a cycle"},
    {"deferred-ref-capture", "capture-safety",
     "a lambda passed to TaskGroup::run / ThreadPool::submit captures by "
     "reference with no wait() join path in the file; the task can outlive "
     "the captured locals"},
    {"detached-this-capture", "capture-safety",
     "`this` captured into a deferred task with no join path in the file; "
     "the callback can run after the object is destroyed"},
    {"unregistered-env", "registry",
     "an HSD_* environment-variable literal outside src/common/registry.hpp; "
     "register it once and use the hsd::reg constant"},
    {"unregistered-metric", "registry",
     "an obs metric/span name (or name fragment) that matches no entry in "
     "src/common/registry.hpp"},
    {"registry-duplicate", "registry",
     "an identifier registered more than once in src/common/registry.hpp; "
     "the registry is the single source of truth"},
    {"registry-undocumented", "registry",
     "a registered identifier not mentioned in DESIGN.md/README.md; every "
     "knob and metric must be documented where users look"},
};

struct Scope {
  bool in_src = false;
  bool clock_exempt = false;      // src/obs, src/runtime, src/net, src/serve,
                                  // bench, tools
  bool unordered_scoped = false;  // src/core, src/gmm, src/data
  bool route_agg_scoped = false;  // src/serve, src/obs
  bool thread_exempt = false;     // src/runtime
  bool simd_exempt = false;       // src/tensor/backend
  bool is_header = false;
};

Scope scope_of(const std::string& rel) {
  Scope s;
  s.in_src = starts_with(rel, "src/");
  s.clock_exempt = starts_with(rel, "src/obs/") || starts_with(rel, "src/runtime/") ||
                   starts_with(rel, "src/net/") || starts_with(rel, "src/serve/") ||
                   starts_with(rel, "bench/") || starts_with(rel, "tools/");
  s.unordered_scoped = starts_with(rel, "src/core/") || starts_with(rel, "src/gmm/") ||
                       starts_with(rel, "src/data/");
  s.route_agg_scoped = starts_with(rel, "src/serve/") || starts_with(rel, "src/obs/");
  s.thread_exempt = starts_with(rel, "src/runtime/");
  s.simd_exempt = starts_with(rel, "src/tensor/backend/");
  s.is_header = has_extension(rel, {".hpp", ".h", ".hh"});
  return s;
}

const std::vector<std::string> kAtomicOps = {
    ".load(",
    ".store(",
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_or(",
    ".fetch_and(",
    ".fetch_xor(",
    ".exchange(",
    ".compare_exchange_weak(",
    ".compare_exchange_strong(",
};

const std::vector<std::string> kUnseededEngines = {
    "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0", "default_random_engine",
    "ranlux24", "ranlux48", "knuth_b",
};

/// Heuristic for a line that declares a std::thread (or container of
/// threads) as a data member / plain variable rather than constructing or
/// using one: names the type, ends the statement, and has no '(' (so
/// `std::thread t(fn);`, `std::thread::hardware_concurrency()`, and
/// function declarations all pass).
bool thread_member_decl(const std::string& code) {
  if (!contains(code, "std::thread") && !contains(code, "std::jthread")) {
    return false;
  }
  const std::string t = ltrim(code);
  const std::size_t last = t.find_last_not_of(" \t");
  if (last == std::string::npos || t[last] != ';') return false;
  return !contains(t, "(") && !starts_with(t, "using ");
}

/// Heuristic for a declaration of a std engine with no initializer on the
/// line: `std::mt19937 rng;` — flagged; `std::mt19937 rng(seed);` and
/// `std::mt19937_64& engine()` are not (they contain '(').
bool unseeded_engine_decl(const std::string& code) {
  bool named = false;
  for (const auto& e : kUnseededEngines) {
    if (contains_word(code, e)) {
      named = true;
      break;
    }
  }
  return named && contains(code, ";") && !contains(code, "(") && !contains(code, "{");
}

void check_line(const std::string& rel, const Scope& sc, const std::string& code,
                int lineno, bool file_uses_atomics, std::vector<Diagnostic>& out) {
  auto emit = [&](const char* rule, std::string msg) {
    out.push_back({rel, lineno, rule, std::move(msg)});
  };

  // --- determinism -------------------------------------------------------
  if (contains_call(code, "rand") || contains_call(code, "srand") ||
      contains_call(code, "drand48") || contains_call(code, "lrand48")) {
    emit("no-rand", "C rand()/srand() is unseeded global state; use hsd::stats::Rng");
  }
  if (contains_word(code, "random_device")) {
    emit("no-rand", "std::random_device is nondeterministic; seed from config/derive_seed");
  }
  if (unseeded_engine_decl(code)) {
    emit("no-rand", "random engine declared without an explicit seed");
  }

  if (!sc.clock_exempt) {
    if (contains(code, "::now(") || contains_word(code, "gettimeofday") ||
        contains_word(code, "clock_gettime") || contains_call(code, "clock") ||
        contains(code, "std::time(")) {
      emit("no-wall-clock",
           "wall-clock read outside src/obs, src/runtime, bench/ perturbs determinism");
    }
  }

  if (sc.unordered_scoped &&
      (contains_word(code, "unordered_map") || contains_word(code, "unordered_set"))) {
    emit("no-unordered-in-core",
         "unordered container in sampling-critical module; iteration order is "
         "nondeterministic — use std::map/std::set or sort before iterating");
  }

  if (sc.route_agg_scoped &&
      (contains_word(code, "unordered_map") || contains_word(code, "unordered_set"))) {
    emit("no-unordered-route-agg",
         "unordered container in a routing/aggregation module; iterating it "
         "into shard placement or a metrics rollup makes the output order "
         "nondeterministic — use std::map/std::set or sort first");
  }

  // --- concurrency -------------------------------------------------------
  if (!sc.thread_exempt) {
    if (contains(code, "std::thread") || contains(code, "std::jthread") ||
        contains(code, "std::async") || contains_word(code, "pthread_create")) {
      emit("no-raw-thread",
           "raw threading outside src/runtime; use runtime::parallel_for / TaskGroup");
    }
    if (contains(code, "#pragma") && contains_word(code, "omp")) {
      emit("no-raw-thread", "OpenMP pragma outside src/runtime");
    }
  }

  if (file_uses_atomics && !contains(code, "memory_order")) {
    for (const auto& op : kAtomicOps) {
      if (contains(code, op)) {
        emit("atomic-memory-order",
             "atomic operation without an explicit std::memory_order");
        break;
      }
    }
  }

  if (sc.in_src) {
    const std::string trimmed = ltrim(code);
    // `=` before any `(` distinguishes an initialized local (`static T x =
    // make();`) from a static member-function declaration with default
    // arguments (`static T make(int n = 0);`).
    const std::size_t eq = trimmed.find('=');
    const std::size_t paren = trimmed.find('(');
    if (starts_with(trimmed, "static ") && !contains(trimmed, "static_assert") &&
        !contains(trimmed, "static_cast") && !contains(trimmed, "constexpr") &&
        !starts_with(trimmed, "static const ") && eq != std::string::npos &&
        (paren == std::string::npos || eq < paren)) {
      emit("no-mutable-static",
           "mutable static-storage local; initialization order and cross-thread "
           "mutation are hazards in library code");
    }
  }

  // --- hygiene -----------------------------------------------------------
  if (sc.is_header && contains(code, "using namespace")) {
    emit("using-namespace-header", "using namespace in a header pollutes every includer");
  }

  if (sc.in_src) {
    if (contains(code, "std::cout") || contains_call(code, "printf") ||
        contains_call(code, "puts")) {
      emit("no-stdio", "stdout I/O in library code; return data or use obs/ instead");
    }
    if (contains_call(code, "assert")) {
      emit("no-raw-assert",
           "raw assert() vanishes in Release; use HSD_CHECK/HSD_DCHECK "
           "(common/check.hpp)");
    }
    if (contains_word(code, "reinterpret_cast")) {
      emit("no-reinterpret-cast",
           "reinterpret_cast type punning is UB-prone; use std::memcpy");
    }
  }

  if (!sc.simd_exempt) {
    if (contains(code, "immintrin.h") || contains(code, "x86intrin.h") ||
        contains_word(code, "__AVX2__") || contains(code, "__AVX512") ||
        contains(code, "_mm256_") || contains(code, "_mm512_") ||
        contains(code, "__m256") || contains(code, "__m512") ||
        contains_word(code, "__builtin_cpu_supports")) {
      emit("no-raw-simd",
           "raw SIMD outside src/tensor/backend/; add or extend a Backend "
           "implementation so every vector path stays behind the dispatch "
           "and its differential tests");
    }
  }
}

// ---------------------------------------------------------------------------
// Per-file engine: line rules + file-level checks on a lexed file
// ---------------------------------------------------------------------------

std::vector<Diagnostic> line_pass(const std::string& rel, const LexedFile& lexed) {
  const Scope sc = scope_of(rel);
  const auto& lines = lexed.lines;

  bool file_uses_atomics = false;
  for (const auto& inc : lexed.includes) {
    if (inc.angled && inc.target == "atomic") {
      file_uses_atomics = true;
      break;
    }
  }
  if (!file_uses_atomics) {
    for (const auto& l : lines) {
      if (contains(l.code, "std::atomic")) {
        file_uses_atomics = true;
        break;
      }
    }
  }

  std::vector<Diagnostic> raw;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    check_line(rel, sc, lines[i].code, static_cast<int>(i) + 1,
               file_uses_atomics, raw);
  }

  if (sc.is_header) {
    bool has_pragma_once = false;
    for (const auto& l : lines) {
      if (contains(l.code, "#pragma once")) {
        has_pragma_once = true;
        break;
      }
    }
    if (!has_pragma_once) {
      raw.push_back({rel, 1, "pragma-once", "header is missing #pragma once"});
    }
  }

  // A std::thread member is a leak-on-destruction hazard unless the same
  // file also has a path that joins it (a joining destructor, stop(), or
  // shutdown()). File-level: the declaration and the join rarely share a
  // line.
  if (!sc.thread_exempt) {
    bool has_join_path = false;
    for (const auto& l : lines) {
      if (contains(l.code, ".join(") || contains_call(l.code, "stop") ||
          contains_call(l.code, "shutdown")) {
        has_join_path = true;
        break;
      }
    }
    if (!has_join_path) {
      for (std::size_t i = 0; i < lines.size(); ++i) {
        if (thread_member_decl(lines[i].code)) {
          raw.push_back({rel, static_cast<int>(i) + 1, "thread-member-join",
                         "std::thread member with no join()/stop()/shutdown() "
                         "path in this file; a destructor that forgets to join "
                         "calls std::terminate"});
        }
      }
    }
  }
  return raw;
}

/// Drops diagnostics covered by an inline `hsd-lint: allow(rule)` on the
/// flagged line or on a comment-only line directly above it. Diagnostics
/// with line 0 (file/project level) pass through untouched.
void apply_inline_suppressions(const std::vector<SourceLine>& lines,
                               std::vector<Diagnostic>& diags) {
  std::vector<Diagnostic> kept;
  kept.reserve(diags.size());
  for (auto& d : diags) {
    if (d.line > 0 && static_cast<std::size_t>(d.line) <= lines.size()) {
      const std::size_t idx = static_cast<std::size_t>(d.line) - 1;
      std::set<std::string> allowed = parse_allows(lines[idx].comment);
      if (idx > 0 && ltrim(lines[idx - 1].code).empty()) {
        // A comment-only line directly above applies to this line.
        const auto prev = parse_allows(lines[idx - 1].comment);
        allowed.insert(prev.begin(), prev.end());
      }
      if (allowed.count(d.rule) > 0) continue;
    }
    kept.push_back(std::move(d));
  }
  diags.swap(kept);
}

void sort_diags(std::vector<Diagnostic>& out) {
  std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
}

std::string read_file(const std::filesystem::path& p) {
  std::ifstream is(p, std::ios::binary);
  if (!is) return "";
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// AllowList
// ---------------------------------------------------------------------------

bool AllowList::parse(const std::string& text, std::string* error) {
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const auto e = line.find_last_not_of(" \t\r");
    line = line.substr(b, e - b + 1);
    if (line.empty() || line[0] == '#') continue;
    const auto colon = line.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= line.size()) {
      if (error) {
        *error = "allowlist line " + std::to_string(lineno) +
                 ": expected `path:rule`, got `" + line + "`";
      }
      return false;
    }
    entries_[line.substr(0, colon)].insert(line.substr(colon + 1));
  }
  return true;
}

bool AllowList::load(const std::filesystem::path& path, std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error) *error = "cannot open allowlist: " + path.string();
    return false;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse(buf.str(), error);
}

bool AllowList::allows(const std::string& rel_path, const std::string& rule) const {
  const auto it = entries_.find(rel_path);
  return it != entries_.end() && it->second.count(rule) > 0;
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

bool Baseline::parse(const std::string& text, std::string* error) {
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const auto e = line.find_last_not_of(" \t\r");
    line = line.substr(b, e - b + 1);
    if (line.empty() || line[0] == '#') continue;
    // path:line:rule — the last two colons delimit line and rule.
    const auto c2 = line.rfind(':');
    const auto c1 = c2 == std::string::npos ? std::string::npos
                                            : line.rfind(':', c2 - 1);
    bool ok = c1 != std::string::npos && c1 > 0 && c2 > c1 + 1 &&
              c2 + 1 < line.size();
    if (ok) {
      for (std::size_t i = c1 + 1; i < c2; ++i) {
        if (!std::isdigit(static_cast<unsigned char>(line[i]))) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) {
      if (error) {
        *error = "baseline line " + std::to_string(lineno) +
                 ": expected `path:line:rule`, got `" + line + "`";
      }
      return false;
    }
    entries_.insert(line);
  }
  return true;
}

bool Baseline::load(const std::filesystem::path& path, std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error) *error = "cannot open baseline: " + path.string();
    return false;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse(buf.str(), error);
}

std::string Baseline::key_of(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ":" + d.rule;
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rules() { return kRules; }

std::string category_of(const std::string& rule) {
  for (const auto& r : kRules) {
    if (r.name == rule) return r.category;
  }
  return "io";  // the synthetic io-error rule
}

std::vector<Diagnostic> lint_text(const std::string& rel_path, const std::string& text,
                                  const AllowList& allowlist) {
  const LexedFile lexed = lex(text);
  std::vector<Diagnostic> raw = line_pass(rel_path, lexed);
  apply_inline_suppressions(lexed.lines, raw);
  std::vector<Diagnostic> out;
  for (auto& d : raw) {
    if (allowlist.allows(rel_path, d.rule)) continue;
    out.push_back(std::move(d));
  }
  return out;
}

RunResult run_full(const Options& options) {
  std::vector<Diagnostic> all;

  std::vector<std::filesystem::path> targets;
  const bool explicit_paths = !options.paths.empty();
  if (explicit_paths) {
    for (const auto& p : options.paths) {
      std::filesystem::path path(p);
      if (path.is_relative()) path = options.root / path;
      std::error_code ec;
      if (!std::filesystem::exists(path, ec)) {
        // A default scan dir that doesn't exist under root is just skipped;
        // a path the caller named must exist.
        all.push_back({path.generic_string(), 0, "io-error",
                       "no such file or directory"});
        continue;
      }
      targets.push_back(path);
    }
  } else {
    for (const auto& d : options.scan_dirs) targets.push_back(options.root / d);
  }

  std::vector<std::string> io_errors;
  const ProjectModel project = load_project(options.root, targets, &io_errors);
  for (const auto& rel : io_errors) {
    all.push_back({rel, 0, "io-error", "cannot read file"});
  }

  // Per-file: line rules, then the capture-safety pass.
  for (const auto& f : project.files) {
    std::vector<Diagnostic> file_diags = line_pass(f.rel, f.lex);
    capture_pass(f, file_diags);
    apply_inline_suppressions(f.lex.lines, file_diags);
    all.insert(all.end(), std::make_move_iterator(file_diags.begin()),
               std::make_move_iterator(file_diags.end()));
  }

  // Layering: runs when a manifest is checked in at the root or next to the
  // tool. Fixture trees without a manifest skip the pass entirely.
  std::filesystem::path manifest_path;
  std::string manifest_rel;
  for (const char* cand : {"layers.toml", "tools/hsd_lint/layers.toml"}) {
    std::error_code ec;
    if (std::filesystem::is_regular_file(options.root / cand, ec)) {
      manifest_path = options.root / cand;
      manifest_rel = cand;
      break;
    }
  }
  if (!manifest_path.empty()) {
    LayerManifest manifest;
    std::string err;
    if (!manifest.load(manifest_path, &err)) {
      all.push_back({manifest_rel, 0, "layer-manifest-error", err});
    } else {
      std::vector<Diagnostic> layer_diags;
      layering_pass(project, manifest, manifest_rel, layer_diags);
      for (auto& d : layer_diags) {
        if (const FileModel* fm = project.find(d.file)) {
          std::vector<Diagnostic> one{std::move(d)};
          apply_inline_suppressions(fm->lex.lines, one);
          if (!one.empty()) all.push_back(std::move(one.front()));
        } else {
          all.push_back(std::move(d));
        }
      }
    }
  }

  // Registry: runs when the registry header exists under the root. The
  // header itself may be outside the scanned targets (explicit-path runs),
  // so it is lexed independently.
  const std::string registry_rel = "src/common/registry.hpp";
  std::error_code reg_ec;
  if (std::filesystem::is_regular_file(options.root / registry_rel, reg_ec)) {
    Registry registry;
    registry.parse(lex(read_file(options.root / registry_rel)));
    std::string docs_text;
    for (const char* doc : {"DESIGN.md", "README.md", "tests/README.md"}) {
      docs_text += read_file(options.root / doc);
      docs_text += '\n';
    }
    std::vector<Diagnostic> reg_diags;
    registry_pass(project, registry, registry_rel, docs_text, reg_diags);
    for (auto& d : reg_diags) {
      if (const FileModel* fm = project.find(d.file)) {
        std::vector<Diagnostic> one{std::move(d)};
        apply_inline_suppressions(fm->lex.lines, one);
        if (!one.empty()) all.push_back(std::move(one.front()));
      } else {
        all.push_back(std::move(d));
      }
    }
  }

  // File-wide allowlist applies to every rule, including pass findings.
  std::vector<Diagnostic> surviving;
  surviving.reserve(all.size());
  for (auto& d : all) {
    if (options.allowlist.allows(d.file, d.rule)) continue;
    surviving.push_back(std::move(d));
  }
  sort_diags(surviving);

  // Baseline: grandfathered findings are counted, not reported; entries
  // that matched nothing are stale and reported for burn-down.
  RunResult result;
  std::set<std::string> matched;
  for (auto& d : surviving) {
    const std::string key = Baseline::key_of(d);
    if (options.baseline.contains(key)) {
      ++result.baselined;
      matched.insert(key);
      continue;
    }
    result.findings.push_back(std::move(d));
  }
  for (const auto& entry : options.baseline.entries()) {
    if (matched.count(entry) == 0) result.stale_baseline.push_back(entry);
  }
  return result;
}

std::vector<Diagnostic> run(const Options& options) {
  return run_full(options).findings;
}

std::string format(const Diagnostic& d) {
  std::ostringstream os;
  os << d.file << ":" << d.line << ": error: [" << d.rule << "] " << d.message;
  return os.str();
}

std::string format_github(const Diagnostic& d) {
  // GitHub annotation syntax: property values escape % , : and newlines;
  // message data escapes % and newlines.
  auto esc_prop = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      switch (c) {
        case '%': out += "%25"; break;
        case ',': out += "%2C"; break;
        case ':': out += "%3A"; break;
        case '\n': out += "%0A"; break;
        case '\r': out += "%0D"; break;
        default: out += c;
      }
    }
    return out;
  };
  auto esc_data = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      switch (c) {
        case '%': out += "%25"; break;
        case '\n': out += "%0A"; break;
        case '\r': out += "%0D"; break;
        default: out += c;
      }
    }
    return out;
  };
  std::ostringstream os;
  os << "::error file=" << esc_prop(d.file) << ",line=" << (d.line > 0 ? d.line : 1)
     << "::[" << d.rule << "] " << esc_data(d.message);
  return os.str();
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_json(const RunResult& result) {
  std::ostringstream os;
  os << "{\"tool\":\"hsd_lint\",\"schema_version\":1,";
  os << "\"summary\":{\"findings\":" << result.findings.size()
     << ",\"baselined\":" << result.baselined
     << ",\"stale_baseline\":" << result.stale_baseline.size() << "},";
  os << "\"findings\":[";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Diagnostic& d = result.findings[i];
    if (i > 0) os << ",";
    os << "{\"file\":\"" << json_escape(d.file) << "\",\"line\":" << d.line
       << ",\"rule\":\"" << json_escape(d.rule) << "\",\"category\":\""
       << json_escape(category_of(d.rule)) << "\",\"message\":\""
       << json_escape(d.message) << "\"}";
  }
  os << "],\"stale_baseline\":[";
  for (std::size_t i = 0; i < result.stale_baseline.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << json_escape(result.stale_baseline[i]) << "\"";
  }
  os << "]}";
  return os.str();
}

}  // namespace hsd::lint
