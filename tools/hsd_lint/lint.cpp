#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace hsd::lint {

namespace {

// ---------------------------------------------------------------------------
// Preprocessing: split source text into per-line (code, comment) pairs with
// string/char literals blanked out, so rules never match inside literals or
// comments, and suppression comments are parsed from the comment channel.
// ---------------------------------------------------------------------------

struct SourceLine {
  std::string code;
  std::string comment;
};

std::vector<SourceLine> preprocess(const std::string& text) {
  std::vector<SourceLine> lines(1);
  enum class State { kCode, kString, kChar, kLineComment, kBlockComment, kRawString };
  State state = State::kCode;
  std::string raw_terminator;  // for kRawString: )delim"
  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      lines.emplace_back();
      continue;
    }
    SourceLine& cur = lines.back();
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
                   (cur.code.empty() || !std::isalnum(static_cast<unsigned char>(
                                            cur.code.back())))) {
          // R"delim( ... )delim"
          std::size_t j = i + 2;
          std::string delim;
          while (j < n && text[j] != '(' && text[j] != '\n') delim += text[j++];
          raw_terminator = ")" + delim + "\"";
          state = State::kRawString;
          cur.code += "\"\"";
          i = j;  // at '(' (or newline, handled next iteration)
        } else if (c == '"') {
          state = State::kString;
          cur.code += "\"\"";
        } else if (c == '\'') {
          state = State::kChar;
          cur.code += "''";
        } else {
          cur.code += c;
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < n) {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < n) {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == raw_terminator[0] && text.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          i += raw_terminator.size() - 1;
          state = State::kCode;
        }
        break;
      case State::kLineComment:
        cur.comment += c;
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          state = State::kCode;
          ++i;
        } else {
          cur.comment += c;
        }
        break;
    }
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Small string helpers
// ---------------------------------------------------------------------------

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool contains(const std::string& s, const std::string& sub) {
  return s.find(sub) != std::string::npos;
}

/// Whole-word occurrence of `w` in `s` (both boundaries non-word chars).
bool contains_word(const std::string& s, const std::string& w) {
  std::size_t pos = 0;
  while ((pos = s.find(w, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_word_char(s[pos - 1]);
    const std::size_t end = pos + w.size();
    const bool right_ok = end >= s.size() || !is_word_char(s[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

/// Whole word `w` followed (after optional whitespace) by '('.
bool contains_call(const std::string& s, const std::string& w) {
  std::size_t pos = 0;
  while ((pos = s.find(w, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_word_char(s[pos - 1]);
    std::size_t end = pos + w.size();
    if (left_ok) {
      std::size_t j = end;
      while (j < s.size() && (s[j] == ' ' || s[j] == '\t')) ++j;
      if (j < s.size() && s[j] == '(') return true;
    }
    pos = end;
  }
  return false;
}

std::string ltrim(const std::string& s) {
  std::size_t i = 0;
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  return s.substr(i);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool has_extension(const std::string& rel, std::initializer_list<const char*> exts) {
  for (const char* e : exts) {
    const std::string ext(e);
    if (rel.size() >= ext.size() &&
        rel.compare(rel.size() - ext.size(), ext.size(), ext) == 0) {
      return true;
    }
  }
  return false;
}

/// Parses every `hsd-lint: allow(a, b)` clause in a comment string.
std::set<std::string> parse_allows(const std::string& comment) {
  std::set<std::string> out;
  static const std::string kTag = "hsd-lint:";
  std::size_t pos = 0;
  while ((pos = comment.find(kTag, pos)) != std::string::npos) {
    std::size_t p = comment.find("allow(", pos);
    if (p == std::string::npos) break;
    p += 6;
    const std::size_t close = comment.find(')', p);
    if (close == std::string::npos) break;
    std::string inside = comment.substr(p, close - p);
    std::string token;
    std::istringstream is(inside);
    while (std::getline(is, token, ',')) {
      // trim
      const auto b = token.find_first_not_of(" \t");
      const auto e = token.find_last_not_of(" \t");
      if (b != std::string::npos) out.insert(token.substr(b, e - b + 1));
    }
    pos = close;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule catalogue
// ---------------------------------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"no-rand", "determinism",
     "bans rand()/srand()/std::random_device and unseeded std engines; seed "
     "explicitly via hsd::stats::Rng / runtime::derive_seed"},
    {"no-wall-clock", "determinism",
     "bans wall-clock/steady-clock reads outside src/obs, src/runtime, "
     "src/serve, bench/"},
    {"no-unordered-in-core", "determinism",
     "bans std::unordered_map/set in src/core, src/gmm, src/data (iteration "
     "order is nondeterministic)"},
    {"no-unordered-route-agg", "determinism",
     "bans std::unordered_map/set in src/serve, src/obs: iteration feeding "
     "routing decisions or metric aggregation output must be ordered"},
    {"no-raw-thread", "concurrency",
     "bans raw std::thread/std::async/OpenMP outside src/runtime; use "
     "runtime::parallel_for / TaskGroup"},
    {"thread-member-join", "concurrency",
     "a std::thread member outside src/runtime requires a join()/stop()/"
     "shutdown() path somewhere in the same file"},
    {"atomic-memory-order", "concurrency",
     "atomic load/store/RMW must spell an explicit std::memory_order"},
    {"no-mutable-static", "concurrency",
     "bans mutable static-storage locals in src/ library code"},
    {"using-namespace-header", "hygiene", "bans using namespace in headers"},
    {"pragma-once", "hygiene", "every header must contain #pragma once"},
    {"no-stdio", "hygiene",
     "bans printf/std::cout in src/ library code; return data, don't print"},
    {"no-raw-assert", "hygiene",
     "bans raw assert(); use HSD_CHECK/HSD_DCHECK from common/check.hpp"},
    {"no-reinterpret-cast", "hygiene",
     "bans reinterpret_cast in src/ (UB-prone type punning); use std::memcpy"},
    {"no-raw-simd", "hygiene",
     "bans raw SIMD (__AVX2__/__AVX512*, immintrin.h, _mm256_*/_mm512_*, "
     "__builtin_cpu_supports) outside src/tensor/backend/; extend a Backend "
     "so the scalar reference and differential tests stay authoritative"},
};

struct Scope {
  bool in_src = false;
  bool clock_exempt = false;      // src/obs, src/runtime, src/serve, bench
  bool unordered_scoped = false;  // src/core, src/gmm, src/data
  bool route_agg_scoped = false;  // src/serve, src/obs
  bool thread_exempt = false;     // src/runtime
  bool simd_exempt = false;       // src/tensor/backend
  bool is_header = false;
};

Scope scope_of(const std::string& rel) {
  Scope s;
  s.in_src = starts_with(rel, "src/");
  s.clock_exempt = starts_with(rel, "src/obs/") || starts_with(rel, "src/runtime/") ||
                   starts_with(rel, "src/serve/") || starts_with(rel, "bench/");
  s.unordered_scoped = starts_with(rel, "src/core/") || starts_with(rel, "src/gmm/") ||
                       starts_with(rel, "src/data/");
  s.route_agg_scoped = starts_with(rel, "src/serve/") || starts_with(rel, "src/obs/");
  s.thread_exempt = starts_with(rel, "src/runtime/");
  s.simd_exempt = starts_with(rel, "src/tensor/backend/");
  s.is_header = has_extension(rel, {".hpp", ".h", ".hh"});
  return s;
}

const std::vector<std::string> kAtomicOps = {
    ".load(",
    ".store(",
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_or(",
    ".fetch_and(",
    ".fetch_xor(",
    ".exchange(",
    ".compare_exchange_weak(",
    ".compare_exchange_strong(",
};

const std::vector<std::string> kUnseededEngines = {
    "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0", "default_random_engine",
    "ranlux24", "ranlux48", "knuth_b",
};

/// Heuristic for a line that declares a std::thread (or container of
/// threads) as a data member / plain variable rather than constructing or
/// using one: names the type, ends the statement, and has no '(' (so
/// `std::thread t(fn);`, `std::thread::hardware_concurrency()`, and
/// function declarations all pass).
bool thread_member_decl(const std::string& code) {
  if (!contains(code, "std::thread") && !contains(code, "std::jthread")) {
    return false;
  }
  const std::string t = ltrim(code);
  const std::size_t last = t.find_last_not_of(" \t");
  if (last == std::string::npos || t[last] != ';') return false;
  return !contains(t, "(") && !starts_with(t, "using ");
}

/// Heuristic for a declaration of a std engine with no initializer on the
/// line: `std::mt19937 rng;` — flagged; `std::mt19937 rng(seed);` and
/// `std::mt19937_64& engine()` are not (they contain '(').
bool unseeded_engine_decl(const std::string& code) {
  bool named = false;
  for (const auto& e : kUnseededEngines) {
    if (contains_word(code, e)) {
      named = true;
      break;
    }
  }
  return named && contains(code, ";") && !contains(code, "(") && !contains(code, "{");
}

void check_line(const std::string& rel, const Scope& sc, const std::string& code,
                int lineno, bool file_uses_atomics, std::vector<Diagnostic>& out) {
  auto emit = [&](const char* rule, std::string msg) {
    out.push_back({rel, lineno, rule, std::move(msg)});
  };

  // --- determinism -------------------------------------------------------
  if (contains_call(code, "rand") || contains_call(code, "srand") ||
      contains_call(code, "drand48") || contains_call(code, "lrand48")) {
    emit("no-rand", "C rand()/srand() is unseeded global state; use hsd::stats::Rng");
  }
  if (contains_word(code, "random_device")) {
    emit("no-rand", "std::random_device is nondeterministic; seed from config/derive_seed");
  }
  if (unseeded_engine_decl(code)) {
    emit("no-rand", "random engine declared without an explicit seed");
  }

  if (!sc.clock_exempt) {
    if (contains(code, "::now(") || contains_word(code, "gettimeofday") ||
        contains_word(code, "clock_gettime") || contains_call(code, "clock") ||
        contains(code, "std::time(")) {
      emit("no-wall-clock",
           "wall-clock read outside src/obs, src/runtime, bench/ perturbs determinism");
    }
  }

  if (sc.unordered_scoped &&
      (contains_word(code, "unordered_map") || contains_word(code, "unordered_set"))) {
    emit("no-unordered-in-core",
         "unordered container in sampling-critical module; iteration order is "
         "nondeterministic — use std::map/std::set or sort before iterating");
  }

  if (sc.route_agg_scoped &&
      (contains_word(code, "unordered_map") || contains_word(code, "unordered_set"))) {
    emit("no-unordered-route-agg",
         "unordered container in a routing/aggregation module; iterating it "
         "into shard placement or a metrics rollup makes the output order "
         "nondeterministic — use std::map/std::set or sort first");
  }

  // --- concurrency -------------------------------------------------------
  if (!sc.thread_exempt) {
    if (contains(code, "std::thread") || contains(code, "std::jthread") ||
        contains(code, "std::async") || contains_word(code, "pthread_create")) {
      emit("no-raw-thread",
           "raw threading outside src/runtime; use runtime::parallel_for / TaskGroup");
    }
    if (contains(code, "#pragma") && contains_word(code, "omp")) {
      emit("no-raw-thread", "OpenMP pragma outside src/runtime");
    }
  }

  if (file_uses_atomics && !contains(code, "memory_order")) {
    for (const auto& op : kAtomicOps) {
      if (contains(code, op)) {
        emit("atomic-memory-order",
             "atomic operation without an explicit std::memory_order");
        break;
      }
    }
  }

  if (sc.in_src) {
    const std::string trimmed = ltrim(code);
    // `=` before any `(` distinguishes an initialized local (`static T x =
    // make();`) from a static member-function declaration with default
    // arguments (`static T make(int n = 0);`).
    const std::size_t eq = trimmed.find('=');
    const std::size_t paren = trimmed.find('(');
    if (starts_with(trimmed, "static ") && !contains(trimmed, "static_assert") &&
        !contains(trimmed, "static_cast") && !contains(trimmed, "constexpr") &&
        !starts_with(trimmed, "static const ") && eq != std::string::npos &&
        (paren == std::string::npos || eq < paren)) {
      emit("no-mutable-static",
           "mutable static-storage local; initialization order and cross-thread "
           "mutation are hazards in library code");
    }
  }

  // --- hygiene -----------------------------------------------------------
  if (sc.is_header && contains(code, "using namespace")) {
    emit("using-namespace-header", "using namespace in a header pollutes every includer");
  }

  if (sc.in_src) {
    if (contains(code, "std::cout") || contains_call(code, "printf") ||
        contains_call(code, "puts")) {
      emit("no-stdio", "stdout I/O in library code; return data or use obs/ instead");
    }
    if (contains_call(code, "assert")) {
      emit("no-raw-assert",
           "raw assert() vanishes in Release; use HSD_CHECK/HSD_DCHECK "
           "(common/check.hpp)");
    }
    if (contains_word(code, "reinterpret_cast")) {
      emit("no-reinterpret-cast",
           "reinterpret_cast type punning is UB-prone; use std::memcpy");
    }
  }

  if (!sc.simd_exempt) {
    if (contains(code, "immintrin.h") || contains(code, "x86intrin.h") ||
        contains_word(code, "__AVX2__") || contains(code, "__AVX512") ||
        contains(code, "_mm256_") || contains(code, "_mm512_") ||
        contains(code, "__m256") || contains(code, "__m512") ||
        contains_word(code, "__builtin_cpu_supports")) {
      emit("no-raw-simd",
           "raw SIMD outside src/tensor/backend/; add or extend a Backend "
           "implementation so every vector path stays behind the dispatch "
           "and its differential tests");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// AllowList
// ---------------------------------------------------------------------------

bool AllowList::parse(const std::string& text, std::string* error) {
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const auto e = line.find_last_not_of(" \t\r");
    line = line.substr(b, e - b + 1);
    if (line.empty() || line[0] == '#') continue;
    const auto colon = line.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= line.size()) {
      if (error) {
        *error = "allowlist line " + std::to_string(lineno) +
                 ": expected `path:rule`, got `" + line + "`";
      }
      return false;
    }
    entries_[line.substr(0, colon)].insert(line.substr(colon + 1));
  }
  return true;
}

bool AllowList::load(const std::filesystem::path& path, std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error) *error = "cannot open allowlist: " + path.string();
    return false;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse(buf.str(), error);
}

bool AllowList::allows(const std::string& rel_path, const std::string& rule) const {
  const auto it = entries_.find(rel_path);
  return it != entries_.end() && it->second.count(rule) > 0;
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& rules() { return kRules; }

std::vector<Diagnostic> lint_text(const std::string& rel_path, const std::string& text,
                                  const AllowList& allowlist) {
  const Scope sc = scope_of(rel_path);
  const std::vector<SourceLine> lines = preprocess(text);
  const bool file_uses_atomics =
      contains(text, "std::atomic") || contains(text, "<atomic>");

  std::vector<Diagnostic> raw;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    check_line(rel_path, sc, lines[i].code, static_cast<int>(i) + 1,
               file_uses_atomics, raw);
  }

  if (sc.is_header && !contains(text, "#pragma once")) {
    raw.push_back({rel_path, 1, "pragma-once", "header is missing #pragma once"});
  }

  // A std::thread member is a leak-on-destruction hazard unless the same
  // file also has a path that joins it (a joining destructor, stop(), or
  // shutdown()). File-level: the declaration and the join rarely share a
  // line.
  if (!sc.thread_exempt) {
    bool has_join_path = false;
    for (const auto& l : lines) {
      if (contains(l.code, ".join(") || contains_call(l.code, "stop") ||
          contains_call(l.code, "shutdown")) {
        has_join_path = true;
        break;
      }
    }
    if (!has_join_path) {
      for (std::size_t i = 0; i < lines.size(); ++i) {
        if (thread_member_decl(lines[i].code)) {
          raw.push_back({rel_path, static_cast<int>(i) + 1, "thread-member-join",
                         "std::thread member with no join()/stop()/shutdown() "
                         "path in this file; a destructor that forgets to join "
                         "calls std::terminate"});
        }
      }
    }
  }

  std::vector<Diagnostic> out;
  for (auto& d : raw) {
    if (allowlist.allows(rel_path, d.rule)) continue;
    const std::size_t idx = static_cast<std::size_t>(d.line) - 1;
    std::set<std::string> allowed = parse_allows(lines[idx].comment);
    if (idx > 0 && ltrim(lines[idx - 1].code).empty()) {
      // A comment-only line directly above applies to this line.
      const auto prev = parse_allows(lines[idx - 1].comment);
      allowed.insert(prev.begin(), prev.end());
    }
    if (allowed.count(d.rule) > 0) continue;
    out.push_back(std::move(d));
  }
  return out;
}

namespace {

bool lintable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh" || ext == ".inl";
}

bool skipped_component(const std::filesystem::path& rel) {
  for (const auto& part : rel) {
    const std::string s = part.string();
    if (s == "lint_fixtures" || s == "build" || (s.size() > 1 && s[0] == '.')) {
      return true;
    }
  }
  return false;
}

void lint_one(const std::filesystem::path& file, const std::filesystem::path& root,
              const AllowList& allowlist, std::vector<Diagnostic>& out) {
  std::error_code ec;
  std::filesystem::path rel = std::filesystem::relative(file, root, ec);
  if (ec || rel.empty()) rel = file;
  const std::string rel_str = rel.generic_string();

  std::ifstream is(file, std::ios::binary);
  if (!is) {
    out.push_back({rel_str, 0, "io-error", "cannot read file"});
    return;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  auto diags = lint_text(rel_str, buf.str(), allowlist);
  out.insert(out.end(), std::make_move_iterator(diags.begin()),
             std::make_move_iterator(diags.end()));
}

void lint_tree(const std::filesystem::path& dir, const std::filesystem::path& root,
               const AllowList& allowlist, std::vector<Diagnostic>& out) {
  std::error_code ec;
  std::filesystem::recursive_directory_iterator it(dir, ec), end;
  if (ec) return;
  for (; it != end; it.increment(ec)) {
    if (ec) break;
    const std::filesystem::path& p = it->path();
    std::error_code rec;
    const std::filesystem::path rel = std::filesystem::relative(p, root, rec);
    if (!rec && skipped_component(rel)) {
      if (it->is_directory()) it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable(p)) {
      lint_one(p, root, allowlist, out);
    }
  }
}

}  // namespace

std::vector<Diagnostic> run(const Options& options) {
  std::vector<Diagnostic> out;
  std::vector<std::filesystem::path> targets;
  const bool explicit_paths = !options.paths.empty();
  if (explicit_paths) {
    for (const auto& p : options.paths) {
      std::filesystem::path path(p);
      if (path.is_relative()) path = options.root / path;
      targets.push_back(path);
    }
  } else {
    for (const auto& d : options.scan_dirs) targets.push_back(options.root / d);
  }
  for (const auto& t : targets) {
    if (std::filesystem::is_directory(t)) {
      lint_tree(t, options.root, options.allowlist, out);
    } else if (std::filesystem::exists(t)) {
      lint_one(t, options.root, options.allowlist, out);
    } else if (explicit_paths) {
      // A default scan dir that doesn't exist under root is just skipped;
      // a path the caller named must exist.
      out.push_back({t.generic_string(), 0, "io-error", "no such file or directory"});
    }
  }
  std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

std::string format(const Diagnostic& d) {
  std::ostringstream os;
  os << d.file << ":" << d.line << ": error: [" << d.rule << "] " << d.message;
  return os.str();
}

}  // namespace hsd::lint
