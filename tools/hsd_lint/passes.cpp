#include "passes.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace hsd::lint {

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Layering
// ---------------------------------------------------------------------------

namespace {

/// DFS cycle check over the declared manifest DAG. Returns a cycle as
/// "a -> b -> a", or "" when the graph is acyclic.
std::string manifest_cycle(const LayerManifest& manifest) {
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::string cycle;

  struct Dfs {
    const LayerManifest& m;
    std::map<std::string, int>& color;
    std::vector<std::string>& stack;
    std::string& cycle;
    void visit(const std::string& node) {
      if (!cycle.empty()) return;
      color[node] = 1;
      stack.push_back(node);
      const auto it = m.deps.find(node);
      if (it != m.deps.end()) {
        for (const auto& dep : it->second) {
          if (!m.declares(dep) || dep == node) continue;
          const int c = color.count(dep) ? color[dep] : 0;
          if (c == 1) {
            const auto at = std::find(stack.begin(), stack.end(), dep);
            cycle.clear();
            for (auto j = at; j != stack.end(); ++j) cycle += *j + " -> ";
            cycle += dep;
            return;
          }
          if (c == 0) visit(dep);
          if (!cycle.empty()) return;
        }
      }
      stack.pop_back();
      color[node] = 2;
    }
  } dfs{manifest, color, stack, cycle};

  for (const auto& [name, _] : manifest.deps) {
    if ((color.count(name) ? color[name] : 0) == 0) dfs.visit(name);
  }
  return cycle;
}

}  // namespace

void layering_pass(const ProjectModel& project, const LayerManifest& manifest,
                   const std::string& manifest_rel, std::vector<Diagnostic>& out) {
  // Manifest drift: a declared module whose directory no longer exists.
  for (const auto& [name, _] : manifest.deps) {
    std::error_code ec;
    if (!std::filesystem::is_directory(project.root / "src" / name, ec)) {
      out.push_back({manifest_rel, 0, "layer-manifest-drift",
                     "manifest declares module `" + name +
                         "` but src/" + name + "/ does not exist"});
    }
  }

  // The declared dependency graph must itself be a DAG.
  const std::string cycle = manifest_cycle(manifest);
  if (!cycle.empty()) {
    out.push_back({manifest_rel, 0, "layer-manifest-error",
                   "declared module DAG has a cycle: " + cycle});
  }

  // Every scanned src/ module must be declared.
  std::set<std::string> undeclared;
  for (const auto& f : project.files) {
    if (!f.module.empty() && !manifest.declares(f.module)) {
      undeclared.insert(f.module);
    }
  }
  for (const auto& m : undeclared) {
    out.push_back({manifest_rel, 0, "layer-unlisted-module",
                   "src/" + m + "/ exists but is not declared in the manifest; "
                   "add it (and its allowed dependencies) to [modules]"});
  }

  // Include edges between declared modules must follow the DAG.
  for (const auto& f : project.files) {
    if (f.module.empty() || !manifest.declares(f.module)) continue;
    for (const auto& inc : f.resolved) {
      const std::string to = module_of(inc.target);
      if (to.empty() || to == f.module || !manifest.declares(to)) continue;
      if (!manifest.allows(f.module, to)) {
        out.push_back({f.rel, inc.line, "layer-violation",
                       "module `" + f.module + "` may not include `" + to +
                           "` (" + inc.target +
                           "); allowed deps are declared in the layers manifest"});
      }
    }
  }

  // File-level include cycles among the scanned files.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<const FileModel*> stack;
  std::set<std::string> reported;

  struct Dfs {
    const ProjectModel& project;
    std::map<std::string, int>& color;
    std::vector<const FileModel*>& stack;
    std::set<std::string>& reported;
    std::vector<Diagnostic>& out;

    void visit(const FileModel& f) {
      color[f.rel] = 1;
      stack.push_back(&f);
      for (const auto& inc : f.resolved) {
        const FileModel* next = project.find(inc.target);
        if (next == nullptr || next->rel == f.rel) continue;
        const int c = color.count(next->rel) ? color[next->rel] : 0;
        if (c == 1) {
          // Back edge: the cycle is the stack suffix from `next` to `f`.
          auto at = std::find_if(stack.begin(), stack.end(),
                                 [&](const FileModel* p) { return p == next; });
          std::vector<std::string> nodes;
          for (auto j = at; j != stack.end(); ++j) nodes.push_back((*j)->rel);
          // Normalize: rotate so the lexicographically smallest file leads,
          // so each cycle is reported exactly once.
          const auto smallest = std::min_element(nodes.begin(), nodes.end());
          std::rotate(nodes.begin(), smallest, nodes.end());
          std::string key;
          for (const auto& nname : nodes) key += nname + " -> ";
          key += nodes.front();
          if (reported.insert(key).second) {
            out.push_back({nodes.front(), 0, "include-cycle",
                           "cyclic #include chain: " + key});
          }
          continue;
        }
        if (c == 0) visit(*next);
      }
      stack.pop_back();
      color[f.rel] = 2;
    }
  } dfs{project, color, stack, reported, out};

  for (const auto& f : project.files) {
    if ((color.count(f.rel) ? color[f.rel] : 0) == 0) dfs.visit(f);
  }
}

// ---------------------------------------------------------------------------
// Task-capture safety
// ---------------------------------------------------------------------------

namespace {

struct CaptureInfo {
  bool by_ref = false;       // [&] default or [&x] named
  bool captures_this = false;  // [this] (not [*this])
  int line = 0;              // line of the lambda-intro '['
};

/// Parses a lambda capture list starting at tokens[open] == "[". Returns
/// the index one past the matching "]", or open on parse failure.
std::size_t parse_captures(const std::vector<Token>& toks, std::size_t open,
                           CaptureInfo& info) {
  info.line = toks[open].line;
  std::size_t i = open + 1;
  int paren = 0, brace = 0;
  bool item_start = true;
  const Token* prev = nullptr;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "]" && paren == 0 && brace == 0) return i + 1;
      if (t.text == "(") ++paren;
      if (t.text == ")") --paren;
      if (t.text == "{") ++brace;
      if (t.text == "}") --brace;
      if (t.text == "," && paren == 0 && brace == 0) {
        item_start = true;
        prev = &t;
        ++i;
        continue;
      }
      if (t.text == "&" && item_start) info.by_ref = true;
    } else if (t.kind == TokKind::kIdent && t.text == "this") {
      const bool deref = prev != nullptr && prev->kind == TokKind::kPunct &&
                         prev->text == "*";
      if (!deref) info.captures_this = true;
    }
    if (!(t.kind == TokKind::kPunct && t.text == "&")) item_start = false;
    prev = &t;
    ++i;
  }
  return open;  // unterminated; treat as no lambda
}

/// True when `receiver.wait(` / `receiver->wait(` appears anywhere in the
/// file (the join path that makes by-reference captures structured).
/// With an unknown receiver, any member wait() call counts.
bool has_wait_path(const std::vector<Token>& toks, const std::string& receiver) {
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct ||
        (toks[i].text != "." && toks[i].text != "->")) {
      continue;
    }
    if (toks[i + 1].kind != TokKind::kIdent || toks[i + 1].text != "wait") continue;
    if (toks[i + 2].kind != TokKind::kPunct || toks[i + 2].text != "(") continue;
    if (receiver.empty()) return true;
    if (i > 0 && toks[i - 1].kind == TokKind::kIdent && toks[i - 1].text == receiver) {
      return true;
    }
  }
  return false;
}

}  // namespace

void capture_pass(const FileModel& file, std::vector<Diagnostic>& out) {
  // src/runtime implements the deferral machinery itself; its internal
  // submits (e.g. TaskGroup::run forwarding into the pool) are the audited
  // home of these idioms.
  if (starts_with(file.rel, "src/runtime/")) return;

  const auto& toks = file.lex.tokens;
  for (std::size_t i = 2; i + 1 < toks.size(); ++i) {
    const Token& name = toks[i];
    if (name.kind != TokKind::kIdent || (name.text != "run" && name.text != "submit")) {
      continue;
    }
    const Token& dot = toks[i - 1];
    if (dot.kind != TokKind::kPunct || (dot.text != "." && dot.text != "->")) continue;
    if (toks[i + 1].kind != TokKind::kPunct || toks[i + 1].text != "(") continue;
    if (i + 2 >= toks.size() || toks[i + 2].kind != TokKind::kPunct ||
        toks[i + 2].text != "[") {
      continue;  // first argument is not a lambda
    }
    std::string receiver;
    if (toks[i - 2].kind == TokKind::kIdent) receiver = toks[i - 2].text;

    CaptureInfo info;
    if (parse_captures(toks, i + 2, info) == i + 2) continue;
    if (!info.by_ref && !info.captures_this) continue;

    const bool fire_and_forget = name.text == "submit";
    const bool waited = !fire_and_forget && has_wait_path(toks, receiver);
    if (waited) continue;

    const std::string who = receiver.empty() ? "the receiver" : "`" + receiver + "`";
    if (info.by_ref) {
      out.push_back(
          {file.rel, info.line, "deferred-ref-capture",
           fire_and_forget
               ? "by-reference capture in a lambda passed to fire-and-forget "
                 "submit(); the task can outlive every captured local — "
                 "capture by value or restructure onto TaskGroup + wait()"
               : "by-reference capture in a lambda passed to deferred " +
                     name.text + "() with no " + who +
                     ".wait() join path in this file; captured locals can "
                     "dangle when the task outlives this scope"});
    }
    if (info.captures_this) {
      out.push_back(
          {file.rel, info.line, "detached-this-capture",
           "`this` captured into a deferred task with no join path in this "
           "file; if the object is destroyed before the task runs, the "
           "callback dereferences freed memory — join/wait before "
           "destruction or capture owning state by value"});
    }
  }
}

// ---------------------------------------------------------------------------
// Identifier registry
// ---------------------------------------------------------------------------

namespace {

/// Entire-literal HSD_* env-var name: HSD_ followed by at least one
/// uppercase/digit/underscore character, nothing else.
bool is_env_literal(const std::string& s) {
  if (s.size() < 5 || s.compare(0, 4, "HSD_") != 0) return false;
  for (std::size_t i = 4; i < s.size(); ++i) {
    const char c = s[i];
    if (!(c == '_' || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9'))) {
      return false;
    }
  }
  return true;
}

bool is_metric_callee(const std::string& name) {
  return name == "counter" || name == "gauge" || name == "histogram" ||
         name == "HSD_SPAN";  // macro callee, not an env var; hsd-lint: allow(unregistered-env)
}

/// Documented = every non-wildcard fragment of `value` appears in
/// `docs_text` in order.
bool documented(const std::string& docs_text, const std::string& value) {
  std::size_t from = 0;
  std::size_t start = 0;
  while (start <= value.size()) {
    std::size_t pct = value.find('%', start);
    if (pct == std::string::npos) pct = value.size();
    const std::string frag = value.substr(start, pct - start);
    if (!frag.empty()) {
      const std::size_t at = docs_text.find(frag, from);
      if (at == std::string::npos) return false;
      from = at + frag.size();
    }
    start = pct + 1;
  }
  return true;
}

}  // namespace

void registry_pass(const ProjectModel& project, const Registry& registry,
                   const std::string& registry_rel, const std::string& docs_text,
                   std::vector<Diagnostic>& out) {
  // Exactly-once: a value registered twice is a finding at the second site.
  std::map<std::string, int> first_line;
  for (const auto& e : registry.entries) {
    const auto [it, inserted] = first_line.emplace(e.value, e.line);
    if (!inserted) {
      out.push_back({registry_rel, e.line, "registry-duplicate",
                     "`" + e.value + "` is already registered at " + registry_rel +
                         ":" + std::to_string(it->second) +
                         "; every identifier must appear exactly once"});
    }
  }

  // Documented: each entry's non-wildcard fragments must appear, in order,
  // in the documentation set.
  for (const auto& e : registry.entries) {
    if (!documented(docs_text, e.value)) {
      out.push_back({registry_rel, e.line, "registry-undocumented",
                     "registered " + e.kind + " `" + e.value +
                         "` is not mentioned in DESIGN.md/README.md; document "
                         "what it does (and its unit/default) where users look"});
    }
  }

  for (const auto& f : project.files) {
    if (f.rel == registry_rel) continue;
    const auto& toks = f.lex.tokens;

    // HSD_* env-var string literals live only in the registry header.
    for (const auto& t : toks) {
      if (t.kind != TokKind::kString || !is_env_literal(t.text)) continue;
      out.push_back(
          {f.rel, t.line, "unregistered-env",
           registry.has_env(t.text)
               ? "`" + t.text + "` is registered; use the hsd::reg constant "
                 "from common/registry.hpp instead of repeating the literal"
               : "`" + t.text + "` is not a registered environment variable; "
                 "declare it in common/registry.hpp (hsd-reg: env) and use "
                 "the constant"});
    }

    // Metric/span names at obs call sites.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent || !is_metric_callee(toks[i].text)) continue;
      if (toks[i + 1].kind != TokKind::kPunct || toks[i + 1].text != "(") continue;
      // Skip declarations/definitions of the obs API itself:
      // `Counter& counter(std::string_view name)` has a type token right
      // before the callee; call sites have `::`, `.` `=`, `(`, `,`, `{`,
      // or a statement boundary instead.
      if (i > 0 && toks[i - 1].kind == TokKind::kIdent) continue;

      // First argument: tokens up to the matching ')' or a top-level ','.
      std::vector<const Token*> arg;
      int depth = 0;
      bool more_args = false;
      for (std::size_t j = i + 2; j < toks.size(); ++j) {
        const Token& t = toks[j];
        if (t.kind == TokKind::kPunct) {
          if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
          if (t.text == ")" || t.text == "]" || t.text == "}") {
            if (t.text == ")" && depth == 0) break;
            --depth;
          }
          if (t.text == "," && depth == 0) {
            more_args = true;
            break;
          }
        }
        arg.push_back(&t);
      }
      (void)more_args;
      if (arg.empty()) continue;

      bool all_strings = true;
      std::string literal;
      for (const Token* t : arg) {
        if (t->kind == TokKind::kString) {
          literal += t->text;
        } else {
          all_strings = false;
        }
      }
      if (all_strings) {
        if (!registry.matches_name(literal)) {
          out.push_back({f.rel, arg.front()->line, "unregistered-metric",
                         "metric/span name `" + literal +
                             "` is not declared in common/registry.hpp; "
                             "register it (hsd-reg: metric|span) and document it"});
        }
      } else {
        // Dynamically built name: every literal fragment must occur in
        // some registered pattern, so typos in the static pieces are
        // still caught.
        for (const Token* t : arg) {
          if (t->kind != TokKind::kString || t->text.empty()) continue;
          if (!registry.matches_fragment(t->text)) {
            out.push_back({f.rel, t->line, "unregistered-metric",
                           "name fragment `" + t->text +
                               "` does not occur in any registered metric/span "
                               "pattern in common/registry.hpp"});
          }
        }
      }
    }
  }
}

}  // namespace hsd::lint
