#pragma once
// Whole-project model for hsd_lint's cross-file passes: every scanned file
// lexed once, quote-includes resolved to repo-relative paths, and each
// src/ file mapped to its architectural module. The layering manifest
// (layers.toml) and the identifier registry (src/common/registry.hpp) are
// parsed into structured form here; the passes in passes.hpp consume them.

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace hsd::lint {

struct FileModel {
  std::string rel;     // path relative to the scan root, forward slashes
  std::string module;  // "core", "tensor/backend", ... ; "" outside src/
  LexedFile lex;
  /// Quote-includes resolved to paths relative to the root (only those
  /// that name a file that exists under the root), parallel to a subset
  /// of lex.includes.
  struct ResolvedInclude {
    std::string target;  // root-relative path of the included file
    int line = 0;
  };
  std::vector<ResolvedInclude> resolved;
};

struct ProjectModel {
  std::filesystem::path root;
  std::vector<FileModel> files;  // sorted by rel
  const FileModel* find(const std::string& rel) const;
};

/// Architectural module of a root-relative path: "src/tensor/backend/x.cpp"
/// -> "tensor/backend", "src/core/framework.cpp" -> "core", anything not
/// under src/ -> "".
std::string module_of(const std::string& rel);

/// Resolves `target` of a quote-include appearing in `includer_rel`
/// against the repo layout (src/ is the include root; same-directory
/// includes also resolve). Returns the root-relative path, or "" when the
/// target does not exist under root.
std::string resolve_include(const std::filesystem::path& root,
                            const std::string& includer_rel,
                            const std::string& target);

// ---------------------------------------------------------------------------
// Layering manifest (layers.toml)
// ---------------------------------------------------------------------------

/// Parsed `[modules]` table: module name -> allowed dependency modules.
/// Format, one module per line under a `[modules]` header:
///
///   [modules]
///   core = ["nn", "tensor", "stats"]
///   "tensor/backend" = ["obs"]
///
/// Self-dependencies are implicit. Blank lines and `#` comments ignored.
struct LayerManifest {
  std::map<std::string, std::vector<std::string>> deps;

  bool parse(const std::string& text, std::string* error);
  bool load(const std::filesystem::path& path, std::string* error);
  bool declares(const std::string& module) const { return deps.count(module) > 0; }
  bool allows(const std::string& from, const std::string& to) const;
};

// ---------------------------------------------------------------------------
// Identifier registry (src/common/registry.hpp)
// ---------------------------------------------------------------------------

/// One registered identifier. Parsed from registry lines of the form
///
///   inline constexpr const char kThreads[] = "HSD_THREADS";  // hsd-reg: env
///
/// kind is the word after `hsd-reg:` (env | metric | span). Metric and
/// span values may contain `%`, which matches any (possibly empty)
/// substring of a concrete name (shard indices, backend names, ...).
struct RegistryEntry {
  std::string constant;  // C++ constant identifier (kThreads)
  std::string value;     // registered name, possibly with % wildcards
  std::string kind;      // env | metric | span
  int line = 0;
};

struct Registry {
  std::vector<RegistryEntry> entries;

  /// Extracts entries from an already-lexed registry header.
  void parse(const LexedFile& lexed);

  /// True when `name` exactly matches a metric/span entry, expanding `%`
  /// wildcards.
  bool matches_name(const std::string& name) const;

  /// True when `fragment` (a literal piece of a dynamically-built name)
  /// occurs inside some metric/span entry's value.
  bool matches_fragment(const std::string& fragment) const;

  /// True when an env entry's value equals `name` exactly.
  bool has_env(const std::string& name) const;
};

/// Glob-style match where '%' in `pattern` matches any (possibly empty)
/// substring. Exposed for tests.
bool wildcard_match(const std::string& pattern, const std::string& name);

/// Loads the whole project: walks `targets` (files or directories under
/// `root`), lexes every C/C++ source file, resolves includes, and assigns
/// modules. Unreadable files are recorded in `io_errors` as root-relative
/// paths.
ProjectModel load_project(const std::filesystem::path& root,
                          const std::vector<std::filesystem::path>& targets,
                          std::vector<std::string>* io_errors);

}  // namespace hsd::lint
