#include "model.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace hsd::lint {

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool lexable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh" || ext == ".inl";
}

bool skipped_component(const std::filesystem::path& rel) {
  for (const auto& part : rel) {
    const std::string s = part.string();
    if (s == "lint_fixtures" || s == "build" || (s.size() > 1 && s[0] == '.')) {
      return true;
    }
  }
  return false;
}

}  // namespace

const FileModel* ProjectModel::find(const std::string& rel) const {
  const auto it = std::lower_bound(
      files.begin(), files.end(), rel,
      [](const FileModel& f, const std::string& r) { return f.rel < r; });
  if (it != files.end() && it->rel == rel) return &*it;
  return nullptr;
}

std::string module_of(const std::string& rel) {
  if (!starts_with(rel, "src/")) return "";
  const std::string rest = rel.substr(4);
  if (starts_with(rest, "tensor/backend/")) return "tensor/backend";
  const std::size_t slash = rest.find('/');
  if (slash == std::string::npos) return "";  // file directly under src/
  return rest.substr(0, slash);
}

std::string resolve_include(const std::filesystem::path& root,
                            const std::string& includer_rel,
                            const std::string& target) {
  std::vector<std::string> candidates;
  // src/ is the project's include root (`#include "core/framework.hpp"`).
  candidates.push_back("src/" + target);
  // Same-directory includes (`#include "lint.hpp"`, tests/ helpers).
  const std::size_t slash = includer_rel.rfind('/');
  if (slash != std::string::npos) {
    candidates.push_back(includer_rel.substr(0, slash + 1) + target);
  }
  // Root-relative (`#include "tests/backend_compare.hpp"`).
  candidates.push_back(target);
  for (const auto& cand : candidates) {
    std::error_code ec;
    const std::filesystem::path p = root / cand;
    if (std::filesystem::is_regular_file(p, ec)) {
      // Normalize away any "./" produced by same-dir resolution.
      return std::filesystem::path(cand).lexically_normal().generic_string();
    }
  }
  return "";
}

// ---------------------------------------------------------------------------
// LayerManifest
// ---------------------------------------------------------------------------

bool LayerManifest::parse(const std::string& text, std::string* error) {
  std::istringstream is(text);
  std::string raw;
  int lineno = 0;
  bool in_modules = false;
  auto fail = [&](const std::string& why) {
    if (error) *error = "layers manifest line " + std::to_string(lineno) + ": " + why;
    return false;
  };
  while (std::getline(is, raw)) {
    ++lineno;
    const std::size_t hash = raw.find('#');
    std::string line = trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') return fail("unterminated section header");
      in_modules = line == "[modules]";
      continue;
    }
    if (!in_modules) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return fail("expected `module = [deps...]`");
    std::string name = trim(line.substr(0, eq));
    if (name.size() >= 2 && name.front() == '"' && name.back() == '"') {
      name = name.substr(1, name.size() - 2);
    }
    if (name.empty()) return fail("empty module name");
    std::string rhs = trim(line.substr(eq + 1));
    if (rhs.size() < 2 || rhs.front() != '[' || rhs.back() != ']') {
      return fail("expected a [\"dep\", ...] list for module " + name);
    }
    rhs = rhs.substr(1, rhs.size() - 2);
    std::vector<std::string> list;
    std::string item;
    std::istringstream items(rhs);
    while (std::getline(items, item, ',')) {
      item = trim(item);
      if (item.empty()) continue;
      if (item.size() < 2 || item.front() != '"' || item.back() != '"') {
        return fail("dependency `" + item + "` must be quoted");
      }
      list.push_back(item.substr(1, item.size() - 2));
    }
    if (deps.count(name) > 0) return fail("module " + name + " declared twice");
    deps[name] = std::move(list);
  }
  return true;
}

bool LayerManifest::load(const std::filesystem::path& path, std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error) *error = "cannot open layers manifest: " + path.string();
    return false;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse(buf.str(), error);
}

bool LayerManifest::allows(const std::string& from, const std::string& to) const {
  if (from == to) return true;
  const auto it = deps.find(from);
  if (it == deps.end()) return false;
  return std::find(it->second.begin(), it->second.end(), to) != it->second.end();
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

void Registry::parse(const LexedFile& lexed) {
  // Pattern per entry: Ident(constant) '[' ']' '=' String ';' where the
  // line's comment carries `hsd-reg: <kind>`.
  const auto& toks = lexed.tokens;
  for (std::size_t i = 0; i + 5 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    if (toks[i + 1].kind != TokKind::kPunct || toks[i + 1].text != "[") continue;
    if (toks[i + 2].kind != TokKind::kPunct || toks[i + 2].text != "]") continue;
    if (toks[i + 3].kind != TokKind::kPunct || toks[i + 3].text != "=") continue;
    if (toks[i + 4].kind != TokKind::kString) continue;
    if (toks[i + 5].kind != TokKind::kPunct || toks[i + 5].text != ";") continue;
    const int line = toks[i + 4].line;
    if (line <= 0 || static_cast<std::size_t>(line) > lexed.lines.size()) continue;
    const std::string& comment = lexed.lines[static_cast<std::size_t>(line) - 1].comment;
    const std::size_t tag = comment.find("hsd-reg:");
    if (tag == std::string::npos) continue;
    std::istringstream rest(comment.substr(tag + 8));
    std::string kind;
    rest >> kind;
    if (kind != "env" && kind != "metric" && kind != "span") continue;
    entries.push_back({toks[i].text, toks[i + 4].text, kind, line});
  }
}

bool wildcard_match(const std::string& pattern, const std::string& name) {
  // Iterative glob with '%' as the only wildcard (matches any substring).
  std::size_t p = 0, s = 0, star = std::string::npos, mark = 0;
  while (s < name.size()) {
    if (p < pattern.size() && (pattern[p] == name[s])) {
      ++p;
      ++s;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star = p++;
      mark = s;
    } else if (star != std::string::npos) {
      p = star + 1;
      s = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

bool Registry::matches_name(const std::string& name) const {
  for (const auto& e : entries) {
    if (e.kind == "env") continue;
    if (wildcard_match(e.value, name)) return true;
  }
  return false;
}

bool Registry::matches_fragment(const std::string& fragment) const {
  if (fragment.empty()) return true;
  for (const auto& e : entries) {
    if (e.kind == "env") continue;
    if (e.value.find(fragment) != std::string::npos) return true;
  }
  return false;
}

bool Registry::has_env(const std::string& name) const {
  for (const auto& e : entries) {
    if (e.kind == "env" && e.value == name) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// load_project
// ---------------------------------------------------------------------------

namespace {

void load_one(const std::filesystem::path& file, const std::filesystem::path& root,
              ProjectModel& model, std::vector<std::string>* io_errors) {
  std::error_code ec;
  std::filesystem::path rel = std::filesystem::relative(file, root, ec);
  if (ec || rel.empty()) rel = file;
  const std::string rel_str = rel.generic_string();

  std::ifstream is(file, std::ios::binary);
  if (!is) {
    if (io_errors) io_errors->push_back(rel_str);
    return;
  }
  std::ostringstream buf;
  buf << is.rdbuf();

  FileModel fm;
  fm.rel = rel_str;
  fm.module = module_of(rel_str);
  fm.lex = lex(buf.str());
  for (const auto& inc : fm.lex.includes) {
    if (inc.angled) continue;  // system headers are outside the model
    const std::string resolved = resolve_include(root, rel_str, inc.target);
    if (!resolved.empty()) fm.resolved.push_back({resolved, inc.line});
  }
  model.files.push_back(std::move(fm));
}

}  // namespace

ProjectModel load_project(const std::filesystem::path& root,
                          const std::vector<std::filesystem::path>& targets,
                          std::vector<std::string>* io_errors) {
  ProjectModel model;
  model.root = root;
  std::set<std::string> seen;
  for (const auto& t : targets) {
    std::error_code ec;
    if (std::filesystem::is_directory(t, ec)) {
      std::filesystem::recursive_directory_iterator it(t, ec), end;
      if (ec) continue;
      for (; it != end; it.increment(ec)) {
        if (ec) break;
        const std::filesystem::path& p = it->path();
        std::error_code rec;
        const std::filesystem::path rel = std::filesystem::relative(p, root, rec);
        if (!rec && skipped_component(rel)) {
          if (it->is_directory()) it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && lexable(p) &&
            seen.insert(p.lexically_normal().generic_string()).second) {
          load_one(p, root, model, io_errors);
        }
      }
    } else if (std::filesystem::exists(t, ec)) {
      if (seen.insert(t.lexically_normal().generic_string()).second) {
        load_one(t, root, model, io_errors);
      }
    }
  }
  std::sort(model.files.begin(), model.files.end(),
            [](const FileModel& a, const FileModel& b) { return a.rel < b.rel; });
  return model;
}

}  // namespace hsd::lint
