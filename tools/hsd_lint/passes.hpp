#pragma once
// Whole-project analysis passes on top of the ProjectModel:
//
//   layering_pass  — every #include edge between src/ modules must be
//                    allowed by the layers.toml DAG; cyclic include chains
//                    and manifest drift (declared module with no
//                    directory, module with no declaration) are findings.
//   capture_pass   — lambdas handed to deferred task APIs (TaskGroup::run,
//                    ThreadPool::submit and other fire-and-forget
//                    `.submit(...)` enqueues) must not capture function
//                    locals by reference unless a join path (`.wait()` on
//                    the same receiver) exists in the file; `this` must
//                    not ride into detached work without a join path.
//   registry_pass  — every HSD_* env-var literal and every obs
//                    metric/span name must trace back to exactly one entry
//                    in src/common/registry.hpp, and every registry entry
//                    must be documented in DESIGN.md/README.md.
//
// Each pass appends Diagnostics; scoping, suppression, allowlisting and
// baselining are applied by the orchestrator in lint.cpp.

#include <string>
#include <vector>

#include "lint.hpp"
#include "model.hpp"

namespace hsd::lint {

void layering_pass(const ProjectModel& project, const LayerManifest& manifest,
                   const std::string& manifest_rel, std::vector<Diagnostic>& out);

void capture_pass(const FileModel& file, std::vector<Diagnostic>& out);

/// `docs_text` is the concatenated text of the documentation files the
/// registry entries must be mentioned in; `registry_rel` is the
/// root-relative path of the registry header (its own literals are the
/// canonical definitions, not violations).
void registry_pass(const ProjectModel& project, const Registry& registry,
                   const std::string& registry_rel, const std::string& docs_text,
                   std::vector<Diagnostic>& out);

}  // namespace hsd::lint
