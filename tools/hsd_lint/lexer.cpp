#include "lexer.hpp"

#include <cctype>

namespace hsd::lint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Two-character punctuators the passes care about keeping whole. Anything
/// else is emitted one character at a time, which is all the downstream
/// pattern matching needs.
bool two_char_punct(char a, char b) {
  switch (a) {
    case '-': return b == '>' || b == '-' || b == '=';
    case ':': return b == ':';
    case '&': return b == '&' || b == '=';
    case '|': return b == '|' || b == '=';
    case '=': return b == '=';
    case '!': return b == '=';
    case '<': return b == '=' || b == '<';
    case '>': return b == '=' || b == '>';
    case '+': return b == '+' || b == '=';
    case '*': return b == '=';
    case '/': return b == '=';
    default: return false;
  }
}

struct Lexer {
  const std::string& text;
  LexedFile out;

  int line = 1;
  bool in_directive = false;
  std::string directive_text;  // directive body incl. literal contents
  int directive_line = 0;

  // Current in-progress identifier/number token.
  std::string buf;
  TokKind buf_kind = TokKind::kIdent;

  // True when the previous code character emitted a punct token with no
  // intervening whitespace/ident/literal, so `-` + `>` glue into `->`.
  bool glue = false;

  explicit Lexer(const std::string& t) : text(t) { out.lines.emplace_back(); }

  SourceLine& cur() { return out.lines.back(); }

  void flush() {
    if (!buf.empty()) {
      out.tokens.push_back({buf_kind, buf, line});
      buf.clear();
    }
  }

  void emit_punct(char c) {
    flush();
    if (glue && !out.tokens.empty()) {
      Token& last = out.tokens.back();
      if (last.kind == TokKind::kPunct && last.text.size() == 1 &&
          last.line == line && two_char_punct(last.text[0], c)) {
        last.text += c;
        glue = false;  // no three-character merges (`>>>` is `>>` `>`)
        return;
      }
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    glue = true;
  }

  void emit_literal(TokKind kind, std::string contents, int start_line) {
    flush();
    glue = false;
    out.tokens.push_back({kind, std::move(contents), start_line});
  }

  void code_char(char c) {
    cur().code += c;
    if (in_directive) {
      directive_text += c;
      return;  // directive bodies produce no code tokens
    }
    if (ident_char(c)) {
      if (buf.empty()) {
        buf_kind = std::isdigit(static_cast<unsigned char>(c)) != 0
                       ? TokKind::kNumber
                       : TokKind::kIdent;
      }
      buf += c;
      glue = false;
      return;
    }
    if (c == '.' && buf_kind == TokKind::kNumber && !buf.empty()) {
      buf += c;  // 1.5, 1e-3 handled loosely as one number token
      return;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      flush();
      glue = false;
      return;
    }
    emit_punct(c);
  }

  void end_directive() {
    if (!in_directive) return;
    in_directive = false;
    // Parse `# include <...>` / `# include "..."` out of the body.
    std::size_t i = 0;
    while (i < directive_text.size() &&
           (directive_text[i] == '#' || directive_text[i] == ' ' ||
            directive_text[i] == '\t')) {
      ++i;
    }
    if (directive_text.compare(i, 7, "include") == 0) {
      i += 7;
      while (i < directive_text.size() &&
             (directive_text[i] == ' ' || directive_text[i] == '\t')) {
        ++i;
      }
      if (i < directive_text.size()) {
        const char open = directive_text[i];
        const char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
        if (close != '\0') {
          const std::size_t end = directive_text.find(close, i + 1);
          if (end != std::string::npos) {
            out.includes.push_back(
                {directive_text.substr(i + 1, end - i - 1), open == '<',
                 directive_line});
          }
        }
      }
    }
    directive_text.clear();
  }

  void newline() {
    flush();
    end_directive();
    glue = false;
    out.lines.emplace_back();
    ++line;
  }
};

}  // namespace

LexedFile lex(const std::string& text) {
  Lexer lx(text);
  enum class State { kCode, kString, kChar, kLineComment, kBlockComment, kRawString };
  State state = State::kCode;
  std::string raw_terminator;  // for kRawString: )delim"
  std::string literal;         // contents of the literal being scanned
  int literal_line = 1;
  const std::size_t n = text.size();

  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      if (state == State::kCode && lx.in_directive && i > 0 && text[i - 1] == '\\') {
        // Line continuation inside a directive: the logical line goes on.
        lx.out.lines.emplace_back();
        ++lx.line;
        continue;
      }
      if (state == State::kRawString || state == State::kString ||
          state == State::kChar) {
        // Literal spanning a newline (raw strings legitimately; plain
        // literals only when malformed): keep scanning, advance the line.
        if (state == State::kRawString) literal += c;
        lx.out.lines.emplace_back();
        ++lx.line;
        continue;
      }
      lx.newline();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          lx.flush();
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          lx.flush();
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
                   (lx.cur().code.empty() ||
                    !ident_char(lx.cur().code.back()))) {
          // R"delim( ... )delim"
          std::size_t j = i + 2;
          std::string delim;
          while (j < n && text[j] != '(' && text[j] != '\n') delim += text[j++];
          raw_terminator = ")" + delim + "\"";
          literal.clear();
          literal_line = lx.line;
          state = State::kRawString;
          lx.cur().code += "\"\"";
          if (lx.in_directive) lx.directive_text += "\"\"";
          i = j;  // at '(' (or newline, handled next iteration)
        } else if (c == '"') {
          literal.clear();
          literal_line = lx.line;
          state = State::kString;
          lx.cur().code += "\"\"";
          if (lx.in_directive) lx.directive_text += '"';
        } else if (c == '\'' && !lx.buf.empty() && i + 1 < n &&
                   ident_char(text[i + 1]) &&
                   lx.buf_kind == TokKind::kNumber) {
          // Digit separator: 1'000'000 stays one number token.
          lx.cur().code += c;
          lx.buf += c;
        } else if (c == '\'') {
          literal.clear();
          literal_line = lx.line;
          state = State::kChar;
          lx.cur().code += "''";
        } else if (c == '#' && !lx.in_directive) {
          // A '#' whose line prefix is all whitespace opens a directive.
          const std::string& sofar = lx.cur().code;
          const bool only_ws =
              sofar.find_first_not_of(" \t") == std::string::npos;
          if (only_ws) {
            lx.flush();
            lx.in_directive = true;
            lx.directive_line = lx.line;
            lx.directive_text.clear();
            lx.directive_text.push_back('#');
            lx.cur().code += c;
          } else {
            lx.code_char(c);
          }
        } else {
          lx.code_char(c);
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < n) {
          literal += c;
          literal += text[i + 1];
          if (lx.in_directive) {
            lx.directive_text += c;
            lx.directive_text += text[i + 1];
          }
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          if (lx.in_directive) {
            lx.directive_text += '"';
          } else {
            lx.emit_literal(TokKind::kString, literal, literal_line);
          }
        } else {
          literal += c;
          if (lx.in_directive) lx.directive_text += c;
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < n) {
          literal += c;
          literal += text[i + 1];
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          if (!lx.in_directive) {
            lx.emit_literal(TokKind::kChar, literal, literal_line);
          }
        } else {
          literal += c;
        }
        break;
      case State::kRawString:
        if (c == raw_terminator[0] &&
            text.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          i += raw_terminator.size() - 1;
          state = State::kCode;
          if (!lx.in_directive) {
            lx.emit_literal(TokKind::kString, literal, literal_line);
          }
        } else {
          literal += c;
        }
        break;
      case State::kLineComment:
        lx.cur().comment += c;
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          state = State::kCode;
          ++i;
        } else {
          lx.cur().comment += c;
        }
        break;
    }
  }
  lx.flush();
  lx.end_directive();
  return lx.out;
}

}  // namespace hsd::lint
