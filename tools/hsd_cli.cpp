// hsd_cli — command-line front end for the library.
//
//   hsd_cli build <benchmark> --out FILE [--scale S] [--seed N]
//       Build a benchmark population and save it as an HSDL bundle.
//   hsd_cli info <file>
//       Print the statistics of a saved benchmark.
//   hsd_cli run <benchmark|file> [--strategy NAME] [--iterations N]
//               [--batch K] [--query N] [--seed N] [--csv]
//               [--checkpoint-dir DIR] [--resume]
//       Run the PSHD active-learning flow and report Eq. 1 / Eq. 2 metrics.
//       Strategies: ours ts qp random coreset badge pred-entropy
//       With --checkpoint-dir every round is durably checkpointed; --resume
//       continues an interrupted run from the latest checkpoint.
//   hsd_cli pm <benchmark|file> [--mode exact|a95|a90|e2]
//       Run a pattern-matching baseline.
//   hsd_cli serve <benchmark|file> [--requests N] [--expired N]
//               [--max-batch K] [--max-delay-us U] [--max-queue Q]
//               [--cache N] [--shards S] [--train-epochs E]
//               [--checkpoint-dir DIR] [--transport inproc|uds|tcp]
//               [--endpoints EP1,EP2,...] [--drain-remote]
//       Stand up the dynamic-batching inference service, replay the
//       benchmark's clips through it, and print a JSON summary (status
//       counts, cache hits, throughput, latency percentiles). --shards S
//       serves through a content-routed fleet of S shards instead of one
//       standalone service (adds shed counts and per-shard ok counts).
//       --transport uds|tcp serves the same fleet over sockets: either
//       against in-process shard servers it spins up itself, or against
//       external `hsd_cli shard-server` processes named by --endpoints
//       (--drain-remote forwards the fleet drain to them as `shutdown`
//       RPCs). Answers are bit-identical across transports.
//       With --checkpoint-dir the model and temperature come from the
//       latest AL checkpoint; otherwise a model is quick-trained on the
//       benchmark.
//   hsd_cli shard-server <benchmark|file> --listen ENDPOINT
//               [--shard-index I] [--max-inflight M] [serve model/queue
//               options]
//       Host one inference shard of the multi-process fleet behind
//       "uds:/path.sock" or "tcp:host:port" (tcp port 0 = kernel-picked,
//       printed on stderr). Runs until a `shutdown` RPC or SIGTERM, then
//       drains gracefully: everything admitted is answered before exit.
//       Started from the same benchmark/seed/train options as its
//       siblings, every shard server trains a bit-identical model replica,
//       which is what makes the remote fleet's answers equal the
//       in-process fleet's.
//
//   <benchmark> is one of: iccad12 iccad16-1 iccad16-2 iccad16-3 iccad16-4;
//   anything else is treated as a saved-bundle path.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/calibration.hpp"
#include "core/framework.hpp"
#include "core/metrics.hpp"
#include "data/features.hpp"
#include "data/io.hpp"
#include "net/client.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pm/pattern_matching.hpp"
#include "serve/fleet.hpp"
#include "serve/remote.hpp"
#include "serve/service.hpp"

namespace {

using namespace hsd;

struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> options;

  std::optional<std::string> get(const std::string& key) const {
    for (const auto& [k, v] : options) {
      if (k == key) return v;
    }
    return std::nullopt;
  }
  bool has(const std::string& key) const { return get(key).has_value(); }
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      const std::string key = a.substr(2);
      std::string value = "1";
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        value = argv[++i];
      }
      args.options.emplace_back(key, value);
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

int usage() {
  std::fprintf(stderr,
               "usage: hsd_cli <build|info|run|pm|serve|shard-server> <benchmark|file> [options]\n"
               "  build --out FILE [--scale S] [--seed N]\n"
               "  run   [--strategy ours|ts|qp|random|coreset|badge|pred-entropy]\n"
               "        [--iterations N] [--batch K] [--query N] [--seed N] [--csv]\n"
               "        [--rounds FILE]   per-round telemetry JSONL\n"
               "        [--checkpoint-dir DIR]  write round-<i>.ckpt after each round\n"
               "        [--resume]              continue from the latest checkpoint\n"
               "  pm    [--mode exact|a95|a90|e2]\n"
               "  serve [--requests N] [--expired N] [--max-batch K]\n"
               "        [--max-delay-us U] [--max-queue Q] [--cache N]\n"
               "        [--shards S] [--train-epochs E] [--seed N]\n"
               "        [--checkpoint-dir DIR]\n"
               "        [--transport inproc|uds|tcp]  serve the fleet over sockets\n"
               "        [--endpoints EP1,EP2,...]     use external shard servers\n"
               "        [--drain-remote]              forward drain as shutdown RPCs\n"
               "  shard-server --listen uds:/path.sock|tcp:host:port\n"
               "        [--shard-index I] [--max-inflight M] [serve model/queue opts]\n"
               "observability (any command; also via HSD_TRACE/HSD_METRICS env):\n"
               "  --trace FILE    Chrome trace_event JSON (chrome://tracing, Perfetto)\n"
               "  --metrics FILE  metrics registry snapshot JSON\n");
  return 2;
}

/// Enables span/metric collection from --trace/--metrics before any work
/// runs; the files are written at process exit.
void apply_obs_flags(const Args& args) {
  if (const auto path = args.get("trace")) obs::enable_trace(*path);
  if (const auto path = args.get("metrics")) obs::enable_metrics(*path);
}

std::optional<data::BenchmarkSpec> named_spec(const std::string& name, double scale,
                                              std::optional<std::uint64_t> seed) {
  data::BenchmarkSpec spec;
  if (name == "iccad12") {
    spec = data::iccad12_spec(scale);
  } else if (name == "iccad16-1") {
    spec = data::iccad16_spec(1);
  } else if (name == "iccad16-2") {
    spec = data::iccad16_spec(2);
  } else if (name == "iccad16-3") {
    spec = data::iccad16_spec(3);
  } else if (name == "iccad16-4") {
    spec = data::iccad16_spec(4);
  } else {
    return std::nullopt;
  }
  if (seed) spec.seed = *seed;
  return spec;
}

data::Benchmark resolve_benchmark(const std::string& target, const Args& args) {
  const double scale = args.get("scale") ? std::stod(*args.get("scale")) : 0.05;
  std::optional<std::uint64_t> seed;
  if (args.get("seed")) seed = std::stoull(*args.get("seed"));
  if (const auto spec = named_spec(target, scale, seed)) {
    std::fprintf(stderr, "building %s (%zu HS / %zu NHS)...\n", spec->name.c_str(),
                 spec->hs_target, spec->nhs_target);
    return data::build_benchmark(*spec);
  }
  std::fprintf(stderr, "loading %s...\n", target.c_str());
  return data::load_benchmark_file(target);
}

int cmd_build(const Args& args) {
  if (args.positional.size() < 2 || !args.has("out")) return usage();
  const data::Benchmark bench = resolve_benchmark(args.positional[1], args);
  data::save_benchmark_file(*args.get("out"), bench);
  std::printf("saved %zu clips (%zu hotspots) to %s\n", bench.size(),
              bench.num_hotspots, args.get("out")->c_str());
  return 0;
}

int cmd_info(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const data::Benchmark bench = data::load_benchmark_file(args.positional[1]);
  std::printf("name:        %s\n", bench.spec.name.c_str());
  std::printf("clips:       %zu (%zu hotspots, %.2f%%)\n", bench.size(),
              bench.num_hotspots,
              100.0 * static_cast<double>(bench.num_hotspots) /
                  static_cast<double>(std::max<std::size_t>(bench.size(), 1)));
  std::printf("tech node:   %d nm\n", bench.spec.tech_nm);
  std::printf("clip side:   %d nm (step %d nm)\n", bench.spec.gen.clip_side,
              bench.spec.gen.step);
  std::printf("litho grid:  %zu px, sigma %.2f px, threshold %.2f\n", bench.spec.grid,
              bench.spec.optics.sigma_px, bench.spec.optics.resist_threshold);
  std::printf("chip layout: %zu x %zu clips\n", bench.chip_cols, bench.chip_rows);
  return 0;
}

std::optional<core::SamplerKind> parse_strategy(const std::string& name) {
  using core::SamplerKind;
  if (name == "ours") return SamplerKind::kEntropy;
  if (name == "ts") return SamplerKind::kTsOnly;
  if (name == "qp") return SamplerKind::kQp;
  if (name == "random") return SamplerKind::kRandom;
  if (name == "coreset") return SamplerKind::kCoreset;
  if (name == "badge") return SamplerKind::kBadge;
  if (name == "pred-entropy") return SamplerKind::kPredictiveEntropy;
  return std::nullopt;
}

int cmd_run(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const data::Benchmark bench = resolve_benchmark(args.positional[1], args);

  const data::FeatureExtractor fx(bench.spec.feature_grid, bench.spec.feature_keep);
  const tensor::Tensor features = fx.extract_benchmark(bench);

  core::FrameworkConfig cfg;
  const std::string strategy = args.get("strategy").value_or("ours");
  const auto kind = parse_strategy(strategy);
  if (!kind) {
    std::fprintf(stderr, "unknown strategy '%s'\n", strategy.c_str());
    return 2;
  }
  cfg.sampler.kind = *kind;
  const std::size_t n = bench.size();
  cfg.initial_train = std::clamp<std::size_t>(n / 40, 24, 160);
  cfg.validation = cfg.initial_train;
  cfg.query_size = std::clamp<std::size_t>(n / 6, 120, 1200);
  cfg.batch_k = std::clamp<std::size_t>(n / 80, 16, 96);
  cfg.iterations = 14;
  if (args.get("iterations")) cfg.iterations = std::stoul(*args.get("iterations"));
  if (args.get("batch")) cfg.batch_k = std::stoul(*args.get("batch"));
  if (args.get("query")) cfg.query_size = std::stoul(*args.get("query"));
  if (args.get("seed")) cfg.seed = std::stoull(*args.get("seed"));
  if (args.get("rounds")) cfg.round_log_path = *args.get("rounds");
  if (args.get("checkpoint-dir")) cfg.checkpoint_dir = *args.get("checkpoint-dir");
  if (args.has("resume")) {
    if (cfg.checkpoint_dir.empty()) {
      std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
      return 2;
    }
    cfg.resume = true;
  }

  litho::LithoOracle oracle = bench.make_oracle();
  const core::AlOutcome out =
      core::run_active_learning(cfg, features, bench.clips, oracle);
  const core::PshdMetrics m = core::evaluate_outcome(out, bench.labels);

  if (const auto log_path = args.get("log-csv")) {
    std::ofstream log(*log_path);
    if (!log) {
      std::fprintf(stderr, "cannot open %s\n", log_path->c_str());
      return 1;
    }
    core::write_iteration_csv(log, out);
    std::fprintf(stderr, "iteration log written to %s\n", log_path->c_str());
  }

  if (args.has("csv")) {
    std::printf("benchmark,strategy,accuracy,litho,hits,false_alarms,hs_train,"
                "temperature,pshd_seconds\n");
    std::printf("%s,%s,%.4f,%zu,%zu,%zu,%zu,%.4f,%.2f\n", bench.spec.name.c_str(),
                strategy.c_str(), m.accuracy, m.litho, m.hits, m.false_alarms,
                m.hs_train, out.final_temperature, m.pshd_seconds);
  } else {
    std::printf("%s / %s: Acc %.2f%%  Litho# %zu  (hits %zu, FA %zu, HS in train"
                " %zu, T=%.3f, %.2fs)\n",
                bench.spec.name.c_str(), strategy.c_str(), m.accuracy * 100.0, m.litho,
                m.hits, m.false_alarms, m.hs_train, out.final_temperature,
                m.pshd_seconds);
  }
  return 0;
}

int cmd_pm(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const data::Benchmark bench = resolve_benchmark(args.positional[1], args);
  const std::string mode = args.get("mode").value_or("exact");

  pm::PmConfig cfg;
  std::vector<std::vector<double>> rows;
  if (mode == "exact") {
    cfg.mode = pm::MatchMode::kExact;
  } else if (mode == "a95" || mode == "a90") {
    cfg.mode = pm::MatchMode::kSimilarity;
    cfg.sim_threshold = mode == "a95" ? 0.95 : 0.90;
    const data::FeatureExtractor fx(bench.spec.feature_grid, bench.spec.feature_keep);
    rows = data::to_double_rows(fx.extract_benchmark(bench));
  } else if (mode == "e2") {
    cfg.mode = pm::MatchMode::kEdgeTolerance;
    cfg.edge_tol = 2 * bench.spec.gen.step;
  } else {
    std::fprintf(stderr, "unknown pm mode '%s'\n", mode.c_str());
    return 2;
  }

  litho::LithoOracle oracle = bench.make_oracle();
  const pm::PmResult res = pm::run_pattern_matching(bench.clips, rows, oracle, cfg);
  const core::PshdMetrics m = core::evaluate_pm(res, bench.labels);
  std::printf("%s / pm-%s: Acc %.2f%%  Litho# %zu  (clusters %zu, FA %zu)\n",
              bench.spec.name.c_str(), mode.c_str(), m.accuracy * 100.0, m.litho,
              res.representatives.size(), m.false_alarms);
  return 0;
}

/// Nearest-rank percentile of an ascending vector (exact, not bucketed —
/// the CLI has every individual latency in hand).
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Model + calibration shared by `serve` and `shard-server`: either
/// restored from the latest AL checkpoint or quick-trained on the
/// benchmark's own labels. Deterministic given the same benchmark, seed,
/// and epochs — two shard-server processes started with identical flags
/// train bit-identical replicas, the precondition for remote fleet answers
/// matching in-process ones.
struct PreparedModel {
  core::HotspotDetector detector;
  core::DetectorConfig dcfg;  ///< config the final model carries
  double temperature = 1.0;
  std::uint64_t seed = 7;
};

std::optional<PreparedModel> prepare_model(const data::Benchmark& bench,
                                           const Args& args) {
  core::DetectorConfig dcfg;
  dcfg.input_side = bench.spec.feature_keep;
  const std::uint64_t seed = args.get("seed") ? std::stoull(*args.get("seed")) : 7;
  core::HotspotDetector detector(dcfg, stats::Rng(seed));
  double temperature = 1.0;

  if (const auto dir = args.get("checkpoint-dir")) {
    const auto latest = ckpt::find_latest(*dir);
    if (!latest) {
      std::fprintf(stderr, "no checkpoint found in %s\n", dir->c_str());
      return std::nullopt;
    }
    std::fprintf(stderr, "restoring model from %s...\n", latest->c_str());
    const ckpt::RunState st = ckpt::load_file(*latest);
    std::istringstream blob(st.detector_state);
    detector.load_state(blob);
    temperature = st.last_temperature;
  } else {
    // No checkpoint: quick-train a model on the benchmark's own labels so
    // the service has something meaningful to serve, then fit T (Eq. 5).
    const std::size_t epochs =
        args.get("train-epochs") ? std::stoul(*args.get("train-epochs")) : 4;
    std::fprintf(stderr, "quick-training (%zu epochs)...\n", epochs);
    const data::FeatureExtractor fx(bench.spec.feature_grid, bench.spec.feature_keep);
    const tensor::Tensor features = fx.extract_benchmark(bench);
    dcfg.initial_epochs = epochs;
    detector = core::HotspotDetector(dcfg, stats::Rng(seed));
    detector.train_initial(features, bench.labels);
    const core::CalibrationResult cal =
        core::fit_temperature(detector.logits(features), bench.labels);
    temperature = cal.temperature;
  }
  return PreparedModel{std::move(detector), dcfg, temperature, seed};
}

/// Queue/batch knobs shared by `serve` and `shard-server`.
serve::ServiceConfig service_config_from_args(const data::Benchmark& bench,
                                              const Args& args) {
  serve::ServiceConfig scfg;
  scfg.feature_grid = bench.spec.feature_grid;
  scfg.feature_keep = bench.spec.feature_keep;
  if (args.get("max-batch")) scfg.max_batch = std::stoul(*args.get("max-batch"));
  if (args.get("max-delay-us")) scfg.max_delay_us = std::stoull(*args.get("max-delay-us"));
  if (args.get("max-queue")) scfg.max_queue = std::stoul(*args.get("max-queue"));
  if (args.get("cache")) scfg.cache_capacity = std::stoul(*args.get("cache"));
  return scfg;
}

int cmd_serve(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const data::Benchmark bench = resolve_benchmark(args.positional[1], args);

  serve::ServiceConfig scfg = service_config_from_args(bench, args);
  auto model = prepare_model(bench, args);
  if (!model) return 1;
  scfg.temperature = model->temperature;
  const std::uint64_t seed = model->seed;
  const core::DetectorConfig dcfg_used = model->dcfg;
  core::HotspotDetector detector = std::move(model->detector);

  const std::size_t requests =
      args.get("requests") ? std::stoul(*args.get("requests")) : bench.size();
  const std::size_t expired =
      args.get("expired") ? std::stoul(*args.get("expired")) : 0;
  std::size_t shards =
      args.get("shards") ? std::stoul(*args.get("shards")) : 0;

  const std::string transport = args.get("transport").value_or("inproc");
  if (transport != "inproc" && transport != "uds" && transport != "tcp") {
    std::fprintf(stderr, "unknown transport '%s'\n", transport.c_str());
    return 2;
  }
  std::vector<net::Endpoint> endpoints;
  if (const auto eps = args.get("endpoints")) {
    if (transport == "inproc") {
      std::fprintf(stderr, "--endpoints requires --transport uds|tcp\n");
      return 2;
    }
    std::size_t pos = 0;
    while (pos <= eps->size()) {
      std::size_t comma = eps->find(',', pos);
      if (comma == std::string::npos) comma = eps->size();
      const std::string one = eps->substr(pos, comma - pos);
      if (!one.empty()) endpoints.push_back(net::parse_endpoint(one));
      pos = comma + 1;
    }
    if (endpoints.empty()) return usage();
    shards = endpoints.size();
  }
  if (transport != "inproc" && shards == 0) shards = 1;

  // Drives `svc` (standalone InferenceService or FleetRouter — identical
  // submit surface) with the request stream and prints the result JSON.
  // `extra` appends transport-specific JSON fields before the close brace.
  std::vector<std::size_t> per_shard(shards > 0 ? shards : 1, 0);
  const auto drive = [&](auto& svc, const std::function<void()>& extra) {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i) {
      const layout::Clip& clip = bench.clips[i % bench.size()];
      if (i < expired) {
        // A non-positive budget is already expired at submission; the next
        // batch answers it kDeadlineExceeded (deterministic smoke-test path).
        futures.push_back(svc.submit(clip, std::chrono::microseconds(-1)));
      } else {
        futures.push_back(svc.submit(clip));
      }
    }

    std::size_t ok = 0, queue_full = 0, after_shutdown = 0, deadline = 0;
    std::size_t shed = 0, net_timeout = 0, net_error = 0;
    std::size_t hotspots = 0, cache_hits = 0;
    std::vector<double> latencies;
    latencies.reserve(requests);
    for (auto& f : futures) {
      const serve::Response r = f.get();
      switch (r.status) {
        case serve::Status::kOk:
          ++ok;
          hotspots += r.hotspot ? 1 : 0;
          cache_hits += r.cache_hit ? 1 : 0;
          latencies.push_back(r.latency_seconds);
          if (r.shard < per_shard.size()) ++per_shard[r.shard];
          break;
        case serve::Status::kRejectedQueueFull: ++queue_full; break;
        case serve::Status::kRejectedShutdown: ++after_shutdown; break;
        case serve::Status::kDeadlineExceeded: ++deadline; break;
        case serve::Status::kShedFleetOverloaded: ++shed; break;
        case serve::Status::kNetTimeout: ++net_timeout; break;
        case serve::Status::kNetError: ++net_error; break;
      }
    }
    svc.shutdown();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::sort(latencies.begin(), latencies.end());
    std::printf("{\"benchmark\": \"%s\", \"requests\": %zu, \"ok\": %zu,\n"
                " \"rejected_queue_full\": %zu, \"rejected_shutdown\": %zu,\n"
                " \"deadline_exceeded\": %zu, \"fleet_overloaded\": %zu,\n"
                " \"net_timeout\": %zu, \"net_error\": %zu,\n"
                " \"hotspots\": %zu, \"cache_hits\": %zu,\n"
                " \"temperature\": %.4f, \"qps\": %.1f,\n"
                " \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f,\n"
                " \"transport\": \"%s\", \"shards\": %zu",
                bench.spec.name.c_str(), requests, ok, queue_full,
                after_shutdown, deadline, shed, net_timeout, net_error,
                hotspots, cache_hits, scfg.temperature,
                wall > 0 ? static_cast<double>(ok) / wall : 0.0,
                1e3 * percentile(latencies, 0.50),
                1e3 * percentile(latencies, 0.95),
                1e3 * percentile(latencies, 0.99), transport.c_str(), shards);
    if (shards > 0) {
      std::printf(",\n \"per_shard_ok\": [");
      for (std::size_t s = 0; s < per_shard.size(); ++s) {
        std::printf("%s%zu", s > 0 ? ", " : "", per_shard[s]);
      }
      std::printf("]");
    }
    if (extra) extra();
    std::printf("}\n");
  };

  if (transport != "inproc") {
    // Remote fleet: route over sockets to shard servers — in-process ones
    // spun up here (model replicated bit-identically from one state blob),
    // or external `hsd_cli shard-server` processes named by --endpoints.
    std::ostringstream blob;
    detector.save_state(blob);
    const std::string state = blob.str();

    std::vector<std::unique_ptr<serve::ShardServer>> servers;
    if (endpoints.empty()) {
      for (std::size_t i = 0; i < shards; ++i) {
        serve::ShardServerConfig sscfg;
        sscfg.service = scfg;
        sscfg.service.shard_index = static_cast<std::uint32_t>(i);
        sscfg.service.metric_prefix = "serve/shard" + std::to_string(i);
        if (transport == "uds") {
          sscfg.server.endpoint.kind = net::Endpoint::Kind::kUds;
          sscfg.server.endpoint.path = "/tmp/hsd-serve-" +
                                       std::to_string(::getpid()) + "-" +
                                       std::to_string(i) + ".sock";
        } else {
          sscfg.server.endpoint = net::parse_endpoint("tcp:127.0.0.1:0");
        }
        core::HotspotDetector replica(dcfg_used, stats::Rng(seed));
        std::istringstream is(state);
        replica.load_state(is);
        servers.push_back(
            std::make_unique<serve::ShardServer>(sscfg, std::move(replica)));
        servers.back()->start();
        endpoints.push_back(servers.back()->endpoint());
      }
    }

    const bool drain_remote = args.has("drain-remote");
    std::vector<serve::RemoteShard*> remotes;
    std::vector<std::unique_ptr<serve::Shard>> shard_ptrs;
    for (std::size_t i = 0; i < shards; ++i) {
      serve::RemoteShardConfig rcfg;
      rcfg.channel.endpoint = endpoints[i];
      rcfg.channel.seed = i;
      rcfg.channel.metric_prefix = "serve/net/client/shard" + std::to_string(i);
      rcfg.shard_index = static_cast<std::uint32_t>(i);
      rcfg.feature_grid = scfg.feature_grid;
      rcfg.drain_server = drain_remote;
      auto remote = std::make_unique<serve::RemoteShard>(rcfg);
      remotes.push_back(remote.get());
      shard_ptrs.push_back(std::move(remote));
    }
    serve::FleetConfig fcfg;
    fcfg.shard = scfg;
    serve::FleetRouter fleet(fcfg, std::move(shard_ptrs));
    drive(fleet, [&] {
      std::uint64_t retries = 0, reconnects = 0;
      for (const serve::RemoteShard* r : remotes) {
        const net::ChannelStats st = r->transport_stats();
        retries += st.retries;
        reconnects += st.reconnects;
      }
      std::printf(",\n \"net_retries\": %llu, \"net_reconnects\": %llu",
                  static_cast<unsigned long long>(retries),
                  static_cast<unsigned long long>(reconnects));
    });
    for (auto& srv : servers) srv->drain_and_stop();
  } else if (shards > 0) {
    // Replicate the trained model bit-identically onto every shard: the
    // factory reloads one serialized state blob, so it is pure by
    // construction (the fleet determinism contract).
    std::ostringstream blob;
    detector.save_state(blob);
    const std::string state = blob.str();
    serve::FleetConfig fcfg;
    fcfg.shards = shards;
    fcfg.shard = scfg;
    serve::FleetRouter fleet(fcfg, [&] {
      core::HotspotDetector replica(dcfg_used, stats::Rng(seed));
      std::istringstream is(state);
      replica.load_state(is);
      return replica;
    });
    drive(fleet, {});
  } else {
    serve::InferenceService service(scfg, std::move(detector));
    drive(service, {});
  }
  return 0;
}

// SIGTERM/SIGINT land here; the shard-server host loop polls the flag and
// runs the graceful drain on the main thread (signal-safe by construction:
// the handler only stores).
volatile std::sig_atomic_t g_shard_server_stop = 0;
void on_stop_signal(int) { g_shard_server_stop = 1; }

int cmd_shard_server(const Args& args) {
  if (args.positional.size() < 2 || !args.has("listen")) return usage();
  const data::Benchmark bench = resolve_benchmark(args.positional[1], args);

  auto model = prepare_model(bench, args);
  if (!model) return 1;

  const std::uint32_t shard_index =
      args.get("shard-index")
          ? static_cast<std::uint32_t>(std::stoul(*args.get("shard-index")))
          : 0;
  serve::ShardServerConfig cfg;
  cfg.service = service_config_from_args(bench, args);
  cfg.service.temperature = model->temperature;
  cfg.service.shard_index = shard_index;
  // Same prefix the in-process fleet assigns ring slot <i>, so dashboards
  // aggregate a multi-process fleet exactly like a single-process one.
  cfg.service.metric_prefix = "serve/shard" + std::to_string(shard_index);
  cfg.server.endpoint = net::parse_endpoint(*args.get("listen"));
  if (args.get("max-inflight")) {
    cfg.server.max_inflight = std::stoul(*args.get("max-inflight"));
  }

  serve::ShardServer server(cfg, std::move(model->detector));
  server.start();
  std::fprintf(stderr, "shard %u serving on %s\n", shard_index,
               net::to_string(server.endpoint()).c_str());

  g_shard_server_stop = 0;
  std::signal(SIGTERM, on_stop_signal);
  std::signal(SIGINT, on_stop_signal);
  while (!server.drain_requested() && !g_shard_server_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "shard %u draining...\n", shard_index);
  server.drain_and_stop();
  std::printf("{\"shard\": %u, \"drained\": true}\n", shard_index);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.positional.empty()) return usage();
  apply_obs_flags(args);
  const std::string& cmd = args.positional[0];
  try {
    if (cmd == "build") return cmd_build(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "pm") return cmd_pm(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "shard-server") return cmd_shard_server(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
