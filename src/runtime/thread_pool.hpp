#pragma once
// Work-stealing thread pool shared by every hot path in the library.
//
// Design goals, in priority order:
//   1. Determinism: parallel results must be bit-identical to the serial
//      path regardless of thread count. The runtime never reorders the
//      floating-point operations that produce a given output element; it
//      only partitions disjoint output ranges across workers. Randomized
//      parallel code derives its stream from the *work-item index* via
//      derive_seed(), never from the worker id.
//   2. Exception safety: an exception thrown inside a task is captured and
//      rethrown at the fork/join boundary (TaskGroup::wait or
//      parallel_for), and the pool stays fully reusable afterwards.
//   3. No deadlock under nesting: a parallel_for issued from inside a
//      worker thread executes inline (serially), and TaskGroup::wait
//      helps drain the pool instead of blocking, so oversubscription
//      cannot wedge the pool.
//
// The process-wide pool is configured once from HSD_THREADS (default:
// hardware_concurrency; 1 = exact serial fallback, every parallel_for
// body runs inline on the caller). Tests can resize it with
// set_global_threads().

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hsd::runtime {

/// SplitMix64 mix of a base seed and a stream index. Work items that need
/// randomness seed an Rng with derive_seed(base, item_index) so the draw
/// sequence depends only on the item, not on which worker ran it — the
/// property that keeps parallel runs bit-stable across thread counts.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);

/// Fixed-size pool of workers, one mutex-guarded deque per worker. Owners
/// pop LIFO from the back of their own deque; idle workers (and helping
/// callers) steal FIFO from the front of a victim's deque.
class ThreadPool {
 public:
  /// `threads` is the total desired concurrency. `threads <= 1` spawns no
  /// workers: submit() runs tasks inline and parallel_for degenerates to
  /// the exact serial loop.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker-thread count (0 means serial).
  std::size_t size() const { return queues_.size(); }

  /// Enqueues a task (round-robin across worker deques). With no workers
  /// the task runs inline on the caller before submit() returns.
  void submit(std::function<void()> task);

  /// Dequeues and runs one pending task on the calling thread. Returns
  /// false when every deque is empty. Used by joiners to help instead of
  /// blocking.
  bool try_run_one();

  /// True when the calling thread is one of this process's pool workers.
  static bool on_worker_thread();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_main(std::size_t id);
  bool pop_or_steal(std::size_t id, std::function<void()>& out);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<std::size_t> queued_{0};  ///< tasks enqueued but not yet dequeued
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<bool> stop_{false};
};

/// Threads requested by the environment: HSD_THREADS when set to a
/// positive integer, otherwise hardware_concurrency() (minimum 1).
std::size_t configured_threads();

/// The process-wide pool, created on first use with configured_threads().
ThreadPool& global_pool();

/// Replaces the process-wide pool with an `n`-thread one. Test/bench hook;
/// must not race with concurrent parallel work.
void set_global_threads(std::size_t n);

/// Fork/join scope. run() forks a task into the pool; wait() joins all
/// forked tasks, helping to drain the pool while it waits, and rethrows
/// the first exception any task threw. Reusable after wait(), including
/// after an exception.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  TaskGroup() : TaskGroup(global_pool()) {}

  /// Joins outstanding tasks; swallows errors (call wait() to observe them).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Forks `fn`. Runs inline when the pool is serial.
  void run(std::function<void()> fn);

  /// Joins every task forked so far, then rethrows the first captured
  /// exception (clearing it, so the group can be reused).
  void wait();

  /// True once any forked task has thrown. Long fan-outs poll this to
  /// skip work that is no longer needed.
  bool failed() const { return failed_.load(std::memory_order_acquire); }

 private:
  void record_exception();
  void finish_one();

  ThreadPool& pool_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> failed_{false};
  std::mutex mutex_;
  std::condition_variable done_cv_;
  std::exception_ptr error_;
};

/// Runs body(lo, hi) over disjoint blocks covering [begin, end), at most
/// `grain` indices per block (grain 0 picks one automatically). Executes
/// inline — identical to the plain serial loop — when the range fits one
/// block, the pool is serial, or the caller is already a pool worker
/// (nested parallelism). Rethrows the first exception a block threw;
/// blocks that have not started when a block fails are skipped.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

inline void parallel_for(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for(begin, end, 0, body);
}

}  // namespace hsd::runtime
