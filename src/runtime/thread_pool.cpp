#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/env.hpp"
#include "common/registry.hpp"
#include "obs/trace.hpp"

namespace hsd::runtime {

namespace {

// Set while a thread is executing worker_main; lets parallel_for detect
// nesting and degrade to an inline loop instead of deadlocking the pool.
thread_local bool t_on_worker = false;

std::unique_ptr<ThreadPool> g_pool;            // NOLINT: intentional singleton
std::mutex g_pool_mutex;

}  // namespace

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  // SplitMix64 finalizer over the combined state; one mix round per input
  // keeps distinct (base, stream) pairs statistically independent.
  std::uint64_t z = base + 0x9E3779B97F4A7C15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads <= 1) return;  // serial: no workers, submit() runs inline
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  sleep_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (queues_.empty()) {
    task();
    return;
  }
  const std::size_t slot =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[slot]->mutex);
    queues_[slot]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  for (std::size_t q = 0; q < queues_.size(); ++q) {
    std::lock_guard<std::mutex> lock(queues_[q]->mutex);
    if (!queues_[q]->tasks.empty()) {
      task = std::move(queues_[q]->tasks.front());
      queues_[q]->tasks.pop_front();
      break;
    }
  }
  if (!task) return false;
  queued_.fetch_sub(1, std::memory_order_release);
  task();
  return true;
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

bool ThreadPool::pop_or_steal(std::size_t id, std::function<void()>& out) {
  {
    // Own deque: newest first (LIFO) for cache locality.
    std::lock_guard<std::mutex> lock(queues_[id]->mutex);
    if (!queues_[id]->tasks.empty()) {
      out = std::move(queues_[id]->tasks.back());
      queues_[id]->tasks.pop_back();
      return true;
    }
  }
  // Steal oldest first (FIFO) from the other deques.
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    const std::size_t victim = (id + offset) % queues_.size();
    std::lock_guard<std::mutex> lock(queues_[victim]->mutex);
    if (!queues_[victim]->tasks.empty()) {
      out = std::move(queues_[victim]->tasks.front());
      queues_[victim]->tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_main(std::size_t id) {
  t_on_worker = true;
  // Registers this worker's trace buffer up front so spans recorded from
  // parallel_for/TaskGroup bodies carry a stable, readable thread name.
  obs::set_current_thread_name("pool-worker-" + std::to_string(id));
  std::function<void()> task;
  while (true) {
    if (pop_or_steal(id, task)) {
      queued_.fetch_sub(1, std::memory_order_release);
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleep_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

std::size_t configured_threads() {
  // Strict parse: a malformed or non-positive HSD_THREADS throws instead of
  // silently running at hardware width — the knob exists to pin determinism
  // experiments, so ignoring a bad value is worse than failing.
  if (const char* env = std::getenv(reg::kEnvThreads);
      env != nullptr && *env != '\0') {
    const std::size_t v = common::env_size(reg::kEnvThreads, 0);
    if (v == 0) {
      throw std::runtime_error(std::string(reg::kEnvThreads) +
                               ": must be a positive integer");
    }
    return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(configured_threads());
  return *g_pool;
}

void set_global_threads(std::size_t n) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_pool = std::make_unique<ThreadPool>(n);
}

TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {  // errors are observable only through an explicit wait()
  }
}

void TaskGroup::record_exception() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!error_) error_ = std::current_exception();
  failed_.store(true, std::memory_order_release);
}

void TaskGroup::finish_one() {
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    done_cv_.notify_all();
  }
}

void TaskGroup::run(std::function<void()> fn) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  pool_.submit([this, fn = std::move(fn)] {
    try {
      fn();
    } catch (...) {
      record_exception();
    }
    finish_one();
  });
}

void TaskGroup::wait() {
  // Help drain the pool while tasks are outstanding: a waiter inside a
  // worker thread keeps making progress instead of parking a worker, so
  // nested joins cannot starve the pool.
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (pool_.try_run_one()) continue;
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    error = std::exchange(error_, nullptr);
    failed_.store(false, std::memory_order_release);
  }
  if (error) std::rethrow_exception(error);
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t total = end - begin;
  ThreadPool& pool = global_pool();
  const std::size_t workers = pool.size();
  // Serial pool, nested call from a worker, or a single-block range: the
  // inline call is the exact serial loop (bit-identical by construction).
  if (workers <= 1 || ThreadPool::on_worker_thread()) {
    body(begin, end);
    return;
  }
  std::size_t g = grain;
  if (g == 0) g = std::max<std::size_t>(1, total / (4 * workers));
  if (g >= total) {
    body(begin, end);
    return;
  }

  TaskGroup group(pool);
  for (std::size_t lo = begin; lo < end; lo += g) {
    const std::size_t hi = std::min(end, lo + g);
    group.run([&, lo, hi] {
      if (group.failed()) return;  // a sibling block threw; skip the rest
      body(lo, hi);
    });
  }
  group.wait();
}

}  // namespace hsd::runtime
