#include "layout/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace hsd::layout {

void write_clips(std::ostream& os, const std::vector<Clip>& clips) {
  os << "hsdl 1\n" << clips.size() << "\n";
  for (const Clip& c : clips) {
    os << "clip " << c.family << ' '                                     //
       << c.window.x0 << ' ' << c.window.y0 << ' ' << c.window.x1 << ' '  //
       << c.window.y1 << ' '                                              //
       << c.core.x0 << ' ' << c.core.y0 << ' ' << c.core.x1 << ' '        //
       << c.core.y1 << ' '                                                //
       << c.chip_origin.x << ' ' << c.chip_origin.y << ' '                //
       << c.shapes.size() << '\n';
    for (const Rect& r : c.shapes) {
      os << "rect " << r.x0 << ' ' << r.y0 << ' ' << r.x1 << ' ' << r.y1 << '\n';
    }
  }
  if (!os) throw std::runtime_error("write_clips: stream failure");
}

std::vector<Clip> read_clips(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != "hsdl" || version != 1) {
    throw std::runtime_error("read_clips: not an HSDL v1 stream");
  }
  std::size_t count = 0;
  if (!(is >> count)) throw std::runtime_error("read_clips: missing clip count");

  std::vector<Clip> clips;
  clips.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string tag;
    Clip c;
    std::size_t nshapes = 0;
    if (!(is >> tag) || tag != "clip") {
      throw std::runtime_error("read_clips: expected 'clip' record");
    }
    if (!(is >> c.family >> c.window.x0 >> c.window.y0 >> c.window.x1 >>
          c.window.y1 >> c.core.x0 >> c.core.y0 >> c.core.x1 >> c.core.y1 >>
          c.chip_origin.x >> c.chip_origin.y >> nshapes)) {
      throw std::runtime_error("read_clips: malformed clip header");
    }
    if (!c.window.valid()) throw std::runtime_error("read_clips: invalid window");
    c.shapes.reserve(nshapes);
    for (std::size_t s = 0; s < nshapes; ++s) {
      Rect r;
      if (!(is >> tag) || tag != "rect" ||
          !(is >> r.x0 >> r.y0 >> r.x1 >> r.y1)) {
        throw std::runtime_error("read_clips: malformed rect record");
      }
      if (!r.valid()) throw std::runtime_error("read_clips: invalid rect");
      c.shapes.push_back(r);
    }
    finalize(c);
    clips.push_back(std::move(c));
  }
  return clips;
}

}  // namespace hsd::layout
