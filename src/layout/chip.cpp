#include "layout/chip.hpp"

#include <stdexcept>

namespace hsd::layout {

Chip assemble_chip(const std::vector<Clip>& clips) {
  Chip chip;
  for (const Clip& c : clips) {
    for (const Rect& r : c.shapes) {
      const Rect placed = r.shifted(c.chip_origin.x, c.chip_origin.y);
      chip.shapes.push_back(placed);
      chip.extent = bounding_box(chip.extent, placed);
    }
    // The chip extends at least to each clip's window, shapes or not.
    chip.extent = bounding_box(
        chip.extent, c.window.shifted(c.chip_origin.x, c.chip_origin.y));
  }
  return chip;
}

std::vector<Clip> extract_clips(const Chip& chip, const ExtractionConfig& config) {
  if (config.window_side <= 0 || config.stride <= 0) {
    throw std::invalid_argument("extract_clips: non-positive window/stride");
  }
  std::vector<Clip> clips;
  if (!chip.extent.valid()) return clips;

  for (Coord y = chip.extent.y0; y <= chip.extent.y1; y = static_cast<Coord>(y + config.stride)) {
    for (Coord x = chip.extent.x0; x <= chip.extent.x1;
         x = static_cast<Coord>(x + config.stride)) {
      const Rect window{x, y, static_cast<Coord>(x + config.window_side),
                        static_cast<Coord>(y + config.window_side)};
      Clip clip;
      clip.window = Rect{0, 0, config.window_side, config.window_side};
      clip.core = centered_core(clip.window, config.core_fraction);
      clip.chip_origin = {x, y};
      for (const Rect& s : chip.shapes) {
        const Rect cut = intersection(s, window);
        if (!cut.valid() || cut.width() <= 0 || cut.height() <= 0) continue;
        clip.shapes.push_back(cut.shifted(-x, -y));
      }
      if (config.skip_empty && clip.shapes.empty()) continue;
      finalize(clip);
      clips.push_back(std::move(clip));
    }
  }
  return clips;
}

}  // namespace hsd::layout
