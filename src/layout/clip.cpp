#include "layout/clip.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace hsd::layout {

namespace {

void hash_mix(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a over the 8 bytes of v.
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xFFULL;
    h *= kPrime;
  }
}

}  // namespace

void canonicalize(Clip& clip) {
  std::sort(clip.shapes.begin(), clip.shapes.end(), [](const Rect& a, const Rect& b) {
    if (a.x0 != b.x0) return a.x0 < b.x0;
    if (a.y0 != b.y0) return a.y0 < b.y0;
    if (a.x1 != b.x1) return a.x1 < b.x1;
    return a.y1 < b.y1;
  });
}

std::uint64_t hash_geometry(const Clip& clip) {
  std::uint64_t h = 14695981039346656037ULL;  // FNV offset basis
  for (const auto& r : clip.shapes) {
    hash_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(r.x0)));
    hash_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(r.y0)));
    hash_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(r.x1)));
    hash_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(r.y1)));
  }
  return h;
}

void finalize(Clip& clip) {
  canonicalize(clip);
  clip.pattern_hash = hash_geometry(clip);
}

namespace {

/// Applies a per-rect transform, re-finalizing the result.
template <typename F>
Clip transformed(const Clip& clip, F&& f) {
  Clip out = clip;
  for (Rect& r : out.shapes) r = f(r);
  finalize(out);
  return out;
}

void require_square(const Clip& clip, const char* what) {
  if (clip.window.width() != clip.window.height()) {
    throw std::invalid_argument(std::string(what) + ": window must be square");
  }
}

}  // namespace

Clip rotated90(const Clip& clip) {
  require_square(clip, "rotated90");
  const Coord x0 = clip.window.x0, y0 = clip.window.y0;
  const Coord side = clip.window.width();
  // CCW rotation in window-local coordinates: (x, y) -> (y, side - x).
  return transformed(clip, [&](const Rect& r) {
    return Rect{static_cast<Coord>(x0 + (r.y0 - y0)),
                static_cast<Coord>(y0 + side - (r.x1 - x0)),
                static_cast<Coord>(x0 + (r.y1 - y0)),
                static_cast<Coord>(y0 + side - (r.x0 - x0))};
  });
}

Clip mirrored_x(const Clip& clip) {
  require_square(clip, "mirrored_x");
  const Coord x0 = clip.window.x0;
  const Coord side = clip.window.width();
  return transformed(clip, [&](const Rect& r) {
    return Rect{static_cast<Coord>(x0 + side - (r.x1 - x0)), r.y0,
                static_cast<Coord>(x0 + side - (r.x0 - x0)), r.y1};
  });
}

Clip mirrored_y(const Clip& clip) {
  require_square(clip, "mirrored_y");
  const Coord y0 = clip.window.y0;
  const Coord side = clip.window.height();
  return transformed(clip, [&](const Rect& r) {
    return Rect{r.x0, static_cast<Coord>(y0 + side - (r.y1 - y0)), r.x1,
                static_cast<Coord>(y0 + side - (r.y0 - y0))};
  });
}

Rect centered_core(const Rect& window, double fraction) {
  const double side_x = window.width() * fraction;
  const double side_y = window.height() * fraction;
  const auto cx = (window.x0 + window.x1) / 2;
  const auto cy = (window.y0 + window.y1) / 2;
  return {static_cast<Coord>(std::lround(cx - side_x / 2)),
          static_cast<Coord>(std::lround(cy - side_y / 2)),
          static_cast<Coord>(std::lround(cx + side_x / 2)),
          static_cast<Coord>(std::lround(cy + side_y / 2))};
}

}  // namespace hsd::layout
