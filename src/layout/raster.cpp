#include "layout/raster.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hsd::layout {

Rasterizer::Rasterizer(std::size_t grid) : grid_(grid) {
  if (grid == 0) throw std::invalid_argument("Rasterizer: grid == 0");
}

std::vector<float> Rasterizer::rasterize(const Clip& clip) const {
  if (!clip.window.valid() || clip.window.width() <= 0 || clip.window.height() <= 0) {
    throw std::invalid_argument("Rasterizer::rasterize: invalid window");
  }
  std::vector<float> out(grid_ * grid_, 0.0F);
  const double px_w = static_cast<double>(clip.window.width()) / static_cast<double>(grid_);
  const double px_h = static_cast<double>(clip.window.height()) / static_cast<double>(grid_);

  for (const auto& s : clip.shapes) {
    const Rect r = intersection(s, clip.window);
    if (!r.valid() || r.width() <= 0 || r.height() <= 0) continue;
    // Shape extent in pixel units (continuous).
    const double fx0 = (r.x0 - clip.window.x0) / px_w;
    const double fx1 = (r.x1 - clip.window.x0) / px_w;
    const double fy0 = (r.y0 - clip.window.y0) / px_h;
    const double fy1 = (r.y1 - clip.window.y0) / px_h;
    const auto cx0 = static_cast<std::size_t>(std::clamp(std::floor(fx0), 0.0,
                                                         static_cast<double>(grid_ - 1)));
    const auto cx1 = static_cast<std::size_t>(std::clamp(std::ceil(fx1) - 1.0, 0.0,
                                                         static_cast<double>(grid_ - 1)));
    const auto cy0 = static_cast<std::size_t>(std::clamp(std::floor(fy0), 0.0,
                                                         static_cast<double>(grid_ - 1)));
    const auto cy1 = static_cast<std::size_t>(std::clamp(std::ceil(fy1) - 1.0, 0.0,
                                                         static_cast<double>(grid_ - 1)));
    for (std::size_t row = cy0; row <= cy1; ++row) {
      const double cell_y0 = static_cast<double>(row);
      const double cell_y1 = cell_y0 + 1.0;
      const double oy = std::min(fy1, cell_y1) - std::max(fy0, cell_y0);
      if (oy <= 0.0) continue;
      for (std::size_t col = cx0; col <= cx1; ++col) {
        const double cell_x0 = static_cast<double>(col);
        const double cell_x1 = cell_x0 + 1.0;
        const double ox = std::min(fx1, cell_x1) - std::max(fx0, cell_x0);
        if (ox <= 0.0) continue;
        float& px = out[row * grid_ + col];
        px = std::min(1.0F, px + static_cast<float>(ox * oy));
      }
    }
  }
  return out;
}

Rect Rasterizer::to_pixels(const Rect& shape, const Rect& window) const {
  const double px_w = static_cast<double>(window.width()) / static_cast<double>(grid_);
  const double px_h = static_cast<double>(window.height()) / static_cast<double>(grid_);
  const Rect r = intersection(shape, window);
  if (!r.valid()) return {};
  return {static_cast<Coord>(std::floor((r.x0 - window.x0) / px_w)),
          static_cast<Coord>(std::floor((r.y0 - window.y0) / px_h)),
          static_cast<Coord>(std::ceil((r.x1 - window.x0) / px_w) - 1),
          static_cast<Coord>(std::ceil((r.y1 - window.y0) / px_h) - 1)};
}

}  // namespace hsd::layout
