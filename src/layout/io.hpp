#pragma once
// Plain-text clip interchange format ("HSDL v1"), a lightweight stand-in for
// GDSII so benchmarks can be saved, inspected, and reloaded:
//
//   hsdl 1
//   clip <family> <window x0 y0 x1 y1> <core x0 y0 x1 y1> <origin x y> <nshapes>
//   rect <x0> <y0> <x1> <y1>          (nshapes times)
//
// Coordinates are integer nanometers. Pattern hashes are recomputed on load,
// so the file does not need to carry them.

#include <iosfwd>
#include <vector>

#include "layout/clip.hpp"

namespace hsd::layout {

/// Writes clips in HSDL v1. Throws std::runtime_error on stream failure.
void write_clips(std::ostream& os, const std::vector<Clip>& clips);

/// Reads an HSDL v1 stream; throws std::runtime_error on malformed input.
std::vector<Clip> read_clips(std::istream& is);

}  // namespace hsd::layout
