#pragma once
// Rasterizes clip geometry to fixed-size coverage grids: each pixel holds
// the fraction of its area covered by drawn shapes (anti-aliased), which is
// both the CNN feature source (after DCT) and the lithography simulator's
// mask function.

#include <cstddef>
#include <vector>

#include "layout/clip.hpp"

namespace hsd::layout {

/// Converts clips to `grid x grid` row-major coverage bitmaps in [0, 1].
class Rasterizer {
 public:
  /// `grid` pixels per side (>= 1).
  explicit Rasterizer(std::size_t grid);

  std::size_t grid() const { return grid_; }

  /// Rasterizes `clip.shapes` over `clip.window` into a coverage grid.
  /// Pixel (row, col) covers y-rows top-down matching matrix convention:
  /// row 0 = lowest y. Overlapping shapes saturate at 1.
  std::vector<float> rasterize(const Clip& clip) const;

  /// Maps a window-relative rect to the pixel rect it covers (for tests).
  Rect to_pixels(const Rect& shape, const Rect& window) const;

 private:
  std::size_t grid_;
};

}  // namespace hsd::layout
