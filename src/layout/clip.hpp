#pragma once
// A layout clip: the unit the hotspot detector classifies. A clip is a
// fixed-size window of Manhattan shapes cut from a full-chip layout, with a
// central core region in which lithography defects count (Definitions 1-2 of
// the paper).

#include <cstdint>
#include <vector>

#include "layout/geometry.hpp"

namespace hsd::layout {

struct Clip {
  /// Shapes in clip-local coordinates, clipped to `window`.
  std::vector<Rect> shapes;
  /// The clip extent, conventionally [0, side] x [0, side].
  Rect window;
  /// Central core region where defects are scored.
  Rect core;
  /// Position of the clip's window origin on the full chip (for Fig. 5 maps).
  Point chip_origin;
  /// Generator family id (diagnostic only; not visible to the detector).
  int family = -1;
  /// Stable content hash of the quantized geometry; equal hashes <=> equal
  /// patterns for the exact pattern-matching baseline.
  std::uint64_t pattern_hash = 0;
};

/// Canonical FNV-1a hash of the clip geometry (shapes sorted, window-local).
/// Two clips with identical shape lists hash equal; used by PM-exact.
std::uint64_t hash_geometry(const Clip& clip);

/// Recomputes and stores `pattern_hash`.
void finalize(Clip& clip);

/// Centered square core region covering `fraction` of the window side.
Rect centered_core(const Rect& window, double fraction);

/// Sorts shapes lexicographically to make geometry canonical.
void canonicalize(Clip& clip);

/// Orientation transforms for data augmentation (square windows only):
/// lithography is orientation-covariant under these, so a transformed
/// hotspot is still a hotspot — free extra training samples for the
/// imbalanced minority class.

/// Rotates the clip 90 degrees counter-clockwise about the window center.
Clip rotated90(const Clip& clip);

/// Mirrors the clip about the window's vertical axis (x -> side - x).
Clip mirrored_x(const Clip& clip);

/// Mirrors the clip about the window's horizontal axis (y -> side - y).
Clip mirrored_y(const Clip& clip);

}  // namespace hsd::layout
