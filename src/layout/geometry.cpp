#include "layout/geometry.hpp"

#include <algorithm>

namespace hsd::layout {

bool intersects(const Rect& a, const Rect& b) {
  return a.valid() && b.valid() && a.x0 <= b.x1 && b.x0 <= a.x1 && a.y0 <= b.y1 &&
         b.y0 <= a.y1;
}

Rect intersection(const Rect& a, const Rect& b) {
  return {std::max(a.x0, b.x0), std::max(a.y0, b.y0), std::min(a.x1, b.x1),
          std::min(a.y1, b.y1)};
}

Rect bounding_box(const Rect& a, const Rect& b) {
  if (!a.valid()) return b;
  if (!b.valid()) return a;
  return {std::min(a.x0, b.x0), std::min(a.y0, b.y0), std::max(a.x1, b.x1),
          std::max(a.y1, b.y1)};
}

Rect bounding_box(const std::vector<Rect>& rects) {
  Rect box;  // invalid
  for (const auto& r : rects) box = bounding_box(box, r);
  return box;
}

Coord spacing(const Rect& a, const Rect& b) {
  if (!a.valid() || !b.valid()) return 0;
  Coord dx = 0;
  if (b.x0 > a.x1) {
    dx = b.x0 - a.x1;
  } else if (a.x0 > b.x1) {
    dx = a.x0 - b.x1;
  }
  Coord dy = 0;
  if (b.y0 > a.y1) {
    dy = b.y0 - a.y1;
  } else if (a.y0 > b.y1) {
    dy = a.y0 - b.y1;
  }
  return std::max(dx, dy);
}

std::int64_t union_area(std::vector<Rect> rects) {
  std::erase_if(rects, [](const Rect& r) { return !r.valid(); });
  if (rects.empty()) return 0;

  // Coordinate-compressed slab sweep along x.
  std::vector<Coord> xs;
  xs.reserve(rects.size() * 2);
  for (const auto& r : rects) {
    xs.push_back(r.x0);
    xs.push_back(static_cast<Coord>(r.x1 + 1));  // half-open in pixel space
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  std::int64_t total = 0;
  for (std::size_t s = 0; s + 1 < xs.size(); ++s) {
    const Coord xa = xs[s];
    const Coord xb = xs[s + 1];
    // Collect y-intervals of rects covering this slab and merge them.
    std::vector<std::pair<Coord, Coord>> spans;  // [y0, y1+1)
    for (const auto& r : rects) {
      if (r.x0 <= xa && r.x1 + 1 >= xb) {
        spans.emplace_back(r.y0, static_cast<Coord>(r.y1 + 1));
      }
    }
    if (spans.empty()) continue;
    std::sort(spans.begin(), spans.end());
    std::int64_t covered = 0;
    Coord cur_lo = spans[0].first;
    Coord cur_hi = spans[0].second;
    for (std::size_t i = 1; i < spans.size(); ++i) {
      if (spans[i].first > cur_hi) {
        covered += cur_hi - cur_lo;
        cur_lo = spans[i].first;
        cur_hi = spans[i].second;
      } else {
        cur_hi = std::max(cur_hi, spans[i].second);
      }
    }
    covered += cur_hi - cur_lo;
    total += static_cast<std::int64_t>(xb - xa) * covered;
  }
  return total;
}

}  // namespace hsd::layout
