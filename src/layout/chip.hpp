#pragma once
// Full-chip layout assembly and clip extraction. The PSHD problem statement
// takes "full chip layout designs as input"; this substrate assembles clip
// populations into one flat chip-coordinate layout and re-cuts fixed-size
// windows out of it — the scanning pass a production flow runs before any
// sampling or detection happens.

#include <vector>

#include "layout/clip.hpp"

namespace hsd::layout {

/// A flat full-chip layout: shapes in chip coordinates plus the chip extent.
struct Chip {
  std::vector<Rect> shapes;
  Rect extent;

  std::size_t shape_count() const { return shapes.size(); }
};

/// Flattens clips (placed at their chip_origin) into one chip layout.
Chip assemble_chip(const std::vector<Clip>& clips);

/// Extraction configuration for the scanning pass.
struct ExtractionConfig {
  Coord window_side = 640;   ///< clip window size in nm
  Coord stride = 640;        ///< scan step (== window for non-overlapping)
  double core_fraction = 0.5;///< core region of each extracted clip
  /// Skip windows whose intersection with the layout is empty.
  bool skip_empty = true;
};

/// Cuts clips out of a chip on a regular grid. Shapes are clipped to each
/// window and translated to window-local coordinates; `chip_origin` records
/// the cut position. Geometry is canonicalized and hashed.
std::vector<Clip> extract_clips(const Chip& chip, const ExtractionConfig& config);

}  // namespace hsd::layout
