#pragma once
// Manhattan (axis-aligned) geometry in integer nanometers — the coordinate
// system of the layout clips the detector classifies.

#include <cstdint>
#include <vector>

namespace hsd::layout {

/// Integer nanometer coordinate.
using Coord = std::int32_t;

struct Point {
  Coord x = 0;
  Coord y = 0;
  friend bool operator==(const Point&, const Point&) = default;
};

/// Closed axis-aligned rectangle [x0, x1] x [y0, y1] in nm.
/// A rectangle is valid iff x0 <= x1 and y0 <= y1; an "empty" rectangle is
/// represented by an invalid one.
struct Rect {
  Coord x0 = 0;
  Coord y0 = 0;
  Coord x1 = -1;
  Coord y1 = -1;

  Rect() = default;
  Rect(Coord x0_, Coord y0_, Coord x1_, Coord y1_) : x0(x0_), y0(y0_), x1(x1_), y1(y1_) {}

  bool valid() const { return x0 <= x1 && y0 <= y1; }
  Coord width() const { return valid() ? x1 - x0 : 0; }
  Coord height() const { return valid() ? y1 - y0 : 0; }
  std::int64_t area() const {
    return valid() ? static_cast<std::int64_t>(width()) * height() : 0;
  }
  Point center() const { return {static_cast<Coord>((x0 + x1) / 2), static_cast<Coord>((y0 + y1) / 2)}; }

  bool contains(Point p) const {
    return valid() && p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
  }
  bool contains(const Rect& r) const {
    return valid() && r.valid() && r.x0 >= x0 && r.x1 <= x1 && r.y0 >= y0 && r.y1 <= y1;
  }

  /// Rectangle grown by `d` on every side (negative shrinks).
  Rect expanded(Coord d) const {
    return {static_cast<Coord>(x0 - d), static_cast<Coord>(y0 - d),
            static_cast<Coord>(x1 + d), static_cast<Coord>(y1 + d)};
  }

  /// Translated copy.
  Rect shifted(Coord dx, Coord dy) const {
    return {static_cast<Coord>(x0 + dx), static_cast<Coord>(y0 + dy),
            static_cast<Coord>(x1 + dx), static_cast<Coord>(y1 + dy)};
  }

  friend bool operator==(const Rect&, const Rect&) = default;
};

/// True if the two rectangles share at least one point (closed intersection).
bool intersects(const Rect& a, const Rect& b);

/// Intersection rectangle; invalid if disjoint.
Rect intersection(const Rect& a, const Rect& b);

/// Smallest rectangle covering both (either may be invalid/empty).
Rect bounding_box(const Rect& a, const Rect& b);

/// Bounding box of a rectangle list (invalid for an empty list).
Rect bounding_box(const std::vector<Rect>& rects);

/// Minimum Manhattan gap between two disjoint rectangles: the larger of the
/// axis gaps (0 if they touch or overlap). This is the spacing a design rule
/// checker would measure between Manhattan shapes.
Coord spacing(const Rect& a, const Rect& b);

/// Total area of a rectangle set counting overlaps once (sweep over
/// x-slabs). Rectangles must be valid.
std::int64_t union_area(std::vector<Rect> rects);

}  // namespace hsd::layout
