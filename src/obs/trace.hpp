#pragma once
// Scoped spans with Chrome trace_event JSON export.
//
//   { HSD_SPAN("litho/aerial"); ... }   // records one complete event
//
// Each thread owns a ring buffer of completed spans (name, begin, duration,
// small sequential tid), created on the thread's first span. Recording
// takes only the buffer's own (uncontended) mutex, so spans from pool
// workers never serialize against each other. RAII scoping guarantees the
// events of one thread strictly nest.
//
// Off by default: a Span constructed while tracing is disabled does one
// relaxed atomic load and nothing else — no clock reads, no allocation, no
// file. `HSD_TRACE=<path>` enables tracing at process start and writes the
// trace to <path> at exit; enable_trace() does the same programmatically.
// The output loads in chrome://tracing and Perfetto.
//
// Span names must be string literals (or otherwise outlive the process);
// only the pointer is stored.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace hsd::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;

/// Nanoseconds on the steady clock since the process trace epoch.
std::uint64_t trace_now_ns();

/// Appends one complete event to the calling thread's ring buffer.
void record_span(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns);
}  // namespace detail

/// True when span collection is on (relaxed load; safe from any thread).
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// RAII scope that records a complete trace event on destruction.
class Span {
 public:
  explicit Span(const char* name) {
    if (!trace_enabled()) return;
    name_ = name;
    begin_ns_ = detail::trace_now_ns();
  }
  ~Span() {
    if (name_) detail::record_span(name_, begin_ns_, detail::trace_now_ns());
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t begin_ns_ = 0;
};

/// Names the calling thread in the exported trace (e.g. "pool-worker-3").
/// Cheap; callable whether or not tracing is enabled.
void set_current_thread_name(const std::string& name);

/// Turns span collection on. A non-empty `path` is remembered and the
/// Chrome trace is written there at process exit (and by flush_trace()).
void enable_trace(const std::string& path = "");
void disable_trace();

/// Drops every recorded event (buffers stay registered). Test hook.
void reset_trace();

/// Spans recorded and retained so far, across all threads.
std::size_t trace_event_count();

/// Spans lost to ring-buffer overflow so far, across all threads.
std::size_t trace_dropped_count();

/// Serializes every retained span as Chrome trace JSON:
///   {"traceEvents": [{"name", "ph": "X", "ts", "dur", "pid", "tid"}...]}
/// ts/dur are microseconds. Thread names appear as "M" metadata events.
void write_chrome_trace(std::ostream& os);

/// Writes the trace to the configured path now. False when no path is
/// configured or the file cannot be written.
bool flush_trace();

}  // namespace hsd::obs

#define HSD_OBS_CONCAT_IMPL(a, b) a##b
#define HSD_OBS_CONCAT(a, b) HSD_OBS_CONCAT_IMPL(a, b)

/// Opens a scoped span named `name` (a string literal) for the rest of the
/// enclosing block.
#define HSD_SPAN(name) \
  ::hsd::obs::Span HSD_OBS_CONCAT(hsd_obs_span_, __LINE__){name}
