#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>

#include "common/registry.hpp"

namespace hsd::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

// Fixed per-thread slot space. Every counter takes one cell; every
// histogram takes kNumBuckets + 2 (buckets, count, sum). 4096 cells is a
// 32 KiB shard — hundreds of metrics before exhaustion.
constexpr std::size_t kSlotCapacity = 4096;

using Cells = std::array<std::atomic<std::uint64_t>, kSlotCapacity>;

/// All registered metric families plus every thread shard ever created.
/// Shards are owned here and never freed, so a snapshot can still read the
/// cells of threads that have exited (e.g. replaced pool workers).
class Registry {
 public:
  static Registry& instance() {
    // hsd-lint: allow(no-mutable-static) — intentional leaked singleton
    static Registry* r = new Registry;  // leaked: immune to exit-order races
    return *r;
  }

  Counter& get_counter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      auto c = std::unique_ptr<Counter>(new Counter(allocate(1)));
      it = counters_.emplace(std::string(name), std::move(c)).first;
    }
    return *it->second;
  }

  Gauge& get_gauge(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      it = gauges_.emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge))
               .first;
    }
    return *it->second;
  }

  Histogram& get_histogram(std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      auto h = std::unique_ptr<Histogram>(
          new Histogram(allocate(Histogram::kNumBuckets + 2)));
      it = histograms_.emplace(std::string(name), std::move(h)).first;
    }
    return *it->second;
  }

  Cells& local_cells() {
    thread_local Cells* cells = nullptr;
    if (!cells) cells = &create_shard();
    return *cells;
  }

  /// Relaxed-merged value of one cell across every shard.
  std::uint64_t merged(std::uint32_t slot) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return merged_locked(slot);
  }

  /// Merged double cell: each shard's contribution is a bit-cast double.
  double merged_double(std::uint32_t slot) const {
    std::lock_guard<std::mutex> lock(mutex_);
    double total = 0.0;
    for (const auto& shard : shards_) {
      total += std::bit_cast<double>((*shard)[slot].load(std::memory_order_relaxed));
    }
    return total;
  }

  MetricsSnapshot snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    for (const auto& [name, c] : counters_) {
      snap.counters.emplace_back(name, merged_locked(c->slot_));
    }
    for (const auto& [name, g] : gauges_) {
      snap.gauges.emplace_back(name, g->value());
    }
    for (const auto& [name, h] : histograms_) {
      HistogramSnapshot hs;
      hs.name = name;
      hs.buckets.resize(Histogram::kNumBuckets);
      for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b) {
        hs.buckets[b] = merged_locked(h->slot_ + static_cast<std::uint32_t>(b));
      }
      hs.count = merged_locked(h->slot_ + Histogram::kNumBuckets);
      double sum = 0.0;
      for (const auto& shard : shards_) {
        const auto& cell = (*shard)[h->slot_ + Histogram::kNumBuckets + 1];
        sum += std::bit_cast<double>(cell.load(std::memory_order_relaxed));
      }
      hs.sum = sum;
      snap.histograms.push_back(std::move(hs));
    }
    return snap;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& shard : shards_) {
      for (auto& cell : *shard) cell.store(0, std::memory_order_relaxed);
    }
    for (const auto& [name, g] : gauges_) {
      (void)name;
      g->bits_.store(0, std::memory_order_relaxed);
    }
  }

  void set_path(const std::string& path) {
    std::lock_guard<std::mutex> lock(mutex_);
    path_ = path;
  }

  std::string path() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return path_;
  }

 private:
  Registry() = default;

  std::uint32_t allocate(std::size_t cells) {
    if (next_slot_ + cells > kSlotCapacity) {
      throw std::length_error("obs: metric slot space exhausted");
    }
    const auto slot = static_cast<std::uint32_t>(next_slot_);
    next_slot_ += cells;
    return slot;
  }

  Cells& create_shard() {
    auto shard = std::make_unique<Cells>();  // value-initialized: all zero
    Cells& ref = *shard;
    std::lock_guard<std::mutex> lock(mutex_);
    shards_.push_back(std::move(shard));
    return ref;
  }

  std::uint64_t merged_locked(std::uint32_t slot) const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += (*shard)[slot].load(std::memory_order_relaxed);
    }
    return total;
  }

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::vector<std::unique_ptr<Cells>> shards_;
  std::size_t next_slot_ = 0;
  std::string path_;
};

namespace {

void flush_at_exit() { flush_metrics(); }

/// HSD_METRICS=<path> enables collection for the whole process. The
/// initializer lives in this TU, which is linked into any binary that
/// touches a metric (they all reference detail::g_metrics_enabled).
const bool g_env_init = [] {
  if (const char* path = std::getenv(reg::kEnvMetrics)) {
    if (*path != '\0') enable_metrics(path);
  }
  return true;
}();

}  // namespace

void Counter::add(std::uint64_t n) {
  if (!metrics_enabled()) return;
  Registry::instance().local_cells()[slot_].fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const { return Registry::instance().merged(slot_); }

void Gauge::set(double v) {
  if (!metrics_enabled()) return;
  bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
}

double Gauge::value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

const double* Histogram::bounds() {
  static const std::array<double, kNumBounds> bounds = [] {
    std::array<double, kNumBounds> b{};
    for (std::size_t i = 0; i < kNumBounds; ++i) {
      b[i] = std::pow(10.0, -6.0 + static_cast<double>(i) / 4.0);
    }
    return b;
  }();
  return bounds.data();
}

void Histogram::observe(double v) {
  if (!metrics_enabled()) return;
  const double* b = bounds();
  const std::size_t bucket =
      static_cast<std::size_t>(std::lower_bound(b, b + kNumBounds, v) - b);
  Cells& cells = Registry::instance().local_cells();
  cells[slot_ + bucket].fetch_add(1, std::memory_order_relaxed);
  cells[slot_ + kNumBuckets].fetch_add(1, std::memory_order_relaxed);
  // The sum cell is written only by its owning thread; the relaxed
  // load/store pair is a plain single-writer accumulation that snapshot
  // readers observe without tearing.
  std::atomic<std::uint64_t>& sum = cells[slot_ + kNumBuckets + 1];
  const double cur = std::bit_cast<double>(sum.load(std::memory_order_relaxed));
  sum.store(std::bit_cast<std::uint64_t>(cur + v), std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  return Registry::instance().merged(slot_ + kNumBuckets);
}

double Histogram::sum() const {
  return Registry::instance().merged_double(slot_ + kNumBuckets + 1);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(kNumBuckets);
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    out[b] = Registry::instance().merged(slot_ + static_cast<std::uint32_t>(b));
  }
  return out;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0 || buckets.empty()) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // A strictly positive target makes q = 0 resolve to the first *occupied*
  // bucket instead of the lower edge of an empty bucket 0.
  const double target =
      std::max(q * static_cast<double>(count), std::numeric_limits<double>::min());
  const double* b = Histogram::bounds();
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    cum += buckets[i];
    if (static_cast<double>(cum) < target) continue;
    if (i >= Histogram::kNumBounds) break;  // overflow: saturate below
    const double lower = i == 0 ? 0.0 : b[i - 1];
    const double upper = b[i];
    const double into_bucket =
        target - static_cast<double>(cum - buckets[i]);
    return lower + (upper - lower) * into_bucket / static_cast<double>(buckets[i]);
  }
  return b[Histogram::kNumBounds - 1];
}

Counter& counter(std::string_view name) {
  return Registry::instance().get_counter(name);
}

Gauge& gauge(std::string_view name) { return Registry::instance().get_gauge(name); }

Histogram& histogram(std::string_view name) {
  return Registry::instance().get_histogram(name);
}

MetricsSnapshot metrics_snapshot() { return Registry::instance().snapshot(); }

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

}  // namespace

void write_metrics_json(std::ostream& os, const MetricsSnapshot& snap) {
  const std::streamsize old_precision = os.precision(15);
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    os << (i ? ",\n    " : "\n    ");
    write_json_string(os, snap.counters[i].first);
    os << ": " << snap.counters[i].second;
  }
  os << (snap.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    os << (i ? ",\n    " : "\n    ");
    write_json_string(os, snap.gauges[i].first);
    os << ": " << snap.gauges[i].second;
  }
  os << (snap.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSnapshot& h = snap.histograms[i];
    os << (i ? ",\n    " : "\n    ");
    write_json_string(os, h.name);
    os << ": {\"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"p50\": " << h.quantile(0.50) << ", \"p95\": " << h.quantile(0.95)
       << ", \"p99\": " << h.quantile(0.99) << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      os << (b ? ", " : "") << "{\"le\": ";
      if (b < Histogram::kNumBounds) {
        os << Histogram::bounds()[b];
      } else {
        os << "\"+Inf\"";
      }
      os << ", \"count\": " << h.buckets[b] << "}";
    }
    os << "]}";
  }
  os << (snap.histograms.empty() ? "" : "\n  ") << "}\n}\n";
  os.precision(old_precision);
}

void enable_metrics(const std::string& path) {
  static std::once_flag at_exit_once;
  Registry::instance().set_path(path);
  detail::g_metrics_enabled.store(true, std::memory_order_relaxed);
  if (!path.empty()) {
    std::call_once(at_exit_once, [] { std::atexit(flush_at_exit); });
  }
}

void disable_metrics() {
  detail::g_metrics_enabled.store(false, std::memory_order_relaxed);
}

void reset_metrics() { Registry::instance().reset(); }

bool flush_metrics() {
  const std::string path = Registry::instance().path();
  if (path.empty()) return false;
  std::ofstream os(path);
  if (!os) return false;
  write_metrics_json(os, metrics_snapshot());
  return static_cast<bool>(os);
}

}  // namespace hsd::obs
