#pragma once
// Minimal JSON reader for validating the observability exports (Chrome
// traces, metrics snapshots, JSONL round reports) from tests and tools.
// Supports the full JSON value grammar minus \u escapes; numbers are
// doubles. Not a streaming parser — intended for small documents.

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace hsd::obs::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Value() = default;
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double d) : kind_(Kind::kNumber), number_(d) {}
  explicit Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  explicit Value(Array a);
  explicit Value(Object o);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Typed accessors; throw std::runtime_error on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; throws if not an object or the key is missing.
  const Value& at(const std::string& key) const;
  /// True when this is an object containing `key`.
  bool contains(const std::string& key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parses one JSON document; throws std::runtime_error (with an offset) on
/// malformed input or trailing garbage.
Value parse(std::string_view text);

}  // namespace hsd::obs::json
