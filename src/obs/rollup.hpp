#pragma once
// Fleet metrics rollup: aggregates per-shard metrics into fleet totals.
//
// The serving fleet registers each shard's metrics under
// "<head>/shard<N>/<tail>" (e.g. "serve/shard3/cache_hits"). rollup_shards
// collapses every such family into one "<head>/fleet/<tail>" entry —
// counters and gauges sum, histograms merge bucket-wise (so the log-bucket
// quantile estimator keeps working on the merged distribution) — while the
// input snapshot retains the per-shard breakdowns. Aggregation iterates the
// snapshot's name-sorted entries into a std::map, so the rollup order is
// deterministic — a requirement the no-unordered-route-agg lint rule
// enforces for every routing/aggregation module.

#include <cstdint>
#include <optional>
#include <string>

#include "obs/metrics.hpp"

namespace hsd::obs {

/// Decomposition of a per-shard metric name "<head>/shard<N>/<tail>".
struct ShardMetricName {
  std::string head;      ///< prefix before "/shard<N>" (e.g. "serve")
  std::uint32_t shard;   ///< shard index N
  std::string tail;      ///< metric name after the shard component
};

/// Parses "<head>/shard<N>/<tail>"; nullopt when `name` does not contain a
/// "/shard<digits>/" component. Only the first such component splits.
std::optional<ShardMetricName> parse_shard_metric(const std::string& name);

/// Aggregates every per-shard family in `in` into "<head>/fleet/<tail>"
/// entries: counters and gauges sum across shards, histograms merge
/// count/sum/buckets. Entries without a shard component are ignored. The
/// result contains only the aggregated fleet entries (sorted by name);
/// callers that want per-shard breakdowns keep the original snapshot.
MetricsSnapshot rollup_shards(const MetricsSnapshot& in);

}  // namespace hsd::obs
