#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace hsd::obs::json {

Value::Value(Array a)
    : kind_(Kind::kArray), array_(std::make_shared<Array>(std::move(a))) {}

Value::Value(Object o)
    : kind_(Kind::kObject), object_(std::make_shared<Object>(std::move(o))) {}

namespace {

[[noreturn]] void fail(const std::string& what, std::size_t pos) {
  throw std::runtime_error("json: " + what + " at offset " + std::to_string(pos));
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    const Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage", pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'", pos_);
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string());
    if (consume_literal("true")) return Value(true);
    if (consume_literal("false")) return Value(false);
    if (consume_literal("null")) return Value();
    return parse_number();
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(obj));
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        default: fail("unsupported escape", pos_ - 1);
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid value", pos_);
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) fail("invalid number", start);
    return Value(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void kind_error(const char* want) {
  throw std::runtime_error(std::string("json: value is not a ") + want);
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool");
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("number");
  return number_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) kind_error("string");
  return string_;
}

const Array& Value::as_array() const {
  if (kind_ != Kind::kArray) kind_error("array");
  return *array_;
}

const Object& Value::as_object() const {
  if (kind_ != Kind::kObject) kind_error("object");
  return *object_;
}

const Value& Value::at(const std::string& key) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) throw std::runtime_error("json: missing key '" + key + "'");
  return it->second;
}

bool Value::contains(const std::string& key) const {
  return kind_ == Kind::kObject && object_->count(key) > 0;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace hsd::obs::json
