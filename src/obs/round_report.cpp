#include "obs/round_report.hpp"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "common/registry.hpp"

namespace hsd::obs {

RoundReporter::RoundReporter(const std::string& path) {
  if (path.empty()) return;
  auto os = std::make_shared<std::ofstream>(path);
  if (!*os) {
    throw std::runtime_error("RoundReporter: cannot open " + path);
  }
  out_ = std::move(os);
}

RoundReporter RoundReporter::from_path_or_env(const std::string& path) {
  if (!path.empty()) return RoundReporter(path);
  if (const char* env = std::getenv(reg::kEnvRoundLog)) {
    if (*env != '\0') return RoundReporter(env);
  }
  return RoundReporter();
}

void RoundReporter::write(const RoundRecord& r) {
  if (!out_) return;
  std::ostream& os = *out_;
  os << "{\"round\": " << r.round << ", \"labeled\": " << r.labeled
     << ", \"oracle_calls\": " << r.oracle_calls
     << ", \"batch_hotspots\": " << r.batch_hotspots
     << ", \"batch_nonhotspots\": " << r.batch_nonhotspots
     << ", \"temperature\": " << r.temperature << ", \"ece\": " << r.ece
     << ", \"tpr\": " << r.tpr << ", \"fpr\": " << r.fpr
     << ", \"query_seconds\": " << r.query_seconds
     << ", \"calibration_seconds\": " << r.calibration_seconds
     << ", \"scoring_seconds\": " << r.scoring_seconds
     << ", \"labeling_seconds\": " << r.labeling_seconds
     << ", \"finetune_seconds\": " << r.finetune_seconds << "}\n";
  os.flush();
}

}  // namespace hsd::obs
