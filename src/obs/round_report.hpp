#pragma once
// Per-round active-learning telemetry: one JSONL record per sampling
// iteration, capturing exactly the quantities the paper's figures plot
// (label spend and quality per round) plus where the round's wall time
// went. The framework fills a RoundRecord per iteration and the reporter
// appends it to the configured file.
//
// Off by default. Enabled by FrameworkConfig::round_log_path or, when that
// is empty, the HSD_ROUND_LOG=<path> environment variable.
//
// JSONL schema (one object per line, all keys always present):
//   round              1-based iteration index
//   labeled            |L| after this round's batch was absorbed
//   oracle_calls       cumulative litho-oracle labels bought by this run
//   batch_hotspots     hotspots in this round's freshly labeled batch
//   batch_nonhotspots  clean clips in this round's batch
//   temperature        T fitted on V0 this round
//   ece                expected calibration error on V0 (calibrated probs)
//   tpr, fpr           operating point on V0 at the decision threshold
//   query_seconds      density ranking + query-set assembly
//   calibration_seconds  validation forward + temperature fit
//   scoring_seconds    query forward + batch selection
//   labeling_seconds   litho oracle on the selected batch
//   finetune_seconds   fine-tuning on the grown L

#include <cstddef>
#include <memory>
#include <string>

namespace hsd::obs {

struct RoundRecord {
  std::size_t round = 0;
  std::size_t labeled = 0;
  std::size_t oracle_calls = 0;
  std::size_t batch_hotspots = 0;
  std::size_t batch_nonhotspots = 0;
  double temperature = 1.0;
  double ece = 0.0;
  double tpr = 0.0;
  double fpr = 0.0;
  double query_seconds = 0.0;
  double calibration_seconds = 0.0;
  double scoring_seconds = 0.0;
  double labeling_seconds = 0.0;
  double finetune_seconds = 0.0;
};

/// Appends RoundRecords to a JSONL file. A default-constructed reporter is
/// disabled and write() is a no-op.
class RoundReporter {
 public:
  RoundReporter() = default;
  /// Opens `path` for writing (truncating). An empty path leaves the
  /// reporter disabled; an unwritable path throws std::runtime_error.
  explicit RoundReporter(const std::string& path);

  /// Reporter for `path` when non-empty, else for $HSD_ROUND_LOG, else
  /// disabled.
  static RoundReporter from_path_or_env(const std::string& path);

  bool enabled() const { return out_ != nullptr; }

  /// Serializes one record as a JSON line and flushes it.
  void write(const RoundRecord& record);

 private:
  std::shared_ptr<std::ostream> out_;
};

}  // namespace hsd::obs
