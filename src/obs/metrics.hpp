#pragma once
// Lock-cheap metrics registry: counters, gauges, and histograms with fixed
// log-spaced buckets, exported as a JSON snapshot.
//
// Hot-path writes are uncontended: every thread gets its own shard of
// atomic cells (created on first touch), and counter/histogram updates are
// relaxed atomic adds to the caller's shard only. A snapshot merges all
// shards; because it reads with relaxed loads while writers may still be
// running, a mid-flight snapshot is a consistent lower bound, and any
// snapshot taken after a fork/join boundary (TaskGroup::wait /
// parallel_for return) sees exact totals. Gauges are last-writer-wins and
// live in one global cell per gauge.
//
// Everything is off by default. `HSD_METRICS=<path>` enables collection at
// process start and writes the JSON snapshot to <path> at exit;
// enable_metrics() does the same programmatically. When disabled, every
// update is a single relaxed atomic load and a branch.
//
// Call-site idiom (the function-local static makes the name lookup a
// one-time cost):
//
//   static obs::Counter& calls = obs::counter("litho/oracle_calls");
//   calls.add(batch.size());

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hsd::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace detail

/// True when metrics collection is on (relaxed load; safe from any thread).
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Monotonic counter. add() is a no-op while metrics are disabled.
class Counter {
 public:
  void add(std::uint64_t n = 1);
  /// Merged total across all thread shards.
  std::uint64_t value() const;

 private:
  friend class Registry;
  explicit Counter(std::uint32_t slot) : slot_(slot) {}
  std::uint32_t slot_;
};

/// Last-writer-wins double value (not sharded; writes are rare).
class Gauge {
 public:
  void set(double v);
  double value() const;

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<std::uint64_t> bits_{0};
};

/// Histogram over fixed log-spaced buckets covering [1e-6, 1e2] with four
/// buckets per decade, plus an underflow and an overflow bucket. Designed
/// for durations in seconds (1 us .. 100 s) but usable for any positive
/// quantity in that range.
class Histogram {
 public:
  /// Number of finite upper bounds (underflow shares bounds()[0]).
  static constexpr std::size_t kNumBounds = 33;
  /// Total bucket count: kNumBounds finite buckets + 1 overflow bucket.
  static constexpr std::size_t kNumBuckets = kNumBounds + 1;

  /// The shared upper-bound edges: bounds()[i] = 10^(-6 + i/4).
  static const double* bounds();

  void observe(double v);
  std::uint64_t count() const;
  double sum() const;
  /// Per-bucket counts (not cumulative), merged across shards.
  std::vector<std::uint64_t> bucket_counts() const;

 private:
  friend class Registry;
  explicit Histogram(std::uint32_t slot) : slot_(slot) {}
  // Slot layout: [slot_ .. slot_+kNumBuckets) buckets, then count, then
  // the double-bit-cast sum cell.
  std::uint32_t slot_;
};

/// Finds or creates the named metric. References stay valid for the
/// process lifetime. Throws std::length_error if the fixed slot space
/// (kSlotCapacity cells per thread) is exhausted.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  std::vector<std::uint64_t> buckets;  ///< kNumBuckets entries

  /// Quantile estimate from the log-bucket counts: walks the cumulative
  /// distribution to the bucket holding the q-th sample and interpolates
  /// linearly inside it (bucket 0 starts at 0). q is clamped to [0, 1].
  /// Samples in the overflow bucket report the largest finite bound — the
  /// estimate saturates there rather than invent a value. Returns 0 for an
  /// empty histogram. Accuracy is bounded by the bucket width: at four
  /// buckets per decade, at most 10^0.25 ≈ 1.78x of the true quantile.
  double quantile(double q) const;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Merged view of every registered metric (sorted by name).
MetricsSnapshot metrics_snapshot();

/// Serializes a snapshot as a JSON object:
///   {"counters": {...}, "gauges": {...},
///    "histograms": {"name": {"count": N, "sum": S,
///                            "p50": Q, "p95": Q, "p99": Q,
///                            "buckets": [{"le": bound|"+Inf", "count": N}...]}}}
/// The pNN fields are HistogramSnapshot::quantile() estimates, so latency
/// percentiles are first-class in every exported metrics file.
void write_metrics_json(std::ostream& os, const MetricsSnapshot& snap);

/// Turns collection on. A non-empty `path` is remembered and the snapshot
/// is written there at process exit (and by flush_metrics()).
void enable_metrics(const std::string& path = "");
void disable_metrics();

/// Zeroes every cell of every metric. Test hook; callers must be quiesced.
void reset_metrics();

/// Writes the snapshot to the configured path now. False when no path is
/// configured or the file cannot be written.
bool flush_metrics();

}  // namespace hsd::obs
