#include "obs/trace.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "common/registry.hpp"

namespace hsd::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t begin_ns = 0;
  std::uint64_t dur_ns = 0;
};

// Per-thread ring capacity. At 24 bytes per event this caps a very chatty
// thread at ~1.5 MiB; older events are overwritten and counted as dropped.
constexpr std::size_t kRingCapacity = std::size_t{1} << 16;

/// One thread's span storage. Owned by the registry (never freed), so the
/// exporter can still read buffers of threads that have exited. The mutex
/// is only ever contended between the owning thread and an exporter.
struct TraceBuffer {
  std::mutex mutex;
  std::uint32_t tid = 0;
  std::string thread_name;
  std::vector<TraceEvent> events;  // ring once kRingCapacity is reached
  std::size_t next = 0;            // overwrite position when full
  std::uint64_t dropped = 0;

  void push(const TraceEvent& ev) {
    std::lock_guard<std::mutex> lock(mutex);
    if (events.size() < kRingCapacity) {
      events.push_back(ev);
      return;
    }
    events[next] = ev;
    next = (next + 1) % kRingCapacity;
    ++dropped;
  }
};

class TraceRegistry {
 public:
  static TraceRegistry& instance() {
    // hsd-lint: allow(no-mutable-static) — intentional leaked singleton
    static TraceRegistry* r = new TraceRegistry;  // leaked: no exit-order races
    return *r;
  }

  TraceBuffer& local_buffer() {
    thread_local TraceBuffer* buffer = nullptr;
    if (!buffer) buffer = &create_buffer();
    return *buffer;
  }

  void write(std::ostream& os) {
    std::lock_guard<std::mutex> lock(mutex_);
    // 15 significant digits keep the microsecond timestamps order-exact
    // when a consumer parses them back as doubles.
    const std::streamsize old_precision = os.precision(15);
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buf_lock(buffer->mutex);
      if (!buffer->thread_name.empty()) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
           << buffer->tid << ", \"args\": {\"name\": \"" << buffer->thread_name
           << "\"}}";
      }
      for (const TraceEvent& ev : buffer->events) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "  {\"name\": \"" << ev.name << "\", \"ph\": \"X\", \"cat\": \"hsd\""
           << ", \"pid\": 1, \"tid\": " << buffer->tid
           << ", \"ts\": " << static_cast<double>(ev.begin_ns) / 1e3
           << ", \"dur\": " << static_cast<double>(ev.dur_ns) / 1e3 << "}";
      }
    }
    os << "\n]}\n";
    os.precision(old_precision);
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buf_lock(buffer->mutex);
      buffer->events.clear();
      buffer->next = 0;
      buffer->dropped = 0;
    }
  }

  std::size_t event_count() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t total = 0;
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buf_lock(buffer->mutex);
      total += buffer->events.size();
    }
    return total;
  }

  std::size_t dropped_count() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t total = 0;
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buf_lock(buffer->mutex);
      total += buffer->dropped;
    }
    return total;
  }

  void set_path(const std::string& path) {
    std::lock_guard<std::mutex> lock(mutex_);
    path_ = path;
  }

  std::string path() {
    std::lock_guard<std::mutex> lock(mutex_);
    return path_;
  }

 private:
  TraceRegistry() = default;

  TraceBuffer& create_buffer() {
    auto buffer = std::make_unique<TraceBuffer>();
    TraceBuffer& ref = *buffer;
    std::lock_guard<std::mutex> lock(mutex_);
    ref.tid = static_cast<std::uint32_t>(buffers_.size());
    buffers_.push_back(std::move(buffer));
    return ref;
  }

  std::mutex mutex_;
  std::vector<std::unique_ptr<TraceBuffer>> buffers_;
  std::string path_;
};

void flush_at_exit() { flush_trace(); }

/// HSD_TRACE=<path> enables tracing for the whole process. Lives in this
/// TU, which any Span user links (they reference detail::g_trace_enabled).
const bool g_env_init = [] {
  if (const char* path = std::getenv(reg::kEnvTrace)) {
    if (*path != '\0') enable_trace(path);
  }
  return true;
}();

}  // namespace

namespace detail {

std::uint64_t trace_now_ns() {
  // First call pins the epoch; all timestamps are relative to it so the
  // exported ts values stay small.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

void record_span(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns) {
  TraceEvent ev;
  ev.name = name;
  ev.begin_ns = begin_ns;
  ev.dur_ns = end_ns >= begin_ns ? end_ns - begin_ns : 0;
  TraceRegistry::instance().local_buffer().push(ev);
}

}  // namespace detail

void set_current_thread_name(const std::string& name) {
  TraceBuffer& buffer = TraceRegistry::instance().local_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.thread_name = name;
}

void enable_trace(const std::string& path) {
  static std::once_flag at_exit_once;
  TraceRegistry::instance().set_path(path);
  detail::trace_now_ns();  // pin the epoch before the first span
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
  if (!path.empty()) {
    std::call_once(at_exit_once, [] { std::atexit(flush_at_exit); });
  }
}

void disable_trace() {
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void reset_trace() { TraceRegistry::instance().reset(); }

std::size_t trace_event_count() { return TraceRegistry::instance().event_count(); }

std::size_t trace_dropped_count() {
  return TraceRegistry::instance().dropped_count();
}

void write_chrome_trace(std::ostream& os) { TraceRegistry::instance().write(os); }

bool flush_trace() {
  const std::string path = TraceRegistry::instance().path();
  if (path.empty()) return false;
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  return static_cast<bool>(os);
}

}  // namespace hsd::obs
