#include "obs/rollup.hpp"

#include <cctype>
#include <map>
#include <utility>

namespace hsd::obs {

std::optional<ShardMetricName> parse_shard_metric(const std::string& name) {
  static const std::string kTag = "/shard";
  std::size_t pos = 0;
  while ((pos = name.find(kTag, pos)) != std::string::npos) {
    std::size_t digits = pos + kTag.size();
    std::size_t end = digits;
    while (end < name.size() &&
           std::isdigit(static_cast<unsigned char>(name[end])) != 0) {
      ++end;
    }
    // Needs at least one digit and a following "/<tail>".
    if (end > digits && end + 1 < name.size() && name[end] == '/') {
      ShardMetricName out;
      out.head = name.substr(0, pos);
      out.shard = static_cast<std::uint32_t>(
          std::stoul(name.substr(digits, end - digits)));
      out.tail = name.substr(end + 1);
      return out;
    }
    pos += kTag.size();
  }
  return std::nullopt;
}

namespace {

std::string fleet_name(const ShardMetricName& n) {
  return n.head + "/fleet/" + n.tail;
}

}  // namespace

MetricsSnapshot rollup_shards(const MetricsSnapshot& in) {
  MetricsSnapshot out;

  std::map<std::string, std::uint64_t> counters;
  for (const auto& [name, value] : in.counters) {
    if (const auto parsed = parse_shard_metric(name)) {
      counters[fleet_name(*parsed)] += value;
    }
  }
  out.counters.assign(counters.begin(), counters.end());

  std::map<std::string, double> gauges;
  for (const auto& [name, value] : in.gauges) {
    if (const auto parsed = parse_shard_metric(name)) {
      gauges[fleet_name(*parsed)] += value;
    }
  }
  out.gauges.assign(gauges.begin(), gauges.end());

  std::map<std::string, HistogramSnapshot> histograms;
  for (const auto& h : in.histograms) {
    const auto parsed = parse_shard_metric(h.name);
    if (!parsed) continue;
    HistogramSnapshot& merged = histograms[fleet_name(*parsed)];
    if (merged.buckets.empty()) {
      merged.name = fleet_name(*parsed);
      merged.buckets.assign(h.buckets.size(), 0);
    }
    merged.count += h.count;
    merged.sum += h.sum;
    const std::size_t n = std::min(merged.buckets.size(), h.buckets.size());
    for (std::size_t i = 0; i < n; ++i) merged.buckets[i] += h.buckets[i];
  }
  out.histograms.reserve(histograms.size());
  for (auto& kv : histograms) out.histograms.push_back(std::move(kv.second));

  return out;
}

}  // namespace hsd::obs
