#pragma once
// Diagonal-covariance Gaussian mixture model fitted by EM, used in
// Algorithm 2 to compute the posterior probability of each unlabeled clip:
// low-density clips are outliers of the dominant (non-hotspot) pattern
// population and therefore "hotspot-like", seeding both the initial
// training set and each iteration's query set.

#include <cstddef>
#include <vector>

#include "stats/rng.hpp"

namespace hsd::gmm {

struct GmmConfig {
  std::size_t components = 4;
  std::size_t max_iters = 100;
  /// Stop when mean log-likelihood improves by less than this.
  double tol = 1e-5;
  /// Variance floor added to every dimension (numerical stability).
  double reg = 1e-6;
};

/// A fitted mixture of axis-aligned Gaussians.
class GaussianMixture {
 public:
  /// Fits by k-means++-seeded EM on row-major data. Requires at least as
  /// many samples as components.
  static GaussianMixture fit(const std::vector<std::vector<double>>& data,
                             const GmmConfig& config, hsd::stats::Rng& rng);

  /// Reconstructs a fitted mixture from explicit parameters (e.g. restored
  /// from a checkpoint). Shapes are validated and the cached normalization
  /// constants recomputed; the result scores densities identically to the
  /// mixture the parameters came from.
  static GaussianMixture from_parameters(std::vector<double> weights,
                                         std::vector<std::vector<double>> means,
                                         std::vector<std::vector<double>> variances);

  /// Log density log p(x) under the mixture.
  double log_density(const std::vector<double>& x) const;

  /// Component responsibilities p(z = c | x) (sums to 1).
  std::vector<double> posterior(const std::vector<double>& x) const;

  /// Log densities for a batch.
  std::vector<double> log_densities(const std::vector<std::vector<double>>& data) const;

  std::size_t components() const { return weights_.size(); }
  std::size_t dimension() const { return means_.empty() ? 0 : means_[0].size(); }
  const std::vector<double>& weights() const { return weights_; }
  const std::vector<std::vector<double>>& means() const { return means_; }
  const std::vector<std::vector<double>>& variances() const { return variances_; }
  double final_log_likelihood() const { return final_log_likelihood_; }
  std::size_t iterations() const { return iterations_; }
  /// Mean log-likelihood per EM iteration (monotone non-decreasing).
  const std::vector<double>& log_likelihood_history() const { return history_; }

 private:
  GaussianMixture() = default;
  /// Per-component log N(x | mean_c, var_c) + log weight_c.
  double component_log_joint(std::size_t c, const std::vector<double>& x) const;

  std::vector<double> weights_;
  std::vector<std::vector<double>> means_;
  std::vector<std::vector<double>> variances_;
  std::vector<double> log_norm_;  // cached -0.5*(d log 2pi + sum log var)
  double final_log_likelihood_ = 0.0;
  std::size_t iterations_ = 0;
  std::vector<double> history_;
};

}  // namespace hsd::gmm
