#include "gmm/gmm.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "stats/kmeans.hpp"

namespace hsd::gmm {

namespace {

double log_sum_exp(const std::vector<double>& v) {
  double mx = v[0];
  for (double x : v) mx = std::max(mx, x);
  double s = 0.0;
  for (double x : v) s += std::exp(x - mx);
  return mx + std::log(s);
}

}  // namespace

double GaussianMixture::component_log_joint(std::size_t c,
                                            const std::vector<double>& x) const {
  const auto& mean = means_[c];
  const auto& var = variances_[c];
  double quad = 0.0;
  for (std::size_t j = 0; j < mean.size(); ++j) {
    const double d = x[j] - mean[j];
    quad += d * d / var[j];
  }
  return std::log(weights_[c]) + log_norm_[c] - 0.5 * quad;
}

double GaussianMixture::log_density(const std::vector<double>& x) const {
  if (x.size() != dimension()) throw std::invalid_argument("GaussianMixture: bad dim");
  std::vector<double> lj(components());
  for (std::size_t c = 0; c < components(); ++c) lj[c] = component_log_joint(c, x);
  return log_sum_exp(lj);
}

std::vector<double> GaussianMixture::posterior(const std::vector<double>& x) const {
  if (x.size() != dimension()) throw std::invalid_argument("GaussianMixture: bad dim");
  std::vector<double> lj(components());
  for (std::size_t c = 0; c < components(); ++c) lj[c] = component_log_joint(c, x);
  const double lse = log_sum_exp(lj);
  std::vector<double> post(components());
  for (std::size_t c = 0; c < components(); ++c) post[c] = std::exp(lj[c] - lse);
  return post;
}

std::vector<double> GaussianMixture::log_densities(
    const std::vector<std::vector<double>>& data) const {
  std::vector<double> out;
  out.reserve(data.size());
  for (const auto& x : data) out.push_back(log_density(x));
  return out;
}

GaussianMixture GaussianMixture::from_parameters(
    std::vector<double> weights, std::vector<std::vector<double>> means,
    std::vector<std::vector<double>> variances) {
  const std::size_t k = weights.size();
  if (k == 0 || means.size() != k || variances.size() != k) {
    throw std::invalid_argument("GaussianMixture::from_parameters: component mismatch");
  }
  const std::size_t dim = means[0].size();
  for (std::size_t c = 0; c < k; ++c) {
    if (means[c].size() != dim || variances[c].size() != dim) {
      throw std::invalid_argument("GaussianMixture::from_parameters: ragged parameters");
    }
    if (weights[c] <= 0.0) {
      throw std::invalid_argument("GaussianMixture::from_parameters: non-positive weight");
    }
    for (double v : variances[c]) {
      if (v <= 0.0) {
        throw std::invalid_argument(
            "GaussianMixture::from_parameters: non-positive variance");
      }
    }
  }
  GaussianMixture g;
  g.weights_ = std::move(weights);
  g.means_ = std::move(means);
  g.variances_ = std::move(variances);
  g.log_norm_.assign(k, 0.0);
  const double log2pi = std::log(2.0 * std::numbers::pi);
  for (std::size_t c = 0; c < k; ++c) {
    double sum_log_var = 0.0;
    for (double v : g.variances_[c]) sum_log_var += std::log(v);
    g.log_norm_[c] = -0.5 * (static_cast<double>(dim) * log2pi + sum_log_var);
  }
  return g;
}

GaussianMixture GaussianMixture::fit(const std::vector<std::vector<double>>& data,
                                     const GmmConfig& config, hsd::stats::Rng& rng) {
  const std::size_t n = data.size();
  const std::size_t k = config.components;
  if (n == 0) throw std::invalid_argument("GaussianMixture::fit: empty data");
  if (k == 0 || k > n) throw std::invalid_argument("GaussianMixture::fit: bad components");
  const std::size_t dim = data[0].size();

  GaussianMixture g;
  g.weights_.assign(k, 1.0 / static_cast<double>(k));
  g.means_.assign(k, std::vector<double>(dim, 0.0));
  g.variances_.assign(k, std::vector<double>(dim, 1.0));
  g.log_norm_.assign(k, 0.0);

  // Global variance for initialization floors.
  std::vector<double> gmean(dim, 0.0);
  for (const auto& row : data) {
    if (row.size() != dim) throw std::invalid_argument("GaussianMixture::fit: ragged data");
    for (std::size_t j = 0; j < dim; ++j) gmean[j] += row[j];
  }
  for (double& m : gmean) m /= static_cast<double>(n);
  std::vector<double> gvar(dim, 0.0);
  for (const auto& row : data) {
    for (std::size_t j = 0; j < dim; ++j) {
      const double d = row[j] - gmean[j];
      gvar[j] += d * d;
    }
  }
  for (double& v : gvar) v = std::max(v / static_cast<double>(n), config.reg);

  // k-means++ seeding for the means; variances start at the global variance.
  const auto seeds = hsd::stats::kmeanspp_seed(data, k, rng);
  for (std::size_t c = 0; c < k; ++c) {
    g.means_[c] = data[seeds[c]];
    g.variances_[c] = gvar;
  }

  const double log2pi = std::log(2.0 * std::numbers::pi);
  auto refresh_log_norm = [&]() {
    for (std::size_t c = 0; c < k; ++c) {
      double sum_log_var = 0.0;
      for (double v : g.variances_[c]) sum_log_var += std::log(v);
      g.log_norm_[c] = -0.5 * (static_cast<double>(dim) * log2pi + sum_log_var);
    }
  };
  refresh_log_norm();

  std::vector<std::vector<double>> resp(n, std::vector<double>(k, 0.0));
  double prev_ll = -std::numeric_limits<double>::infinity();

  for (std::size_t iter = 0; iter < config.max_iters; ++iter) {
    // E step.
    double total_ll = 0.0;
    std::vector<double> lj(k);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < k; ++c) lj[c] = g.component_log_joint(c, data[i]);
      const double lse = log_sum_exp(lj);
      total_ll += lse;
      for (std::size_t c = 0; c < k; ++c) resp[i][c] = std::exp(lj[c] - lse);
    }
    const double mean_ll = total_ll / static_cast<double>(n);
    g.history_.push_back(mean_ll);
    g.iterations_ = iter + 1;
    g.final_log_likelihood_ = mean_ll;
    if (mean_ll - prev_ll < config.tol && iter > 0) break;
    prev_ll = mean_ll;

    // M step.
    for (std::size_t c = 0; c < k; ++c) {
      double nk = 0.0;
      for (std::size_t i = 0; i < n; ++i) nk += resp[i][c];
      if (nk < 1e-10) {
        // Dead component: reseed at a random point with global variance.
        const auto pick = static_cast<std::size_t>(
            rng.randint(0, static_cast<std::int64_t>(n) - 1));
        g.means_[c] = data[pick];
        g.variances_[c] = gvar;
        g.weights_[c] = 1.0 / static_cast<double>(n);
        continue;
      }
      g.weights_[c] = nk / static_cast<double>(n);
      for (std::size_t j = 0; j < dim; ++j) {
        double m = 0.0;
        for (std::size_t i = 0; i < n; ++i) m += resp[i][c] * data[i][j];
        g.means_[c][j] = m / nk;
      }
      for (std::size_t j = 0; j < dim; ++j) {
        double v = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d = data[i][j] - g.means_[c][j];
          v += resp[i][c] * d * d;
        }
        g.variances_[c][j] = std::max(v / nk, config.reg);
      }
    }
    // Renormalize weights (reseeded components may have perturbed the sum).
    double wsum = 0.0;
    for (double w : g.weights_) wsum += w;
    for (double& w : g.weights_) w /= wsum;
    refresh_log_norm();
  }
  return g;
}

}  // namespace hsd::gmm
