#pragma once
// Rule-based optical proximity correction (OPC): the classic pre-model-based
// mask fixes — selective upsizing of sub-threshold widths, line-end
// hammerheads, and spacing-aware clamping so corrections never bridge
// neighbors. This is the "hotspot removal" stage downstream of detection
// (the flow of Roseboom et al. the paper's introduction cites): detect with
// the CNN, repair with OPC, re-verify with the litho oracle.
//
// Everything operates on Manhattan rectangles in clip-local coordinates.

#include <vector>

#include "layout/clip.hpp"
#include "litho/oracle.hpp"

namespace hsd::opc {

/// Correction rule set (all dimensions in nm).
struct OpcRules {
  /// Widths at or below this are biased up (per side, `width_bias`).
  layout::Coord min_safe_width = 40;
  /// Per-side bias applied to thin features.
  layout::Coord width_bias = 10;
  /// Line ends shorter than this in the run direction get a hammerhead.
  layout::Coord hammer_length = 30;
  /// Hammerhead extension per side, perpendicular to the run direction.
  layout::Coord hammer_bias = 10;
  /// Never bring two shapes closer than this (bias clamping); gaps already
  /// tighter than this are opened by the spacing-repair rule.
  layout::Coord min_space = 40;
  /// Spacing repair never shrinks a shape's gap-axis extent below this.
  layout::Coord min_keep = 30;
  /// Grid the corrected coordinates are snapped to.
  layout::Coord snap = 5;
};

/// Outcome of correcting one clip.
struct OpcResult {
  layout::Clip corrected;
  std::size_t widened_shapes = 0;   ///< shapes that received a width bias
  std::size_t hammerheads = 0;      ///< line-end serifs added
  std::size_t clamped = 0;          ///< biases reduced to respect min_space
  std::size_t spacing_repairs = 0;  ///< sub-limit gaps opened by edge pull-back
};

/// Applies the rules to a clip. Geometry is re-canonicalized and re-hashed;
/// the window and core are unchanged.
OpcResult correct_clip(const layout::Clip& clip, const OpcRules& rules);

/// Detect-repair-verify convenience: corrects the clip and re-simulates it
/// with `oracle` (counted); returns the corrected clip's hotspot status.
struct RepairOutcome {
  OpcResult opc;
  bool hotspot_before = false;
  bool hotspot_after = false;
};
RepairOutcome repair_and_verify(const layout::Clip& clip, const OpcRules& rules,
                                litho::LithoOracle& oracle);

}  // namespace hsd::opc
