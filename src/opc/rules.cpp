#include "opc/rules.hpp"

#include <algorithm>
#include <stdexcept>

namespace hsd::opc {

namespace {

using layout::Clip;
using layout::Coord;
using layout::Rect;

Coord snap_down(Coord v, Coord snap) {
  return static_cast<Coord>((v / snap) * snap);
}

/// True if placing `candidate` would violate min_space against any shape in
/// `others` it does not already touch (indices != self).
bool violates_spacing(const Rect& candidate, const std::vector<Rect>& others,
                      std::size_t self, Coord min_space) {
  for (std::size_t j = 0; j < others.size(); ++j) {
    if (j == self) continue;
    const Rect& s = others[j];
    if (layout::intersects(candidate, s)) continue;  // touching/merged is allowed
    if (layout::spacing(candidate, s) < min_space) return true;
  }
  return false;
}

/// Expands `r` by `bias` on both sides perpendicular to its run direction,
/// backing off in `snap` steps until spacing rules hold. Returns the final
/// applied per-side bias.
Coord biased_width(Rect& r, Coord bias, const std::vector<Rect>& shapes,
                   std::size_t self, const OpcRules& rules, bool horizontal_run) {
  for (Coord b = bias; b > 0; b = static_cast<Coord>(b - rules.snap)) {
    Rect candidate = r;
    if (horizontal_run) {
      candidate.y0 = static_cast<Coord>(candidate.y0 - b);
      candidate.y1 = static_cast<Coord>(candidate.y1 + b);
    } else {
      candidate.x0 = static_cast<Coord>(candidate.x0 - b);
      candidate.x1 = static_cast<Coord>(candidate.x1 + b);
    }
    if (!violates_spacing(candidate, shapes, self, rules.min_space)) {
      r = candidate;
      return b;
    }
  }
  return 0;
}

/// Builds a hammerhead serif at one line end. `at_low_end` selects the
/// x0/y0 end of the run.
Rect make_hammerhead(const Rect& r, const OpcRules& rules, bool horizontal_run,
                     bool at_low_end) {
  Rect serif = r;
  if (horizontal_run) {
    serif.y0 = static_cast<Coord>(r.y0 - rules.hammer_bias);
    serif.y1 = static_cast<Coord>(r.y1 + rules.hammer_bias);
    if (at_low_end) {
      serif.x1 = static_cast<Coord>(r.x0 + rules.hammer_length);
    } else {
      serif.x0 = static_cast<Coord>(r.x1 - rules.hammer_length);
    }
  } else {
    serif.x0 = static_cast<Coord>(r.x0 - rules.hammer_bias);
    serif.x1 = static_cast<Coord>(r.x1 + rules.hammer_bias);
    if (at_low_end) {
      serif.y1 = static_cast<Coord>(r.y0 + rules.hammer_length);
    } else {
      serif.y0 = static_cast<Coord>(r.y1 - rules.hammer_length);
    }
  }
  return serif;
}

Coord snap_up(Coord v, Coord snap) {
  return static_cast<Coord>(((v + snap - 1) / snap) * snap);
}

/// Rule 0 — spacing repair: pulls the facing edges of pairs closer than
/// min_space apart until the gap is legal, never shrinking a shape's
/// gap-axis extent below min_keep. Returns the number of repaired gaps.
std::size_t repair_spacing(std::vector<Rect>& shapes, const OpcRules& rules) {
  std::size_t repaired = 0;
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    for (std::size_t j = i + 1; j < shapes.size(); ++j) {
      Rect& a = shapes[i];
      Rect& b = shapes[j];
      if (layout::intersects(a, b)) continue;
      const Coord gap = layout::spacing(a, b);
      if (gap >= rules.min_space || gap <= 0) continue;
      const Coord deficit = snap_up(static_cast<Coord>(rules.min_space - gap),
                                    rules.snap);
      // Gap axis: the one with the larger separation.
      Coord dx = 0;
      if (b.x0 > a.x1) {
        dx = static_cast<Coord>(b.x0 - a.x1);
      } else if (a.x0 > b.x1) {
        dx = static_cast<Coord>(a.x0 - b.x1);
      }
      const bool along_x = dx == gap;
      auto extent = [&](const Rect& r) { return along_x ? r.width() : r.height(); };
      auto give = [&](Rect& r, bool pull_high_edge, Coord amount) {
        const Coord can = std::max<Coord>(0, static_cast<Coord>(extent(r) - rules.min_keep));
        const Coord applied = snap_down(std::min(amount, can), rules.snap);
        if (applied <= 0) return Coord{0};
        if (along_x) {
          if (pull_high_edge) {
            r.x1 = static_cast<Coord>(r.x1 - applied);
          } else {
            r.x0 = static_cast<Coord>(r.x0 + applied);
          }
        } else {
          if (pull_high_edge) {
            r.y1 = static_cast<Coord>(r.y1 - applied);
          } else {
            r.y0 = static_cast<Coord>(r.y0 + applied);
          }
        }
        return applied;
      };
      // Which shape is on the low side of the gap axis?
      const bool a_low = along_x ? a.x1 < b.x0 : a.y1 < b.y0;
      Rect& low = a_low ? a : b;
      Rect& high = a_low ? b : a;
      const Rect saved_low = low;
      const Rect saved_high = high;
      Coord opened = give(low, /*pull_high_edge=*/true,
                          static_cast<Coord>((deficit + 1) / 2));
      if (opened < deficit) {
        opened = static_cast<Coord>(
            opened + give(high, /*pull_high_edge=*/false,
                          static_cast<Coord>(deficit - opened)));
      }
      if (opened < deficit) {
        // Second pass on the low shape with whatever is still missing.
        opened = static_cast<Coord>(
            opened + give(low, /*pull_high_edge=*/true,
                          static_cast<Coord>(deficit - opened)));
      }
      if (opened >= deficit) {
        repaired++;
      } else {
        // Partial opening still bridges but costs line width: revert.
        low = saved_low;
        high = saved_high;
      }
    }
  }
  return repaired;
}

}  // namespace

OpcResult correct_clip(const Clip& clip, const OpcRules& rules) {
  if (rules.snap <= 0) throw std::invalid_argument("correct_clip: snap <= 0");
  OpcResult res;
  res.corrected = clip;
  std::vector<Rect>& shapes = res.corrected.shapes;

  // Rule 0: open sub-limit gaps before any upsizing.
  res.spacing_repairs = repair_spacing(shapes, rules);

  const std::size_t original_count = shapes.size();
  std::vector<Rect> serifs;

  for (std::size_t i = 0; i < original_count; ++i) {
    Rect& r = shapes[i];
    const bool horizontal_run = r.width() >= r.height();
    const Coord thickness = horizontal_run ? r.height() : r.width();
    const Coord run = horizontal_run ? r.width() : r.height();

    // Rule 1: selective upsizing of thin features. Near-square contacts/vias
    // are thin along both axes and get biased in both directions.
    if (thickness <= rules.min_safe_width) {
      const Coord applied = biased_width(r, rules.width_bias, shapes, i, rules,
                                         horizontal_run);
      Coord applied_other = 0;
      if (run <= rules.min_safe_width) {
        applied_other = biased_width(r, rules.width_bias, shapes, i, rules,
                                     !horizontal_run);
      }
      if (applied > 0 || applied_other > 0) {
        res.widened_shapes++;
        if (applied < rules.width_bias ||
            (run <= rules.min_safe_width && applied_other < rules.width_bias)) {
          res.clamped++;
        }
      } else {
        res.clamped++;
      }
    }

    // Rule 2: hammerheads on the ends of thin, long runs whose tips are
    // inside the clip (tips on the window boundary continue off-clip).
    if (thickness <= rules.min_safe_width && run >= 2 * rules.hammer_length) {
      for (bool low_end : {true, false}) {
        const Coord tip = horizontal_run ? (low_end ? r.x0 : r.x1)
                                         : (low_end ? r.y0 : r.y1);
        const Coord window_lo = horizontal_run ? clip.window.x0 : clip.window.y0;
        const Coord window_hi = horizontal_run ? clip.window.x1 : clip.window.y1;
        if (tip <= window_lo || tip >= window_hi) continue;
        const Rect serif = make_hammerhead(r, rules, horizontal_run, low_end);
        if (!violates_spacing(serif, shapes, i, rules.min_space)) {
          serifs.push_back(serif);
          res.hammerheads++;
        } else {
          res.clamped++;
        }
      }
    }
  }

  shapes.insert(shapes.end(), serifs.begin(), serifs.end());

  // Snap and clip back into the window.
  for (Rect& r : shapes) {
    r.x0 = snap_down(r.x0, rules.snap);
    r.y0 = snap_down(r.y0, rules.snap);
    r.x1 = snap_down(r.x1, rules.snap);
    r.y1 = snap_down(r.y1, rules.snap);
    r = layout::intersection(r, clip.window);
  }
  std::erase_if(shapes, [](const Rect& r) {
    return !r.valid() || r.width() <= 0 || r.height() <= 0;
  });

  layout::finalize(res.corrected);
  return res;
}

RepairOutcome repair_and_verify(const Clip& clip, const OpcRules& rules,
                                litho::LithoOracle& oracle) {
  RepairOutcome out;
  out.hotspot_before = oracle.label(clip);
  out.opc = correct_clip(clip, rules);
  out.hotspot_after = oracle.label(out.opc.corrected);
  return out;
}

}  // namespace hsd::opc
