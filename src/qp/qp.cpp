#include "qp/qp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hsd::qp {

namespace {

void matvec(const std::vector<double>& s, std::size_t n,
            const std::vector<double>& x, std::vector<double>& out) {
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = s.data() + i * n;
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) acc += row[j] * x[j];
    out[i] = acc;
  }
}

/// Largest-eigenvalue estimate of symmetric S by power iteration.
double spectral_norm_estimate(const std::vector<double>& s, std::size_t n) {
  std::vector<double> v(n, 1.0 / std::sqrt(static_cast<double>(n)));
  std::vector<double> w(n, 0.0);
  double lambda = 1.0;
  for (int it = 0; it < 30; ++it) {
    matvec(s, n, v, w);
    double norm = 0.0;
    for (double x : w) norm += x * x;
    norm = std::sqrt(norm);
    if (norm < 1e-30) return 1.0;
    lambda = norm;
    for (std::size_t i = 0; i < n; ++i) v[i] = w[i] / norm;
  }
  return lambda;
}

}  // namespace

std::vector<double> project_capped_simplex(const std::vector<double>& y, double k) {
  const std::size_t n = y.size();
  if (k < 0.0 || k > static_cast<double>(n)) {
    throw std::invalid_argument("project_capped_simplex: k out of range");
  }
  // x_i(lambda) = clamp(y_i - lambda, 0, 1) is non-increasing in lambda;
  // bisect for sum x = k.
  auto sum_at = [&](double lambda) {
    double s = 0.0;
    for (double v : y) s += std::clamp(v - lambda, 0.0, 1.0);
    return s;
  };
  double lo = *std::min_element(y.begin(), y.end()) - 1.0;  // sum = n >= k
  double hi = *std::max_element(y.begin(), y.end());        // sum = 0 <= k
  for (int it = 0; it < 100; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (sum_at(mid) > k) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double lambda = 0.5 * (lo + hi);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = std::clamp(y[i] - lambda, 0.0, 1.0);
  return x;
}

QpResult solve_box_budget_qp(const std::vector<double>& s, std::size_t n,
                             const std::vector<double>& c, double k,
                             const QpConfig& config) {
  if (s.size() != n * n) throw std::invalid_argument("solve_box_budget_qp: bad S size");
  if (!c.empty() && c.size() != n) throw std::invalid_argument("solve_box_budget_qp: bad c size");
  if (n == 0) return {};

  QpResult res;
  // Feasible start: uniform k/n.
  res.x.assign(n, k / static_cast<double>(n));

  double step = config.step;
  if (step <= 0.0) {
    const double l = spectral_norm_estimate(s, n);
    step = 1.0 / std::max(l, 1e-12);
  }

  std::vector<double> grad(n, 0.0);
  std::vector<double> y(n, 0.0);
  for (std::size_t iter = 0; iter < config.max_iters; ++iter) {
    matvec(s, n, res.x, grad);
    if (!c.empty()) {
      for (std::size_t i = 0; i < n; ++i) grad[i] += c[i];
    }
    for (std::size_t i = 0; i < n; ++i) y[i] = res.x[i] - step * grad[i];
    std::vector<double> x_new = project_capped_simplex(y, k);
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) delta = std::max(delta, std::abs(x_new[i] - res.x[i]));
    res.x = std::move(x_new);
    res.iterations = iter + 1;
    if (delta < config.tol) {
      res.converged = true;
      break;
    }
  }

  // Objective and KKT residual at the final iterate.
  matvec(s, n, res.x, grad);
  res.objective = 0.0;
  for (std::size_t i = 0; i < n; ++i) res.objective += 0.5 * res.x[i] * grad[i];
  if (!c.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      grad[i] += c[i];
      res.objective += c[i] * res.x[i];
    }
  }
  for (std::size_t i = 0; i < n; ++i) y[i] = res.x[i] - grad[i];
  const std::vector<double> proj = project_capped_simplex(y, k);
  for (std::size_t i = 0; i < n; ++i) {
    res.kkt_residual = std::max(res.kkt_residual, std::abs(proj[i] - res.x[i]));
  }
  return res;
}

std::vector<std::size_t> top_k_indices(const std::vector<double>& x, std::size_t k) {
  if (k > x.size()) throw std::invalid_argument("top_k_indices: k > n");
  std::vector<std::size_t> idx(x.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  // Ties break by ascending index: the relaxed solution routinely saturates
  // several coordinates at exactly 1.0, and partial_sort alone would leave
  // their order implementation-defined.
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k), idx.end(),
                    [&](std::size_t a, std::size_t b) {
                      return x[a] > x[b] || (x[a] == x[b] && a < b);
                    });
  idx.resize(k);
  return idx;
}

}  // namespace hsd::qp
