#pragma once
// Projected-gradient solver for the box-and-budget quadratic program behind
// the batch-diversity formulation of Yang et al. (TCAD'20), the baseline the
// paper compares its min-distance diversity metric against:
//
//   minimize    0.5 * x^T S x + c^T x
//   subject to  sum_i x_i = k,   0 <= x_i <= 1,
//
// where S is a (symmetric) pairwise-similarity matrix. The integer
// constraint x_i in {0,1} is relaxed to the box, exactly as in the baseline,
// and the k largest entries of the relaxed solution are rounded to the
// selected batch — the relaxation whose diversity loss the paper criticizes.

#include <cstddef>
#include <vector>

namespace hsd::qp {

struct QpConfig {
  std::size_t max_iters = 500;
  /// Stop when the projected-gradient step moves x by less than this (inf norm).
  double tol = 1e-7;
  /// Step size; 0 picks 1/L with L estimated by power iteration on S.
  double step = 0.0;
};

struct QpResult {
  std::vector<double> x;
  double objective = 0.0;
  std::size_t iterations = 0;
  /// Inf-norm distance between x and the projection of x - grad — zero at a
  /// KKT point of the relaxed problem.
  double kkt_residual = 0.0;
  bool converged = false;
};

/// Euclidean projection of y onto {x : sum x = k, 0 <= x <= 1}.
/// Requires 0 <= k <= y.size().
std::vector<double> project_capped_simplex(const std::vector<double>& y, double k);

/// Solves the relaxed QP. `s` is the row-major n x n matrix; `c` may be
/// empty (treated as zero).
QpResult solve_box_budget_qp(const std::vector<double>& s, std::size_t n,
                             const std::vector<double>& c, double k,
                             const QpConfig& config = {});

/// Indices of the `k` largest entries of x (the rounding step).
std::vector<std::size_t> top_k_indices(const std::vector<double>& x, std::size_t k);

}  // namespace hsd::qp
