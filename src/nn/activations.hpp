#pragma once
// Element-wise activation layers.

#include "nn/layer.hpp"

namespace hsd::nn {

/// Rectified linear unit, any rank.
class Relu : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Relu"; }

 private:
  Tensor mask_;  // 1 where input > 0
};

/// Hyperbolic tangent, any rank.
class Tanh : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor output_;
};

}  // namespace hsd::nn
