#include "nn/layer.hpp"

namespace hsd::nn {

void Layer::zero_grad() {
  for (auto& p : params()) {
    if (p.grad != nullptr) p.grad->fill(0.0F);
  }
}

std::size_t Layer::num_params() {
  std::size_t n = 0;
  for (auto& p : params()) {
    if (p.value != nullptr) n += p.value->size();
  }
  return n;
}

}  // namespace hsd::nn
