#include "nn/dropout.hpp"

#include <stdexcept>

#include "common/binio.hpp"

namespace hsd::nn {

Dropout::Dropout(double p, hsd::stats::Rng rng) : p_(p), rng_(rng) {
  if (p < 0.0 || p >= 1.0) throw std::invalid_argument("Dropout: p must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& input) {
  if (!training_ || p_ == 0.0) {
    mask_ = Tensor(input.shape(), 1.0F);
    return input;
  }
  mask_ = Tensor(input.shape());
  const auto scale = static_cast<float>(1.0 / (1.0 - p_));
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (rng_.bernoulli(p_)) {
      mask_[i] = 0.0F;
      out[i] = 0.0F;
    } else {
      mask_[i] = scale;
      out[i] *= scale;
    }
  }
  return out;
}

void Dropout::save_state(std::ostream& os) const {
  hsd::common::write_string(os, rng_.save_state());
}

void Dropout::load_state(std::istream& is) {
  rng_.load_state(hsd::common::read_string(is));
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (grad_output.shape() != mask_.shape()) {
    throw std::invalid_argument("Dropout::backward: shape mismatch with forward");
  }
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) grad[i] *= mask_[i];
  return grad;
}

}  // namespace hsd::nn
