#pragma once
// Inverted dropout: during training each activation is zeroed with
// probability p and survivors are scaled by 1/(1-p); at inference the layer
// is the identity. Gives the small hotspot CNN cheap regularization when the
// labeled pool is only a few hundred clips.

#include "nn/layer.hpp"
#include "stats/rng.hpp"

namespace hsd::nn {

class Dropout : public Layer {
 public:
  /// `p` is the drop probability in [0, 1).
  Dropout(double p, hsd::stats::Rng rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Dropout"; }
  void set_training(bool training) override { training_ = training; }

  /// Persists the mask RNG so resumed training draws the same masks.
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  double drop_probability() const { return p_; }
  bool training() const { return training_; }

 private:
  double p_;
  hsd::stats::Rng rng_;
  bool training_ = true;
  Tensor mask_;  // keep-mask scaled by 1/(1-p)
};

}  // namespace hsd::nn
