#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

#include "common/check.hpp"

namespace hsd::nn {

Sgd::Sgd(double lr, double momentum, double weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {
  if (lr <= 0.0) throw std::invalid_argument("Sgd: lr <= 0");
}

void Sgd::step(const std::vector<Param>& params) {
  for (const auto& p : params) {
    if (p.value == nullptr || p.grad == nullptr) continue;
    Tensor& val = *p.value;
    const Tensor& grad = *p.grad;
    HSD_CHECK_EQ(grad.size(), val.size(), "optimizer step: param ", p.name);
    if (momentum_ > 0.0) {
      auto [it, inserted] = velocity_.try_emplace(p.value, Tensor(val.shape()));
      Tensor& vel = it->second;
      for (std::size_t i = 0; i < val.size(); ++i) {
        const float g = grad[i] + static_cast<float>(weight_decay_) * val[i];
        vel[i] = static_cast<float>(momentum_) * vel[i] + g;
        val[i] -= static_cast<float>(lr_) * vel[i];
      }
    } else {
      for (std::size_t i = 0; i < val.size(); ++i) {
        const float g = grad[i] + static_cast<float>(weight_decay_) * val[i];
        val[i] -= static_cast<float>(lr_) * g;
      }
    }
  }
}

RmsProp::RmsProp(double lr, double decay, double eps, double weight_decay)
    : lr_(lr), decay_(decay), eps_(eps), weight_decay_(weight_decay) {
  if (lr <= 0.0) throw std::invalid_argument("RmsProp: lr <= 0");
  if (decay <= 0.0 || decay >= 1.0) throw std::invalid_argument("RmsProp: decay");
}

void RmsProp::step(const std::vector<Param>& params) {
  for (const auto& p : params) {
    if (p.value == nullptr || p.grad == nullptr) continue;
    Tensor& val = *p.value;
    const Tensor& grad = *p.grad;
    HSD_CHECK_EQ(grad.size(), val.size(), "optimizer step: param ", p.name);
    auto [it, inserted] = mean_square_.try_emplace(p.value, Tensor(val.shape()));
    Tensor& ms = it->second;
    for (std::size_t i = 0; i < val.size(); ++i) {
      const double g = static_cast<double>(grad[i]) + weight_decay_ * val[i];
      ms[i] = static_cast<float>(decay_ * ms[i] + (1.0 - decay_) * g * g);
      val[i] -= static_cast<float>(lr_ * g / (std::sqrt(static_cast<double>(ms[i])) + eps_));
    }
  }
}

StepDecaySchedule::StepDecaySchedule(Optimizer& optimizer, std::size_t period,
                                     double gamma)
    : optimizer_(optimizer), period_(period), gamma_(gamma) {
  if (period == 0) throw std::invalid_argument("StepDecaySchedule: period == 0");
  if (gamma <= 0.0 || gamma > 1.0) throw std::invalid_argument("StepDecaySchedule: gamma");
}

void StepDecaySchedule::advance() {
  steps_++;
  if (steps_ % period_ == 0) {
    optimizer_.set_learning_rate(optimizer_.learning_rate() * gamma_);
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps, double weight_decay)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps), weight_decay_(weight_decay) {
  if (lr <= 0.0) throw std::invalid_argument("Adam: lr <= 0");
}

void Adam::step(const std::vector<Param>& params) {
  step_count_++;
  const double bc1 = 1.0 - std::pow(beta1_, step_count_);
  const double bc2 = 1.0 - std::pow(beta2_, step_count_);
  for (const auto& p : params) {
    if (p.value == nullptr || p.grad == nullptr) continue;
    Tensor& val = *p.value;
    const Tensor& grad = *p.grad;
    HSD_CHECK_EQ(grad.size(), val.size(), "optimizer step: param ", p.name);
    auto [it, inserted] =
        moments_.try_emplace(p.value, Moments{Tensor(val.shape()), Tensor(val.shape())});
    Tensor& m = it->second.m;
    Tensor& v = it->second.v;
    for (std::size_t i = 0; i < val.size(); ++i) {
      const double g = static_cast<double>(grad[i]) + weight_decay_ * val[i];
      m[i] = static_cast<float>(beta1_ * m[i] + (1.0 - beta1_) * g);
      v[i] = static_cast<float>(beta2_ * v[i] + (1.0 - beta2_) * g * g);
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      val[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace hsd::nn
