#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

#include "common/binio.hpp"
#include "common/check.hpp"

namespace hsd::nn {

namespace {

using hsd::common::read_f32_array;
using hsd::common::read_pod;
using hsd::common::write_f32_array;
using hsd::common::write_pod;

// Optimizer state layout: per parameter (in `params` order) a presence byte
// and, when present, one accumulator tensor per slot. A parameter whose
// accumulator has not been materialized yet (no step taken, or momentum
// disabled) is written as absent and stays lazily created on load.

/// Writes `slots` accumulator tensors per present parameter from `state`,
/// a pointer-keyed map looked up via a slot-extraction callback.
template <class Map, class GetSlots>
void write_accumulators(std::ostream& os, const std::vector<Param>& params,
                        const Map& state, std::size_t slots, GetSlots get) {
  write_pod(os, static_cast<std::uint64_t>(params.size()));
  for (const auto& p : params) {
    const auto it = state.find(p.value);
    const std::uint8_t present = it != state.end() ? 1 : 0;
    write_pod(os, present);
    if (!present) continue;
    const auto tensors = get(it->second);
    HSD_CHECK_EQ(tensors.size(), slots, "optimizer save_state");
    for (const Tensor* t : tensors) {
      HSD_CHECK_EQ(t->size(), p.value->size(), "optimizer save_state: param ", p.name);
      write_f32_array(os, t->data(), t->size());
    }
  }
}

/// Inverse of write_accumulators: recreates present accumulators shaped
/// like their parameter and fills them from the stream.
template <class Map, class MakeEntry, class GetSlots>
void read_accumulators(std::istream& is, const std::vector<Param>& params, Map& state,
                       std::size_t slots, MakeEntry make, GetSlots get) {
  const auto count = read_pod<std::uint64_t>(is);
  if (count != params.size()) {
    throw std::runtime_error("optimizer load_state: parameter count mismatch");
  }
  state.clear();
  for (const auto& p : params) {
    const auto present = read_pod<std::uint8_t>(is);
    if (!present) continue;
    auto [it, inserted] = state.try_emplace(p.value, make(*p.value));
    const auto tensors = get(it->second);
    HSD_CHECK_EQ(tensors.size(), slots, "optimizer load_state");
    for (Tensor* t : tensors) read_f32_array(is, t->data(), t->size());
  }
}

}  // namespace

Sgd::Sgd(double lr, double momentum, double weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {
  if (lr <= 0.0) throw std::invalid_argument("Sgd: lr <= 0");
}

void Sgd::step(const std::vector<Param>& params) {
  for (const auto& p : params) {
    if (p.value == nullptr || p.grad == nullptr) continue;
    Tensor& val = *p.value;
    const Tensor& grad = *p.grad;
    HSD_CHECK_EQ(grad.size(), val.size(), "optimizer step: param ", p.name);
    if (momentum_ > 0.0) {
      auto [it, inserted] = velocity_.try_emplace(p.value, Tensor(val.shape()));
      Tensor& vel = it->second;
      for (std::size_t i = 0; i < val.size(); ++i) {
        const float g = grad[i] + static_cast<float>(weight_decay_) * val[i];
        vel[i] = static_cast<float>(momentum_) * vel[i] + g;
        val[i] -= static_cast<float>(lr_) * vel[i];
      }
    } else {
      for (std::size_t i = 0; i < val.size(); ++i) {
        const float g = grad[i] + static_cast<float>(weight_decay_) * val[i];
        val[i] -= static_cast<float>(lr_) * g;
      }
    }
  }
}

void Sgd::save_state(std::ostream& os, const std::vector<Param>& params) const {
  write_accumulators(os, params, velocity_, 1, [](const Tensor& v) {
    return std::vector<const Tensor*>{&v};
  });
}

void Sgd::load_state(std::istream& is, const std::vector<Param>& params) {
  read_accumulators(
      is, params, velocity_, 1, [](const Tensor& p) { return Tensor(p.shape()); },
      [](Tensor& v) { return std::vector<Tensor*>{&v}; });
}

RmsProp::RmsProp(double lr, double decay, double eps, double weight_decay)
    : lr_(lr), decay_(decay), eps_(eps), weight_decay_(weight_decay) {
  if (lr <= 0.0) throw std::invalid_argument("RmsProp: lr <= 0");
  if (decay <= 0.0 || decay >= 1.0) throw std::invalid_argument("RmsProp: decay");
}

void RmsProp::step(const std::vector<Param>& params) {
  for (const auto& p : params) {
    if (p.value == nullptr || p.grad == nullptr) continue;
    Tensor& val = *p.value;
    const Tensor& grad = *p.grad;
    HSD_CHECK_EQ(grad.size(), val.size(), "optimizer step: param ", p.name);
    auto [it, inserted] = mean_square_.try_emplace(p.value, Tensor(val.shape()));
    Tensor& ms = it->second;
    for (std::size_t i = 0; i < val.size(); ++i) {
      const double g = static_cast<double>(grad[i]) + weight_decay_ * val[i];
      ms[i] = static_cast<float>(decay_ * ms[i] + (1.0 - decay_) * g * g);
      val[i] -= static_cast<float>(lr_ * g / (std::sqrt(static_cast<double>(ms[i])) + eps_));
    }
  }
}

void RmsProp::save_state(std::ostream& os, const std::vector<Param>& params) const {
  write_accumulators(os, params, mean_square_, 1, [](const Tensor& ms) {
    return std::vector<const Tensor*>{&ms};
  });
}

void RmsProp::load_state(std::istream& is, const std::vector<Param>& params) {
  read_accumulators(
      is, params, mean_square_, 1, [](const Tensor& p) { return Tensor(p.shape()); },
      [](Tensor& ms) { return std::vector<Tensor*>{&ms}; });
}

StepDecaySchedule::StepDecaySchedule(Optimizer& optimizer, std::size_t period,
                                     double gamma)
    : optimizer_(optimizer), period_(period), gamma_(gamma) {
  if (period == 0) throw std::invalid_argument("StepDecaySchedule: period == 0");
  if (gamma <= 0.0 || gamma > 1.0) throw std::invalid_argument("StepDecaySchedule: gamma");
}

void StepDecaySchedule::advance() {
  steps_++;
  if (steps_ % period_ == 0) {
    optimizer_.set_learning_rate(optimizer_.learning_rate() * gamma_);
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps, double weight_decay)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps), weight_decay_(weight_decay) {
  if (lr <= 0.0) throw std::invalid_argument("Adam: lr <= 0");
}

void Adam::step(const std::vector<Param>& params) {
  step_count_++;
  const double bc1 = 1.0 - std::pow(beta1_, step_count_);
  const double bc2 = 1.0 - std::pow(beta2_, step_count_);
  for (const auto& p : params) {
    if (p.value == nullptr || p.grad == nullptr) continue;
    Tensor& val = *p.value;
    const Tensor& grad = *p.grad;
    HSD_CHECK_EQ(grad.size(), val.size(), "optimizer step: param ", p.name);
    auto [it, inserted] =
        moments_.try_emplace(p.value, Moments{Tensor(val.shape()), Tensor(val.shape())});
    Tensor& m = it->second.m;
    Tensor& v = it->second.v;
    for (std::size_t i = 0; i < val.size(); ++i) {
      const double g = static_cast<double>(grad[i]) + weight_decay_ * val[i];
      m[i] = static_cast<float>(beta1_ * m[i] + (1.0 - beta1_) * g);
      v[i] = static_cast<float>(beta2_ * v[i] + (1.0 - beta2_) * g * g);
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      val[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

void Adam::save_state(std::ostream& os, const std::vector<Param>& params) const {
  write_pod(os, static_cast<std::int64_t>(step_count_));
  write_accumulators(os, params, moments_, 2, [](const Moments& mo) {
    return std::vector<const Tensor*>{&mo.m, &mo.v};
  });
}

void Adam::load_state(std::istream& is, const std::vector<Param>& params) {
  step_count_ = static_cast<long>(read_pod<std::int64_t>(is));
  read_accumulators(
      is, params, moments_, 2,
      [](const Tensor& p) { return Moments{Tensor(p.shape()), Tensor(p.shape())}; },
      [](Moments& mo) { return std::vector<Tensor*>{&mo.m, &mo.v}; });
}

}  // namespace hsd::nn
