#pragma once
// Flattens NCHW (or any rank >= 2) batches to (N, D) matrices.

#include "nn/layer.hpp"

namespace hsd::nn {

class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  hsd::tensor::Shape in_shape_;
};

}  // namespace hsd::nn
