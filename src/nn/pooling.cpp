#include "nn/pooling.hpp"

#include <limits>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace hsd::nn {

MaxPool2d::MaxPool2d(std::size_t window, std::size_t stride)
    : window_(window), stride_(stride == 0 ? window : stride) {
  if (window_ == 0) throw std::invalid_argument("MaxPool2d: window == 0");
}

Tensor MaxPool2d::forward(const Tensor& input) {
  if (input.rank() != 4) throw std::invalid_argument("MaxPool2d::forward: expected NCHW");
  in_shape_ = input.shape();
  const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  const std::size_t oh = hsd::tensor::conv_out_extent(h, window_, stride_, 0);
  const std::size_t ow = hsd::tensor::conv_out_extent(w, window_, stride_, 0);

  Tensor out({n, c, oh, ow});
  argmax_.assign(out.size(), 0);
  std::size_t oidx = 0;
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = input.data() + (img * c + ch) * h * w;
      const std::size_t plane_base = (img * c + ch) * h * w;
      for (std::size_t oi = 0; oi < oh; ++oi) {
        for (std::size_t oj = 0; oj < ow; ++oj, ++oidx) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = plane_base;
          for (std::size_t ki = 0; ki < window_; ++ki) {
            const std::size_t ii = oi * stride_ + ki;
            for (std::size_t kj = 0; kj < window_; ++kj) {
              const std::size_t jj = oj * stride_ + kj;
              const float v = plane[ii * w + jj];
              if (v > best) {
                best = v;
                best_idx = plane_base + ii * w + jj;
              }
            }
          }
          out[oidx] = best;
          argmax_[oidx] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  if (grad_output.size() != argmax_.size()) {
    throw std::invalid_argument("MaxPool2d::backward: shape mismatch with forward");
  }
  Tensor grad_input(in_shape_);
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    grad_input[argmax_[i]] += grad_output[i];
  }
  return grad_input;
}

}  // namespace hsd::nn
