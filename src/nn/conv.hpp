#pragma once
// 2-D convolution layer implemented as im2col + GEMM.
// Input and output are NCHW tensors.

#include "nn/layer.hpp"
#include "stats/rng.hpp"

namespace hsd::nn {

class Conv2d : public Layer {
 public:
  /// Square-kernel convolution with stride and zero padding, He init.
  Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         hsd::stats::Rng& rng, std::size_t stride = 1, std::size_t pad = 0);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  std::string name() const override { return "Conv2d"; }

  std::size_t in_channels() const { return in_c_; }
  std::size_t out_channels() const { return out_c_; }
  std::size_t kernel() const { return k_; }
  std::size_t stride() const { return stride_; }
  std::size_t pad() const { return pad_; }

  Tensor& weight() { return w_; }
  Tensor& bias() { return b_; }

 private:
  std::size_t in_c_, out_c_, k_, stride_, pad_;
  Tensor w_;       // (out_c, in_c * k * k)
  Tensor b_;       // (out_c)
  Tensor w_grad_;
  Tensor b_grad_;
  Tensor input_;   // cached NCHW input
};

}  // namespace hsd::nn
