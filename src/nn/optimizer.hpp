#pragma once
// First-order optimizers operating on the Param pairs exposed by layers.

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/layer.hpp"

namespace hsd::nn {

/// Abstract optimizer: consumes accumulated gradients and updates values.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update step to every parameter, then the caller typically
  /// zeroes gradients.
  virtual void step(const std::vector<Param>& params) = 0;

  virtual void set_learning_rate(double lr) = 0;
  virtual double learning_rate() const = 0;

  /// Short format tag identifying the state layout ("sgd", "rmsprop",
  /// "adam", or "none" for stateless optimizers).
  virtual std::string state_tag() const { return "none"; }

  /// Serializes the per-parameter accumulator state (momenta etc.) in
  /// `params` order so that a restored optimizer continues training
  /// bit-identically. `params` must be the same parameter list (same order,
  /// same shapes) the optimizer has been stepping. The default writes /
  /// reads nothing. load_state replaces any existing state.
  virtual void save_state(std::ostream& os, const std::vector<Param>& params) const {
    (void)os;
    (void)params;
  }
  virtual void load_state(std::istream& is, const std::vector<Param>& params) {
    (void)is;
    (void)params;
  }
};

/// Plain SGD with optional momentum and weight decay.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0, double weight_decay = 0.0);
  void step(const std::vector<Param>& params) override;
  void set_learning_rate(double lr) override { lr_ = lr; }
  double learning_rate() const override { return lr_; }
  std::string state_tag() const override { return "sgd"; }
  void save_state(std::ostream& os, const std::vector<Param>& params) const override;
  void load_state(std::istream& is, const std::vector<Param>& params) override;

 private:
  double lr_;
  double momentum_;
  double weight_decay_;
  std::unordered_map<const Tensor*, Tensor> velocity_;
};

/// RMSProp (Tieleman & Hinton) with optional weight decay.
class RmsProp : public Optimizer {
 public:
  explicit RmsProp(double lr = 1e-3, double decay = 0.9, double eps = 1e-8,
                   double weight_decay = 0.0);
  void step(const std::vector<Param>& params) override;
  void set_learning_rate(double lr) override { lr_ = lr; }
  double learning_rate() const override { return lr_; }
  std::string state_tag() const override { return "rmsprop"; }
  void save_state(std::ostream& os, const std::vector<Param>& params) const override;
  void load_state(std::istream& is, const std::vector<Param>& params) override;

 private:
  double lr_, decay_, eps_, weight_decay_;
  std::unordered_map<const Tensor*, Tensor> mean_square_;
};

/// Multiplicative step-decay learning-rate schedule: every `period` calls to
/// advance(), the wrapped optimizer's learning rate is multiplied by `gamma`.
class StepDecaySchedule {
 public:
  StepDecaySchedule(Optimizer& optimizer, std::size_t period, double gamma);

  /// Call once per epoch (or batch); applies the decay on period boundaries.
  void advance();

  std::size_t steps() const { return steps_; }

 private:
  Optimizer& optimizer_;
  std::size_t period_;
  double gamma_;
  std::size_t steps_ = 0;
};

/// Adam (Kingma & Ba, ICLR'15) with bias correction and weight decay.
class Adam : public Optimizer {
 public:
  explicit Adam(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8, double weight_decay = 0.0);
  void step(const std::vector<Param>& params) override;
  void set_learning_rate(double lr) override { lr_ = lr; }
  double learning_rate() const override { return lr_; }
  std::string state_tag() const override { return "adam"; }
  void save_state(std::ostream& os, const std::vector<Param>& params) const override;
  void load_state(std::istream& is, const std::vector<Param>& params) override;

 private:
  struct Moments {
    Tensor m;
    Tensor v;
  };
  double lr_, beta1_, beta2_, eps_, weight_decay_;
  long step_count_ = 0;
  std::unordered_map<const Tensor*, Moments> moments_;
};

}  // namespace hsd::nn
