#pragma once
// Fully connected layer: y = x W^T + b, x is (N, in), W is (out, in).

#include "nn/layer.hpp"
#include "stats/rng.hpp"

namespace hsd::nn {

class Dense : public Layer {
 public:
  /// He-initialized dense layer mapping `in_features` -> `out_features`.
  Dense(std::size_t in_features, std::size_t out_features, hsd::stats::Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  std::string name() const override { return "Dense"; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

  Tensor& weight() { return w_; }
  Tensor& bias() { return b_; }
  const Tensor& weight() const { return w_; }
  const Tensor& bias() const { return b_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Tensor w_;       // (out, in)
  Tensor b_;       // (out)
  Tensor w_grad_;
  Tensor b_grad_;
  Tensor input_;   // cached forward input (N, in)
};

}  // namespace hsd::nn
