#include "nn/dense.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace hsd::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, hsd::stats::Rng& rng)
    : in_(in_features),
      out_(out_features),
      w_(Tensor::randn({out_features, in_features}, rng, 0.0F,
                       std::sqrt(2.0F / static_cast<float>(in_features)))),
      b_({out_features}),
      w_grad_({out_features, in_features}),
      b_grad_({out_features}) {
  if (in_features == 0 || out_features == 0) {
    throw std::invalid_argument("Dense: zero-sized layer");
  }
}

Tensor Dense::forward(const Tensor& input) {
  if (input.rank() != 2 || input.dim(1) != in_) {
    throw std::invalid_argument("Dense::forward: bad input shape");
  }
  input_ = input;
  const std::size_t n = input.dim(0);
  Tensor out({n, out_});
  // out = x * W^T
  hsd::tensor::matmul_a_bt(input.data(), w_.data(), out.data(), n, in_, out_);
  for (std::size_t i = 0; i < n; ++i) {
    float* row = out.data() + i * out_;
    for (std::size_t j = 0; j < out_; ++j) row[j] += b_[j];
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  if (grad_output.rank() != 2 || grad_output.dim(1) != out_) {
    throw std::invalid_argument("Dense::backward: bad grad shape");
  }
  const std::size_t n = grad_output.dim(0);
  if (input_.dim(0) != n) {
    throw std::invalid_argument("Dense::backward: batch mismatch with forward");
  }
  // dW += dY^T * X  -> (out, in)
  Tensor w_grad_batch({out_, in_});
  hsd::tensor::matmul_at_b(grad_output.data(), input_.data(), w_grad_batch.data(),
                           out_, n, in_);
  w_grad_ += w_grad_batch;
  // db += column sums of dY
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = grad_output.data() + i * out_;
    for (std::size_t j = 0; j < out_; ++j) b_grad_[j] += row[j];
  }
  // dX = dY * W  -> (n, in)
  Tensor grad_input({n, in_});
  hsd::tensor::matmul(grad_output.data(), w_.data(), grad_input.data(), n, out_, in_);
  return grad_input;
}

std::vector<Param> Dense::params() {
  return {{&w_, &w_grad_, "weight"}, {&b_, &b_grad_, "bias"}};
}

}  // namespace hsd::nn
