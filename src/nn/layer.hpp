#pragma once
// Layer interface of the from-scratch neural-network engine.
//
// Layers are stateful: forward() caches whatever backward() needs, so a
// backward() call must follow the forward() it differentiates. Parameters
// and their gradients are exposed as (value, grad) tensor pairs for the
// optimizers.

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace hsd::nn {

using hsd::tensor::Tensor;

/// A trainable parameter: the value tensor and its accumulated gradient.
struct Param {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  std::string name;
};

/// Abstract differentiable layer.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Maps an input batch to an output batch, caching for backward().
  virtual Tensor forward(const Tensor& input) = 0;

  /// Maps d(loss)/d(output) to d(loss)/d(input), accumulating parameter
  /// gradients. Must be preceded by a forward() on the same batch.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param> params() { return {}; }

  /// Zeroes all parameter gradients.
  void zero_grad();

  /// Switches between training and inference behaviour (dropout etc.);
  /// no-op for layers without mode-dependent behaviour.
  virtual void set_training(bool training) { (void)training; }

  /// Human-readable layer name for summaries and serialization.
  virtual std::string name() const = 0;

  /// Non-parameter state that must survive a save/load round trip for
  /// bit-identical resumed training (e.g. Dropout's RNG stream). Most
  /// layers have none; the default writes/reads nothing. The payload is
  /// length-prefixed by the caller, so implementations need no framing.
  virtual void save_state(std::ostream& os) const { (void)os; }
  virtual void load_state(std::istream& is) { (void)is; }

  /// Number of scalar parameters.
  std::size_t num_params();
};

}  // namespace hsd::nn
