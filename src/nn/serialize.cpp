#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "nn/network.hpp"

namespace hsd::nn {

namespace {

constexpr std::uint32_t kMagic = 0x48534431;  // "HSD1"

// All stream I/O goes through std::memcpy into char buffers rather than
// reinterpret_cast'ing object pointers: memcpy is the sanctioned way to
// read an object representation, so UBSan stays quiet and the lint rule
// no-reinterpret-cast holds for the whole library.

template <class T>
void write_pod(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  os.write(buf, sizeof(T));
}

template <class T>
T read_pod(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  is.read(buf, sizeof(T));
  if (!is) throw std::runtime_error("Network::load: truncated stream");
  T v{};
  std::memcpy(&v, buf, sizeof(T));
  return v;
}

void write_f32_array(std::ostream& os, const float* data, std::size_t count) {
  std::vector<char> buf(count * sizeof(float));
  std::memcpy(buf.data(), data, buf.size());
  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

void read_f32_array(std::istream& is, float* data, std::size_t count) {
  std::vector<char> buf(count * sizeof(float));
  is.read(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!is) throw std::runtime_error("Network::load: truncated stream");
  std::memcpy(data, buf.data(), buf.size());
}

}  // namespace

void Network::save(std::ostream& os) {
  const auto ps = params();
  write_pod(os, kMagic);
  write_pod(os, static_cast<std::uint64_t>(ps.size()));
  for (const auto& p : ps) {
    const auto& shape = p.value->shape();
    write_pod(os, static_cast<std::uint64_t>(shape.size()));
    for (std::size_t d : shape) write_pod(os, static_cast<std::uint64_t>(d));
    write_f32_array(os, p.value->data(), p.value->size());
  }
  if (!os) throw std::runtime_error("Network::save: write failure");
}

void Network::load(std::istream& is) {
  std::uint32_t magic = 0;
  {
    char buf[sizeof(magic)];
    is.read(buf, sizeof(buf));
    if (!is) throw std::runtime_error("Network::load: bad magic");
    std::memcpy(&magic, buf, sizeof(magic));
  }
  if (magic != kMagic) throw std::runtime_error("Network::load: bad magic");
  const auto ps = params();
  const std::uint64_t count = read_pod<std::uint64_t>(is);
  if (count != ps.size()) throw std::runtime_error("Network::load: parameter count mismatch");
  for (const auto& p : ps) {
    const std::uint64_t rank = read_pod<std::uint64_t>(is);
    hsd::tensor::Shape shape(rank);
    for (auto& d : shape) d = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
    if (shape != p.value->shape()) {
      throw std::runtime_error("Network::load: parameter shape mismatch");
    }
    read_f32_array(is, p.value->data(), p.value->size());
  }
}

}  // namespace hsd::nn
