// Versioned binary (de)serialization of Network parameters and training
// state. Two on-disk formats exist:
//
//   "HSD1" (legacy)  magic + parameter tensors only.
//   "HSD2" (current) magic + parameter tensors + per-layer extra state
//                    (length-prefixed, so unknown/empty state is skippable)
//                    + optional optimizer accumulator state (tagged).
//
// save() always writes HSD2; load() accepts both, which keeps old weight
// files readable forever (versioning rule: never remove a reader).

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/binio.hpp"
#include "nn/network.hpp"

namespace hsd::nn {

namespace {

using hsd::common::read_f32_array;
using hsd::common::read_pod;
using hsd::common::read_string;
using hsd::common::write_f32_array;
using hsd::common::write_pod;
using hsd::common::write_string;

constexpr std::uint32_t kMagicV1 = 0x48534431;  // "HSD1": params only
constexpr std::uint32_t kMagicV2 = 0x48534432;  // "HSD2": params + state

void write_params(std::ostream& os, const std::vector<Param>& ps) {
  write_pod(os, static_cast<std::uint64_t>(ps.size()));
  for (const auto& p : ps) {
    const auto& shape = p.value->shape();
    write_pod(os, static_cast<std::uint64_t>(shape.size()));
    for (std::size_t d : shape) write_pod(os, static_cast<std::uint64_t>(d));
    write_f32_array(os, p.value->data(), p.value->size());
  }
}

void read_params(std::istream& is, const std::vector<Param>& ps) {
  const std::uint64_t count = read_pod<std::uint64_t>(is);
  if (count != ps.size()) throw std::runtime_error("Network::load: parameter count mismatch");
  for (const auto& p : ps) {
    const std::uint64_t rank = read_pod<std::uint64_t>(is);
    hsd::tensor::Shape shape(rank);
    for (auto& d : shape) d = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
    if (shape != p.value->shape()) {
      throw std::runtime_error("Network::load: parameter shape mismatch");
    }
    read_f32_array(is, p.value->data(), p.value->size());
  }
}

}  // namespace

void Network::save(std::ostream& os, const Optimizer* opt) {
  write_pod(os, kMagicV2);
  write_params(os, params());

  // Per-layer extra state (empty for most layers), length-prefixed so a
  // reader can skip blobs blindly.
  write_pod(os, static_cast<std::uint64_t>(layers_.size()));
  for (const auto& layer : layers_) {
    std::ostringstream blob;
    layer->save_state(blob);
    write_string(os, blob.str());
  }

  const std::uint8_t has_opt = opt != nullptr ? 1 : 0;
  write_pod(os, has_opt);
  if (opt != nullptr) {
    write_string(os, opt->state_tag());
    std::ostringstream blob;
    opt->save_state(blob, params());
    write_string(os, blob.str());
  }
  if (!os) throw std::runtime_error("Network::save: write failure");
}

void Network::load(std::istream& is, Optimizer* opt) {
  std::uint32_t magic = 0;
  try {
    magic = read_pod<std::uint32_t>(is);
  } catch (const std::runtime_error&) {
    throw std::runtime_error("Network::load: bad magic");
  }
  if (magic != kMagicV1 && magic != kMagicV2) {
    throw std::runtime_error("Network::load: bad magic");
  }
  read_params(is, params());
  if (magic == kMagicV1) return;  // legacy file: parameters only

  const std::uint64_t n_layers = read_pod<std::uint64_t>(is);
  if (n_layers != layers_.size()) {
    throw std::runtime_error("Network::load: layer count mismatch");
  }
  for (const auto& layer : layers_) {
    std::istringstream blob(read_string(is));
    layer->load_state(blob);
  }

  const std::uint8_t has_opt = read_pod<std::uint8_t>(is);
  if (has_opt != 0) {
    const std::string tag = read_string(is);
    const std::string blob = read_string(is);
    if (opt != nullptr) {
      if (tag != opt->state_tag()) {
        throw std::runtime_error("Network::load: optimizer state is '" + tag +
                                 "' but caller passed '" + opt->state_tag() + "'");
      }
      std::istringstream state(blob);
      opt->load_state(state, params());
    }
  }
}

}  // namespace hsd::nn
