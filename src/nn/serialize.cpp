#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "nn/network.hpp"

namespace hsd::nn {

namespace {

constexpr std::uint32_t kMagic = 0x48534431;  // "HSD1"

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("Network::load: truncated stream");
  return v;
}

}  // namespace

void Network::save(std::ostream& os) {
  const auto ps = params();
  os.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  write_u64(os, ps.size());
  for (const auto& p : ps) {
    const auto& shape = p.value->shape();
    write_u64(os, shape.size());
    for (std::size_t d : shape) write_u64(os, d);
    os.write(reinterpret_cast<const char*>(p.value->data()),
             static_cast<std::streamsize>(p.value->size() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("Network::save: write failure");
}

void Network::load(std::istream& is) {
  std::uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!is || magic != kMagic) throw std::runtime_error("Network::load: bad magic");
  const auto ps = params();
  const std::uint64_t count = read_u64(is);
  if (count != ps.size()) throw std::runtime_error("Network::load: parameter count mismatch");
  for (const auto& p : ps) {
    const std::uint64_t rank = read_u64(is);
    hsd::tensor::Shape shape(rank);
    for (auto& d : shape) d = static_cast<std::size_t>(read_u64(is));
    if (shape != p.value->shape()) {
      throw std::runtime_error("Network::load: parameter shape mismatch");
    }
    is.read(reinterpret_cast<char*>(p.value->data()),
            static_cast<std::streamsize>(p.value->size() * sizeof(float)));
    if (!is) throw std::runtime_error("Network::load: truncated stream");
  }
}

}  // namespace hsd::nn
