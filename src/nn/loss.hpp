#pragma once
// Softmax cross-entropy loss with optional per-class weights, the standard
// objective for the imbalanced hotspot/non-hotspot classification task.

#include <vector>

#include "tensor/tensor.hpp"

namespace hsd::nn {

using hsd::tensor::Tensor;

/// Result of a loss evaluation over a batch.
struct LossResult {
  double value = 0.0;     ///< mean (weighted) loss
  Tensor grad_logits;     ///< d(loss)/d(logits), same shape as logits
  std::size_t correct = 0;///< number of argmax-correct predictions
};

/// Computes mean softmax cross-entropy over a batch of logits (N, C) with
/// integer labels; `class_weights` (empty = uniform) scales each sample's
/// loss by the weight of its true class, re-normalized by the batch's total
/// weight so the gradient magnitude stays comparable across batches.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels,
                                 const std::vector<double>& class_weights = {});

}  // namespace hsd::nn
