#include "nn/activations.hpp"

#include <cmath>
#include <stdexcept>

namespace hsd::nn {

Tensor Relu::forward(const Tensor& input) {
  Tensor out = input;
  mask_ = Tensor(input.shape());
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] > 0.0F) {
      mask_[i] = 1.0F;
    } else {
      out[i] = 0.0F;
    }
  }
  return out;
}

Tensor Relu::backward(const Tensor& grad_output) {
  if (grad_output.shape() != mask_.shape()) {
    throw std::invalid_argument("Relu::backward: shape mismatch with forward");
  }
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) grad[i] *= mask_[i];
  return grad;
}

Tensor Tanh::forward(const Tensor& input) {
  output_ = input;
  for (std::size_t i = 0; i < output_.size(); ++i) {
    output_[i] = std::tanh(output_[i]);
  }
  return output_;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  if (grad_output.shape() != output_.shape()) {
    throw std::invalid_argument("Tanh::backward: shape mismatch with forward");
  }
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    grad[i] *= 1.0F - output_[i] * output_[i];
  }
  return grad;
}

}  // namespace hsd::nn
