#include "nn/network.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace hsd::nn {

using hsd::tensor::gather_rows;

Tensor Network::forward(const Tensor& input) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x);
  return x;
}

ForwardResult Network::forward_with_features(const Tensor& input) {
  if (layers_.empty()) throw std::logic_error("Network::forward_with_features: empty net");
  ForwardResult out;
  Tensor x = input;
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i) x = layers_[i]->forward(x);
  // The input of the final (classifier) layer is the feature representation.
  const std::size_t n = x.dim(0);
  out.features = x.rank() == 2 ? x : x.reshaped({n, x.size() / n});
  out.logits = layers_.back()->forward(x);
  return out;
}

Tensor Network::backward(const Tensor& grad_logits) {
  Tensor g = grad_logits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Param> Network::params() {
  std::vector<Param> all;
  for (auto& layer : layers_) {
    for (auto& p : layer->params()) all.push_back(p);
  }
  return all;
}

void Network::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

void Network::set_training(bool training) {
  for (auto& layer : layers_) layer->set_training(training);
}

std::size_t Network::num_params() {
  std::size_t n = 0;
  for (auto& layer : layers_) n += layer->num_params();
  return n;
}

LossResult Network::train_batch(const Tensor& x, const std::vector<int>& labels,
                                Optimizer& opt,
                                const std::vector<double>& class_weights) {
  zero_grad();
  const Tensor logits = forward(x);
  LossResult loss = softmax_cross_entropy(logits, labels, class_weights);
  backward(loss.grad_logits);
  opt.step(params());
  return loss;
}

std::vector<EpochStats> Network::fit(const Tensor& x, const std::vector<int>& labels,
                                     Optimizer& opt, std::size_t epochs,
                                     std::size_t batch_size, hsd::stats::Rng& rng,
                                     const std::vector<double>& class_weights) {
  const std::size_t n = x.dim(0);
  if (labels.size() != n) throw std::invalid_argument("Network::fit: label count mismatch");
  if (batch_size == 0) throw std::invalid_argument("Network::fit: batch_size == 0");

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  std::vector<EpochStats> history;
  history.reserve(epochs);
  for (std::size_t e = 0; e < epochs; ++e) {
    rng.shuffle(order);
    EpochStats stats;
    std::size_t correct = 0;
    for (std::size_t start = 0; start < n; start += batch_size) {
      const std::size_t end = std::min(start + batch_size, n);
      std::vector<std::size_t> idx(order.begin() + static_cast<std::ptrdiff_t>(start),
                                   order.begin() + static_cast<std::ptrdiff_t>(end));
      const Tensor xb = gather_rows(x, idx);
      std::vector<int> yb(idx.size());
      for (std::size_t i = 0; i < idx.size(); ++i) yb[i] = labels[idx[i]];
      const LossResult lr = train_batch(xb, yb, opt, class_weights);
      stats.mean_loss += lr.value;
      correct += lr.correct;
      stats.batches++;
    }
    if (stats.batches > 0) stats.mean_loss /= static_cast<double>(stats.batches);
    stats.accuracy = n > 0 ? static_cast<double>(correct) / static_cast<double>(n) : 0.0;
    history.push_back(stats);
  }
  return history;
}

}  // namespace hsd::nn
