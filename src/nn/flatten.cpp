#include "nn/flatten.hpp"

#include <stdexcept>

namespace hsd::nn {

Tensor Flatten::forward(const Tensor& input) {
  if (input.rank() < 2) throw std::invalid_argument("Flatten::forward: rank < 2");
  in_shape_ = input.shape();
  const std::size_t n = input.dim(0);
  return input.reshaped({n, input.size() / n});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  if (grad_output.size() != hsd::tensor::volume(in_shape_)) {
    throw std::invalid_argument("Flatten::backward: size mismatch with forward");
  }
  return grad_output.reshaped(in_shape_);
}

}  // namespace hsd::nn
