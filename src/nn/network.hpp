#pragma once
// Sequential network container: owns layers, drives forward/backward,
// exposes logits and penultimate-layer features (the representation the
// paper's diversity metric operates on), and implements minibatch training.

#include <iosfwd>
#include <memory>
#include <vector>

#include "nn/layer.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "stats/rng.hpp"

namespace hsd::nn {

/// Output of a forward pass that also taps the penultimate representation.
struct ForwardResult {
  Tensor logits;    ///< (N, num_classes)
  Tensor features;  ///< (N, feature_dim): input to the final Dense layer
};

/// Aggregate statistics of one training epoch.
struct EpochStats {
  double mean_loss = 0.0;
  double accuracy = 0.0;
  std::size_t batches = 0;
};

/// A feed-forward network as an ordered list of layers. The last layer is
/// expected to produce logits (no softmax layer; losses and calibration
/// apply softmax themselves).
class Network {
 public:
  Network() = default;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  /// Appends a layer constructed in place and returns a reference to it.
  template <typename L, typename... Args>
  L& add(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

  /// Forward pass producing logits.
  Tensor forward(const Tensor& input);

  /// Forward pass that also captures the input of the last layer as the
  /// feature representation (flattened to rank 2 if needed).
  ForwardResult forward_with_features(const Tensor& input);

  /// Backward pass from d(loss)/d(logits); accumulates parameter grads.
  Tensor backward(const Tensor& grad_logits);

  /// All trainable parameters across layers.
  std::vector<Param> params();

  /// Zeroes all gradients.
  void zero_grad();

  /// Propagates training/inference mode to every layer.
  void set_training(bool training);

  /// Total scalar parameter count.
  std::size_t num_params();

  /// One optimization step on a batch; returns the loss diagnostics.
  LossResult train_batch(const Tensor& x, const std::vector<int>& labels,
                         Optimizer& opt,
                         const std::vector<double>& class_weights = {});

  /// Runs `epochs` shuffled-minibatch epochs over (x, labels).
  /// `x` is the full dataset batch (first dimension = samples).
  std::vector<EpochStats> fit(const Tensor& x, const std::vector<int>& labels,
                              Optimizer& opt, std::size_t epochs,
                              std::size_t batch_size, hsd::stats::Rng& rng,
                              const std::vector<double>& class_weights = {});

  /// Serializes the network in the versioned "HSD2" format: all parameters
  /// (shape-checked on load), each layer's non-parameter state (e.g.
  /// Dropout's RNG), and — when `opt` is non-null — the optimizer's
  /// accumulator state, so train→save→load→train matches uninterrupted
  /// training bit for bit.
  void save(std::ostream& os, const Optimizer* opt = nullptr);

  /// Loads either the current "HSD2" format or the legacy "HSD1"
  /// parameters-only format (older files keep working; they simply carry no
  /// layer/optimizer state). When `opt` is non-null and the stream holds
  /// optimizer state, it is restored into `opt`; its state_tag() must match
  /// the saved tag. A null `opt` skips any saved optimizer state.
  void load(std::istream& is, Optimizer* opt = nullptr);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace hsd::nn
