#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace hsd::nn {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels,
                                 const std::vector<double>& class_weights) {
  if (logits.rank() != 2) throw std::invalid_argument("softmax_cross_entropy: rank != 2");
  const std::size_t n = logits.dim(0);
  const std::size_t c = logits.dim(1);
  if (labels.size() != n) throw std::invalid_argument("softmax_cross_entropy: label count");
  if (!class_weights.empty() && class_weights.size() != c) {
    throw std::invalid_argument("softmax_cross_entropy: class weight count");
  }

  LossResult res;
  res.grad_logits = Tensor({n, c});
  const Tensor probs = hsd::tensor::softmax_rows(logits);

  double total_weight = 0.0;
  std::vector<double> sample_weight(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    const int y = labels[i];
    if (y < 0 || static_cast<std::size_t>(y) >= c) {
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    }
    if (!class_weights.empty()) sample_weight[i] = class_weights[static_cast<std::size_t>(y)];
    total_weight += sample_weight[i];
  }
  if (total_weight <= 0.0) throw std::invalid_argument("softmax_cross_entropy: zero weight");

  for (std::size_t i = 0; i < n; ++i) {
    const float* prow = probs.data() + i * c;
    float* grow = res.grad_logits.data() + i * c;
    const auto y = static_cast<std::size_t>(labels[i]);
    const double w = sample_weight[i] / total_weight;
    const double p_true = std::max(static_cast<double>(prow[y]), 1e-12);
    res.value += -w * std::log(p_true);
    for (std::size_t j = 0; j < c; ++j) {
      grow[j] = static_cast<float>(w * (static_cast<double>(prow[j]) -
                                        (j == y ? 1.0 : 0.0)));
    }
    std::size_t arg = 0;
    for (std::size_t j = 1; j < c; ++j) {
      if (prow[j] > prow[arg]) arg = j;
    }
    if (arg == y) res.correct++;
  }
  return res;
}

}  // namespace hsd::nn
