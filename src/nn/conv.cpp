#include "nn/conv.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/ops.hpp"

namespace hsd::nn {

using hsd::tensor::col2im;
using hsd::tensor::conv_out_extent;
using hsd::tensor::im2col;

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, hsd::stats::Rng& rng, std::size_t stride,
               std::size_t pad)
    : in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(pad),
      w_(Tensor::randn({out_channels, in_channels * kernel * kernel}, rng, 0.0F,
                       std::sqrt(2.0F / static_cast<float>(
                                             in_channels * kernel * kernel)))),
      b_({out_channels}),
      w_grad_({out_channels, in_channels * kernel * kernel}),
      b_grad_({out_channels}) {
  if (in_channels == 0 || out_channels == 0 || kernel == 0 || stride == 0) {
    throw std::invalid_argument("Conv2d: zero-sized configuration");
  }
}

Tensor Conv2d::forward(const Tensor& input) {
  HSD_SPAN("nn/conv_fwd");
  if (input.rank() != 4 || input.dim(1) != in_c_) {
    throw std::invalid_argument("Conv2d::forward: expected NCHW input with matching C");
  }
  hsd::tensor::debug_check_finite(input.data(), input.size(), "Conv2d::forward input");
  input_ = input;
  const std::size_t n = input.dim(0);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  const std::size_t oh = conv_out_extent(h, k_, stride_, pad_);
  const std::size_t ow = conv_out_extent(w, k_, stride_, pad_);
  const std::size_t patch = in_c_ * k_ * k_;
  const std::size_t out_spatial = oh * ow;

  Tensor out({n, out_c_, oh, ow});
  // Images are independent; each block keeps a private im2col scratch so
  // blocks never share mutable state. The per-image math is untouched, so
  // any thread count produces the serial result bit for bit.
  runtime::parallel_for(0, n, 1, [&](std::size_t n0, std::size_t n1) {
    std::vector<float> columns(patch * out_spatial);
    for (std::size_t img = n0; img < n1; ++img) {
      const float* src = input.data() + img * in_c_ * h * w;
      im2col(src, in_c_, h, w, k_, k_, stride_, pad_, columns.data());
      float* dst = out.data() + img * out_c_ * out_spatial;
      // (out_c x patch) * (patch x out_spatial)
      hsd::tensor::matmul(w_.data(), columns.data(), dst, out_c_, patch, out_spatial);
      for (std::size_t oc = 0; oc < out_c_; ++oc) {
        float* plane = dst + oc * out_spatial;
        for (std::size_t s = 0; s < out_spatial; ++s) plane[s] += b_[oc];
      }
    }
  });
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  HSD_SPAN("nn/conv_bwd");
  HSD_DCHECK_EQ(input_.rank(), 4u, "Conv2d::backward before forward");
  hsd::tensor::debug_check_finite(grad_output.data(), grad_output.size(),
                                  "Conv2d::backward grad");
  const std::size_t n = input_.dim(0);
  const std::size_t h = input_.dim(2);
  const std::size_t w = input_.dim(3);
  const std::size_t oh = conv_out_extent(h, k_, stride_, pad_);
  const std::size_t ow = conv_out_extent(w, k_, stride_, pad_);
  const std::size_t patch = in_c_ * k_ * k_;
  const std::size_t out_spatial = oh * ow;
  if (grad_output.rank() != 4 || grad_output.dim(0) != n ||
      grad_output.dim(1) != out_c_ || grad_output.dim(2) != oh ||
      grad_output.dim(3) != ow) {
    throw std::invalid_argument("Conv2d::backward: bad grad shape");
  }

  Tensor grad_input(input_.shape());
  // Per-image weight/bias gradients land in private slices and are reduced
  // in image order after the join — the identical add sequence the serial
  // loop performs, so accumulation stays bit-stable across thread counts.
  std::vector<float> w_grad_per_img(n * out_c_ * patch);
  std::vector<float> b_grad_per_img(n * out_c_);

  runtime::parallel_for(0, n, 1, [&](std::size_t n0, std::size_t n1) {
    std::vector<float> columns(patch * out_spatial);
    std::vector<float> grad_columns(patch * out_spatial);
    for (std::size_t img = n0; img < n1; ++img) {
      const float* src = input_.data() + img * in_c_ * h * w;
      const float* gout = grad_output.data() + img * out_c_ * out_spatial;

      // dW_img = dY * columns^T : (out_c x out_spatial) * (out_spatial x patch)
      im2col(src, in_c_, h, w, k_, k_, stride_, pad_, columns.data());
      hsd::tensor::matmul_a_bt(gout, columns.data(),
                               w_grad_per_img.data() + img * out_c_ * patch,
                               out_c_, out_spatial, patch);

      // db_img = spatial sums of dY
      for (std::size_t oc = 0; oc < out_c_; ++oc) {
        const float* plane = gout + oc * out_spatial;
        float s = 0.0F;
        for (std::size_t i = 0; i < out_spatial; ++i) s += plane[i];
        b_grad_per_img[img * out_c_ + oc] = s;
      }

      // dColumns = W^T * dY : (patch x out_c) * (out_c x out_spatial)
      hsd::tensor::matmul_at_b(w_.data(), gout, grad_columns.data(), patch, out_c_,
                               out_spatial);
      float* gin = grad_input.data() + img * in_c_ * h * w;
      col2im(grad_columns.data(), in_c_, h, w, k_, k_, stride_, pad_, gin);
    }
  });

  for (std::size_t img = 0; img < n; ++img) {
    const float* wg = w_grad_per_img.data() + img * out_c_ * patch;
    for (std::size_t i = 0; i < out_c_ * patch; ++i) w_grad_[i] += wg[i];
    const float* bg = b_grad_per_img.data() + img * out_c_;
    for (std::size_t oc = 0; oc < out_c_; ++oc) b_grad_[oc] += bg[oc];
  }
  return grad_input;
}

std::vector<Param> Conv2d::params() {
  return {{&w_, &w_grad_, "weight"}, {&b_, &b_grad_, "bias"}};
}

}  // namespace hsd::nn
