#pragma once
// Max pooling over NCHW inputs.

#include "nn/layer.hpp"

namespace hsd::nn {

class MaxPool2d : public Layer {
 public:
  /// Square window max pooling; stride defaults to the window size.
  explicit MaxPool2d(std::size_t window, std::size_t stride = 0);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2d"; }

  std::size_t window() const { return window_; }
  std::size_t stride() const { return stride_; }

 private:
  std::size_t window_;
  std::size_t stride_;
  hsd::tensor::Shape in_shape_;
  std::vector<std::size_t> argmax_;  // flat input index of each output max
};

}  // namespace hsd::nn
