#include "data/dataset.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <stdexcept>

#include "common/binio.hpp"
#include "tensor/ops.hpp"

namespace hsd::data {

void save_indices(std::ostream& os, const std::vector<std::size_t>& indices) {
  std::vector<std::uint64_t> wide(indices.begin(), indices.end());
  hsd::common::write_vector(os, wide);
}

std::vector<std::size_t> load_indices(std::istream& is) {
  const std::vector<std::uint64_t> wide = hsd::common::read_vector<std::uint64_t>(is);
  return {wide.begin(), wide.end()};
}

void LabeledSet::save(std::ostream& os) const {
  if (labels.size() != indices.size()) {
    throw std::invalid_argument("LabeledSet::save: index/label size mismatch");
  }
  save_indices(os, indices);
  std::vector<std::int32_t> narrow(labels.begin(), labels.end());
  hsd::common::write_vector(os, narrow);
}

LabeledSet LabeledSet::load_from(std::istream& is) {
  LabeledSet set;
  set.indices = load_indices(is);
  const std::vector<std::int32_t> narrow = hsd::common::read_vector<std::int32_t>(is);
  set.labels.assign(narrow.begin(), narrow.end());
  if (set.labels.size() != set.indices.size()) {
    throw std::runtime_error("LabeledSet::load_from: index/label size mismatch");
  }
  return set;
}

UnlabeledPool::UnlabeledPool(std::size_t universe_size) {
  indices_.resize(universe_size);
  std::iota(indices_.begin(), indices_.end(), std::size_t{0});
  position_.resize(universe_size);
  for (std::size_t i = 0; i < universe_size; ++i) position_[i] = i + 1;
}

UnlabeledPool::UnlabeledPool(std::vector<std::size_t> indices)
    : indices_(std::move(indices)) {
  std::size_t universe = 0;
  for (std::size_t idx : indices_) universe = std::max(universe, idx + 1);
  position_.assign(universe, 0);
  for (std::size_t pos = 0; pos < indices_.size(); ++pos) {
    const std::size_t idx = indices_[pos];
    if (position_[idx] != 0) throw std::invalid_argument("UnlabeledPool: duplicate index");
    position_[idx] = pos + 1;
  }
}

bool UnlabeledPool::contains(std::size_t index) const {
  return index < position_.size() && position_[index] != 0;
}

bool UnlabeledPool::remove(std::size_t index) {
  if (!contains(index)) return false;
  const std::size_t pos = position_[index] - 1;
  const std::size_t last = indices_.back();
  indices_[pos] = last;
  position_[last] = pos + 1;
  indices_.pop_back();
  position_[index] = 0;
  return true;
}

void UnlabeledPool::remove_all(const std::vector<std::size_t>& indices) {
  for (std::size_t idx : indices) remove(idx);
}

tensor::Tensor make_batch(const tensor::Tensor& features,
                          const std::vector<std::size_t>& indices) {
  return tensor::gather_rows(features, indices);
}

}  // namespace hsd::data

namespace hsd::data {

Split shuffled_split(const std::vector<int>& labels, std::size_t train_size,
                     std::size_t val_size, std::size_t test_size,
                     hsd::stats::Rng& rng) {
  const std::size_t n = labels.size();
  if (train_size + val_size + test_size > n) {
    throw std::invalid_argument("shuffled_split: sizes exceed population");
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);

  Split split;
  const std::size_t effective_test =
      test_size == 0 ? n - train_size - val_size : test_size;
  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::size_t idx = order[pos];
    if (split.train.size() < train_size) {
      split.train.add(idx, labels[idx]);
    } else if (split.val.size() < val_size) {
      split.val.add(idx, labels[idx]);
    } else if (split.test.size() < effective_test) {
      split.test.add(idx, labels[idx]);
    }
  }
  return split;
}

}  // namespace hsd::data
