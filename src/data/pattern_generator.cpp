#include "data/pattern_generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hsd::data {

using layout::Clip;
using layout::Coord;
using layout::Rect;

PatternGenerator::PatternGenerator(GeneratorConfig config, hsd::stats::Rng rng)
    : config_(std::move(config)), rng_(rng) {
  if (config_.clip_side <= 0 || config_.step <= 0) {
    throw std::invalid_argument("PatternGenerator: bad clip_side/step");
  }
  if (config_.min_width > config_.max_width || config_.min_space > config_.max_space) {
    throw std::invalid_argument("PatternGenerator: inverted dimension ranges");
  }
  if (!config_.family_weights.empty() &&
      config_.family_weights.size() != static_cast<std::size_t>(Family::kCount)) {
    throw std::invalid_argument("PatternGenerator: family_weights size");
  }
}

Coord PatternGenerator::snap(double v) const {
  const double s = static_cast<double>(config_.step);
  return static_cast<Coord>(std::llround(v / s) * config_.step);
}

Coord PatternGenerator::draw_width(bool risky) {
  // Risky draws concentrate at the narrow end where pinching starts.
  const Coord lo = config_.min_width;
  const Coord hi = risky
      ? std::min<Coord>(config_.max_width,
                        static_cast<Coord>(lo + 2 * config_.step))
      : config_.max_width;
  const auto steps_lo = lo / config_.step;
  const auto steps_hi = std::max<Coord>(hi / config_.step, steps_lo);
  return static_cast<Coord>(rng_.randint(steps_lo, steps_hi) * config_.step);
}

Coord PatternGenerator::draw_space(bool risky) {
  const Coord lo = config_.min_space;
  const Coord hi = risky
      ? std::min<Coord>(config_.max_space,
                        static_cast<Coord>(lo + 2 * config_.step))
      : config_.max_space;
  const auto steps_lo = lo / config_.step;
  const auto steps_hi = std::max<Coord>(hi / config_.step, steps_lo);
  return static_cast<Coord>(rng_.randint(steps_lo, steps_hi) * config_.step);
}

Clip PatternGenerator::blank_clip(Family family) const {
  Clip clip;
  clip.window = Rect{0, 0, config_.clip_side, config_.clip_side};
  clip.core = layout::centered_core(clip.window, config_.core_fraction);
  clip.family = static_cast<int>(family);
  return clip;
}

Clip PatternGenerator::next() {
  std::vector<double> weights = config_.family_weights;
  if (weights.empty()) {
    weights.assign(static_cast<std::size_t>(Family::kCount), 1.0);
  }
  const auto fam = static_cast<Family>(rng_.weighted_index(weights));
  return next_from(fam);
}

Clip PatternGenerator::next_from(Family family) {
  const bool risky = rng_.bernoulli(config_.risky_fraction);
  switch (family) {
    case Family::kParallelLines: return make_parallel_lines(risky);
    case Family::kLineEnds: return make_line_ends(risky);
    case Family::kJogs: return make_jogs(risky);
    case Family::kComb: return make_comb(risky);
    case Family::kViaArray: return make_via_array(risky);
    case Family::kTJunction: return make_t_junction(risky);
    case Family::kCount: break;
  }
  throw std::invalid_argument("PatternGenerator::next_from: bad family");
}

Coord PatternGenerator::jitter(int steps) {
  return static_cast<Coord>(rng_.randint(-steps, steps) * config_.step);
}

Clip PatternGenerator::make_parallel_lines(bool risky) {
  Clip clip = blank_clip(Family::kParallelLines);
  const Coord side = config_.clip_side;
  const bool horizontal = rng_.bernoulli(0.5);
  const Coord width = draw_width(risky);
  const Coord space = draw_space(risky);
  const Coord pitch = static_cast<Coord>(width + space);
  const auto count = static_cast<Coord>(rng_.randint(2, std::max<Coord>(2, side / pitch - 1)));
  const Coord extent = static_cast<Coord>(count * pitch - space);
  const Coord start =
      std::max<Coord>(0, static_cast<Coord>(snap((side - extent) / 2.0) + jitter(4)));
  const Coord margin = std::max<Coord>(0, static_cast<Coord>(snap(side * 0.05) + jitter(3)));
  for (Coord i = 0; i < count; ++i) {
    const Coord lo = static_cast<Coord>(start + i * pitch);
    if (horizontal) {
      clip.shapes.push_back(Rect{margin, lo, static_cast<Coord>(side - margin),
                                 static_cast<Coord>(lo + width)});
    } else {
      clip.shapes.push_back(Rect{lo, margin, static_cast<Coord>(lo + width),
                                 static_cast<Coord>(side - margin)});
    }
  }
  clamp_to_window(clip);
  layout::finalize(clip);
  return clip;
}

Clip PatternGenerator::make_line_ends(bool risky) {
  // Two collinear wires with a tip-to-tip gap across the core; the classic
  // line-end pull-back / bridging structure.
  Clip clip = blank_clip(Family::kLineEnds);
  const Coord side = config_.clip_side;
  const Coord width = draw_width(risky);
  const Coord gap = draw_space(risky);
  const Coord y = static_cast<Coord>(snap(side / 2.0 - width / 2.0) + jitter(5));
  const Coord gap_lo = static_cast<Coord>(snap(side / 2.0 - gap / 2.0) + jitter(5));
  const Coord gap_hi = static_cast<Coord>(gap_lo + gap);
  const Coord margin = std::max<Coord>(0, static_cast<Coord>(snap(side * 0.05) + jitter(3)));
  clip.shapes.push_back(Rect{margin, y, gap_lo, static_cast<Coord>(y + width)});
  clip.shapes.push_back(
      Rect{gap_hi, y, static_cast<Coord>(side - margin), static_cast<Coord>(y + width)});
  // A few context lines above/below.
  const auto rails = rng_.randint(0, 2);
  const Coord rail_space = draw_space(false);
  for (std::int64_t r = 0; r < rails; ++r) {
    const Coord offset = static_cast<Coord>((r + 1) * (width + rail_space));
    clip.shapes.push_back(Rect{margin, static_cast<Coord>(y - offset),
                               static_cast<Coord>(side - margin),
                               static_cast<Coord>(y - offset + width)});
    clip.shapes.push_back(Rect{margin, static_cast<Coord>(y + offset),
                               static_cast<Coord>(side - margin),
                               static_cast<Coord>(y + offset + width)});
  }
  clamp_to_window(clip);
  layout::finalize(clip);
  return clip;
}

Clip PatternGenerator::make_jogs(bool risky) {
  // An L/Z-shaped route built from two overlapping rectangles plus a
  // neighbor wire at drawn spacing.
  Clip clip = blank_clip(Family::kJogs);
  const Coord side = config_.clip_side;
  const Coord width = draw_width(risky);
  const Coord space = draw_space(risky);
  const Coord margin = snap(side * 0.1);
  const Coord jog_x = snap(side * (0.35 + 0.3 * rng_.uniform()));
  const Coord y = snap(side * (0.35 + 0.3 * rng_.uniform()));
  // Horizontal segment, then vertical segment up from its end.
  clip.shapes.push_back(Rect{margin, y, static_cast<Coord>(jog_x + width),
                             static_cast<Coord>(y + width)});
  clip.shapes.push_back(Rect{jog_x, y, static_cast<Coord>(jog_x + width),
                             static_cast<Coord>(side - margin)});
  // Neighbor wire hugging the vertical segment.
  const Coord nx = static_cast<Coord>(jog_x + width + space);
  if (nx + width < side - margin) {
    clip.shapes.push_back(Rect{nx, static_cast<Coord>(y + width + space),
                               static_cast<Coord>(nx + width),
                               static_cast<Coord>(side - margin)});
  }
  clamp_to_window(clip);
  layout::finalize(clip);
  return clip;
}

Clip PatternGenerator::make_comb(bool risky) {
  // Comb/serpentine: a spine with fingers interdigitated against a second
  // comb — dense spacing stress.
  Clip clip = blank_clip(Family::kComb);
  const Coord side = config_.clip_side;
  const Coord width = draw_width(risky);
  const Coord space = draw_space(risky);
  const Coord pitch = static_cast<Coord>(2 * (width + space));
  const Coord margin =
      std::max<Coord>(config_.step, static_cast<Coord>(snap(side * 0.08) + jitter(4)));
  const auto fingers = std::max<Coord>(1, (side - 2 * margin) / pitch);
  // Left spine and right spine.
  clip.shapes.push_back(Rect{margin, margin, static_cast<Coord>(margin + width),
                             static_cast<Coord>(side - margin)});
  clip.shapes.push_back(Rect{static_cast<Coord>(side - margin - width), margin,
                             static_cast<Coord>(side - margin),
                             static_cast<Coord>(side - margin)});
  for (Coord f = 0; f < fingers; ++f) {
    const Coord y = static_cast<Coord>(margin + f * pitch);
    // Finger from the left spine.
    clip.shapes.push_back(Rect{static_cast<Coord>(margin + width), y,
                               static_cast<Coord>(side - margin - width - space),
                               static_cast<Coord>(y + width)});
    // Finger from the right spine, offset by width + space.
    const Coord y2 = static_cast<Coord>(y + width + space);
    if (y2 + width <= side - margin) {
      clip.shapes.push_back(Rect{static_cast<Coord>(margin + width + space), y2,
                                 static_cast<Coord>(side - margin - width),
                                 static_cast<Coord>(y2 + width)});
    }
  }
  clamp_to_window(clip);
  layout::finalize(clip);
  return clip;
}

Clip PatternGenerator::make_via_array(bool risky) {
  // Square via-like islands on a coarse grid; small isolated squares are
  // the features most prone to failing to print.
  Clip clip = blank_clip(Family::kViaArray);
  const Coord side = config_.clip_side;
  const Coord via = draw_width(risky);
  const Coord space = static_cast<Coord>(draw_space(risky) + via);
  const auto rows = rng_.randint(1, 3);
  const auto cols = rng_.randint(1, 3);
  const Coord extent_x = static_cast<Coord>(cols * via + (cols - 1) * (space - via));
  const Coord extent_y = static_cast<Coord>(rows * via + (rows - 1) * (space - via));
  const Coord x0 = static_cast<Coord>(snap((side - extent_x) / 2.0) + jitter(6));
  const Coord y0 = static_cast<Coord>(snap((side - extent_y) / 2.0) + jitter(6));
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      const Coord x = static_cast<Coord>(x0 + c * space);
      const Coord y = static_cast<Coord>(y0 + r * space);
      clip.shapes.push_back(
          Rect{x, y, static_cast<Coord>(x + via), static_cast<Coord>(y + via)});
    }
  }
  clamp_to_window(clip);
  layout::finalize(clip);
  return clip;
}

Clip PatternGenerator::make_t_junction(bool risky) {
  Clip clip = blank_clip(Family::kTJunction);
  const Coord side = config_.clip_side;
  const Coord width = draw_width(risky);
  const Coord space = draw_space(risky);
  const Coord margin =
      std::max<Coord>(0, static_cast<Coord>(snap(side * 0.08) + jitter(3)));
  const Coord y = static_cast<Coord>(snap(side / 2.0 - width / 2.0) + jitter(5));
  const Coord xmid = static_cast<Coord>(snap(side / 2.0 - width / 2.0) + jitter(5));
  // Horizontal bar and vertical stem.
  clip.shapes.push_back(
      Rect{margin, y, static_cast<Coord>(side - margin), static_cast<Coord>(y + width)});
  clip.shapes.push_back(Rect{xmid, static_cast<Coord>(y + width),
                             static_cast<Coord>(xmid + width),
                             static_cast<Coord>(side - margin)});
  // A parallel wire below the bar at drawn spacing.
  const Coord ny = static_cast<Coord>(y - space - width);
  if (ny > margin) {
    clip.shapes.push_back(Rect{margin, ny, static_cast<Coord>(side - margin),
                               static_cast<Coord>(ny + width)});
  }
  clamp_to_window(clip);
  layout::finalize(clip);
  return clip;
}

void PatternGenerator::clamp_to_window(Clip& clip) const {
  // Jittered placements may poke past the window; clip them back and drop
  // shapes that fall outside entirely.
  std::vector<Rect> kept;
  kept.reserve(clip.shapes.size());
  for (const Rect& r : clip.shapes) {
    const Rect c = layout::intersection(r, clip.window);
    if (c.valid() && c.width() > 0 && c.height() > 0) kept.push_back(c);
  }
  clip.shapes = std::move(kept);
}

}  // namespace hsd::data
