#include "data/features.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace hsd::data {

FeatureExtractor::FeatureExtractor(std::size_t grid, std::size_t keep)
    : raster_(grid), dct_(grid), keep_(keep) {
  if (keep == 0 || keep > grid) throw std::invalid_argument("FeatureExtractor: bad keep");
}

std::vector<float> FeatureExtractor::extract(const layout::Clip& clip) const {
  return extract_bitmap(raster_.rasterize(clip));
}

std::vector<float> FeatureExtractor::extract_bitmap(
    const std::vector<float>& mask) const {
  std::vector<float> coeffs = dct_.forward_lowfreq(mask, keep_);
  // Magnitude spectrum: dropping the coefficient signs makes the encoding
  // quasi-shift-invariant, so two placements of the same structure map to
  // nearby features while marginal widths/pitches (the hotspot drivers)
  // move the frequency content — exactly the separation the GMM density
  // seeding and the diversity metric rely on.
  const auto scale = 1.0F / static_cast<float>(raster_.grid());
  for (auto& c : coeffs) c = std::abs(c) * scale;
  return coeffs;
}

tensor::Tensor FeatureExtractor::extract_batch(
    const std::vector<layout::Clip>& clips) const {
  HSD_SPAN("data/dct_features");
  // hsd-lint: allow(no-mutable-static) — magic-static metric handle
  static obs::Counter& featurized = obs::counter("data/clips_featurized");
  featurized.add(clips.size());
  tensor::Tensor out({clips.size(), 1, keep_, keep_});
  const std::size_t row = keep_ * keep_;
  // extract() only reads the rasterizer and DCT tables, so clips fan out
  // across the pool into disjoint output rows.
  runtime::parallel_for(0, clips.size(), 1, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const std::vector<float> f = extract(clips[i]);
      std::memcpy(out.data() + i * row, f.data(), row * sizeof(float));
    }
  });
  return out;
}

std::vector<std::vector<double>> to_double_rows(const tensor::Tensor& x) {
  if (x.rank() < 1) throw std::invalid_argument("to_double_rows: rank 0");
  const std::size_t n = x.dim(0);
  const std::size_t row = n > 0 ? x.size() / n : 0;
  std::vector<std::vector<double>> rows(n, std::vector<double>(row));
  for (std::size_t i = 0; i < n; ++i) {
    const float* src = x.data() + i * row;
    for (std::size_t j = 0; j < row; ++j) rows[i][j] = static_cast<double>(src[j]);
  }
  return rows;
}

}  // namespace hsd::data
