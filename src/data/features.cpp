#include "data/features.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace hsd::data {

FeatureExtractor::FeatureExtractor(std::size_t grid, std::size_t keep)
    : raster_(grid), dct_(grid), keep_(keep) {
  if (keep == 0 || keep > grid) throw std::invalid_argument("FeatureExtractor: bad keep");
}

std::vector<float> FeatureExtractor::extract(const layout::Clip& clip) const {
  return extract_bitmap(raster_.rasterize(clip));
}

std::vector<float> FeatureExtractor::extract_bitmap(
    const std::vector<float>& mask) const {
  std::vector<float> coeffs = dct_.forward_lowfreq(mask, keep_);
  // Magnitude spectrum: dropping the coefficient signs makes the encoding
  // quasi-shift-invariant, so two placements of the same structure map to
  // nearby features while marginal widths/pitches (the hotspot drivers)
  // move the frequency content — exactly the separation the GMM density
  // seeding and the diversity metric rely on.
  const auto scale = 1.0F / static_cast<float>(raster_.grid());
  for (auto& c : coeffs) c = std::abs(c) * scale;
  return coeffs;
}

void FeatureExtractor::extract_bitmaps(const float* masks, std::size_t count,
                                       float* out) const {
  dct_.forward_lowfreq_batch_abs(masks, count, keep_,
                                 1.0F / static_cast<float>(raster_.grid()),
                                 out);
}

tensor::Tensor FeatureExtractor::extract_batch(
    const std::vector<layout::Clip>& clips) const {
  HSD_SPAN("data/dct_features");
  // hsd-lint: allow(no-mutable-static) — magic-static metric handle
  static obs::Counter& featurized = obs::counter("data/clips_featurized");
  featurized.add(clips.size());
  tensor::Tensor out({clips.size(), 1, keep_, keep_});
  if (clips.empty()) return out;
  const std::size_t g = raster_.grid();
  const std::size_t row = keep_ * keep_;
  // Rasterize in bounded chunks (rasterization only reads shared tables, so
  // clips fan out across the pool into disjoint mask slots), then push each
  // packed chunk through the batched truncated DCT in one call.
  constexpr std::size_t kChunk = 4096;
  std::vector<float> masks(std::min(kChunk, clips.size()) * g * g);
  for (std::size_t b0 = 0; b0 < clips.size(); b0 += kChunk) {
    const std::size_t b1 = std::min(clips.size(), b0 + kChunk);
    runtime::parallel_for(b0, b1, 1, [&](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        const std::vector<float> m = raster_.rasterize(clips[i]);
        std::memcpy(masks.data() + (i - b0) * g * g, m.data(),
                    g * g * sizeof(float));
      }
    });
    extract_bitmaps(masks.data(), b1 - b0, out.data() + b0 * row);
  }
  return out;
}

std::vector<std::vector<double>> to_double_rows(const tensor::Tensor& x) {
  if (x.rank() < 1) throw std::invalid_argument("to_double_rows: rank 0");
  const std::size_t n = x.dim(0);
  if (n == 0) return {};
  if (x.size() % n != 0) {
    throw std::invalid_argument(
        "to_double_rows: element count not divisible by dim(0)");
  }
  const std::size_t row = x.size() / n;
  std::vector<std::vector<double>> rows(n, std::vector<double>(row));
  for (std::size_t i = 0; i < n; ++i) {
    const float* src = x.data() + i * row;
    for (std::size_t j = 0; j < row; ++j) rows[i][j] = static_cast<double>(src[j]);
  }
  return rows;
}

}  // namespace hsd::data
