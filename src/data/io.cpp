#include "data/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "layout/io.hpp"

namespace hsd::data {

namespace {
constexpr const char* kMagic = "hsd-benchmark";
constexpr int kVersion = 1;
}  // namespace

void save_benchmark(std::ostream& os, const Benchmark& bench) {
  const BenchmarkSpec& s = bench.spec;
  os << kMagic << ' ' << kVersion << '\n';
  // Spec line: everything needed to rebuild oracles and extractors.
  os << "spec " << (s.name.empty() ? "unnamed" : s.name) << ' ' << s.hs_target << ' '
     << s.nhs_target << ' ' << s.tech_nm << ' ' << s.grid << ' ' << s.feature_grid
     << ' ' << s.feature_keep << ' ' << s.seed << '\n';
  os << "optics " << s.optics.sigma_px << ' ' << s.optics.resist_threshold << ' '
     << s.optics.truncate << '\n';
  os << "gen " << s.gen.clip_side << ' ' << s.gen.step << ' ' << s.gen.min_width << ' '
     << s.gen.max_width << ' ' << s.gen.min_space << ' ' << s.gen.max_space << ' '
     << s.gen.core_fraction << ' ' << s.gen.risky_fraction << '\n';
  os << "chip " << bench.chip_cols << ' ' << bench.chip_rows << '\n';
  os << "labels " << bench.labels.size();
  for (int y : bench.labels) os << ' ' << y;
  os << '\n';
  layout::write_clips(os, bench.clips);
  if (!os) throw std::runtime_error("save_benchmark: stream failure");
}

Benchmark load_benchmark(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != kMagic || version != kVersion) {
    throw std::runtime_error("load_benchmark: not a benchmark bundle");
  }
  Benchmark bench;
  BenchmarkSpec& s = bench.spec;
  std::string tag;
  if (!(is >> tag >> s.name >> s.hs_target >> s.nhs_target >> s.tech_nm >> s.grid >>
        s.feature_grid >> s.feature_keep >> s.seed) ||
      tag != "spec") {
    throw std::runtime_error("load_benchmark: malformed spec line");
  }
  if (!(is >> tag >> s.optics.sigma_px >> s.optics.resist_threshold >>
        s.optics.truncate) ||
      tag != "optics") {
    throw std::runtime_error("load_benchmark: malformed optics line");
  }
  if (!(is >> tag >> s.gen.clip_side >> s.gen.step >> s.gen.min_width >>
        s.gen.max_width >> s.gen.min_space >> s.gen.max_space >> s.gen.core_fraction >>
        s.gen.risky_fraction) ||
      tag != "gen") {
    throw std::runtime_error("load_benchmark: malformed gen line");
  }
  if (!(is >> tag >> bench.chip_cols >> bench.chip_rows) || tag != "chip") {
    throw std::runtime_error("load_benchmark: malformed chip line");
  }
  std::size_t nlabels = 0;
  if (!(is >> tag >> nlabels) || tag != "labels") {
    throw std::runtime_error("load_benchmark: malformed labels line");
  }
  bench.labels.resize(nlabels);
  for (auto& y : bench.labels) {
    if (!(is >> y) || (y != 0 && y != 1)) {
      throw std::runtime_error("load_benchmark: malformed label value");
    }
  }
  bench.clips = layout::read_clips(is);
  if (bench.clips.size() != bench.labels.size()) {
    throw std::runtime_error("load_benchmark: clip/label count mismatch");
  }
  for (int y : bench.labels) {
    if (y == 1) {
      bench.num_hotspots++;
    } else {
      bench.num_non_hotspots++;
    }
  }
  return bench;
}

void save_benchmark_file(const std::string& path, const Benchmark& bench) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_benchmark_file: cannot open " + path);
  save_benchmark(os, bench);
}

Benchmark load_benchmark_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_benchmark_file: cannot open " + path);
  return load_benchmark(is);
}

}  // namespace hsd::data
