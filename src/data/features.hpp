#pragma once
// Layout-clip feature extraction: rasterize to a coverage grid, 2-D DCT,
// keep the low-frequency block (the encoding used by the DCT-based hotspot
// detectors the paper builds on). Features are scaled so the DC term equals
// mean coverage, keeping all inputs O(1) for the CNN.

#include <vector>

#include "data/benchmark.hpp"
#include "layout/raster.hpp"
#include "tensor/dct.hpp"
#include "tensor/tensor.hpp"

namespace hsd::data {

/// Extracts `keep x keep` low-frequency DCT features from clips.
class FeatureExtractor {
 public:
  /// `grid`: raster resolution; `keep`: retained low-frequency block side.
  FeatureExtractor(std::size_t grid, std::size_t keep);

  std::size_t grid() const { return raster_.grid(); }
  std::size_t keep() const { return keep_; }
  /// Flat feature dimension (keep * keep).
  std::size_t dimension() const { return keep_ * keep_; }

  /// Feature vector of one clip.
  std::vector<float> extract(const layout::Clip& clip) const;

  /// Feature vector from an already-rasterized `grid x grid` coverage
  /// bitmap. `extract(clip)` is exactly `extract_bitmap(rasterizer()
  /// .rasterize(clip))`; the split lets callers that need the bitmap for
  /// something else (content hashing in the serving feature cache) pay for
  /// rasterization once.
  std::vector<float> extract_bitmap(const std::vector<float>& mask) const;

  /// Batched extract_bitmap: `count` rasterized `grid x grid` bitmaps packed
  /// back-to-back in `masks`, feature row i written to `out + i*dimension()`.
  /// One call runs the whole population through the batched truncated DCT
  /// (Dct2d::forward_lowfreq_batch_abs) — bit-identical per row to
  /// extract_bitmap on every backend at any HSD_THREADS.
  void extract_bitmaps(const float* masks, std::size_t count,
                       float* out) const;

  const layout::Rasterizer& rasterizer() const { return raster_; }

  /// Batch extraction into an NCHW tensor (N, 1, keep, keep) for the CNN.
  /// An empty clip vector yields the well-defined empty tensor
  /// (0, 1, keep, keep).
  tensor::Tensor extract_batch(const std::vector<layout::Clip>& clips) const;

  /// Batch extraction of a whole benchmark.
  tensor::Tensor extract_benchmark(const Benchmark& bench) const {
    return extract_batch(bench.clips);
  }

 private:
  layout::Rasterizer raster_;
  tensor::Dct2d dct_;
  std::size_t keep_;
};

/// Converts a sample-major float tensor into double rows (for the GMM, PCA,
/// and diversity code paths, which work in double precision).
std::vector<std::vector<double>> to_double_rows(const tensor::Tensor& x);

}  // namespace hsd::data
