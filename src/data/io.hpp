#pragma once
// Benchmark persistence: saves/loads a complete benchmark (spec, clips,
// ground-truth labels, chip layout) as an HSDL-based text bundle so
// expensive populations can be built once and reused across experiment runs.

#include <iosfwd>
#include <string>

#include "data/benchmark.hpp"

namespace hsd::data {

/// Writes the benchmark (spec + clips + labels) to a stream.
void save_benchmark(std::ostream& os, const Benchmark& bench);

/// Reads a benchmark written by save_benchmark; throws std::runtime_error
/// on malformed input.
Benchmark load_benchmark(std::istream& is);

/// File-path conveniences.
void save_benchmark_file(const std::string& path, const Benchmark& bench);
Benchmark load_benchmark_file(const std::string& path);

}  // namespace hsd::data
