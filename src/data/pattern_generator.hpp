#pragma once
// Procedural Manhattan pattern families standing in for the ICCAD contest
// layouts. Each family draws a parameterized structure (parallel lines,
// tip-to-tip line ends, jogs, combs, via arrays, T-junctions) with all
// dimensions quantized to a grid step, so identical parameter draws yield
// bit-identical clips — giving the exact/fuzzy duplicate structure the
// pattern-matching baselines rely on.
//
// Whether a generated clip is a hotspot is NOT decided here: the lithography
// simulator is the single source of truth. Families merely skew toward or
// away from marginal dimensions.

#include <cstdint>
#include <vector>

#include "layout/clip.hpp"
#include "stats/rng.hpp"

namespace hsd::data {

/// Identifier of a pattern family.
enum class Family : std::uint8_t {
  kParallelLines = 0,
  kLineEnds,
  kJogs,
  kComb,
  kViaArray,
  kTJunction,
  kCount  // sentinel
};

/// Dimension ranges (in nm, pre-quantization) for one benchmark's generator.
struct GeneratorConfig {
  layout::Coord clip_side = 640;   ///< clip window side in nm
  layout::Coord step = 10;         ///< quantization step; all coords snap to it
  layout::Coord min_width = 20;    ///< narrowest drawn feature
  layout::Coord max_width = 80;
  layout::Coord min_space = 20;    ///< tightest spacing the generator draws
  layout::Coord max_space = 80;
  double core_fraction = 0.5;      ///< core region side as fraction of window
  /// Mixture weight per family (size Family::kCount); uniform if empty.
  std::vector<double> family_weights;
  /// Probability that a draw is biased toward marginal (risky) dimensions.
  double risky_fraction = 0.35;
};

/// Generates clips one at a time from the configured family mixture.
class PatternGenerator {
 public:
  PatternGenerator(GeneratorConfig config, hsd::stats::Rng rng);

  /// Draws the next clip; geometry is canonicalized and hashed.
  layout::Clip next();

  /// Draws a clip from a specific family.
  layout::Clip next_from(Family family);

  const GeneratorConfig& config() const { return config_; }

 private:
  layout::Coord snap(double v) const;
  layout::Coord draw_width(bool risky);
  layout::Coord draw_space(bool risky);
  /// Quantized positional jitter in [-steps, steps] grid steps.
  layout::Coord jitter(int steps);
  /// Clips jittered geometry back into the window.
  void clamp_to_window(layout::Clip& clip) const;

  layout::Clip make_parallel_lines(bool risky);
  layout::Clip make_line_ends(bool risky);
  layout::Clip make_jogs(bool risky);
  layout::Clip make_comb(bool risky);
  layout::Clip make_via_array(bool risky);
  layout::Clip make_t_junction(bool risky);

  layout::Clip blank_clip(Family family) const;

  GeneratorConfig config_;
  hsd::stats::Rng rng_;
};

}  // namespace hsd::data
