#include "data/benchmark.hpp"

#include <cmath>
#include <stdexcept>

namespace hsd::data {

Benchmark build_benchmark(const BenchmarkSpec& spec) {
  Benchmark bench;
  bench.spec = spec;

  PatternGenerator gen(spec.gen, hsd::stats::Rng(spec.seed));
  litho::LithoOracle oracle(spec.grid, spec.optics);  // build-time, uncounted
  // Ground-truth construction is free by definition; keep it out of the
  // global litho/oracle_calls metric so the exported label budget matches
  // what the framework actually spent.
  oracle.set_metered(false);

  std::vector<layout::Clip> hs_pool;
  std::vector<layout::Clip> nhs_pool;
  hs_pool.reserve(spec.hs_target);
  nhs_pool.reserve(spec.nhs_target);

  const std::size_t want = spec.hs_target + spec.nhs_target;
  const std::size_t max_attempts = spec.max_attempts_factor * std::max<std::size_t>(want, 1);
  std::size_t attempts = 0;
  while ((hs_pool.size() < spec.hs_target || nhs_pool.size() < spec.nhs_target) &&
         attempts < max_attempts) {
    attempts++;
    layout::Clip clip = gen.next();
    const bool hs = oracle.label(clip);
    if (hs && hs_pool.size() < spec.hs_target) {
      hs_pool.push_back(std::move(clip));
    } else if (!hs && nhs_pool.size() < spec.nhs_target) {
      nhs_pool.push_back(std::move(clip));
    }
  }
  if (hs_pool.size() < spec.hs_target || nhs_pool.size() < spec.nhs_target) {
    throw std::runtime_error("build_benchmark('" + spec.name +
                             "'): generator could not meet the HS/NHS quota");
  }

  // Interleave the pools in a deterministic shuffled order so hotspots are
  // scattered across the chip rather than clustered by generation time.
  bench.clips.reserve(want);
  bench.labels.reserve(want);
  hsd::stats::Rng mix(spec.seed ^ 0x9E3779B97F4A7C15ULL);
  std::size_t hi = 0;
  std::size_t ni = 0;
  while (hi < hs_pool.size() || ni < nhs_pool.size()) {
    const std::size_t hs_left = hs_pool.size() - hi;
    const std::size_t nhs_left = nhs_pool.size() - ni;
    const bool pick_hs =
        nhs_left == 0 ||
        (hs_left > 0 &&
         mix.uniform() < static_cast<double>(hs_left) /
                             static_cast<double>(hs_left + nhs_left));
    if (pick_hs) {
      bench.clips.push_back(std::move(hs_pool[hi++]));
      bench.labels.push_back(1);
    } else {
      bench.clips.push_back(std::move(nhs_pool[ni++]));
      bench.labels.push_back(0);
    }
  }
  bench.num_hotspots = spec.hs_target;
  bench.num_non_hotspots = spec.nhs_target;

  // Lay the clips out on a square-ish full-chip grid for visualization.
  bench.chip_cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(bench.clips.size()))));
  if (bench.chip_cols == 0) bench.chip_cols = 1;
  bench.chip_rows = (bench.clips.size() + bench.chip_cols - 1) / bench.chip_cols;
  const auto side = spec.gen.clip_side;
  for (std::size_t i = 0; i < bench.clips.size(); ++i) {
    bench.clips[i].chip_origin = {
        static_cast<layout::Coord>((i % bench.chip_cols) * static_cast<std::size_t>(side)),
        static_cast<layout::Coord>((i / bench.chip_cols) * static_cast<std::size_t>(side))};
  }
  return bench;
}

BenchmarkSpec iccad12_spec(double scale) {
  if (scale <= 0.0 || scale > 1.0) throw std::invalid_argument("iccad12_spec: scale");
  BenchmarkSpec spec;
  spec.name = "ICCAD12";
  spec.hs_target = static_cast<std::size_t>(std::lround(3728 * scale));
  spec.nhs_target = static_cast<std::size_t>(std::lround(159672 * scale));
  spec.tech_nm = 28;
  spec.optics = litho::duv28_model();
  spec.grid = 64;
  spec.seed = 2012;
  spec.gen.clip_side = 640;
  spec.gen.step = 10;
  spec.gen.min_width = 20;
  spec.gen.max_width = 80;
  spec.gen.min_space = 20;
  spec.gen.max_space = 80;
  spec.gen.risky_fraction = 0.30;
  spec.gen.family_weights = {3.0, 2.0, 2.0, 1.5, 1.0, 2.0};
  return spec;
}

BenchmarkSpec iccad16_spec(int case_id) {
  BenchmarkSpec spec;
  spec.tech_nm = 7;
  spec.optics = litho::euv7_model();
  spec.grid = 64;
  spec.gen.clip_side = 320;
  spec.gen.step = 5;
  spec.gen.min_width = 10;
  spec.gen.max_width = 40;
  spec.gen.min_space = 10;
  spec.gen.max_space = 40;
  switch (case_id) {
    case 1:
      spec.name = "ICCAD16-1";
      spec.hs_target = 0;
      spec.nhs_target = 63;
      spec.seed = 1601;
      spec.gen.risky_fraction = 0.0;
      spec.gen.family_weights = {3.0, 1.0, 1.0, 1.0, 1.0, 1.0};
      break;
    case 2:
      spec.name = "ICCAD16-2";
      spec.hs_target = 56;
      spec.nhs_target = 967;
      spec.seed = 1602;
      spec.gen.risky_fraction = 0.25;
      spec.gen.family_weights = {2.0, 3.0, 1.0, 1.0, 2.0, 1.0};
      break;
    case 3:
      spec.name = "ICCAD16-3";
      spec.hs_target = 1100;
      spec.nhs_target = 3916;
      spec.seed = 1603;
      spec.gen.risky_fraction = 0.40;
      spec.gen.family_weights = {2.0, 2.0, 1.5, 3.0, 1.0, 1.5};
      break;
    case 4:
      spec.name = "ICCAD16-4";
      spec.hs_target = 157;
      spec.nhs_target = 1678;
      spec.seed = 1604;
      spec.gen.risky_fraction = 0.30;
      spec.gen.family_weights = {1.5, 2.0, 2.0, 1.0, 3.0, 1.5};
      break;
    default:
      throw std::invalid_argument("iccad16_spec: case_id must be 1-4");
  }
  return spec;
}

std::vector<BenchmarkSpec> evaluated_specs(double iccad12_scale) {
  return {iccad12_spec(iccad12_scale), iccad16_spec(2), iccad16_spec(3),
          iccad16_spec(4)};
}

}  // namespace hsd::data
