#pragma once
// Synthetic benchmark suites mirroring the statistics of the ICCAD-2012 and
// ICCAD-2016 contest sets (Table I of the paper). A benchmark is a list of
// clips with lithography-derived ground-truth labels (computed once at build
// time with an *uncounted* oracle — the counted oracle is what the active
// learning framework pays for) plus the optics configuration the framework
// must use so its labels agree with the ground truth.

#include <cstdint>
#include <string>
#include <vector>

#include "data/pattern_generator.hpp"
#include "litho/oracle.hpp"

namespace hsd::data {

/// Build recipe for one benchmark.
struct BenchmarkSpec {
  std::string name;
  std::size_t hs_target = 0;    ///< number of hotspot clips to include
  std::size_t nhs_target = 0;   ///< number of non-hotspot clips
  int tech_nm = 28;             ///< nominal technology node (reporting only)
  GeneratorConfig gen;          ///< pattern generator configuration
  litho::OpticalModel optics;   ///< lithography model labeling this set
  std::size_t grid = 64;        ///< lithography simulation raster resolution
  std::size_t feature_grid = 64;///< raster used for DCT feature extraction
  std::size_t feature_keep = 16;///< retained low-frequency DCT block side
  std::uint64_t seed = 42;      ///< generation seed
  /// Give up if quota is not met after this many generated candidates per
  /// requested clip (guards against mis-tuned generators looping forever).
  std::size_t max_attempts_factor = 400;
};

/// A fully built benchmark.
struct Benchmark {
  BenchmarkSpec spec;
  std::vector<layout::Clip> clips;
  std::vector<int> labels;      ///< ground truth: 1 = hotspot, 0 = non-hotspot
  std::size_t num_hotspots = 0;
  std::size_t num_non_hotspots = 0;
  std::size_t chip_cols = 0;    ///< clips arranged on a chip_cols x chip_rows grid
  std::size_t chip_rows = 0;

  std::size_t size() const { return clips.size(); }

  /// Oracle configured identically to the one that labeled the ground truth;
  /// use this (counted) instance inside the sampling framework.
  litho::LithoOracle make_oracle() const {
    return litho::LithoOracle(spec.grid, spec.optics);
  }
};

/// Builds a benchmark by generating pattern candidates and litho-labeling
/// them until the HS/NHS quotas are met; throws std::runtime_error if the
/// generator cannot reach the quota within the attempt budget.
Benchmark build_benchmark(const BenchmarkSpec& spec);

/// ICCAD-2012-like spec (28 nm, DUV optics). `scale` shrinks the clip counts
/// (Table I: 3728 HS / 159672 NHS at scale 1) while preserving the ratio.
BenchmarkSpec iccad12_spec(double scale = 1.0);

/// ICCAD-2016-like specs, cases 1-4 (7 nm, EUV optics), Table I counts.
BenchmarkSpec iccad16_spec(int case_id);

/// The four evaluated benchmarks of the paper (ICCAD12 at `iccad12_scale`,
/// ICCAD16-2/3/4; case 1 has no hotspots and is skipped, as in the paper).
std::vector<BenchmarkSpec> evaluated_specs(double iccad12_scale = 1.0);

}  // namespace hsd::data
