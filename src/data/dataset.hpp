#pragma once
// Index-set bookkeeping shared by the sampling framework and baselines:
// the labeled training pool L, validation pool V, and unlabeled pool U of
// Algorithm 2 are all index sets over one immutable feature tensor.

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "stats/rng.hpp"
#include "tensor/tensor.hpp"

namespace hsd::data {

/// Clip indices paired with their lithography-obtained labels.
struct LabeledSet {
  std::vector<std::size_t> indices;
  std::vector<int> labels;

  std::size_t size() const { return indices.size(); }
  bool empty() const { return indices.empty(); }

  void add(std::size_t index, int label) {
    indices.push_back(index);
    labels.push_back(label);
  }

  void append(const LabeledSet& other) {
    indices.insert(indices.end(), other.indices.begin(), other.indices.end());
    labels.insert(labels.end(), other.labels.begin(), other.labels.end());
  }

  /// Number of samples labeled hotspot (label == 1).
  std::size_t num_hotspots() const {
    std::size_t n = 0;
    for (int y : labels) n += (y == 1);
    return n;
  }

  /// Binary round trip (length-prefixed u64 indices + i32 labels),
  /// preserving insertion order exactly. Used by the ckpt subsystem.
  void save(std::ostream& os) const;
  static LabeledSet load_from(std::istream& is);
};

/// Serializes an index vector (length-prefixed u64s), preserving order —
/// the unlabeled pool's order is part of the deterministic run state.
void save_indices(std::ostream& os, const std::vector<std::size_t>& indices);
std::vector<std::size_t> load_indices(std::istream& is);

/// An unlabeled pool of clip indices with O(1) removal (swap-and-pop; order
/// is not preserved, which the sampling framework never relies on).
class UnlabeledPool {
 public:
  UnlabeledPool() = default;
  explicit UnlabeledPool(std::size_t universe_size);
  explicit UnlabeledPool(std::vector<std::size_t> indices);

  std::size_t size() const { return indices_.size(); }
  bool empty() const { return indices_.empty(); }
  const std::vector<std::size_t>& indices() const { return indices_; }

  bool contains(std::size_t index) const;

  /// Removes one index; returns false if it was not present.
  bool remove(std::size_t index);

  /// Removes many indices; ignores absent ones.
  void remove_all(const std::vector<std::size_t>& indices);

 private:
  std::vector<std::size_t> indices_;
  std::vector<std::size_t> position_;  // universe index -> position+1 (0 = absent)
};

/// Gathers the feature rows of `indices` into a batch tensor.
tensor::Tensor make_batch(const tensor::Tensor& features,
                          const std::vector<std::size_t>& indices);

/// A three-way labeled split for supervised experiments.
struct Split {
  LabeledSet train;
  LabeledSet val;
  LabeledSet test;
};

/// Deterministic shuffled split of a labeled population into train/val/test
/// of the given sizes (test_size 0 = "all the rest"). Throws if the
/// requested sizes exceed the population.
Split shuffled_split(const std::vector<int>& labels, std::size_t train_size,
                     std::size_t val_size, std::size_t test_size,
                     hsd::stats::Rng& rng);

}  // namespace hsd::data
