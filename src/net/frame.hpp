#pragma once
// Length-prefixed, versioned binary framing for the serving RPC transport
// (DESIGN.md §16). Every message on a connection is one frame:
//
//   offset  size  field
//   0       4     magic "HSDN" (0x4E445348 read as little-endian u32)
//   4       2     protocol version (little-endian u16; currently 1)
//   6       2     frame type (little-endian u16; see FrameType)
//   8       8     payload length in bytes (little-endian u64)
//   16      n     payload (message-specific; see net/wire.hpp)
//
// All integers are little-endian on the wire regardless of host order, and
// floating-point values travel as their IEEE-754 bit patterns — that is
// what makes the encoding golden-pinnable across platforms and lets a
// remote shard's probability arrive bit-identical to an in-process one.
//
// Decoding is defensive: a frame with a bad magic, an unknown version, or a
// payload length over kMaxPayloadBytes is rejected with WireError before
// any payload is read, so a garbage or hostile peer cannot make the server
// allocate unbounded memory. Reader bounds-checks every field read and
// decode helpers require the payload to be fully consumed, so truncated and
// oversized payloads are rejected rather than misparsed.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace hsd::net {

/// Malformed wire data (bad magic/version/length, truncated or trailing
/// payload bytes). Connections that produce one are torn down — framing
/// cannot resynchronize inside a stream.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kFrameMagic = 0x4E445348u;  // "HSDN"
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Upper bound on a single payload; a header announcing more is rejected
/// before any allocation. Generous next to the largest real message (a
/// 512x512 float bitmap is 1 MiB).
inline constexpr std::uint64_t kMaxPayloadBytes = 16ull << 20;

enum class FrameType : std::uint16_t {
  kPredictRequest = 1,
  kPredictResponse = 2,
  kShutdownRequest = 3,
  kShutdownAck = 4,
  kPing = 5,
  kPong = 6,
};

struct FrameHeader {
  std::uint16_t version = 0;
  FrameType type = FrameType::kPing;
  std::uint64_t payload_len = 0;
};

/// Append-only little-endian encoder.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void i64(std::int64_t v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void f32(float v) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u32(bits);
  }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian decoder over a borrowed byte range.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  std::uint8_t u8() {
    need(1);
    return data_[off_++];
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<std::uint16_t>(v | (std::uint16_t{data_[off_ + static_cast<std::size_t>(i)]} << (8 * i)));
    }
    off_ += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= std::uint32_t{data_[off_ + static_cast<std::size_t>(i)]} << (8 * i);
    }
    off_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= std::uint64_t{data_[off_ + static_cast<std::size_t>(i)]} << (8 * i);
    }
    off_ += 8;
    return v;
  }
  std::int64_t i64() {
    const std::uint64_t bits = u64();
    std::int64_t v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  float f32() {
    const std::uint32_t bits = u32();
    float v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::size_t remaining() const { return size_ - off_; }
  bool done() const { return off_ == size_; }

 private:
  void need(std::size_t n) const {
    if (size_ - off_ < n) {
      throw WireError("net: truncated payload (need " + std::to_string(n) +
                      " bytes, have " + std::to_string(size_ - off_) + ")");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t off_ = 0;
};

/// Appends a frame header announcing `payload_len` bytes of `type`.
inline void append_frame_header(Writer& w, FrameType type,
                                std::uint64_t payload_len) {
  w.u32(kFrameMagic);
  w.u16(kProtocolVersion);
  w.u16(static_cast<std::uint16_t>(type));
  w.u64(payload_len);
}

/// One complete frame from a payload already encoded into `payload`.
inline std::vector<std::uint8_t> encode_frame(
    FrameType type, const std::vector<std::uint8_t>& payload) {
  Writer w;
  append_frame_header(w, type, payload.size());
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

/// Validates and decodes the 16 header bytes at `data`. Throws WireError on
/// short input, bad magic, version mismatch, or an oversized payload.
inline FrameHeader decode_frame_header(const std::uint8_t* data,
                                       std::size_t size) {
  Reader r(data, size);
  FrameHeader h;
  std::uint32_t magic = 0;
  try {
    magic = r.u32();
    h.version = r.u16();
    h.type = static_cast<FrameType>(r.u16());
    h.payload_len = r.u64();
  } catch (const WireError&) {
    throw WireError("net: truncated frame header");
  }
  if (magic != kFrameMagic) {
    throw WireError("net: bad frame magic (not an HSDN stream)");
  }
  if (h.version != kProtocolVersion) {
    throw WireError("net: protocol version " + std::to_string(h.version) +
                    " unsupported (expected " +
                    std::to_string(kProtocolVersion) + ")");
  }
  if (h.payload_len > kMaxPayloadBytes) {
    throw WireError("net: oversized payload (" +
                    std::to_string(h.payload_len) + " bytes > cap " +
                    std::to_string(kMaxPayloadBytes) + ")");
  }
  return h;
}

}  // namespace hsd::net
