#include "net/server.hpp"

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <deque>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hsd::net {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Handles for the server-side transport metrics (DESIGN.md §14). One
/// per Server; same-name servers in one process share cells, which is what
/// the obs registry does for every repeated prefix.
struct ServerMetrics {
  ServerMetrics()
      : connections(obs::counter("serve/net/server/connections")),
        frames_in(obs::counter("serve/net/server/frames_in")),
        frames_out(obs::counter("serve/net/server/frames_out")),
        bytes_in(obs::counter("serve/net/server/bytes_in")),
        bytes_out(obs::counter("serve/net/server/bytes_out")),
        overflow_rejects(obs::counter("serve/net/server/overflow_rejects")),
        shutdown_rpcs(obs::counter("serve/net/server/shutdown_rpcs")),
        rpc_seconds(obs::histogram("serve/net/server/rpc_seconds")) {}

  obs::Counter& connections;
  obs::Counter& frames_in;
  obs::Counter& frames_out;
  obs::Counter& bytes_in;
  obs::Counter& bytes_out;
  obs::Counter& overflow_rejects;
  obs::Counter& shutdown_rpcs;
  obs::Histogram& rpc_seconds;
};

ServerMetrics& server_metrics() {
  static ServerMetrics m;
  return m;
}

}  // namespace

struct Server::Connection {
  explicit Connection(Socket s) : sock(std::move(s)) {}
  ~Connection() { join(); }

  void join() {
    if (reader.joinable()) reader.join();
    if (writer.joinable()) writer.join();
  }

  Socket sock;
  std::mutex mutex;
  std::condition_variable cv;
  struct Entry {
    std::function<std::vector<std::uint8_t>()> produce;
    Clock::time_point received;
  };
  std::deque<Entry> queue;
  bool reader_done = false;
  bool broken = false;  ///< send failed; discard the rest unproduced
  std::atomic<bool> finished{false};
  // Both joined by join(), which the destructor guarantees.
  // hsd-lint: allow(no-raw-thread)
  std::thread reader;
  // hsd-lint: allow(no-raw-thread)
  std::thread writer;
};

Server::Server(const ServerConfig& config, Handler handler,
               DrainCallback on_drain)
    : config_(config),
      handler_(std::move(handler)),
      on_drain_(std::move(on_drain)) {}

Server::~Server() { stop(); }

void Server::start() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (started_) return;
  listener_ = listen_on(config_.endpoint, config_.backlog);
  bound_ = bound_endpoint(listener_, config_.endpoint);
  accepting_.store(true, std::memory_order_release);
  // Long-lived accept loop; joined in stop(), which the destructor
  // guarantees. hsd-lint: allow(no-raw-thread)
  accept_thread_ = std::thread([this] { accept_main(); });
  started_ = true;
}

void Server::stop_accepting() {
  accepting_.store(false, std::memory_order_release);
}

void Server::stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (stopped_ || !started_) {
    stopped_ = true;
    return;
  }
  accepting_.store(false, std::memory_order_release);
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  if (config_.endpoint.kind == Endpoint::Kind::kUds) {
    ::unlink(config_.endpoint.path.c_str());
  }
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> conns_lock(conns_mutex_);
    conns.swap(conns_);
  }
  // Unblock every parked reader, then let writers flush what is queued.
  for (auto& conn : conns) conn->sock.shutdown_both();
  for (auto& conn : conns) conn->join();
  stopped_ = true;
}

void Server::accept_main() {
  obs::set_current_thread_name("net-accept");
  while (!stop_.load(std::memory_order_acquire)) {
    if (accepting_.load(std::memory_order_acquire)) {
      Socket sock = accept_with_timeout(listener_, 100);
      if (sock.valid() && !stop_.load(std::memory_order_acquire)) {
        server_metrics().connections.add();
        auto conn = std::make_unique<Connection>(std::move(sock));
        Connection& ref = *conn;
        {
          std::lock_guard<std::mutex> lock(conns_mutex_);
          conns_.push_back(std::move(conn));
        }
        // Joined by Connection::join (reaped below or in stop()).
        // hsd-lint: allow(no-raw-thread)
        ref.reader = std::thread([this, &ref] { reader_main(ref); });
        // hsd-lint: allow(no-raw-thread)
        ref.writer = std::thread([this, &ref] { writer_main(ref); });
      }
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    reap_finished();
  }
}

void Server::reap_finished() {
  std::vector<std::unique_ptr<Connection>> dead;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->finished.load(std::memory_order_acquire)) {
        dead.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : dead) conn->join();  // outside conns_mutex_
}

void Server::reader_main(Connection& conn) {
  obs::set_current_thread_name("net-read");
  ServerMetrics& m = server_metrics();
  std::vector<std::uint8_t> payload;
  for (;;) {
    std::uint8_t header_bytes[kFrameHeaderBytes];
    if (!recv_exact(conn.sock, header_bytes, kFrameHeaderBytes)) break;
    FrameHeader header;
    Connection::Entry entry;
    entry.received = Clock::now();
    try {
      header = decode_frame_header(header_bytes, kFrameHeaderBytes);
      payload.resize(header.payload_len);
      if (header.payload_len > 0 &&
          !recv_exact(conn.sock, payload.data(), payload.size())) {
        break;
      }
      m.frames_in.add();
      m.bytes_in.add(kFrameHeaderBytes + header.payload_len);

      if (header.type == FrameType::kPredictRequest) {
        wire::PredictRequest req =
            wire::decode_predict_request(payload.data(), payload.size());
        bool overloaded = false;
        {
          std::lock_guard<std::mutex> lock(conn.mutex);
          overloaded = conn.queue.size() >= config_.max_inflight;
        }
        if (overloaded) {
          // Bounded per-connection admission: answer with the same status
          // family the in-process bounded queue uses, handler unconsulted.
          m.overflow_rejects.add();
          wire::PredictResponse resp;
          resp.request_id = req.request_id;
          resp.content_hash = req.content_hash;
          resp.status = (req.flags & wire::kFlagShedAsFleet) != 0
                            ? wire::kStatusFleetOverloaded
                            : wire::kStatusQueueFull;
          entry.produce = [resp] { return wire::encode(resp); };
        } else {
          ResponseWaiter waiter = handler_(std::move(req));
          entry.produce = [waiter = std::move(waiter)] {
            return wire::encode(waiter());
          };
        }
      } else if (header.type == FrameType::kShutdownRequest) {
        m.shutdown_rpcs.add();
        drain_requested_.store(true, std::memory_order_release);
        if (!drain_fired_.exchange(true, std::memory_order_acq_rel) &&
            on_drain_) {
          on_drain_();
        }
        entry.produce = [] { return wire::encode_shutdown_ack(); };
      } else if (header.type == FrameType::kPing) {
        const std::uint64_t token =
            wire::decode_token(payload.data(), payload.size());
        entry.produce = [token] { return wire::encode_pong(token); };
      } else {
        // Client-role frames arriving at a server cannot be resynced.
        break;
      }
    } catch (const WireError&) {
      break;  // framing is lost; tear the connection down
    } catch (const NetError&) {
      break;
    }
    {
      std::lock_guard<std::mutex> lock(conn.mutex);
      conn.queue.push_back(std::move(entry));
    }
    conn.cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(conn.mutex);
    conn.reader_done = true;
  }
  conn.cv.notify_one();
}

void Server::writer_main(Connection& conn) {
  obs::set_current_thread_name("net-write");
  ServerMetrics& m = server_metrics();
  for (;;) {
    Connection::Entry entry;
    {
      std::unique_lock<std::mutex> lock(conn.mutex);
      conn.cv.wait(lock,
                   [&conn] { return conn.reader_done || !conn.queue.empty(); });
      if (conn.queue.empty()) break;  // reader_done and nothing left
      entry = std::move(conn.queue.front());
      conn.queue.pop_front();
      if (conn.broken) continue;  // discard unproduced: peer is gone
    }
    HSD_SPAN("net/handle");
    const std::vector<std::uint8_t> bytes = entry.produce();
    m.rpc_seconds.observe(seconds_between(entry.received, Clock::now()));
    if (!send_all(conn.sock, bytes.data(), bytes.size())) {
      std::lock_guard<std::mutex> lock(conn.mutex);
      conn.broken = true;
      continue;
    }
    m.frames_out.add();
    m.bytes_out.add(bytes.size());
  }
  conn.finished.store(true, std::memory_order_release);
}

}  // namespace hsd::net
