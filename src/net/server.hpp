#pragma once
// Blocking-socket RPC server for the serving transport: an accept loop plus
// one reader + one writer thread per connection, speaking the framed
// protocol from net/frame.hpp / net/wire.hpp.
//
// The server is deliberately generic — it hands decoded PredictRequests to
// a Handler and gets back a ResponseWaiter (a callable that blocks until
// the embedder's answer is ready). The serve/remote adapter is the only
// place that knows those waiters are InferenceService futures; src/net
// never includes serve code, keeping the layering DAG acyclic.
//
// Per-connection pipeline: the reader thread decodes frames and fast-hands
// each request to the handler (which only enqueues — admission is cheap),
// pushing the returned waiter onto a FIFO write queue; the writer thread
// pops in order, blocks until that answer is ready, encodes, and sends.
// Responses therefore leave in request order per connection, but nothing
// upstream relies on that — they carry request ids.
//
// Bounded admission: at most `max_inflight` responses may be outstanding
// per connection. Past that the server answers queue-full/fleet-overloaded
// (per the request's shed flag) without consulting the handler, mirroring
// the in-process bounded-queue semantics.
//
// Drain contract (two-phase, DESIGN.md §16): a `shutdown` RPC or SIGTERM
// begins phase one — `drain_requested()` flips and `on_drain` fires once
// (use it to stop admission, e.g. InferenceService::begin_shutdown). The
// embedder then completes everything admitted (service.shutdown()) and
// finally calls stop(), which closes the listener, unblocks parked
// readers, lets writers flush every queued waiter (all resolvable by
// then — that ordering is the contract), and joins. Calling stop() while
// handed-out waiters can still block forever is an embedder bug.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"

namespace hsd::net {

struct ServerConfig {
  Endpoint endpoint;
  int backlog = 16;
  /// Outstanding (queued-but-unsent) responses per connection before the
  /// server sheds with queue-full/fleet-overloaded.
  std::size_t max_inflight = 256;
};

class Server {
 public:
  /// Blocks until the embedder's answer for one request is ready.
  using ResponseWaiter = std::function<wire::PredictResponse()>;
  /// Runs on the connection's reader thread for every PredictRequest; must
  /// only enqueue work (fast, non-blocking admission).
  using Handler = std::function<ResponseWaiter(wire::PredictRequest&&)>;
  /// Fires exactly once, on the reader thread that received the first
  /// shutdown RPC. Must not block on the server (begin-phase only).
  using DrainCallback = std::function<void()>;

  Server(const ServerConfig& config, Handler handler,
         DrainCallback on_drain = {});
  ~Server();  // stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept loop. Throws NetError.
  void start();

  /// The endpoint actually bound (resolves tcp port 0). Valid after start().
  const Endpoint& endpoint() const { return bound_; }

  /// True once a shutdown RPC has arrived. The host loop polls this (or
  /// a SIGTERM flag) and then runs the drain sequence.
  bool drain_requested() const {
    return drain_requested_.load(std::memory_order_acquire);
  }

  /// Phase one of a local drain: stop accepting new connections (existing
  /// connections keep flowing). Idempotent.
  void stop_accepting();

  /// Full teardown: stop accepting, unblock connection readers, flush every
  /// queued response, join all threads. Idempotent. See the drain contract
  /// above for when this may be called.
  void stop();

 private:
  struct Connection;

  void accept_main();
  void reader_main(Connection& conn);
  void writer_main(Connection& conn);
  void reap_finished();

  ServerConfig config_;
  Handler handler_;
  DrainCallback on_drain_;
  Socket listener_;
  Endpoint bound_;
  std::atomic<bool> accepting_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> drain_fired_{false};
  bool started_ = false;
  bool stopped_ = false;
  std::mutex lifecycle_mutex_;  ///< serializes start()/stop()
  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Connection>> conns_;
  // Joined in stop(), which the destructor guarantees.
  // hsd-lint: allow(no-raw-thread)
  std::thread accept_thread_;
};

}  // namespace hsd::net
