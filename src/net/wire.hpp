#pragma once
// Message vocabulary of the serving RPC protocol (DESIGN.md §16): the
// payloads that travel inside net/frame.hpp frames. The types here are
// deliberately plain data — src/net knows nothing about serve::Request /
// serve::Response; the serve/remote adapter maps between the two vocabularies
// so the transport layer stays reusable and the layering DAG stays acyclic
// (net depends only on common/obs/runtime).
//
// Status codes are pinned wire constants, decoupled from the numeric values
// of serve::Status, so reordering the C++ enum can never silently change
// the protocol. The client-side kNetError/kNetTimeout family never appears
// on the wire: those statuses are synthesized locally when no well-formed
// response arrived at all.
//
// Encoding stability: every encode_* result is golden-pinned by
// net_wire_test; changing a single byte of the layout requires a protocol
// version bump.

#include <cstdint>
#include <vector>

#include "net/frame.hpp"

namespace hsd::net::wire {

// Request/verdict status codes on the wire (u8).
inline constexpr std::uint8_t kStatusOk = 0;
inline constexpr std::uint8_t kStatusQueueFull = 1;
inline constexpr std::uint8_t kStatusShutdown = 2;
inline constexpr std::uint8_t kStatusDeadlineExceeded = 3;
inline constexpr std::uint8_t kStatusFleetOverloaded = 4;

// PredictRequest flag bits.
inline constexpr std::uint8_t kFlagHasDeadline = 1u << 0;
inline constexpr std::uint8_t kFlagShedAsFleet = 1u << 1;

/// One clip to score. The client ships the rasterized bitmap plus its
/// FNV-1a content hash (the router already computed both to route), so the
/// server never re-rasterizes and redelivery after a retry is harmless:
/// the same bytes hash to the same verdict.
struct PredictRequest {
  std::uint64_t request_id = 0;    ///< client-chosen id echoed by the reply
  std::uint64_t content_hash = 0;  ///< FNV-1a of `bitmap`
  std::uint32_t grid = 0;          ///< bitmap is grid*grid floats, row-major
  std::uint8_t flags = 0;          ///< kFlagHasDeadline | kFlagShedAsFleet
  /// Remaining deadline budget relative to receipt, in microseconds (the
  /// wall clocks of client and server are never compared). Negative means
  /// already expired. Meaningful only when kFlagHasDeadline is set.
  std::int64_t deadline_budget_us = 0;
  std::vector<float> bitmap;
};

/// The verdict for one PredictRequest.
struct PredictResponse {
  std::uint64_t request_id = 0;
  std::uint8_t status = kStatusShutdown;  ///< kStatus* constant
  std::uint8_t hotspot = 0;
  std::uint8_t cache_hit = 0;
  std::uint32_t shard = 0;
  std::uint64_t content_hash = 0;
  std::uint64_t batch_size = 0;
  double probability = 0.0;     ///< exact IEEE-754 bits of the shard's answer
  double server_seconds = 0.0;  ///< server-side admission -> answer latency
};

// ShutdownRequest / ShutdownAck / Ping / Pong carry no payload fields beyond
// the frame header; Ping/Pong echo a token for liveness round-trips.

/// Encodes a complete frame (header + payload).
std::vector<std::uint8_t> encode(const PredictRequest& req);
std::vector<std::uint8_t> encode(const PredictResponse& resp);
std::vector<std::uint8_t> encode_shutdown_request();
std::vector<std::uint8_t> encode_shutdown_ack();
std::vector<std::uint8_t> encode_ping(std::uint64_t token);
std::vector<std::uint8_t> encode_pong(std::uint64_t token);

/// Decodes a payload (frame header already validated and stripped). Throws
/// WireError when the payload is truncated, self-inconsistent (bitmap length
/// vs. grid), or has trailing bytes.
PredictRequest decode_predict_request(const std::uint8_t* payload,
                                      std::size_t size);
PredictResponse decode_predict_response(const std::uint8_t* payload,
                                        std::size_t size);
std::uint64_t decode_token(const std::uint8_t* payload, std::size_t size);

}  // namespace hsd::net::wire
