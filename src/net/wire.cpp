#include "net/wire.hpp"

#include <string>

namespace hsd::net::wire {

namespace {

// PredictRequest payload layout (after the 16-byte frame header):
//   request_id u64 | content_hash u64 | grid u32 | flags u8 |
//   deadline_budget_us i64 | bitmap f32[grid*grid]
constexpr std::size_t kPredictRequestFixedBytes = 8 + 8 + 4 + 1 + 8;

// PredictResponse payload layout:
//   request_id u64 | status u8 | hotspot u8 | cache_hit u8 | shard u32 |
//   content_hash u64 | batch_size u64 | probability f64 | server_seconds f64
constexpr std::size_t kPredictResponseBytes = 8 + 1 + 1 + 1 + 4 + 8 + 8 + 8 + 8;

}  // namespace

std::vector<std::uint8_t> encode(const PredictRequest& req) {
  Writer w;
  append_frame_header(
      w, FrameType::kPredictRequest,
      kPredictRequestFixedBytes + req.bitmap.size() * sizeof(float));
  w.u64(req.request_id);
  w.u64(req.content_hash);
  w.u32(req.grid);
  w.u8(req.flags);
  w.i64(req.deadline_budget_us);
  for (const float v : req.bitmap) w.f32(v);
  return w.take();
}

std::vector<std::uint8_t> encode(const PredictResponse& resp) {
  Writer w;
  append_frame_header(w, FrameType::kPredictResponse, kPredictResponseBytes);
  w.u64(resp.request_id);
  w.u8(resp.status);
  w.u8(resp.hotspot);
  w.u8(resp.cache_hit);
  w.u32(resp.shard);
  w.u64(resp.content_hash);
  w.u64(resp.batch_size);
  w.f64(resp.probability);
  w.f64(resp.server_seconds);
  return w.take();
}

std::vector<std::uint8_t> encode_shutdown_request() {
  Writer w;
  append_frame_header(w, FrameType::kShutdownRequest, 0);
  return w.take();
}

std::vector<std::uint8_t> encode_shutdown_ack() {
  Writer w;
  append_frame_header(w, FrameType::kShutdownAck, 0);
  return w.take();
}

std::vector<std::uint8_t> encode_ping(std::uint64_t token) {
  Writer w;
  append_frame_header(w, FrameType::kPing, 8);
  w.u64(token);
  return w.take();
}

std::vector<std::uint8_t> encode_pong(std::uint64_t token) {
  Writer w;
  append_frame_header(w, FrameType::kPong, 8);
  w.u64(token);
  return w.take();
}

PredictRequest decode_predict_request(const std::uint8_t* payload,
                                      std::size_t size) {
  Reader r(payload, size);
  PredictRequest req;
  req.request_id = r.u64();
  req.content_hash = r.u64();
  req.grid = r.u32();
  req.flags = r.u8();
  req.deadline_budget_us = r.i64();
  // Cap the grid before computing cells*4 so a hostile header can neither
  // overflow the size arithmetic nor drive a giant allocation.
  if (req.grid > (1u << 15) ||
      std::uint64_t{req.grid} * req.grid * sizeof(float) > kMaxPayloadBytes) {
    throw WireError("net: PredictRequest grid " + std::to_string(req.grid) +
                    " exceeds the payload cap");
  }
  const std::uint64_t cells = std::uint64_t{req.grid} * req.grid;
  if (r.remaining() != cells * sizeof(float)) {
    throw WireError(
        "net: PredictRequest bitmap length mismatch (grid " +
        std::to_string(req.grid) + " needs " +
        std::to_string(cells * sizeof(float)) + " bytes, payload carries " +
        std::to_string(r.remaining()) + ")");
  }
  req.bitmap.resize(cells);
  for (std::uint64_t i = 0; i < cells; ++i) req.bitmap[i] = r.f32();
  return req;
}

PredictResponse decode_predict_response(const std::uint8_t* payload,
                                        std::size_t size) {
  Reader r(payload, size);
  PredictResponse resp;
  resp.request_id = r.u64();
  resp.status = r.u8();
  resp.hotspot = r.u8();
  resp.cache_hit = r.u8();
  resp.shard = r.u32();
  resp.content_hash = r.u64();
  resp.batch_size = r.u64();
  resp.probability = r.f64();
  resp.server_seconds = r.f64();
  if (!r.done()) {
    throw WireError("net: PredictResponse has trailing payload bytes");
  }
  return resp;
}

std::uint64_t decode_token(const std::uint8_t* payload, std::size_t size) {
  Reader r(payload, size);
  const std::uint64_t token = r.u64();
  if (!r.done()) throw WireError("net: ping/pong has trailing payload bytes");
  return token;
}

}  // namespace hsd::net::wire
