#pragma once
// Thin POSIX socket layer for the serving RPC transport: endpoint parsing
// ("uds:/path/to.sock" | "tcp:host:port"), an RAII fd wrapper, and the
// handful of blocking helpers the server accept loop and client channel
// need (listen, timed accept, timed connect, send-all, timed recv). All
// failures surface as NetError with the endpoint and errno text — callers
// translate them into retries or kNetError statuses; nothing here retries
// on its own.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace hsd::net {

/// Transport-level failure (connect refused, peer reset, bind error, ...).
class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Endpoint {
  enum class Kind { kUds, kTcp };
  Kind kind = Kind::kUds;
  std::string path;          ///< UDS socket path
  std::string host;          ///< TCP host (numeric or name)
  std::uint16_t port = 0;    ///< TCP port (0 = kernel-assigned at bind)
};

/// Parses "uds:<path>" or "tcp:<host>:<port>". Throws NetError on anything
/// else (including UDS paths too long for sockaddr_un).
Endpoint parse_endpoint(const std::string& spec);

/// Canonical "uds:..."/"tcp:..." form (round-trips through parse_endpoint).
std::string to_string(const Endpoint& ep);

/// Move-only owning fd. Closing is idempotent; a default-constructed Socket
/// is invalid.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();
  /// shutdown(2) both directions — unblocks a peer thread parked in recv on
  /// this fd without racing the close.
  void shutdown_both();

 private:
  int fd_ = -1;
};

/// Binds + listens on `ep`. For UDS a stale socket file from a previous run
/// is unlinked first. For TCP port 0, the kernel picks a port — read it
/// back with bound_endpoint(). Throws NetError.
Socket listen_on(const Endpoint& ep, int backlog);

/// The endpoint a listener actually bound (resolves TCP port 0).
Endpoint bound_endpoint(const Socket& listener, const Endpoint& requested);

/// Waits up to `timeout_ms` for a connection. Returns an invalid Socket on
/// timeout; throws NetError if the listener itself fails.
Socket accept_with_timeout(const Socket& listener, int timeout_ms);

/// Connects with a deadline. Throws NetError on failure or timeout.
Socket connect_to(const Endpoint& ep, int timeout_ms);

/// Writes all `n` bytes. Returns false when the peer is gone (EPIPE/reset);
/// throws NetError on unexpected local failures.
bool send_all(const Socket& s, const std::uint8_t* data, std::size_t n);

/// Reads up to `cap` bytes, waiting at most `timeout_ms` (-1 = forever).
/// Returns the byte count, 0 on orderly EOF, -1 on timeout. Throws NetError
/// on hard errors.
long recv_some(const Socket& s, std::uint8_t* out, std::size_t cap,
               int timeout_ms);

/// Reads exactly `n` bytes (blocking). Returns false on EOF or peer reset
/// before `n` bytes arrived.
bool recv_exact(const Socket& s, std::uint8_t* out, std::size_t n);

}  // namespace hsd::net
