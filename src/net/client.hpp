#pragma once
// Client side of the serving RPC transport: a Channel owns one connection
// to one shard server and pipelines predict calls over it.
//
// Threading model: a single IO thread owns the socket and every piece of
// connection state (pending map, read buffer, reconnect/backoff schedule) —
// submitters only append to a locked intake queue and kick a wake pipe, so
// there is no send/recv interleaving to reason about. Completion callbacks
// run on the IO thread; they must be cheap and non-blocking (the
// serve/remote adapter just fulfills a promise).
//
// Reliability envelope (DESIGN.md §16):
//   * connect + per-RPC deadlines — a call that cannot produce a response
//     in time completes with kTimeout (serve maps it to kNetTimeout);
//   * reconnect with bounded exponential backoff; the jitter stream is
//     runtime::derive_seed(seed, attempt), so two clients with different
//     seeds never thundering-herd in lockstep yet each is reproducible;
//   * idempotent-safe retries — requests carry the rasterized bitmap and
//     its content hash, and shard inference is a pure function of content,
//     so resending after a connection loss can change nothing but latency.
//     A request is resent at most max_retries times, then completes with
//     kError (serve maps it to kNetError);
//   * deterministic fault injection (HSD_FAULT_NET / ChannelConfig::
//     fault_spec) for tests: "drop-send@N" kills the connection right
//     before the Nth call is first sent, "drop-recv@N" right after (the
//     response is lost), "delay@N:MS" stalls the IO thread after sending.
//
// Responses are matched by request id, so late responses for calls that
// already timed out are recognized and dropped instead of corrupting a
// later call.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"

namespace hsd::net {

struct ChannelConfig {
  Endpoint endpoint;
  int connect_timeout_ms = 1000;
  /// Per-RPC network deadline in ms (0 = none). Distinct from the serve
  /// deadline inside the request — this one bounds the transport.
  std::uint64_t rpc_timeout_ms = 5000;
  /// Resend budget per request after connection losses.
  std::size_t max_retries = 3;
  std::uint64_t backoff_base_us = 500;
  std::uint64_t backoff_max_us = 100000;
  /// Base of the jitter stream (derive_seed(seed, attempt)).
  std::uint64_t seed = 0;
  /// Metric namespace; per-shard channels use "serve/net/client/shard<i>".
  std::string metric_prefix = "serve/net/client";
  /// Fault-injection spec; empty = read HSD_FAULT_NET from the environment.
  std::string fault_spec;
};

struct CallResult {
  enum class Kind { kOk, kTimeout, kError };
  Kind kind = Kind::kError;
  wire::PredictResponse response;  ///< valid iff kind == kOk
  std::string error;               ///< diagnostic for kError
};

/// Point-in-time transport counters (also exported as obs metrics under the
/// channel's metric prefix; these are for tests and the bench, which need
/// them without enabling the metrics registry).
struct ChannelStats {
  std::uint64_t requests = 0;
  std::uint64_t retries = 0;     ///< resends after a connection loss
  std::uint64_t reconnects = 0;  ///< established connections lost + rebuilt
  std::uint64_t timeouts = 0;
  std::uint64_t net_errors = 0;
  std::uint64_t pending = 0;     ///< calls not yet completed
};

class Channel {
 public:
  using Callback = std::function<void(CallResult&&)>;

  explicit Channel(const ChannelConfig& config);
  ~Channel();  // fails anything still pending with kError, then joins

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueues one RPC. `req.request_id` is assigned by the channel. `done`
  /// runs exactly once, on the IO thread.
  void call(wire::PredictRequest&& req, Callback done);

  /// Blocks until every submitted call has completed (ok, timeout, or
  /// error). New calls during a drain are serviced too.
  void drain();

  ChannelStats stats() const;
  const ChannelConfig& config() const { return config_; }

 private:
  struct Pending;
  struct Fault;

  static std::vector<Fault> parse_faults(const std::string& spec);

  void io_main();
  void ingest_locked_intake(std::map<std::uint64_t, Pending>& pending);
  void establish(std::map<std::uint64_t, Pending>& pending);
  void send_ready(std::map<std::uint64_t, Pending>& pending);
  void read_frames(std::map<std::uint64_t, Pending>& pending);
  void connection_lost(std::map<std::uint64_t, Pending>& pending);
  void expire_deadlines(std::map<std::uint64_t, Pending>& pending);
  void complete(Pending& p, CallResult&& result);
  void wake();

  ChannelConfig config_;
  std::vector<Fault> faults_;

  // Intake shared with submitters.
  mutable std::mutex mutex_;
  std::condition_variable drained_cv_;
  std::deque<Pending> intake_;
  std::uint64_t next_id_ = 1;
  std::uint64_t live_calls_ = 0;  ///< submitted, callback not yet run
  bool stop_ = false;

  // IO-thread-owned connection state.
  Socket conn_;
  std::vector<std::uint8_t> read_buffer_;
  std::uint64_t connect_failures_ = 0;
  std::chrono::steady_clock::time_point next_connect_;
  bool connected_once_ = false;

  int wake_pipe_[2] = {-1, -1};

  // Mirrors of the obs counters (see ChannelStats).
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> net_errors_{0};

  obs::Counter& met_requests_;
  obs::Counter& met_bytes_out_;
  obs::Counter& met_bytes_in_;
  obs::Counter& met_retries_;
  obs::Counter& met_reconnects_;
  obs::Counter& met_timeouts_;
  obs::Counter& met_net_errors_;
  obs::Histogram& met_rpc_seconds_;

  // Joined in the destructor (client.cpp).
  // hsd-lint: allow(no-raw-thread, thread-member-join)
  std::thread io_thread_;
};

/// Synchronous control RPCs on a throwaway connection (the Channel's IO
/// thread owns the data-plane socket, so the control plane stays trivial).
/// Return false on any failure or timeout.
bool shutdown_rpc(const Endpoint& ep, int timeout_ms);
bool ping_rpc(const Endpoint& ep, int timeout_ms);

}  // namespace hsd::net
