#include "net/client.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/registry.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace hsd::net {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

struct Channel::Pending {
  std::uint64_t id = 0;
  std::uint64_t serial = 0;  ///< 1-based submission index (fault matching)
  std::vector<std::uint8_t> frame;
  Callback done;
  Clock::time_point submitted;
  Clock::time_point deadline;
  bool has_deadline = false;
  std::size_t attempts = 0;  ///< connection losses charged to this call
  bool sent = false;         ///< sent on the *current* connection
  bool sent_once = false;    ///< ever sent (a later send is a retry)
};

struct Channel::Fault {
  enum class Kind { kDropSend, kDropRecv, kDelay };
  Kind kind = Kind::kDropSend;
  std::uint64_t serial = 0;
  std::uint64_t delay_ms = 0;
  bool used = false;
};

/// Parses "drop-send@N,drop-recv@N,delay@N:MS". Strict: anything else
/// throws, naming the bad entry — a typoed fault spec that silently
/// injects nothing would make a robustness test pass vacuously.
std::vector<Channel::Fault> Channel::parse_faults(const std::string& spec) {
  std::vector<Channel::Fault> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const std::size_t at = entry.find('@');
    if (at == std::string::npos) {
      throw NetError("net: bad fault entry `" + entry +
                     "` (expected kind@serial)");
    }
    const std::string kind = entry.substr(0, at);
    std::string serial_text = entry.substr(at + 1);
    Channel::Fault f;
    if (kind == "drop-send") {
      f.kind = Channel::Fault::Kind::kDropSend;
    } else if (kind == "drop-recv") {
      f.kind = Channel::Fault::Kind::kDropRecv;
    } else if (kind == "delay") {
      f.kind = Channel::Fault::Kind::kDelay;
      const std::size_t colon = serial_text.find(':');
      if (colon == std::string::npos) {
        throw NetError("net: delay fault needs @serial:ms, got `" + entry +
                       "`");
      }
      const std::string ms_text = serial_text.substr(colon + 1);
      serial_text = serial_text.substr(0, colon);
      std::size_t used = 0;
      try {
        f.delay_ms = std::stoull(ms_text, &used);
      } catch (const std::exception&) {
        used = 0;
      }
      if (used != ms_text.size()) {
        throw NetError("net: bad fault delay `" + ms_text + "` in `" + entry +
                       "`");
      }
    } else {
      throw NetError("net: unknown fault kind `" + kind + "` in `" + entry +
                     "`");
    }
    std::size_t used = 0;
    try {
      f.serial = std::stoull(serial_text, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != serial_text.size() || f.serial == 0) {
      throw NetError("net: bad fault serial `" + serial_text + "` in `" +
                     entry + "`");
    }
    out.push_back(f);
  }
  return out;
}

Channel::Channel(const ChannelConfig& config)
    : config_(config),
      met_requests_(obs::counter(config.metric_prefix + "/requests")),
      met_bytes_out_(obs::counter(config.metric_prefix + "/bytes_out")),
      met_bytes_in_(obs::counter(config.metric_prefix + "/bytes_in")),
      met_retries_(obs::counter(config.metric_prefix + "/retries")),
      met_reconnects_(obs::counter(config.metric_prefix + "/reconnects")),
      met_timeouts_(obs::counter(config.metric_prefix + "/timeouts")),
      met_net_errors_(obs::counter(config.metric_prefix + "/net_errors")),
      met_rpc_seconds_(obs::histogram(config.metric_prefix + "/rpc_seconds")) {
  std::string spec = config_.fault_spec;
  if (spec.empty()) {
    if (const char* env = std::getenv(reg::kEnvFaultNet)) spec = env;
  }
  faults_ = parse_faults(spec);
  if (::pipe(wake_pipe_) != 0) {
    throw NetError("net: wake pipe creation failed");
  }
  ::fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);
  ::fcntl(wake_pipe_[1], F_SETFL, O_NONBLOCK);
  next_connect_ = Clock::now();
  // Owns the socket for the channel's lifetime; joined in the destructor.
  // hsd-lint: allow(no-raw-thread)
  io_thread_ = std::thread([this] { io_main(); });
}

Channel::~Channel() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake();
  if (io_thread_.joinable()) io_thread_.join();
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
}

void Channel::call(wire::PredictRequest&& req, Callback done) {
  Pending p;
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      rejected = true;
    } else {
      p.id = next_id_++;
      ++live_calls_;
    }
  }
  if (rejected) {
    CallResult r;
    r.kind = CallResult::Kind::kError;
    r.error = "channel is shut down";
    net_errors_.fetch_add(1, std::memory_order_relaxed);
    met_net_errors_.add();
    done(std::move(r));
    return;
  }
  p.serial = p.id;
  req.request_id = p.id;
  p.frame = wire::encode(req);
  p.done = std::move(done);
  p.submitted = Clock::now();
  if (config_.rpc_timeout_ms > 0) {
    p.has_deadline = true;
    p.deadline =
        p.submitted + std::chrono::milliseconds(config_.rpc_timeout_ms);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  met_requests_.add();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    intake_.push_back(std::move(p));
  }
  wake();
}

void Channel::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_cv_.wait(lock, [this] { return live_calls_ == 0; });
}

ChannelStats Channel::stats() const {
  ChannelStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.net_errors = net_errors_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  s.pending = live_calls_;
  return s;
}

void Channel::wake() {
  const std::uint8_t one = 1;
  // Nonblocking: a full pipe already guarantees a pending wake-up.
  [[maybe_unused]] const ssize_t rc = ::write(wake_pipe_[1], &one, 1);
}

void Channel::complete(Pending& p, CallResult&& result) {
  p.done(std::move(result));
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --live_calls_;
    notify = live_calls_ == 0;
  }
  if (notify) drained_cv_.notify_all();
}

void Channel::io_main() {
  obs::set_current_thread_name("net-client");
  std::map<std::uint64_t, Pending> pending;
  auto wait_wake = [this](int timeout_ms) {
    pollfd p{};
    p.fd = wake_pipe_[0];
    p.events = POLLIN;
    ::poll(&p, 1, timeout_ms);
    std::uint8_t buf[64];
    while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
    }
  };

  for (;;) {
    bool stop = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop = stop_;
      while (!intake_.empty()) {
        Pending p = std::move(intake_.front());
        intake_.pop_front();
        pending.emplace(p.id, std::move(p));
      }
    }
    if (stop) {
      for (auto& [id, p] : pending) {
        CallResult r;
        r.kind = CallResult::Kind::kError;
        r.error = "channel destroyed with call in flight";
        net_errors_.fetch_add(1, std::memory_order_relaxed);
        met_net_errors_.add();
        complete(p, std::move(r));
      }
      pending.clear();
      return;
    }
    if (pending.empty()) {
      wait_wake(100);
      continue;
    }

    if (!conn_.valid()) establish(pending);
    if (conn_.valid()) {
      send_ready(pending);
      if (conn_.valid()) read_frames(pending);
    } else {
      // Backoff window (or terminal connect failure): sleep interruptibly.
      const auto now = Clock::now();
      int ms = 10;
      if (next_connect_ > now) {
        const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
            next_connect_ - now);
        ms = static_cast<int>(
            std::min<std::int64_t>(until.count() + 1, 100));
      }
      wait_wake(ms < 1 ? 1 : ms);
    }
    expire_deadlines(pending);
  }
}

void Channel::establish(std::map<std::uint64_t, Pending>& pending) {
  const auto now = Clock::now();
  if (connect_failures_ > 0 && now < next_connect_) return;
  try {
    HSD_SPAN("net/connect");
    conn_ = connect_to(config_.endpoint, config_.connect_timeout_ms);
    read_buffer_.clear();
    if (connected_once_) {
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      met_reconnects_.add();
    }
    connected_once_ = true;
    connect_failures_ = 0;
    for (auto& [id, p] : pending) p.sent = false;  // resend in id order
  } catch (const NetError&) {
    ++connect_failures_;
    // Charge one attempt to every waiting call so a dead server cannot hold
    // requests hostage forever; fail the ones whose budget is spent.
    std::vector<std::uint64_t> dead;
    for (auto& [id, p] : pending) {
      ++p.attempts;
      if (p.attempts > config_.max_retries) dead.push_back(id);
    }
    for (const std::uint64_t id : dead) {
      auto it = pending.find(id);
      CallResult r;
      r.kind = CallResult::Kind::kError;
      r.error = "connect to " + to_string(config_.endpoint) +
                " failed after retries";
      net_errors_.fetch_add(1, std::memory_order_relaxed);
      met_net_errors_.add();
      complete(it->second, std::move(r));
      pending.erase(it);
    }
    // Bounded exponential backoff; the jitter stream is derived from the
    // channel seed and the failure ordinal, so it is reproducible per
    // channel but decorrelated across channels.
    const std::uint64_t shift =
        connect_failures_ > 20 ? 20 : connect_failures_ - 1;
    std::uint64_t base_us = config_.backoff_base_us << shift;
    if (base_us > config_.backoff_max_us) base_us = config_.backoff_max_us;
    const std::uint64_t jitter =
        runtime::derive_seed(config_.seed, connect_failures_) %
        (base_us / 2 + 1);
    next_connect_ =
        Clock::now() + std::chrono::microseconds(base_us / 2 + jitter);
  }
}

void Channel::send_ready(std::map<std::uint64_t, Pending>& pending) {
  for (auto& [id, p] : pending) {
    if (p.sent) continue;
    Fault* fault = nullptr;
    for (Fault& f : faults_) {
      if (!f.used && f.serial == p.serial) {
        fault = &f;
        break;
      }
    }
    if (fault != nullptr && fault->kind == Fault::Kind::kDropSend) {
      fault->used = true;
      connection_lost(pending);
      return;
    }
    if (!send_all(conn_, p.frame.data(), p.frame.size())) {
      connection_lost(pending);
      return;
    }
    met_bytes_out_.add(p.frame.size());
    if (p.sent_once) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      met_retries_.add();
    }
    p.sent = true;
    p.sent_once = true;
    if (fault != nullptr && fault->kind == Fault::Kind::kDropRecv) {
      fault->used = true;
      connection_lost(pending);
      return;
    }
    if (fault != nullptr && fault->kind == Fault::Kind::kDelay) {
      fault->used = true;
      std::this_thread::sleep_for(std::chrono::milliseconds(fault->delay_ms));
    }
  }
}

void Channel::read_frames(std::map<std::uint64_t, Pending>& pending) {
  // Wait for the socket (or a wake from a submitter), bounded by the
  // nearest RPC deadline so expiry never waits on a silent server.
  pollfd fds[2];
  fds[0].fd = conn_.fd();
  fds[0].events = POLLIN;
  fds[1].fd = wake_pipe_[0];
  fds[1].events = POLLIN;
  int timeout_ms = 100;
  const auto now = Clock::now();
  for (const auto& [id, p] : pending) {
    if (!p.has_deadline) continue;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(p.deadline - now);
    const int ms = left.count() < 0 ? 0 : static_cast<int>(std::min<std::int64_t>(left.count(), 100));
    if (ms < timeout_ms) timeout_ms = ms;
  }
  const int rc = ::poll(fds, 2, timeout_ms);
  if (rc <= 0) return;
  if ((fds[1].revents & POLLIN) != 0) {
    std::uint8_t buf[64];
    while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
    }
  }
  if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) return;

  std::uint8_t chunk[64 * 1024];
  const ssize_t got = ::recv(conn_.fd(), chunk, sizeof(chunk), 0);
  if (got == 0) {
    connection_lost(pending);
    return;
  }
  if (got < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return;
    connection_lost(pending);
    return;
  }
  met_bytes_in_.add(static_cast<std::uint64_t>(got));
  read_buffer_.insert(read_buffer_.end(), chunk, chunk + got);

  std::size_t off = 0;
  try {
    while (read_buffer_.size() - off >= kFrameHeaderBytes) {
      const FrameHeader header = decode_frame_header(
          read_buffer_.data() + off, read_buffer_.size() - off);
      if (read_buffer_.size() - off < kFrameHeaderBytes + header.payload_len) {
        break;  // frame incomplete; wait for more bytes
      }
      const std::uint8_t* payload = read_buffer_.data() + off + kFrameHeaderBytes;
      if (header.type == FrameType::kPredictResponse) {
        wire::PredictResponse resp = wire::decode_predict_response(
            payload, static_cast<std::size_t>(header.payload_len));
        auto it = pending.find(resp.request_id);
        if (it != pending.end()) {
          met_rpc_seconds_.observe(
              seconds_between(it->second.submitted, Clock::now()));
          CallResult r;
          r.kind = CallResult::Kind::kOk;
          r.response = resp;
          complete(it->second, std::move(r));
          pending.erase(it);
        }
        // else: a late answer for a call that already timed out — dropped.
      }
      // Pong / shutdown-ack frames on a data channel are ignored.
      off += kFrameHeaderBytes + header.payload_len;
    }
  } catch (const WireError&) {
    // Framing lost (garbage or version skew): the connection is useless.
    connection_lost(pending);
    return;
  }
  if (off > 0) {
    read_buffer_.erase(read_buffer_.begin(),
                       read_buffer_.begin() + static_cast<std::ptrdiff_t>(off));
  }
}

void Channel::connection_lost(std::map<std::uint64_t, Pending>& pending) {
  conn_.close();
  read_buffer_.clear();
  std::vector<std::uint64_t> dead;
  for (auto& [id, p] : pending) {
    if (!p.sent) continue;
    p.sent = false;
    ++p.attempts;
    if (p.attempts > config_.max_retries) dead.push_back(id);
  }
  for (const std::uint64_t id : dead) {
    auto it = pending.find(id);
    CallResult r;
    r.kind = CallResult::Kind::kError;
    r.error = "connection to " + to_string(config_.endpoint) +
              " lost; retry budget exhausted";
    net_errors_.fetch_add(1, std::memory_order_relaxed);
    met_net_errors_.add();
    complete(it->second, std::move(r));
    pending.erase(it);
  }
}

void Channel::expire_deadlines(std::map<std::uint64_t, Pending>& pending) {
  const auto now = Clock::now();
  std::vector<std::uint64_t> expired;
  for (const auto& [id, p] : pending) {
    if (p.has_deadline && now >= p.deadline) expired.push_back(id);
  }
  for (const std::uint64_t id : expired) {
    auto it = pending.find(id);
    CallResult r;
    r.kind = CallResult::Kind::kTimeout;
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    met_timeouts_.add();
    complete(it->second, std::move(r));
    pending.erase(it);
  }
}

namespace {

/// One request/response exchange on a throwaway connection.
bool roundtrip(const Endpoint& ep, const std::vector<std::uint8_t>& frame,
               FrameType expect, int timeout_ms) {
  try {
    Socket s = connect_to(ep, timeout_ms);
    if (!send_all(s, frame.data(), frame.size())) return false;
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    auto recv_deadline = [&](std::uint8_t* out, std::size_t n) {
      std::size_t got = 0;
      while (got < n) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now());
        if (left.count() <= 0) return false;
        const long rc = recv_some(s, out + got, n - got,
                                  static_cast<int>(left.count()));
        if (rc <= 0) return false;
        got += static_cast<std::size_t>(rc);
      }
      return true;
    };
    std::uint8_t header_bytes[kFrameHeaderBytes];
    if (!recv_deadline(header_bytes, kFrameHeaderBytes)) return false;
    const FrameHeader header =
        decode_frame_header(header_bytes, kFrameHeaderBytes);
    std::vector<std::uint8_t> payload(header.payload_len);
    if (header.payload_len > 0 &&
        !recv_deadline(payload.data(), payload.size())) {
      return false;
    }
    return header.type == expect;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

bool shutdown_rpc(const Endpoint& ep, int timeout_ms) {
  return roundtrip(ep, wire::encode_shutdown_request(),
                   FrameType::kShutdownAck, timeout_ms);
}

bool ping_rpc(const Endpoint& ep, int timeout_ms) {
  return roundtrip(ep, wire::encode_ping(1), FrameType::kPong, timeout_ms);
}

}  // namespace hsd::net
