#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hsd::net {

namespace {

std::string errno_text(const char* what, const std::string& detail) {
  return std::string("net: ") + what + " " + detail + ": " +
         std::strerror(errno);
}

/// Fills a sockaddr_un for `path` (length already validated by parse).
sockaddr_un make_uds_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in make_tcp_addr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("net: tcp host must be a numeric IPv4 address, got `" +
                   ep.host + "`");
  }
  return addr;
}

// The sockets API takes sockaddr* aliases of the concrete address structs;
// going through void* keeps the conversion explicit without a
// reinterpret_cast (banned project-wide — see hsd_lint no-reinterpret-cast).
template <typename T>
sockaddr* sa_cast(T* p) {
  return static_cast<sockaddr*>(static_cast<void*>(p));
}
template <typename T>
const sockaddr* sa_cast(const T* p) {
  return static_cast<const sockaddr*>(static_cast<const void*>(p));
}

/// Waits for the fd to become readable/writable. Returns false on timeout.
bool wait_fd(int fd, short events, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    throw NetError(errno_text("poll on", "fd"));
  }
}

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("uds:", 0) == 0) {
    ep.kind = Endpoint::Kind::kUds;
    ep.path = spec.substr(4);
    if (ep.path.empty()) throw NetError("net: empty uds path in `" + spec + "`");
    sockaddr_un probe{};
    if (ep.path.size() + 1 > sizeof(probe.sun_path)) {
      throw NetError("net: uds path too long (" +
                     std::to_string(ep.path.size()) + " > " +
                     std::to_string(sizeof(probe.sun_path) - 1) + "): `" +
                     ep.path + "`");
    }
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    ep.kind = Endpoint::Kind::kTcp;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
      throw NetError("net: expected tcp:<host>:<port>, got `" + spec + "`");
    }
    ep.host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    unsigned long port = 0;
    std::size_t used = 0;
    try {
      port = std::stoul(port_text, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != port_text.size() || port > 65535) {
      throw NetError("net: bad tcp port `" + port_text + "` in `" + spec + "`");
    }
    ep.port = static_cast<std::uint16_t>(port);
    return ep;
  }
  throw NetError("net: endpoint must start with uds: or tcp:, got `" + spec +
                 "`");
}

std::string to_string(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::kUds) return "uds:" + ep.path;
  return "tcp:" + ep.host + ":" + std::to_string(ep.port);
}

Socket listen_on(const Endpoint& ep, int backlog) {
  if (ep.kind == Endpoint::Kind::kUds) {
    Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!s.valid()) throw NetError(errno_text("socket for", to_string(ep)));
    ::unlink(ep.path.c_str());  // stale socket file from a dead server
    sockaddr_un addr = make_uds_addr(ep.path);
    if (::bind(s.fd(), sa_cast(&addr), sizeof(addr)) != 0) {
      throw NetError(errno_text("bind", to_string(ep)));
    }
    if (::listen(s.fd(), backlog) != 0) {
      throw NetError(errno_text("listen on", to_string(ep)));
    }
    return s;
  }
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) throw NetError(errno_text("socket for", to_string(ep)));
  const int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_tcp_addr(ep);
  if (::bind(s.fd(), sa_cast(&addr), sizeof(addr)) != 0) {
    throw NetError(errno_text("bind", to_string(ep)));
  }
  if (::listen(s.fd(), backlog) != 0) {
    throw NetError(errno_text("listen on", to_string(ep)));
  }
  return s;
}

Endpoint bound_endpoint(const Socket& listener, const Endpoint& requested) {
  if (requested.kind == Endpoint::Kind::kUds) return requested;
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listener.fd(), sa_cast(&addr), &len) != 0) {
    throw NetError(errno_text("getsockname on", to_string(requested)));
  }
  Endpoint ep = requested;
  ep.port = ntohs(addr.sin_port);
  return ep;
}

Socket accept_with_timeout(const Socket& listener, int timeout_ms) {
  if (!wait_fd(listener.fd(), POLLIN, timeout_ms)) return Socket();
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
        errno == EWOULDBLOCK) {
      return Socket();
    }
    throw NetError(errno_text("accept on", "listener"));
  }
  return Socket(fd);
}

Socket connect_to(const Endpoint& ep, int timeout_ms) {
  const int family = ep.kind == Endpoint::Kind::kUds ? AF_UNIX : AF_INET;
  Socket s(::socket(family, SOCK_STREAM, 0));
  if (!s.valid()) throw NetError(errno_text("socket for", to_string(ep)));

  int rc = 0;
  if (ep.kind == Endpoint::Kind::kUds) {
    sockaddr_un addr = make_uds_addr(ep.path);
    rc = ::connect(s.fd(), sa_cast(&addr), sizeof(addr));
  } else {
    sockaddr_in addr = make_tcp_addr(ep);
    rc = ::connect(s.fd(), sa_cast(&addr), sizeof(addr));
  }
  // Blocking connect with a bounded wait: UDS connects resolve immediately;
  // TCP to a dead host may hang, so poll for writability with the timeout.
  if (rc != 0 && errno == EINPROGRESS) {
    if (!wait_fd(s.fd(), POLLOUT, timeout_ms)) {
      throw NetError("net: connect to " + to_string(ep) + " timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(s.fd(), SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      errno = err;
      throw NetError(errno_text("connect to", to_string(ep)));
    }
  } else if (rc != 0) {
    throw NetError(errno_text("connect to", to_string(ep)));
  }
  if (ep.kind == Endpoint::Kind::kTcp) {
    const int one = 1;
    ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return s;
}

bool send_all(const Socket& s, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc =
        ::send(s.fd(), data + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET || errno == EBADF ||
          errno == ENOTCONN) {
        return false;
      }
      throw NetError(errno_text("send on", "connection"));
    }
    sent += static_cast<std::size_t>(rc);
  }
  return true;
}

long recv_some(const Socket& s, std::uint8_t* out, std::size_t cap,
               int timeout_ms) {
  if (!wait_fd(s.fd(), POLLIN, timeout_ms)) return -1;
  for (;;) {
    const ssize_t rc = ::recv(s.fd(), out, cap, 0);
    if (rc >= 0) return static_cast<long>(rc);
    if (errno == EINTR) continue;
    if (errno == ECONNRESET || errno == EBADF || errno == ENOTCONN) return 0;
    throw NetError(errno_text("recv on", "connection"));
  }
}

bool recv_exact(const Socket& s, std::uint8_t* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const long rc = recv_some(s, out + got, n - got, -1);
    if (rc <= 0) return false;
    got += static_cast<std::size_t>(rc);
  }
  return true;
}

}  // namespace hsd::net
