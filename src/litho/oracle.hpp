#pragma once
// The counted lithography simulation oracle. Every simulate() call models
// one expensive lithography run (Definition 3: a litho-clip); the framework
// minimizes the number of such calls while maximizing detection accuracy.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "layout/clip.hpp"
#include "layout/raster.hpp"
#include "litho/defects.hpp"
#include "litho/optical.hpp"

namespace hsd::litho {

/// Lithography simulator wrapper that rasters a clip, computes the aerial
/// image, checks printability in the core, and counts every invocation.
class LithoOracle {
 public:
  /// `grid` is the simulation raster resolution; `model` the optics preset.
  LithoOracle(std::size_t grid, OpticalModel model,
              IntentMargins margins = {});

  /// Full simulation of one clip (counted).
  LithoResult simulate(const layout::Clip& clip);

  /// Label only: true = hotspot (counted).
  bool label(const layout::Clip& clip);

  /// Simulates every clip (counted once each). Simulations run in parallel
  /// on the global runtime pool; results are index-aligned with `clips`
  /// and identical to calling simulate() in a loop.
  std::vector<LithoResult> simulate_batch(const std::vector<layout::Clip>& clips);

  /// Labels `clips[indices[i]]` for every i (counted once each), in
  /// parallel. Returns hotspot flags aligned with `indices`.
  std::vector<std::uint8_t> label_batch(const std::vector<layout::Clip>& clips,
                                        const std::vector<std::size_t>& indices);

  /// Simulation of an already-rasterized mask (counted); `core_px` in pixels.
  LithoResult simulate_mask(const std::vector<float>& mask,
                            const layout::Rect& core_px);

  /// Number of simulations performed so far.
  std::size_t simulation_count() const { return count_; }

  /// Resets the simulation counter (e.g. between experiment repetitions).
  void reset_count() { count_ = 0; }

  /// When false, this oracle's simulations are excluded from the global
  /// `litho/oracle_calls` metric (the per-instance count_ still runs).
  /// Benchmark construction turns this off so the exported label budget
  /// reflects only the labels the framework actually paid for.
  void set_metered(bool metered) { metered_ = metered; }
  bool metered() const { return metered_; }

  /// Modeled wall-clock cost of the simulations so far, at
  /// `seconds_per_clip` each (the paper's runtime model uses 10 s).
  double modeled_cost_seconds(double seconds_per_clip = 10.0) const {
    return static_cast<double>(count_) * seconds_per_clip;
  }

  const OpticalModel& model() const { return model_; }
  std::size_t grid() const { return raster_.grid(); }

 private:
  /// Bumps count_ by `n` and, when metered, the global oracle-call metric.
  void charge(std::size_t n);

  layout::Rasterizer raster_;
  OpticalModel model_;
  IntentMargins margins_;
  std::size_t count_ = 0;
  bool metered_ = true;
};

}  // namespace hsd::litho
