#include "litho/defects.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace hsd::litho {

LithoResult check_printability(const std::vector<float>& mask,
                               const std::vector<float>& aerial,
                               const std::vector<std::uint8_t>& printed,
                               std::size_t grid, const layout::Rect& core_px,
                               const OpticalModel& model,
                               const IntentMargins& margins) {
  if (mask.size() != grid * grid || aerial.size() != grid * grid ||
      printed.size() != grid * grid) {
    throw std::invalid_argument("check_printability: size mismatch");
  }
  LithoResult res;
  res.min_core_margin = std::numeric_limits<double>::infinity();

  const auto r0 = static_cast<std::size_t>(std::max<layout::Coord>(core_px.y0, 0));
  const auto r1 = static_cast<std::size_t>(
      std::min<layout::Coord>(core_px.y1, static_cast<layout::Coord>(grid) - 1));
  const auto c0 = static_cast<std::size_t>(std::max<layout::Coord>(core_px.x0, 0));
  const auto c1 = static_cast<std::size_t>(
      std::min<layout::Coord>(core_px.x1, static_cast<layout::Coord>(grid) - 1));

  for (std::size_t r = r0; r <= r1 && r < grid; ++r) {
    for (std::size_t c = c0; c <= c1 && c < grid; ++c) {
      const std::size_t i = r * grid + c;
      const double cov = mask[i];
      const bool solid = cov >= margins.hi;
      const bool empty = cov <= margins.lo;
      if (!solid && !empty) continue;  // ambiguous edge pixel
      const double margin = std::abs(static_cast<double>(aerial[i]) -
                                     model.resist_threshold);
      res.min_core_margin = std::min(res.min_core_margin, margin);
      if (solid && printed[i] == 0) {
        res.defects.push_back({DefectKind::kPinch, r, c, margin});
      } else if (empty && printed[i] == 1) {
        res.defects.push_back({DefectKind::kBridge, r, c, margin});
      }
    }
  }
  res.hotspot = !res.defects.empty();
  for (const auto& d : res.defects) {
    res.worst_severity = std::max(res.worst_severity, d.severity);
  }
  if (!std::isfinite(res.min_core_margin)) res.min_core_margin = 0.0;
  return res;
}

}  // namespace hsd::litho
