#pragma once
// Simplified optical lithography model: the mask coverage grid is convolved
// with a Gaussian point-spread function (a standard first-order stand-in for
// the partially coherent aerial image) and thresholded by a resist model.
//
// This is the synthetic substitute for the commercial lithography simulator
// the paper uses as its labeling oracle; what matters to the reproduced
// algorithms is that labels are deterministic, pattern-dependent, and that
// marginal geometry (narrow lines, tight spacing) fails first — all of which
// the Gaussian model provides.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hsd::litho {

/// Optical + resist parameters.
struct OpticalModel {
  /// Gaussian PSF standard deviation in pixels of the working grid.
  double sigma_px = 1.2;
  /// Resist development threshold on the normalized aerial intensity.
  double resist_threshold = 0.5;
  /// Kernel truncation radius in sigmas.
  double truncate = 3.0;
};

/// Preset mimicking a DUV-era 28 nm metal layer (looser imaging).
OpticalModel duv28_model();

/// Preset mimicking an EUV-era 7 nm layer (tighter imaging, sharper PSF but
/// smaller features relative to the grid -> more marginal).
OpticalModel euv7_model();

/// Separable Gaussian blur of a row-major `grid x grid` image.
/// The kernel is normalized to unit sum, so a fully covered mask region maps
/// to intensity 1.
std::vector<float> aerial_image(const std::vector<float>& mask, std::size_t grid,
                                const OpticalModel& model);

/// Thresholds an aerial image into a printed bitmap (1 = resist prints).
std::vector<std::uint8_t> printed_image(const std::vector<float>& aerial,
                                        const OpticalModel& model);

/// Builds the normalized 1-D Gaussian kernel used by aerial_image (exposed
/// for tests).
std::vector<float> gaussian_kernel(double sigma_px, double truncate);

}  // namespace hsd::litho
