#include "litho/epe.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace hsd::litho {

std::vector<std::uint8_t> contour_of(const std::vector<std::uint8_t>& image,
                                     std::size_t grid) {
  if (image.size() != grid * grid) throw std::invalid_argument("contour_of: size");
  std::vector<std::uint8_t> contour(grid * grid, 0);
  for (std::size_t r = 0; r < grid; ++r) {
    for (std::size_t c = 0; c < grid; ++c) {
      const std::size_t i = r * grid + c;
      if (!image[i]) continue;
      const bool border = r == 0 || r + 1 == grid || c == 0 || c + 1 == grid;
      const bool exposed = border || !image[i - grid] || !image[i + grid] ||
                           !image[i - 1] || !image[i + 1];
      contour[i] = exposed ? 1 : 0;
    }
  }
  return contour;
}

std::vector<std::uint8_t> intended_pattern(const std::vector<float>& mask) {
  std::vector<std::uint8_t> out(mask.size());
  for (std::size_t i = 0; i < mask.size(); ++i) out[i] = mask[i] >= 0.5F ? 1 : 0;
  return out;
}

EpeResult measure_epe(const std::vector<std::uint8_t>& intended,
                      const std::vector<std::uint8_t>& printed, std::size_t grid,
                      const layout::Rect& roi) {
  if (intended.size() != grid * grid || printed.size() != grid * grid) {
    throw std::invalid_argument("measure_epe: size mismatch");
  }
  const std::vector<std::uint8_t> intended_edge = contour_of(intended, grid);
  const std::vector<std::uint8_t> printed_edge = contour_of(printed, grid);

  // Collect printed contour coordinates once.
  std::vector<std::pair<double, double>> printed_pts;
  for (std::size_t r = 0; r < grid; ++r) {
    for (std::size_t c = 0; c < grid; ++c) {
      if (printed_edge[r * grid + c]) {
        printed_pts.emplace_back(static_cast<double>(r), static_cast<double>(c));
      }
    }
  }

  EpeResult res;
  for (std::size_t r = 0; r < grid; ++r) {
    for (std::size_t c = 0; c < grid; ++c) {
      if (!intended_edge[r * grid + c]) continue;
      if (!roi.contains(layout::Point{static_cast<layout::Coord>(c),
                                      static_cast<layout::Coord>(r)})) {
        continue;
      }
      double best = static_cast<double>(grid);  // catastrophic default
      for (const auto& [pr, pc] : printed_pts) {
        const double dr = pr - static_cast<double>(r);
        const double dc = pc - static_cast<double>(c);
        best = std::min(best, dr * dr + dc * dc);
      }
      const double epe = printed_pts.empty() ? static_cast<double>(grid)
                                             : std::sqrt(best);
      res.per_edge_pixel.push_back(epe);
      res.max_epe = std::max(res.max_epe, epe);
      res.mean_epe += epe;
    }
  }
  res.contour_pixels = res.per_edge_pixel.size();
  if (res.contour_pixels > 0) {
    res.mean_epe /= static_cast<double>(res.contour_pixels);
  }
  return res;
}

}  // namespace hsd::litho
