#pragma once
// Printability checking: compares the printed image against the drawn intent
// inside the clip core region and reports pinch (intended metal fails to
// print) and bridge (prints where no metal is drawn) defects.

#include <cstdint>
#include <vector>

#include "layout/clip.hpp"
#include "litho/optical.hpp"

namespace hsd::litho {

enum class DefectKind : std::uint8_t { kPinch, kBridge };

struct Defect {
  DefectKind kind = DefectKind::kPinch;
  std::size_t row = 0;   ///< pixel row in the working grid
  std::size_t col = 0;   ///< pixel column
  double severity = 0.0; ///< |aerial - threshold| at the defect pixel
};

/// Result of simulating one clip.
struct LithoResult {
  bool hotspot = false;
  std::vector<Defect> defects;  ///< defects inside the core region only
  double worst_severity = 0.0;
  double min_core_margin = 0.0; ///< smallest |aerial - threshold| over decided core pixels
};

/// Intent margins: a pixel is treated as intended-solid when coverage >= hi
/// and intended-empty when coverage <= lo; in-between (shape edges) is
/// ambiguous and not checked, mirroring the edge tolerance real printability
/// checkers apply.
struct IntentMargins {
  double lo = 0.25;
  double hi = 0.75;
};

/// Checks a printed image against the mask intent inside `core_px`
/// (pixel-space rect, inclusive). `mask`, `aerial`, `printed` are row-major
/// grid x grid.
LithoResult check_printability(const std::vector<float>& mask,
                               const std::vector<float>& aerial,
                               const std::vector<std::uint8_t>& printed,
                               std::size_t grid, const layout::Rect& core_px,
                               const OpticalModel& model,
                               const IntentMargins& margins = {});

}  // namespace hsd::litho
