#include "litho/oracle.hpp"

namespace hsd::litho {

LithoOracle::LithoOracle(std::size_t grid, OpticalModel model, IntentMargins margins)
    : raster_(grid), model_(model), margins_(margins) {}

LithoResult LithoOracle::simulate(const layout::Clip& clip) {
  const std::vector<float> mask = raster_.rasterize(clip);
  const layout::Rect core_px = raster_.to_pixels(clip.core, clip.window);
  count_++;
  const std::vector<float> aerial = aerial_image(mask, raster_.grid(), model_);
  const std::vector<std::uint8_t> printed = printed_image(aerial, model_);
  return check_printability(mask, aerial, printed, raster_.grid(), core_px,
                            model_, margins_);
}

bool LithoOracle::label(const layout::Clip& clip) { return simulate(clip).hotspot; }

LithoResult LithoOracle::simulate_mask(const std::vector<float>& mask,
                                       const layout::Rect& core_px) {
  count_++;
  const std::vector<float> aerial = aerial_image(mask, raster_.grid(), model_);
  const std::vector<std::uint8_t> printed = printed_image(aerial, model_);
  return check_printability(mask, aerial, printed, raster_.grid(), core_px,
                            model_, margins_);
}

}  // namespace hsd::litho
