#include "litho/oracle.hpp"

#include <chrono>
#include <stdexcept>

#include "common/check.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace hsd::litho {

namespace {

/// Per-clip simulation latency, recorded only while metrics are on so the
/// hot loop stays clock-free otherwise.
void observe_simulate_seconds(double seconds) {
  // hsd-lint: allow(no-mutable-static) — magic-static metric handle
  static hsd::obs::Histogram& hist =
      hsd::obs::histogram("litho/simulate_seconds");
  hist.observe(seconds);
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())  // hsd-lint: allow(no-wall-clock)
      .count();
}

}  // namespace

LithoOracle::LithoOracle(std::size_t grid, OpticalModel model, IntentMargins margins)
    : raster_(grid), model_(model), margins_(margins) {}

void LithoOracle::charge(std::size_t n) {
  count_ += n;
  if (metered_) {
    // hsd-lint: allow(no-mutable-static) — magic-static metric handle
    static hsd::obs::Counter& calls = hsd::obs::counter("litho/oracle_calls");
    calls.add(n);
  }
}

LithoResult LithoOracle::simulate(const layout::Clip& clip) {
  HSD_SPAN("litho/simulate");
  const std::vector<float> mask = raster_.rasterize(clip);
  HSD_DCHECK_EQ(mask.size(), raster_.grid() * raster_.grid(), "rasterize grid");
  const layout::Rect core_px = raster_.to_pixels(clip.core, clip.window);
  charge(1);
  const std::vector<float> aerial = aerial_image(mask, raster_.grid(), model_);
  const std::vector<std::uint8_t> printed = printed_image(aerial, model_);
  return check_printability(mask, aerial, printed, raster_.grid(), core_px,
                            model_, margins_);
}

bool LithoOracle::label(const layout::Clip& clip) { return simulate(clip).hotspot; }

std::vector<LithoResult> LithoOracle::simulate_batch(
    const std::vector<layout::Clip>& clips) {
  HSD_SPAN("litho/simulate_batch");
  // Simulations are independent (rasterizer and optics are stateless), so
  // clips fan out across the pool; the count is bumped once up front to
  // match the serial loop's total without a data race. A nested
  // aerial-image parallel_for inside a worker degrades to inline, so the
  // batch is the outermost (and widest) parallel level.
  std::vector<LithoResult> results(clips.size());
  charge(clips.size());
  const bool timed = hsd::obs::metrics_enabled();
  runtime::parallel_for(0, clips.size(), 1, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      HSD_SPAN("litho/simulate");
      const double t0 = timed ? now_seconds() : 0.0;
      const std::vector<float> mask = raster_.rasterize(clips[i]);
      const layout::Rect core_px = raster_.to_pixels(clips[i].core, clips[i].window);
      const std::vector<float> aerial = aerial_image(mask, raster_.grid(), model_);
      const std::vector<std::uint8_t> printed = printed_image(aerial, model_);
      results[i] = check_printability(mask, aerial, printed, raster_.grid(),
                                      core_px, model_, margins_);
      if (timed) observe_simulate_seconds(now_seconds() - t0);
    }
  });
  return results;
}

std::vector<std::uint8_t> LithoOracle::label_batch(
    const std::vector<layout::Clip>& clips,
    const std::vector<std::size_t>& indices) {
  HSD_SPAN("litho/label_batch");
  for (std::size_t idx : indices) {
    if (idx >= clips.size()) throw std::out_of_range("label_batch: clip index");
  }
  std::vector<std::uint8_t> labels(indices.size());
  charge(indices.size());
  const bool timed = hsd::obs::metrics_enabled();
  runtime::parallel_for(0, indices.size(), 1, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      HSD_SPAN("litho/simulate");
      const double t0 = timed ? now_seconds() : 0.0;
      const layout::Clip& clip = clips[indices[i]];
      const std::vector<float> mask = raster_.rasterize(clip);
      const layout::Rect core_px = raster_.to_pixels(clip.core, clip.window);
      const std::vector<float> aerial = aerial_image(mask, raster_.grid(), model_);
      const std::vector<std::uint8_t> printed = printed_image(aerial, model_);
      labels[i] = check_printability(mask, aerial, printed, raster_.grid(),
                                     core_px, model_, margins_)
                      .hotspot
                  ? 1
                  : 0;
      if (timed) observe_simulate_seconds(now_seconds() - t0);
    }
  });
  return labels;
}

LithoResult LithoOracle::simulate_mask(const std::vector<float>& mask,
                                       const layout::Rect& core_px) {
  HSD_SPAN("litho/simulate");
  charge(1);
  const std::vector<float> aerial = aerial_image(mask, raster_.grid(), model_);
  const std::vector<std::uint8_t> printed = printed_image(aerial, model_);
  return check_printability(mask, aerial, printed, raster_.grid(), core_px,
                            model_, margins_);
}

}  // namespace hsd::litho
