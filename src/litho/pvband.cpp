#include "litho/pvband.hpp"

#include <stdexcept>

#include "layout/raster.hpp"

namespace hsd::litho {

PvBandResult pv_band_analysis(const std::vector<float>& mask, std::size_t grid,
                              const layout::Rect& core_px, const OpticalModel& model,
                              const PvBandConfig& config,
                              const IntentMargins& margins) {
  if (mask.size() != grid * grid) throw std::invalid_argument("pv_band_analysis: mask size");
  if (config.corners.empty()) throw std::invalid_argument("pv_band_analysis: no corners");

  PvBandResult res;
  res.always_printed.assign(grid * grid, 1);
  res.ever_printed.assign(grid * grid, 0);
  res.corner_defects.reserve(config.corners.size());

  for (std::size_t c = 0; c < config.corners.size(); ++c) {
    const ProcessCorner& corner = config.corners[c];
    OpticalModel m = model;
    m.sigma_px = model.sigma_px * corner.defocus_scale;
    const std::vector<float> aerial_nominal = aerial_image(mask, grid, m);
    // Dose excursion scales the delivered intensity.
    std::vector<float> aerial = aerial_nominal;
    for (auto& v : aerial) v = static_cast<float>(v * corner.dose_scale);
    const std::vector<std::uint8_t> printed = printed_image(aerial, m);

    for (std::size_t i = 0; i < printed.size(); ++i) {
      res.always_printed[i] = res.always_printed[i] && printed[i];
      res.ever_printed[i] = res.ever_printed[i] || printed[i];
    }
    const LithoResult check =
        check_printability(mask, aerial, printed, grid, core_px, m, margins);
    res.corner_defects.push_back(check.defects.size());
    res.worst_case_hotspot = res.worst_case_hotspot || check.hotspot;
    if (c == 0) res.nominal_hotspot = check.hotspot;
  }

  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (res.ever_printed[i] && !res.always_printed[i]) {
      res.band_area_px++;
      const auto row = static_cast<layout::Coord>(i / grid);
      const auto col = static_cast<layout::Coord>(i % grid);
      if (core_px.contains(layout::Point{col, row})) res.core_band_area_px++;
    }
  }
  res.band_fraction =
      static_cast<double>(res.band_area_px) / static_cast<double>(grid * grid);
  return res;
}

PvBandResult pv_band_analysis(const layout::Clip& clip, std::size_t grid,
                              const OpticalModel& model, const PvBandConfig& config,
                              const IntentMargins& margins) {
  const layout::Rasterizer raster(grid);
  const std::vector<float> mask = raster.rasterize(clip);
  const layout::Rect core_px = raster.to_pixels(clip.core, clip.window);
  return pv_band_analysis(mask, grid, core_px, model, config, margins);
}

}  // namespace hsd::litho
