#pragma once
// Edge placement error (EPE): for every pixel on the intended pattern
// contour, the distance (in pixels) to the nearest printed-contour pixel.
// Large EPE means the printed edge pulled away from the drawn edge — the
// continuous-valued severity measure behind the binary pinch/bridge check.

#include <cstdint>
#include <vector>

#include "layout/geometry.hpp"

namespace hsd::litho {

struct EpeResult {
  /// EPE per intended-contour pixel (pixel units); empty if no contour.
  std::vector<double> per_edge_pixel;
  double max_epe = 0.0;
  double mean_epe = 0.0;
  /// Number of intended-contour pixels evaluated.
  std::size_t contour_pixels = 0;
};

/// Extracts the contour of a binary image: pixels set to 1 with at least one
/// 4-neighbor equal to 0 (image borders count as outside).
std::vector<std::uint8_t> contour_of(const std::vector<std::uint8_t>& image,
                                     std::size_t grid);

/// Measures EPE between an intended binary pattern and the printed binary
/// pattern, restricted to intended-contour pixels inside `roi` (pass the
/// full grid rect to measure everywhere). Distances are Euclidean in pixel
/// units, computed against the printed contour; if the printed image has no
/// contour at all, every intended edge pixel gets EPE = grid (catastrophic).
EpeResult measure_epe(const std::vector<std::uint8_t>& intended,
                      const std::vector<std::uint8_t>& printed, std::size_t grid,
                      const layout::Rect& roi);

/// Thresholds a coverage mask into the intended binary pattern (>= 0.5).
std::vector<std::uint8_t> intended_pattern(const std::vector<float>& mask);

}  // namespace hsd::litho
