#include "litho/optical.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace hsd::litho {

OpticalModel duv28_model() {
  // Tuned for 640 nm clips on a 64 px grid (10 nm/px): ~22 nm PSF sigma puts
  // the pinch limit between 20 and 30 nm lines and the bridge limit between
  // 30 and 40 nm spaces — a plausible 28 nm-node margin structure.
  OpticalModel m;
  m.sigma_px = 2.2;
  m.resist_threshold = 0.46;
  return m;
}

OpticalModel euv7_model() {
  // Tuned for 320 nm clips on a 64 px grid (5 nm/px): ~13.5 nm sigma puts
  // the print limit near 17 nm features for the 7 nm-node benchmarks.
  OpticalModel m;
  m.sigma_px = 2.7;
  m.resist_threshold = 0.50;
  return m;
}

std::vector<float> gaussian_kernel(double sigma_px, double truncate) {
  if (sigma_px <= 0.0) throw std::invalid_argument("gaussian_kernel: sigma <= 0");
  const auto radius = static_cast<std::size_t>(std::ceil(sigma_px * truncate));
  std::vector<float> k(2 * radius + 1);
  double total = 0.0;
  for (std::size_t i = 0; i < k.size(); ++i) {
    const double d = static_cast<double>(i) - static_cast<double>(radius);
    k[i] = static_cast<float>(std::exp(-0.5 * d * d / (sigma_px * sigma_px)));
    total += k[i];
  }
  for (auto& v : k) v = static_cast<float>(v / total);
  return k;
}

std::vector<float> aerial_image(const std::vector<float>& mask, std::size_t grid,
                                const OpticalModel& model) {
  HSD_SPAN("litho/aerial");
  if (mask.size() != grid * grid) throw std::invalid_argument("aerial_image: bad mask size");
  const std::vector<float> kernel = gaussian_kernel(model.sigma_px, model.truncate);
  const auto radius = static_cast<std::ptrdiff_t>(kernel.size() / 2);
  const auto g = static_cast<std::ptrdiff_t>(grid);

  // Rows of the separable convolution are independent, so each pass goes
  // wide over row blocks; the join between the passes keeps the vertical
  // pass reading a fully written tmp.
  // Horizontal pass (clamp-to-zero boundary: outside the clip is empty field).
  std::vector<float> tmp(grid * grid, 0.0F);
  runtime::parallel_for(0, grid, [&](std::size_t r0, std::size_t r1) {
    for (auto r = static_cast<std::ptrdiff_t>(r0);
         r < static_cast<std::ptrdiff_t>(r1); ++r) {
      for (std::ptrdiff_t c = 0; c < g; ++c) {
        float s = 0.0F;
        for (std::ptrdiff_t k = -radius; k <= radius; ++k) {
          const std::ptrdiff_t cc = c + k;
          if (cc < 0 || cc >= g) continue;
          s += kernel[static_cast<std::size_t>(k + radius)] *
               mask[static_cast<std::size_t>(r * g + cc)];
        }
        tmp[static_cast<std::size_t>(r * g + c)] = s;
      }
    }
  });
  // Vertical pass.
  std::vector<float> out(grid * grid, 0.0F);
  runtime::parallel_for(0, grid, [&](std::size_t r0, std::size_t r1) {
    for (auto r = static_cast<std::ptrdiff_t>(r0);
         r < static_cast<std::ptrdiff_t>(r1); ++r) {
      for (std::ptrdiff_t c = 0; c < g; ++c) {
        float s = 0.0F;
        for (std::ptrdiff_t k = -radius; k <= radius; ++k) {
          const std::ptrdiff_t rr = r + k;
          if (rr < 0 || rr >= g) continue;
          s += kernel[static_cast<std::size_t>(k + radius)] *
               tmp[static_cast<std::size_t>(rr * g + c)];
        }
        out[static_cast<std::size_t>(r * g + c)] = s;
      }
    }
  });
  return out;
}

std::vector<std::uint8_t> printed_image(const std::vector<float>& aerial,
                                        const OpticalModel& model) {
  std::vector<std::uint8_t> printed(aerial.size());
  for (std::size_t i = 0; i < aerial.size(); ++i) {
    printed[i] = aerial[i] >= static_cast<float>(model.resist_threshold) ? 1 : 0;
  }
  return printed;
}

}  // namespace hsd::litho
