#pragma once
// Process-variation (PV) band analysis: the printed image is simulated at a
// set of process corners (dose and focus excursions); the PV band is the
// region that prints under some corners but not others. Narrow margins show
// up as wide bands, and a clip that fails at any corner is a worst-case
// hotspot — the analysis real sign-off flows run on top of nominal checks.

#include <cstdint>
#include <vector>

#include "layout/clip.hpp"
#include "litho/defects.hpp"
#include "litho/optical.hpp"

namespace hsd::litho {

/// One process corner: multiplicative excursions on exposure dose (scales
/// the aerial intensity) and focus (scales the PSF sigma).
struct ProcessCorner {
  double dose_scale = 1.0;
  double defocus_scale = 1.0;
};

/// Corner set for PV analysis; defaults to the nominal plus four single-axis
/// excursions (±5 % dose, +15 % defocus blur at both doses).
struct PvBandConfig {
  std::vector<ProcessCorner> corners{
      {1.00, 1.00},   // nominal
      {0.95, 1.00},   // under-exposed
      {1.05, 1.00},   // over-exposed
      {0.95, 1.15},   // under-exposed, defocused
      {1.05, 1.15},   // over-exposed, defocused
  };
};

struct PvBandResult {
  /// Pixels printed under every corner (inner contour).
  std::vector<std::uint8_t> always_printed;
  /// Pixels printed under at least one corner (outer contour).
  std::vector<std::uint8_t> ever_printed;
  /// Pixels in the PV band (ever - always).
  std::size_t band_area_px = 0;
  /// band_area_px / grid^2.
  double band_fraction = 0.0;
  /// Band pixels inside the core region.
  std::size_t core_band_area_px = 0;
  /// True if any corner produces a core defect (worst-case hotspot).
  bool worst_case_hotspot = false;
  /// Nominal-corner defect status for comparison.
  bool nominal_hotspot = false;
  /// Per-corner defect counts inside the core.
  std::vector<std::size_t> corner_defects;
};

/// Runs the corner sweep on a rasterized mask. `core_px` is the pixel-space
/// core rect; `model` the nominal optics.
PvBandResult pv_band_analysis(const std::vector<float>& mask, std::size_t grid,
                              const layout::Rect& core_px, const OpticalModel& model,
                              const PvBandConfig& config = {},
                              const IntentMargins& margins = {});

/// Convenience overload: rasterizes the clip at `grid` first.
PvBandResult pv_band_analysis(const layout::Clip& clip, std::size_t grid,
                              const OpticalModel& model,
                              const PvBandConfig& config = {},
                              const IntentMargins& margins = {});

}  // namespace hsd::litho
