#pragma once
// Small descriptive-statistics helpers used by the benchmark harnesses when
// reporting averaged results (Table II/III rows, Fig. 4 curves).

#include <cstddef>
#include <vector>

namespace hsd::stats {

/// Five-number-ish summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes mean/stddev/min/max/median of `v` (empty input -> zeros).
Summary summarize(const std::vector<double>& v);

/// Arithmetic mean (0 for empty input).
double mean(const std::vector<double>& v);

/// Groups `values` by rounding `keys` to `decimals` decimal places and
/// averages values within each group; returns (key, mean value) pairs sorted
/// by key. Used to average litho overhead per accuracy level in Fig. 4.
std::vector<std::pair<double, double>> group_mean_by(
    const std::vector<double>& keys, const std::vector<double>& values,
    int decimals = 3);

}  // namespace hsd::stats
