#pragma once
// Nonparametric bootstrap confidence intervals for experiment summaries:
// repeated runs of a stochastic PSHD flow produce small samples of accuracy
// and litho overhead; percentile-bootstrap intervals quantify how stable a
// method's operating point is (the Fig. 4 "narrow band" stability claim).

#include <cstddef>
#include <vector>

#include "stats/rng.hpp"

namespace hsd::stats {

struct BootstrapInterval {
  double point = 0.0;  ///< statistic on the original sample (mean)
  double lo = 0.0;     ///< lower percentile bound
  double hi = 0.0;     ///< upper percentile bound
  std::size_t resamples = 0;
};

/// Percentile-bootstrap CI for the mean of `sample` at the given confidence
/// level (e.g. 0.95). Empty samples yield a zero interval; single-element
/// samples collapse to the point.
BootstrapInterval bootstrap_mean_ci(const std::vector<double>& sample, Rng& rng,
                                    double confidence = 0.95,
                                    std::size_t resamples = 2000);

/// Dispersion report for a small timing/accuracy sample: the bootstrap mean
/// CI plus a Tukey-fence outlier count, so a bench entry can say both "how
/// stable is the estimate" and "how many rounds were disturbed".
struct SampleDispersion {
  BootstrapInterval mean_ci;
  double q1 = 0.0;            ///< lower quartile (linear interpolation)
  double q3 = 0.0;            ///< upper quartile
  std::size_t outliers = 0;   ///< points outside [q1 - k*IQR, q3 + k*IQR]
};

/// Bootstrap CI + Tukey IQR-fence outlier count (k = 1.5 by default).
/// Deterministic given `rng`'s seed — reseed per measurement so bench JSON
/// regenerates bit-identically.
SampleDispersion sample_dispersion(const std::vector<double>& sample, Rng& rng,
                                   double confidence = 0.95,
                                   std::size_t resamples = 2000,
                                   double fence = 1.5);

}  // namespace hsd::stats
