#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace hsd::stats {

Summary summarize(const std::vector<double>& v) {
  Summary s;
  s.count = v.size();
  if (v.empty()) return s;
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  const std::size_t n = sorted.size();
  s.median = (n % 2 == 1) ? sorted[n / 2]
                          : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  double total = 0.0;
  for (double x : v) total += x;
  s.mean = total / static_cast<double>(n);
  double var = 0.0;
  for (double x : v) var += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(n));
  return s;
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double total = 0.0;
  for (double x : v) total += x;
  return total / static_cast<double>(v.size());
}

std::vector<std::pair<double, double>> group_mean_by(
    const std::vector<double>& keys, const std::vector<double>& values,
    int decimals) {
  const double scale = std::pow(10.0, decimals);
  std::map<long long, std::pair<double, std::size_t>> buckets;
  const std::size_t n = std::min(keys.size(), values.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto key = static_cast<long long>(std::llround(keys[i] * scale));
    auto& [sum, count] = buckets[key];
    sum += values[i];
    count++;
  }
  std::vector<std::pair<double, double>> out;
  out.reserve(buckets.size());
  for (const auto& [key, sc] : buckets) {
    out.emplace_back(static_cast<double>(key) / scale,
                     sc.first / static_cast<double>(sc.second));
  }
  return out;
}

}  // namespace hsd::stats
