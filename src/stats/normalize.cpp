#include "stats/normalize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hsd::stats {

void minmax_normalize(std::vector<double>& v) {
  if (v.empty()) return;
  const auto [lo_it, hi_it] = std::minmax_element(v.begin(), v.end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  const double range = hi - lo;
  if (range <= 0.0) {
    std::fill(v.begin(), v.end(), 0.0);
    return;
  }
  for (double& x : v) x = (x - lo) / range;
}

std::vector<double> minmax_normalized(const std::vector<double>& v) {
  std::vector<double> out = v;
  minmax_normalize(out);
  return out;
}

double l2_norm(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

void l2_normalize(std::vector<double>& v) {
  const double n = l2_norm(v);
  if (n <= 0.0) return;
  for (double& x : v) x /= n;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void zscore_normalize(std::vector<double>& v) {
  if (v.empty()) return;
  double mean = 0.0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double var = 0.0;
  for (double x : v) var += (x - mean) * (x - mean);
  var /= static_cast<double>(v.size());
  const double sd = std::sqrt(var);
  if (sd <= 0.0) {
    std::fill(v.begin(), v.end(), 0.0);
    return;
  }
  for (double& x : v) x = (x - mean) / sd;
}

}  // namespace hsd::stats
