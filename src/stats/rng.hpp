#pragma once
// Deterministic random number generation for reproducible experiments.
//
// All stochastic components of the library (weight initialization, data
// generation, EM initialization, batch shuffling, ...) draw from an Rng
// instance so that a single seed fixes an entire experiment end to end.

#include <cstdint>
#include <iosfwd>
#include <random>
#include <string>
#include <vector>

namespace hsd::stats {

/// Seedable pseudo-random generator with the helpers the library needs.
///
/// Wraps std::mt19937_64; cheap to copy, so child components can be handed
/// independent streams via split().
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed (default: fixed seed 42).
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal (mean 0, stddev 1) scaled to (mean, stddev).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t randint(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of an index-like vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(randint(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) without replacement.
  /// Requires k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Draws an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derives an independent generator; deterministic given this generator's
  /// current state.
  Rng split();

  /// Underlying engine access (for std::distributions in callers).
  std::mt19937_64& engine() { return engine_; }

  /// Serializes the full engine state (the standard textual mt19937_64
  /// representation) so a restored generator continues the exact stream.
  friend std::ostream& operator<<(std::ostream& os, const Rng& rng);
  friend std::istream& operator>>(std::istream& is, Rng& rng);

  /// State capture as a string (checkpoint-friendly form of operator<<).
  std::string save_state() const;
  /// Restores a state produced by save_state(); throws on a malformed state.
  void load_state(const std::string& state);

 private:
  std::mt19937_64 engine_;  // hsd-lint: allow(no-rand) — always ctor-seeded
};

}  // namespace hsd::stats
