#include "stats/bootstrap.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/summary.hpp"

namespace hsd::stats {

BootstrapInterval bootstrap_mean_ci(const std::vector<double>& sample, Rng& rng,
                                    double confidence, std::size_t resamples) {
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument("bootstrap_mean_ci: confidence must be in (0, 1)");
  }
  if (resamples == 0) throw std::invalid_argument("bootstrap_mean_ci: resamples == 0");

  BootstrapInterval ci;
  ci.resamples = resamples;
  if (sample.empty()) return ci;
  ci.point = mean(sample);
  if (sample.size() == 1) {
    ci.lo = ci.hi = ci.point;
    return ci;
  }

  const std::size_t n = sample.size();
  std::vector<double> means(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += sample[static_cast<std::size_t>(
          rng.randint(0, static_cast<std::int64_t>(n) - 1))];
    }
    means[r] = total / static_cast<double>(n);
  }
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const auto lo_idx = static_cast<std::size_t>(alpha * static_cast<double>(resamples - 1));
  const auto hi_idx = static_cast<std::size_t>((1.0 - alpha) *
                                               static_cast<double>(resamples - 1));
  ci.lo = means[lo_idx];
  ci.hi = means[hi_idx];
  return ci;
}

}  // namespace hsd::stats
