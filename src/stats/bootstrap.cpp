#include "stats/bootstrap.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/summary.hpp"

namespace hsd::stats {

BootstrapInterval bootstrap_mean_ci(const std::vector<double>& sample, Rng& rng,
                                    double confidence, std::size_t resamples) {
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument("bootstrap_mean_ci: confidence must be in (0, 1)");
  }
  if (resamples == 0) throw std::invalid_argument("bootstrap_mean_ci: resamples == 0");

  BootstrapInterval ci;
  ci.resamples = resamples;
  if (sample.empty()) return ci;
  ci.point = mean(sample);
  if (sample.size() == 1) {
    ci.lo = ci.hi = ci.point;
    return ci;
  }

  const std::size_t n = sample.size();
  std::vector<double> means(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += sample[static_cast<std::size_t>(
          rng.randint(0, static_cast<std::int64_t>(n) - 1))];
    }
    means[r] = total / static_cast<double>(n);
  }
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const auto lo_idx = static_cast<std::size_t>(alpha * static_cast<double>(resamples - 1));
  const auto hi_idx = static_cast<std::size_t>((1.0 - alpha) *
                                               static_cast<double>(resamples - 1));
  ci.lo = means[lo_idx];
  ci.hi = means[hi_idx];
  return ci;
}

namespace {

/// Linear-interpolation quantile of an already-sorted sample.
double sorted_quantile(const std::vector<double>& sorted, double q) {
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = lo + 1 < sorted.size() ? lo + 1 : lo;
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

SampleDispersion sample_dispersion(const std::vector<double>& sample, Rng& rng,
                                   double confidence, std::size_t resamples,
                                   double fence) {
  if (fence < 0.0) {
    throw std::invalid_argument("sample_dispersion: fence must be >= 0");
  }
  SampleDispersion d;
  d.mean_ci = bootstrap_mean_ci(sample, rng, confidence, resamples);
  if (sample.empty()) return d;

  std::vector<double> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  d.q1 = sorted_quantile(sorted, 0.25);
  d.q3 = sorted_quantile(sorted, 0.75);
  const double iqr = d.q3 - d.q1;
  const double lo = d.q1 - fence * iqr;
  const double hi = d.q3 + fence * iqr;
  for (const double v : sorted) {
    if (v < lo || v > hi) ++d.outliers;
  }
  return d;
}

}  // namespace hsd::stats
