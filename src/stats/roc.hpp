#pragma once
// ROC analysis for the hotspot detector: the full TPR/FPR curve over score
// thresholds, the area under it, and the operating point at a given
// threshold. Used by the extension benches to characterize detector quality
// independently of the fixed decision boundary.

#include <cstddef>
#include <vector>

namespace hsd::stats {

struct RocPoint {
  double threshold = 0.0;
  double tpr = 0.0;  ///< true-positive rate (recall)
  double fpr = 0.0;  ///< false-positive rate
};

struct RocCurve {
  std::vector<RocPoint> points;  ///< sorted by decreasing threshold
  double auc = 0.0;              ///< area under the curve (trapezoidal)
};

/// Builds the ROC curve of `scores` (higher = more positive) against binary
/// labels (1 = positive). Degenerate inputs (single class) yield auc = 0.5
/// by convention and a two-point curve.
RocCurve roc_curve(const std::vector<double>& scores, const std::vector<int>& labels);

/// Confusion counts at a fixed threshold (score >= threshold => positive).
struct Confusion {
  std::size_t tp = 0, fp = 0, fn = 0, tn = 0;
  double precision() const {
    return tp + fp > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 0.0;
  }
  double recall() const {
    return tp + fn > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 0.0;
  }
  double f1() const {
    const double p = precision(), r = recall();
    return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
  }
};

Confusion confusion_at(const std::vector<double>& scores,
                       const std::vector<int>& labels, double threshold);

}  // namespace hsd::stats
