#include "stats/entropy.hpp"

#include <cmath>
#include <stdexcept>

namespace hsd::stats {

double shannon_entropy(const std::vector<double>& p) {
  double total = 0.0;
  for (double v : p) {
    if (v < 0.0) throw std::invalid_argument("shannon_entropy: negative probability");
    total += v;
  }
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double v : p) {
    if (v > 0.0) {
      const double q = v / total;
      h -= q * std::log(q);
    }
  }
  return h;
}

double indicator_entropy(const std::vector<double>& scores) {
  const std::size_t n = scores.size();
  if (n <= 1) return 1.0;
  double total = 0.0;
  for (double v : scores) {
    if (v < 0.0) throw std::invalid_argument("indicator_entropy: negative score");
    total += v;
  }
  if (total <= 0.0) return 1.0;  // all-zero column: no information
  const double b = 1.0 / std::log(static_cast<double>(n));
  double h = 0.0;
  for (double v : scores) {
    if (v > 0.0) {
      const double q = v / total;
      h -= q * std::log(q);
    }
  }
  return b * h;
}

EntropyWeights entropy_weighting(const std::vector<double>& uncertainty,
                                 const std::vector<double>& diversity) {
  if (uncertainty.size() != diversity.size()) {
    throw std::invalid_argument("entropy_weighting: column sizes differ");
  }
  EntropyWeights w;
  w.e_uncertainty = indicator_entropy(uncertainty);
  w.e_diversity = indicator_entropy(diversity);
  const double denom = 2.0 - (w.e_uncertainty + w.e_diversity);
  if (denom <= 1e-12) {
    // Both indicators uniform: neither discriminates, split evenly.
    w.w_uncertainty = 0.5;
    w.w_diversity = 0.5;
  } else {
    w.w_uncertainty = (1.0 - w.e_uncertainty) / denom;
    w.w_diversity = (1.0 - w.e_diversity) / denom;
  }
  return w;
}

}  // namespace hsd::stats
