#pragma once
// Shannon entropy and the entropy weighting method of the paper
// (Eqs. 10-13): dynamic weights for fusing the uncertainty and diversity
// indicators according to their dispersion in the current query set.

#include <array>
#include <vector>

namespace hsd::stats {

/// Shannon entropy (natural log) of a discrete distribution `p`.
/// Entries must be non-negative; they are normalized internally.
/// Zero entries contribute zero (lim p->0 of p ln p).
double shannon_entropy(const std::vector<double>& p);

/// Normalized entropy of an *indicator column* per Eqs. 11-12 of the paper:
/// scores are turned into proportions q_i = r_i / sum(r), and
/// E = -(1/ln n) * sum q_i ln q_i, guaranteed in [0, 1].
/// `scores` must already be min-max normalized (Eq. 10) and non-negative.
/// For n <= 1 or an all-zero column the entropy is defined as 1 (the
/// indicator carries no information).
double indicator_entropy(const std::vector<double>& scores);

/// Result of the entropy weighting method for two indicators.
struct EntropyWeights {
  double w_uncertainty = 0.5;  ///< omega_1 of Eq. 13
  double w_diversity = 0.5;    ///< omega_2 of Eq. 13
  double e_uncertainty = 1.0;  ///< E_1 of Eq. 12
  double e_diversity = 1.0;    ///< E_2 of Eq. 12
};

/// Computes the dynamic weights of Eq. 13 from the (already min-max
/// normalized) uncertainty and diversity columns. Weights are in [0, 1] and
/// sum to 1. If both indicators are fully uninformative (E_1 = E_2 = 1) the
/// weights fall back to 0.5/0.5.
EntropyWeights entropy_weighting(const std::vector<double>& uncertainty,
                                 const std::vector<double>& diversity);

}  // namespace hsd::stats
