#include "stats/rng.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace hsd::stats {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

std::int64_t Rng::randint(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::randint: lo > hi");
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution dist(std::clamp(p, 0.0, 1.0));
  return dist(engine_);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_without_replacement: k > n");
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  // Partial Fisher-Yates: only the first k positions need to be settled.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        randint(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Rng::weighted_index: no positive weight");
  double r = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() {
  // Derive a new seed from the current stream; advances this engine.
  return Rng(engine_());
}

std::ostream& operator<<(std::ostream& os, const Rng& rng) {
  return os << rng.engine_;
}

std::istream& operator>>(std::istream& is, Rng& rng) {
  return is >> rng.engine_;
}

std::string Rng::save_state() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

void Rng::load_state(const std::string& state) {
  std::istringstream is(state);
  is >> *this;
  if (!is) throw std::invalid_argument("Rng::load_state: malformed engine state");
}

}  // namespace hsd::stats
