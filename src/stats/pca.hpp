#pragma once
// Principal component analysis via Jacobi eigendecomposition of the sample
// covariance matrix. Used to project penultimate-layer features to 2-D for
// the diversity visualization of Fig. 3(a) and to compress DCT features
// before GMM fitting.

#include <cstddef>
#include <vector>

namespace hsd::stats {

/// A fitted PCA model: per-dimension mean and the leading principal axes.
class Pca {
 public:
  /// Fits `num_components` principal axes to row-major data
  /// (`data[i]` = sample i). Requires at least one sample and
  /// 1 <= num_components <= dimension.
  static Pca fit(const std::vector<std::vector<double>>& data,
                 std::size_t num_components);

  /// Projects one sample onto the fitted axes.
  std::vector<double> transform(const std::vector<double>& x) const;

  /// Projects a batch of samples.
  std::vector<std::vector<double>> transform(
      const std::vector<std::vector<double>>& data) const;

  /// Fraction of total variance captured by each kept component.
  const std::vector<double>& explained_variance_ratio() const {
    return explained_variance_ratio_;
  }

  std::size_t num_components() const { return components_.size(); }
  std::size_t input_dimension() const { return mean_.size(); }

 private:
  Pca() = default;
  std::vector<double> mean_;
  std::vector<std::vector<double>> components_;  // each row: one unit axis
  std::vector<double> explained_variance_ratio_;
};

/// Symmetric eigendecomposition by cyclic Jacobi rotations.
/// `a` is a dense symmetric matrix (row-major, n*n). Returns eigenvalues in
/// descending order and matching unit eigenvectors (rows of `vectors`).
void symmetric_eigen(std::vector<double> a, std::size_t n,
                     std::vector<double>& values,
                     std::vector<std::vector<double>>& vectors);

}  // namespace hsd::stats
