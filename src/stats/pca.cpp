#include "stats/pca.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hsd::stats {

void symmetric_eigen(std::vector<double> a, std::size_t n,
                     std::vector<double>& values,
                     std::vector<std::vector<double>>& vectors) {
  if (a.size() != n * n) throw std::invalid_argument("symmetric_eigen: bad matrix size");
  // V starts as identity; accumulates the rotations.
  std::vector<double> v(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  const int max_sweeps = 64;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += a[p * n + q] * a[p * n + q];
    if (off < 1e-24) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::abs(apq) < 1e-300) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply rotation G(p,q,theta) on both sides of A and accumulate in V.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v[k * n + p];
          const double vkq = v[k * n + q];
          v[k * n + p] = c * vkp - s * vkq;
          v[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Extract and sort by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = a[i * n + i];
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return diag[x] > diag[y]; });

  values.assign(n, 0.0);
  vectors.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t r = 0; r < n; ++r) {
    values[r] = diag[order[r]];
    for (std::size_t k = 0; k < n; ++k) vectors[r][k] = v[k * n + order[r]];
  }
}

Pca Pca::fit(const std::vector<std::vector<double>>& data, std::size_t num_components) {
  if (data.empty()) throw std::invalid_argument("Pca::fit: empty data");
  const std::size_t dim = data[0].size();
  if (num_components == 0 || num_components > dim) {
    throw std::invalid_argument("Pca::fit: bad num_components");
  }

  Pca pca;
  pca.mean_.assign(dim, 0.0);
  for (const auto& row : data) {
    if (row.size() != dim) throw std::invalid_argument("Pca::fit: ragged data");
    for (std::size_t j = 0; j < dim; ++j) pca.mean_[j] += row[j];
  }
  const auto n = static_cast<double>(data.size());
  for (double& m : pca.mean_) m /= n;

  // Sample covariance (row-major symmetric).
  std::vector<double> cov(dim * dim, 0.0);
  for (const auto& row : data) {
    for (std::size_t i = 0; i < dim; ++i) {
      const double di = row[i] - pca.mean_[i];
      for (std::size_t j = i; j < dim; ++j) {
        cov[i * dim + j] += di * (row[j] - pca.mean_[j]);
      }
    }
  }
  const double denom = std::max(n - 1.0, 1.0);
  for (std::size_t i = 0; i < dim; ++i)
    for (std::size_t j = i; j < dim; ++j) {
      cov[i * dim + j] /= denom;
      cov[j * dim + i] = cov[i * dim + j];
    }

  std::vector<double> values;
  std::vector<std::vector<double>> vectors;
  symmetric_eigen(std::move(cov), dim, values, vectors);

  double total_var = 0.0;
  for (double v : values) total_var += std::max(v, 0.0);
  pca.components_.assign(vectors.begin(),
                         vectors.begin() + static_cast<std::ptrdiff_t>(num_components));
  pca.explained_variance_ratio_.resize(num_components);
  for (std::size_t c = 0; c < num_components; ++c) {
    pca.explained_variance_ratio_[c] =
        total_var > 0.0 ? std::max(values[c], 0.0) / total_var : 0.0;
  }
  return pca;
}

std::vector<double> Pca::transform(const std::vector<double>& x) const {
  if (x.size() != mean_.size()) throw std::invalid_argument("Pca::transform: bad dimension");
  std::vector<double> out(components_.size(), 0.0);
  for (std::size_t c = 0; c < components_.size(); ++c) {
    double s = 0.0;
    for (std::size_t j = 0; j < mean_.size(); ++j) {
      s += (x[j] - mean_[j]) * components_[c][j];
    }
    out[c] = s;
  }
  return out;
}

std::vector<std::vector<double>> Pca::transform(
    const std::vector<std::vector<double>>& data) const {
  std::vector<std::vector<double>> out;
  out.reserve(data.size());
  for (const auto& row : data) out.push_back(transform(row));
  return out;
}

}  // namespace hsd::stats
