#include "stats/reliability.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hsd::stats {

namespace {
constexpr double kEps = 1e-12;
}

ReliabilityDiagram reliability_diagram(const std::vector<std::vector<double>>& probs,
                                       const std::vector<int>& labels,
                                       std::size_t num_bins) {
  if (probs.size() != labels.size()) {
    throw std::invalid_argument("reliability_diagram: probs/labels size mismatch");
  }
  if (num_bins == 0) throw std::invalid_argument("reliability_diagram: num_bins == 0");

  ReliabilityDiagram d;
  d.bins.resize(num_bins);
  const double width = 1.0 / static_cast<double>(num_bins);
  for (std::size_t b = 0; b < num_bins; ++b) {
    d.bins[b].lo = static_cast<double>(b) * width;
    d.bins[b].hi = static_cast<double>(b + 1) * width;
  }

  std::vector<double> conf_sum(num_bins, 0.0);
  std::vector<std::size_t> correct(num_bins, 0);
  std::size_t total_correct = 0;
  const std::size_t n = probs.size();

  for (std::size_t i = 0; i < n; ++i) {
    const auto& p = probs[i];
    if (p.empty()) throw std::invalid_argument("reliability_diagram: empty probability row");
    const auto arg = static_cast<std::size_t>(
        std::max_element(p.begin(), p.end()) - p.begin());
    const double conf = p[arg];
    auto b = static_cast<std::size_t>(conf / width);
    if (b >= num_bins) b = num_bins - 1;  // conf == 1.0 lands in the last bin
    d.bins[b].count++;
    conf_sum[b] += conf;
    const bool ok = static_cast<int>(arg) == labels[i];
    if (ok) {
      correct[b]++;
      total_correct++;
    }
    const std::size_t label = static_cast<std::size_t>(labels[i]);
    const double p_true = label < p.size() ? p[label] : 0.0;
    d.nll += -std::log(std::max(p_true, kEps));
    d.brier += (conf - (ok ? 1.0 : 0.0)) * (conf - (ok ? 1.0 : 0.0));
  }

  for (std::size_t b = 0; b < num_bins; ++b) {
    if (d.bins[b].count == 0) continue;
    const auto cnt = static_cast<double>(d.bins[b].count);
    d.bins[b].mean_confidence = conf_sum[b] / cnt;
    d.bins[b].accuracy = static_cast<double>(correct[b]) / cnt;
    const double gap = std::abs(d.bins[b].mean_confidence - d.bins[b].accuracy);
    d.ece += (cnt / static_cast<double>(n)) * gap;
    d.mce = std::max(d.mce, gap);
  }
  if (n > 0) {
    d.nll /= static_cast<double>(n);
    d.brier /= static_cast<double>(n);
    d.accuracy = static_cast<double>(total_correct) / static_cast<double>(n);
  }
  return d;
}

double negative_log_likelihood(const std::vector<std::vector<double>>& probs,
                               const std::vector<int>& labels) {
  if (probs.size() != labels.size()) {
    throw std::invalid_argument("negative_log_likelihood: size mismatch");
  }
  if (probs.empty()) return 0.0;
  double nll = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    const auto label = static_cast<std::size_t>(labels[i]);
    const double p = label < probs[i].size() ? probs[i][label] : 0.0;
    nll += -std::log(std::max(p, kEps));
  }
  return nll / static_cast<double>(probs.size());
}

}  // namespace hsd::stats
