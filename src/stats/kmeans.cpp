#include "stats/kmeans.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace hsd::stats {

double squared_distance(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("squared_distance: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

std::vector<std::size_t> kmeanspp_seed(const std::vector<std::vector<double>>& data,
                                       std::size_t k, Rng& rng) {
  const std::size_t n = data.size();
  if (k == 0 || k > n) throw std::invalid_argument("kmeanspp_seed: bad k");

  std::vector<std::size_t> seeds;
  seeds.reserve(k);
  seeds.push_back(static_cast<std::size_t>(rng.randint(0, static_cast<std::int64_t>(n) - 1)));

  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  std::vector<bool> seeded(n, false);
  seeded[seeds.back()] = true;
  while (seeds.size() < k) {
    const auto& last = data[seeds.back()];
    for (std::size_t i = 0; i < n; ++i) {
      d2[i] = std::min(d2[i], squared_distance(data[i], last));
    }
    double total = 0.0;
    for (double d : d2) total += d;
    std::size_t next = n;
    if (total <= 0.0) {
      // All remaining points coincide with chosen seeds; take the smallest
      // unseeded index so the result is distinct and deterministic (a
      // random draw here could return an already-chosen seed).
      for (std::size_t i = 0; i < n; ++i) {
        if (!seeded[i]) {
          next = i;
          break;
        }
      }
    } else {
      next = rng.weighted_index(d2);
    }
    seeds.push_back(next);
    seeded[next] = true;
  }
  return seeds;
}

KMeansResult kmeans(const std::vector<std::vector<double>>& data, std::size_t k,
                    Rng& rng, std::size_t max_iters) {
  const std::size_t n = data.size();
  if (n == 0) throw std::invalid_argument("kmeans: empty data");
  const std::size_t dim = data[0].size();

  KMeansResult res;
  const auto seeds = kmeanspp_seed(data, k, rng);
  res.centroids.reserve(k);
  for (std::size_t s : seeds) res.centroids.push_back(data[s]);
  res.assignment.assign(n, 0);

  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    // Assignment step.
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_c = res.assignment[i];
      for (std::size_t c = 0; c < k; ++c) {
        const double d = squared_distance(data[i], res.centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (best_c != res.assignment[i]) {
        res.assignment[i] = best_c;
        changed = true;
      }
    }
    res.iterations = iter + 1;
    if (!changed && iter > 0) break;

    // Update step.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      counts[res.assignment[i]]++;
      for (std::size_t j = 0; j < dim; ++j) sums[res.assignment[i]][j] += data[i][j];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      for (std::size_t j = 0; j < dim; ++j) {
        res.centroids[c][j] = sums[c][j] / static_cast<double>(counts[c]);
      }
    }
    if (!changed) break;
  }

  res.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    res.inertia += squared_distance(data[i], res.centroids[res.assignment[i]]);
  }
  return res;
}

}  // namespace hsd::stats
