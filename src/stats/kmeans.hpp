#pragma once
// Lloyd k-means with k-means++ seeding. Serves as (a) the clustering
// diversity baseline referenced by the paper ([11]) and (b) the fuzzy
// pattern-matching clusterer's refinement step.

#include <cstddef>
#include <vector>

#include "stats/rng.hpp"

namespace hsd::stats {

/// Result of a k-means run.
struct KMeansResult {
  std::vector<std::vector<double>> centroids;  ///< k centroids
  std::vector<std::size_t> assignment;         ///< cluster id per sample
  double inertia = 0.0;   ///< sum of squared distances to assigned centroid
  std::size_t iterations = 0;  ///< Lloyd iterations executed
};

/// Runs k-means++ seeding followed by Lloyd iterations.
///
/// `data` is row-major (sample per row); `k` must satisfy 1 <= k <= n.
/// Iterates until assignment is stable or `max_iters` is reached.
KMeansResult kmeans(const std::vector<std::vector<double>>& data, std::size_t k,
                    Rng& rng, std::size_t max_iters = 100);

/// k-means++ seeding only: returns `k` distinct sample indices, the first
/// uniform, the rest D^2-weighted (Arthur & Vassilvitskii, SODA'07).
std::vector<std::size_t> kmeanspp_seed(const std::vector<std::vector<double>>& data,
                                       std::size_t k, Rng& rng);

/// Squared Euclidean distance between equal-length vectors.
double squared_distance(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace hsd::stats
