#pragma once
// Reliability diagrams and calibration error metrics (Fig. 2 of the paper
// and Guo et al., ICML'17).
//
// Predictions are partitioned into equally spaced confidence bins; each bin
// tracks its average confidence and empirical accuracy. The gap between the
// two visualizes mis-calibration; the Expected Calibration Error (ECE) is the
// sample-weighted mean absolute gap.

#include <cstddef>
#include <vector>

namespace hsd::stats {

/// One confidence bin of a reliability diagram.
struct ReliabilityBin {
  double lo = 0.0;              ///< inclusive lower confidence edge
  double hi = 0.0;              ///< exclusive upper edge (inclusive for last bin)
  std::size_t count = 0;        ///< number of predictions in the bin
  double mean_confidence = 0.0; ///< average max-probability in the bin
  double accuracy = 0.0;        ///< fraction of correct predictions in the bin
};

/// A binned reliability diagram plus summary calibration metrics.
struct ReliabilityDiagram {
  std::vector<ReliabilityBin> bins;
  double ece = 0.0;  ///< expected calibration error
  double mce = 0.0;  ///< maximum calibration error (max per-bin |gap|)
  double nll = 0.0;  ///< mean negative log likelihood of the true class
  double brier = 0.0;///< mean Brier score on the predicted-class probability
  double accuracy = 0.0;  ///< overall top-1 accuracy
};

/// Builds a reliability diagram from per-sample class-probability rows.
///
/// `probs[i]` holds the (already softmaxed) class probabilities of sample i;
/// `labels[i]` is the true class index. `num_bins` equally spaced bins cover
/// [0, 1] on the predicted-class confidence, mirroring Fig. 2.
ReliabilityDiagram reliability_diagram(const std::vector<std::vector<double>>& probs,
                                       const std::vector<int>& labels,
                                       std::size_t num_bins = 10);

/// Mean negative log likelihood of the true class (cross-entropy), the
/// objective minimized by temperature scaling.
double negative_log_likelihood(const std::vector<std::vector<double>>& probs,
                               const std::vector<int>& labels);

}  // namespace hsd::stats
