#pragma once
// Score and feature normalization helpers (Eq. 10 of the paper and the
// L2 feature normalization behind the diversity metric of Eq. 8).

#include <vector>

namespace hsd::stats {

/// Min-max normalizes a column in place per Eq. 10:
/// r_i = (a_i - min) / (max - min). A constant column maps to all zeros.
void minmax_normalize(std::vector<double>& v);

/// Min-max normalization returning a copy.
std::vector<double> minmax_normalized(const std::vector<double>& v);

/// L2-normalizes a vector in place; a zero vector is left unchanged.
void l2_normalize(std::vector<double>& v);

/// Returns the L2 norm of `v`.
double l2_norm(const std::vector<double>& v);

/// Inner product of equal-length vectors.
double dot(const std::vector<double>& a, const std::vector<double>& b);

/// Z-score standardization in place (mean 0, stddev 1); a constant column
/// maps to all zeros.
void zscore_normalize(std::vector<double>& v);

}  // namespace hsd::stats
