#include "stats/roc.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace hsd::stats {

RocCurve roc_curve(const std::vector<double>& scores, const std::vector<int>& labels) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("roc_curve: scores/labels size mismatch");
  }
  RocCurve curve;
  std::size_t positives = 0;
  for (int y : labels) positives += (y == 1);
  const std::size_t negatives = labels.size() - positives;
  if (positives == 0 || negatives == 0) {
    curve.points = {{1.0, 0.0, 0.0}, {0.0, 1.0, 1.0}};
    curve.auc = 0.5;
    return curve;
  }

  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });

  std::size_t tp = 0, fp = 0;
  curve.points.push_back({scores[order.front()] + 1.0, 0.0, 0.0});
  for (std::size_t i = 0; i < order.size();) {
    const double threshold = scores[order[i]];
    // Consume all samples tied at this score before emitting a point.
    while (i < order.size() && scores[order[i]] == threshold) {
      if (labels[order[i]] == 1) {
        tp++;
      } else {
        fp++;
      }
      i++;
    }
    curve.points.push_back({threshold,
                            static_cast<double>(tp) / static_cast<double>(positives),
                            static_cast<double>(fp) / static_cast<double>(negatives)});
  }

  // Trapezoidal AUC over the FPR axis.
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    const auto& a = curve.points[i - 1];
    const auto& b = curve.points[i];
    curve.auc += (b.fpr - a.fpr) * (a.tpr + b.tpr) / 2.0;
  }
  return curve;
}

Confusion confusion_at(const std::vector<double>& scores,
                       const std::vector<int>& labels, double threshold) {
  if (scores.size() != labels.size()) {
    throw std::invalid_argument("confusion_at: size mismatch");
  }
  Confusion c;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const bool pred = scores[i] >= threshold;
    const bool pos = labels[i] == 1;
    if (pred && pos) {
      c.tp++;
    } else if (pred && !pos) {
      c.fp++;
    } else if (!pred && pos) {
      c.fn++;
    } else {
      c.tn++;
    }
  }
  return c;
}

}  // namespace hsd::stats
