#include "ckpt/checkpoint.hpp"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/binio.hpp"
#include "obs/metrics.hpp"

namespace hsd::ckpt {

namespace {

namespace fs = std::filesystem;

using hsd::common::read_pod;
using hsd::common::read_string;
using hsd::common::read_vector;
using hsd::common::write_pod;
using hsd::common::write_string;
using hsd::common::write_vector;

constexpr std::uint32_t kMagic = 0x4853444B;  // "HSDK"
constexpr std::uint32_t kVersion = 1;

// Record tags. Values are part of the on-disk format: never reuse one.
enum Tag : std::uint32_t {
  kTagMeta = 1,          // config_hash, rounds_done, oracle_spent, dry, temp
  kTagTrainSet = 2,      // LabeledSet
  kTagValSet = 3,        // LabeledSet
  kTagUnlabeled = 4,     // index vector (order-preserving)
  kTagDensity = 5,       // double vector
  kTagGmm = 6,           // weights + means + variances
  kTagDetector = 7,      // opaque detector blob
  kTagSamplerRng = 8,    // textual engine state
  kTagRoundLogs = 9,     // RoundLog vector
};

void write_record(std::ostream& os, std::uint32_t tag, const std::string& payload) {
  write_pod(os, tag);
  write_string(os, payload);
}

void write_matrix(std::ostream& os, const std::vector<std::vector<double>>& m) {
  write_pod(os, static_cast<std::uint64_t>(m.size()));
  for (const auto& row : m) write_vector(os, row);
}

std::vector<std::vector<double>> read_matrix(std::istream& is) {
  const auto n = read_pod<std::uint64_t>(is);
  std::vector<std::vector<double>> m(n);
  for (auto& row : m) row = read_vector<double>(is);
  return m;
}

std::string encode(const RunState& st) {
  std::ostringstream os;
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  {
    std::ostringstream p;
    write_pod(p, st.config_hash);
    write_pod(p, st.rounds_done);
    write_pod(p, st.oracle_spent);
    write_pod(p, st.dry_batches);
    write_pod(p, st.last_temperature);
    write_record(os, kTagMeta, p.str());
  }
  {
    std::ostringstream p;
    st.train.save(p);
    write_record(os, kTagTrainSet, p.str());
  }
  {
    std::ostringstream p;
    st.val.save(p);
    write_record(os, kTagValSet, p.str());
  }
  {
    std::ostringstream p;
    data::save_indices(p, st.unlabeled);
    write_record(os, kTagUnlabeled, p.str());
  }
  {
    std::ostringstream p;
    write_vector(p, st.density);
    write_record(os, kTagDensity, p.str());
  }
  {
    std::ostringstream p;
    write_vector(p, st.gmm.weights);
    write_matrix(p, st.gmm.means);
    write_matrix(p, st.gmm.variances);
    write_record(os, kTagGmm, p.str());
  }
  write_record(os, kTagDetector, st.detector_state);
  write_record(os, kTagSamplerRng, st.sampler_rng);
  {
    std::ostringstream p;
    write_pod(p, static_cast<std::uint64_t>(st.logs.size()));
    for (const RoundLog& log : st.logs) {
      write_pod(p, log.iteration);
      write_pod(p, log.temperature);
      write_pod(p, log.w_uncertainty);
      write_pod(p, log.w_diversity);
      write_pod(p, log.labeled_size);
      write_pod(p, log.new_hotspots);
    }
    write_record(os, kTagRoundLogs, p.str());
  }
  return os.str();
}

RunState decode(std::istream& is, const std::string& path) {
  const auto fail = [&](const std::string& why) -> std::runtime_error {
    return std::runtime_error("ckpt::load_file(" + path + "): " + why);
  };
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  try {
    magic = read_pod<std::uint32_t>(is);
    version = read_pod<std::uint32_t>(is);
  } catch (const std::runtime_error&) {
    throw fail("truncated header");
  }
  if (magic != kMagic) throw fail("bad magic (not a checkpoint file)");
  if (version != kVersion) throw fail("unsupported version " + std::to_string(version));

  RunState st;
  bool seen[10] = {};
  while (true) {
    std::uint32_t tag = 0;
    {
      char probe = 0;
      if (!is.get(probe)) break;  // clean EOF: no more records
      is.unget();
      tag = read_pod<std::uint32_t>(is);
    }
    std::string payload;
    try {
      payload = read_string(is);
    } catch (const std::runtime_error&) {
      throw fail("truncated record (tag " + std::to_string(tag) + ")");
    }
    if (tag < 10) seen[tag] = true;
    std::istringstream p(payload);
    try {
      switch (tag) {
        case kTagMeta:
          st.config_hash = read_pod<std::uint64_t>(p);
          st.rounds_done = read_pod<std::uint64_t>(p);
          st.oracle_spent = read_pod<std::uint64_t>(p);
          st.dry_batches = read_pod<std::uint64_t>(p);
          st.last_temperature = read_pod<double>(p);
          break;
        case kTagTrainSet:
          st.train = data::LabeledSet::load_from(p);
          break;
        case kTagValSet:
          st.val = data::LabeledSet::load_from(p);
          break;
        case kTagUnlabeled:
          st.unlabeled = data::load_indices(p);
          break;
        case kTagDensity:
          st.density = read_vector<double>(p);
          break;
        case kTagGmm:
          st.gmm.weights = read_vector<double>(p);
          st.gmm.means = read_matrix(p);
          st.gmm.variances = read_matrix(p);
          break;
        case kTagDetector:
          st.detector_state = payload;
          break;
        case kTagSamplerRng:
          st.sampler_rng = payload;
          break;
        case kTagRoundLogs: {
          const auto n = read_pod<std::uint64_t>(p);
          st.logs.resize(n);
          for (auto& log : st.logs) {
            log.iteration = read_pod<std::uint64_t>(p);
            log.temperature = read_pod<double>(p);
            log.w_uncertainty = read_pod<double>(p);
            log.w_diversity = read_pod<double>(p);
            log.labeled_size = read_pod<std::uint64_t>(p);
            log.new_hotspots = read_pod<std::uint64_t>(p);
          }
          break;
        }
        default:
          break;  // unknown record from a newer writer: skip
      }
    } catch (const std::runtime_error&) {
      throw fail("corrupt record (tag " + std::to_string(tag) + ")");
    }
  }
  for (std::uint32_t tag : {kTagMeta, kTagTrainSet, kTagValSet, kTagUnlabeled,
                            kTagDensity, kTagDetector, kTagSamplerRng}) {
    if (!seen[tag]) throw fail("missing required record (tag " + std::to_string(tag) + ")");
  }
  return st;
}

// Test-only crash injection for the atomic-rename protocol (see header).
std::atomic<bool> g_fail_before_rename{false};

}  // namespace

void fail_next_write_before_rename_for_test() {
  g_fail_before_rename.store(true, std::memory_order_relaxed);
}

std::string round_path(const std::string& dir, std::uint64_t round) {
  return (fs::path(dir) / ("round-" + std::to_string(round) + ".ckpt")).string();
}

void save(const std::string& dir, const RunState& state) {
  // hsd-lint: allow(no-wall-clock) — checkpoint-write telemetry only
  const auto t0 = std::chrono::steady_clock::now();
  const std::string payload = encode(state);

  fs::create_directories(dir);
  const std::string final_path = round_path(dir, state.rounds_done);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("ckpt::save: cannot open " + tmp_path);
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) throw std::runtime_error("ckpt::save: write failure on " + tmp_path);
  }
  if (g_fail_before_rename.exchange(false, std::memory_order_relaxed)) {
    throw std::runtime_error("ckpt::save: injected fault before rename (test)");
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);  // atomic on POSIX
  if (ec) {
    fs::remove(tmp_path, ec);
    throw std::runtime_error("ckpt::save: rename to " + final_path + " failed");
  }

  // Registered once per process; the handles themselves are immutable.
  // hsd-lint: allow(no-mutable-static)
  static obs::Counter& writes = obs::counter("ckpt/writes");
  // hsd-lint: allow(no-mutable-static)
  static obs::Counter& bytes = obs::counter("ckpt/bytes");
  // hsd-lint: allow(no-mutable-static)
  static obs::Histogram& seconds = obs::histogram("ckpt/write_seconds");
  writes.add();
  bytes.add(payload.size());
  const auto t1 = std::chrono::steady_clock::now();  // hsd-lint: allow(no-wall-clock)
  seconds.observe(std::chrono::duration<double>(t1 - t0).count());
}

RunState load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("ckpt::load_file: cannot open " + path);
  return decode(in, path);
}

std::optional<std::string> find_latest(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return std::nullopt;
  // Collect into an ordered map so the scan is independent of directory
  // iteration order (std::filesystem promises none).
  std::map<std::uint64_t, std::string> rounds;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    const std::string prefix = "round-";
    const std::string suffix = ".ckpt";
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.rfind(prefix, 0) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) continue;
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    rounds[std::stoull(digits)] = entry.path().string();
  }
  if (rounds.empty()) return std::nullopt;
  return rounds.rbegin()->second;
}

}  // namespace hsd::ckpt
