#pragma once
// Crash-safe checkpoint/resume for the active-learning loop (Algorithm 2).
//
// The PSHD run's whole value is the oracle labels it has already paid for:
// a crash at round 7 of 10 must not lose them. After every round the
// framework serializes its full state — labeled/validation sets, the
// remaining-unlabeled order, the GMM density model, CNN weights AND Adam
// moments, every RNG stream, the patience counter, and the oracle spend —
// into `<dir>/round-<N>.ckpt`. Resuming from the latest checkpoint then
// continues the run such that the final AlOutcome is bit-identical to an
// uninterrupted run, at any interruption point and any HSD_THREADS.
//
// File format (version 1): a fixed header followed by tagged,
// length-prefixed records:
//
//   u32 magic "HSDK"   u32 version
//   repeat: { u32 tag, u64 payload_bytes, payload }
//
// Readers process the tags they know and skip the rest (the length prefix
// makes every record skippable), so adding a record is a backward- and
// forward-compatible change; only changing an existing record's layout
// bumps the version. Writes are atomic: the file is written to
// `round-<N>.ckpt.tmp` and renamed into place, so a reader (or a resume
// after a mid-write crash) never observes a partial checkpoint.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace hsd::ckpt {

/// Mirror of core::IterationLog (ckpt sits below core in the layering).
struct RoundLog {
  std::uint64_t iteration = 0;
  double temperature = 1.0;
  double w_uncertainty = 0.0;
  double w_diversity = 0.0;
  std::uint64_t labeled_size = 0;
  std::uint64_t new_hotspots = 0;
};

/// Parameters of the fitted GMM density model (diagonal covariances).
struct GmmState {
  std::vector<double> weights;
  std::vector<std::vector<double>> means;
  std::vector<std::vector<double>> variances;
};

/// Everything the AL loop needs to continue bit-identically after round
/// `rounds_done`.
struct RunState {
  /// Hash of the run-shaping framework config + population size; a resume
  /// under a different config must be rejected, not silently diverge.
  std::uint64_t config_hash = 0;
  std::uint64_t rounds_done = 0;   ///< completed sampling iterations
  std::uint64_t oracle_spent = 0;  ///< litho-oracle calls paid so far
  std::uint64_t dry_batches = 0;   ///< consecutive hotspot-free batches
  double last_temperature = 1.0;   ///< T fitted in the last completed round
  data::LabeledSet train;          ///< L after round `rounds_done`
  data::LabeledSet val;            ///< V0
  std::vector<std::size_t> unlabeled;  ///< remaining U, in exact pool order
  std::vector<double> density;         ///< GMM log-densities of all clips
  GmmState gmm;                        ///< the density model itself
  std::string detector_state;  ///< opaque HotspotDetector blob (net+opt+rng)
  std::string sampler_rng;     ///< textual engine state of the sampling RNG
  std::vector<RoundLog> logs;  ///< per-round diagnostics so far
};

/// `<dir>/round-<round>.ckpt`.
std::string round_path(const std::string& dir, std::uint64_t round);

/// Atomically writes `state` to round_path(dir, state.rounds_done),
/// creating `dir` if needed (write-temp + rename). Records write duration,
/// byte count, and a write counter in the obs metrics registry
/// (`ckpt/write_seconds`, `ckpt/bytes`, `ckpt/writes`). Throws
/// std::runtime_error on I/O failure, leaving no partial `.ckpt` visible.
void save(const std::string& dir, const RunState& state);

/// Reads one checkpoint file. Throws std::runtime_error on a missing file,
/// bad magic, unsupported version, or truncated/missing records.
RunState load_file(const std::string& path);

/// Path of the highest-round `round-<N>.ckpt` in `dir`; nullopt when the
/// directory does not exist or holds no checkpoint. `.tmp` leftovers from
/// a crashed write are ignored.
std::optional<std::string> find_latest(const std::string& dir);

/// Test hook: when enabled, save() does all the work of a write but throws
/// just before the atomic rename — simulating a crash mid-write. The flag
/// resets to false after triggering once.
void fail_next_write_before_rename_for_test();

}  // namespace hsd::ckpt
