#include "serve/hash_ring.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/hash.hpp"

namespace hsd::serve {

namespace {

/// SplitMix64 finalizer: full-avalanche bit mix, pure arithmetic on a
/// uint64 so it is identical on every platform. FNV-1a alone diffuses the
/// *high* bits of short inputs poorly, and ring ownership is decided by
/// high-bit order — without this mix a 4-shard/64-vnode ring puts ~90% of
/// uniform keys on one shard. The ring balance test pins the fix.
std::uint64_t mix64(std::uint64_t z) {
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

}  // namespace

std::uint64_t HashRing::ring_point(std::uint32_t shard, std::uint32_t replica) {
  unsigned char bytes[8];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<unsigned char>((shard >> (8 * i)) & 0xffU);
    bytes[4 + i] = static_cast<unsigned char>((replica >> (8 * i)) & 0xffU);
  }
  return mix64(common::Fnv1a().add_bytes(bytes, sizeof(bytes)).value());
}

HashRing::HashRing(std::size_t shards, std::size_t virtual_nodes)
    : shards_(shards), virtual_nodes_(virtual_nodes) {
  if (shards == 0) {
    throw std::invalid_argument("HashRing: need at least one shard");
  }
  if (virtual_nodes == 0) {
    throw std::invalid_argument("HashRing: need at least one virtual node");
  }
  points_.reserve(shards * virtual_nodes);
  for (std::uint32_t s = 0; s < shards; ++s) {
    for (std::uint32_t r = 0; r < virtual_nodes; ++r) {
      points_.emplace_back(ring_point(s, r), s);
    }
  }
  // Sort by (point, shard): the shard tie-break makes even a point
  // collision between two shards' virtual nodes route deterministically.
  std::sort(points_.begin(), points_.end());
}

std::size_t HashRing::shard_for(std::uint64_t key) const {
  // First point at or clockwise of the key; wrap past the top of the ring.
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const std::pair<std::uint64_t, std::uint32_t>& p, std::uint64_t k) {
        return p.first < k;
      });
  return it == points_.end() ? points_.front().second : it->second;
}

}  // namespace hsd::serve
