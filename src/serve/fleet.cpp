#include "serve/fleet.hpp"

#include <utility>

#include "common/hash.hpp"
#include "obs/rollup.hpp"

namespace hsd::serve {

FleetRouter::FleetRouter(
    const FleetConfig& config,
    const std::function<core::HotspotDetector()>& detector_factory)
    : config_(config),
      ring_(config.shards, config.virtual_nodes),
      extractor_(config.shard.feature_grid, config.shard.feature_keep),
      routed_(obs::counter(config.shard.metric_prefix + "/router/requests")),
      shed_(obs::counter(config.shard.metric_prefix + "/router/shed")) {
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    ServiceConfig scfg = config_.shard;
    scfg.shard_index = static_cast<std::uint32_t>(i);
    scfg.metric_prefix =
        config_.shard.metric_prefix + "/shard" + std::to_string(i);
    shards_.push_back(
        std::make_unique<InferenceService>(scfg, detector_factory()));
  }
}

FleetRouter::FleetRouter(const FleetConfig& config,
                         std::vector<std::unique_ptr<Shard>> shards)
    : config_(config),
      ring_(shards.size(), config.virtual_nodes),
      extractor_(config.shard.feature_grid, config.shard.feature_keep),
      routed_(obs::counter(config.shard.metric_prefix + "/router/requests")),
      shed_(obs::counter(config.shard.metric_prefix + "/router/shed")),
      shards_(std::move(shards)) {
  config_.shards = shards_.size();
}

FleetRouter::~FleetRouter() { shutdown(); }

std::future<Response> FleetRouter::submit(const layout::Clip& clip) {
  return submit_impl(clip, false, std::chrono::microseconds(0));
}

std::future<Response> FleetRouter::submit(const layout::Clip& clip,
                                          std::chrono::microseconds budget) {
  return submit_impl(clip, true, budget);
}

std::future<Response> FleetRouter::submit_impl(
    const layout::Clip& clip, bool has_deadline,
    std::chrono::microseconds budget) {
  routed_.add();

  Request req;
  req.clip = clip;
  req.enqueued = Request::Clock::now();
  req.has_deadline = has_deadline;
  if (has_deadline) req.deadline = req.enqueued + budget;
  // Rasterize + hash on the submitter's thread: the router needs the
  // content hash to route, and the bitmap rides along so the shard worker
  // never rasterizes twice. Rasterization is pure, so this is bit-identical
  // to the shard doing it itself.
  req.bitmap = extractor_.rasterizer().rasterize(clip);
  req.content_hash = common::content_hash(req.bitmap);
  req.prehashed = true;
  req.overflow_status = Status::kShedFleetOverloaded;

  const std::size_t target = ring_.shard_for(req.content_hash);
  bool admitted = false;
  std::future<Response> future =
      shards_[target]->submit_routed(std::move(req), admitted);
  if (!admitted) shed_.add();
  return future;
}

Response FleetRouter::predict(const layout::Clip& clip) {
  std::future<Response> f = submit(clip);
  if (config_.shard.manual_pump) {
    while (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      pump();
    }
  }
  return f.get();
}

std::size_t FleetRouter::pump() {
  std::size_t answered = 0;
  for (auto& shard : shards_) answered += shard->pump();
  return answered;
}

void FleetRouter::shutdown() {
  // Two phases: stop admission everywhere first (so draining shard 0 cannot
  // overlap with new traffic still being admitted to shard 1), then drain
  // every shard to empty.
  for (auto& shard : shards_) shard->begin_shutdown();
  for (auto& shard : shards_) shard->shutdown();
}

std::size_t FleetRouter::shard_for(const layout::Clip& clip) const {
  return ring_.shard_for(
      common::content_hash(extractor_.rasterizer().rasterize(clip)));
}

obs::MetricsSnapshot FleetRouter::fleet_rollup() const {
  return obs::rollup_shards(obs::metrics_snapshot());
}

}  // namespace hsd::serve
