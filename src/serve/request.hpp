#pragma once
// Request/response vocabulary shared by the three serving layers (fleet
// router, shard service, batch worker). Kept free of queueing or model
// state so a future multi-process / RPC split only has to serialize these
// types, not rework them.

#include <chrono>
#include <cstdint>
#include <future>
#include <vector>

#include "layout/clip.hpp"

namespace hsd::serve {

/// Final disposition of one request.
enum class Status {
  kOk = 0,                 ///< prediction computed
  kRejectedQueueFull,      ///< bounded queue overflowed at submission
  kRejectedShutdown,       ///< submitted after shutdown() began
  kDeadlineExceeded,       ///< deadline passed before its batch executed
  kShedFleetOverloaded,    ///< fleet router: target shard's queue was full
  // The transport status family (serve/remote.hpp): synthesized client-side
  // when a remote shard produced no well-formed response at all. Never on
  // the wire — a server always answers with one of the statuses above.
  kNetTimeout,             ///< RPC deadline expired (includes retries)
  kNetError,               ///< connection failed and retry budget exhausted
};

/// Stable lowercase identifier (JSON output, metrics, logs).
inline const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kRejectedQueueFull: return "rejected_queue_full";
    case Status::kRejectedShutdown: return "rejected_shutdown";
    case Status::kDeadlineExceeded: return "deadline_exceeded";
    case Status::kShedFleetOverloaded: return "fleet_overloaded";
    case Status::kNetTimeout: return "net_timeout";
    case Status::kNetError: return "net_error";
  }
  return "unknown";
}

struct Response {
  Status status = Status::kRejectedShutdown;
  double probability = 0.0;  ///< calibrated p(hotspot); 0 unless kOk
  bool hotspot = false;      ///< probability >= decision_threshold
  bool cache_hit = false;    ///< features served from the LRU cache
  std::uint64_t content_hash = 0;  ///< FNV-1a of the rasterized bitmap
  std::uint32_t shard = 0;         ///< shard that answered (0 standalone)
  std::size_t batch_size = 0;      ///< size of the batch that computed this
  double latency_seconds = 0.0;    ///< submit -> response completion
};

/// One in-flight request as it moves router -> shard queue -> batch worker.
/// The fleet router pre-rasterizes and pre-hashes (it needs the content
/// hash to route), so the worker must not pay for rasterization twice:
/// `prehashed` carries the bitmap and hash along.
struct Request {
  using Clock = std::chrono::steady_clock;

  layout::Clip clip;
  std::vector<float> bitmap;        ///< filled iff prehashed
  std::uint64_t content_hash = 0;   ///< filled iff prehashed
  bool prehashed = false;
  std::promise<Response> promise;
  Clock::time_point enqueued;
  Clock::time_point deadline;
  bool has_deadline = false;
  /// Status used when the shard's bounded queue rejects this request: the
  /// standalone service answers kRejectedQueueFull, the fleet router asks
  /// for the distinct kShedFleetOverloaded instead.
  Status overflow_status = Status::kRejectedQueueFull;
};

}  // namespace hsd::serve
