#include "serve/worker.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace hsd::serve {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

void finish_request(Request& req, Response response, ShardMetrics& metrics) {
  response.latency_seconds =
      seconds_between(req.enqueued, Request::Clock::now());
  metrics.latency.observe(response.latency_seconds);
  req.promise.set_value(std::move(response));
}

BatchWorker::BatchWorker(std::size_t grid, std::size_t keep,
                         std::size_t cache_capacity, double temperature,
                         double decision_threshold, std::uint32_t shard_index,
                         core::HotspotDetector detector)
    : detector_(std::move(detector)),
      extractor_(grid, keep),
      cache_(cache_capacity),
      temperature_(temperature),
      decision_threshold_(decision_threshold),
      shard_index_(shard_index) {
  if (detector_.config().input_side != keep) {
    throw std::invalid_argument(
        "BatchWorker: detector input_side must equal feature_keep");
  }
}

void BatchWorker::execute(std::deque<Request>& batch, ShardMetrics& m) {
  HSD_SPAN("serve/batch");
  const auto batch_start = Request::Clock::now();

  // Expire requests whose deadline passed while queued. They are answered
  // here, not at submission: admission happens before the wait, and the
  // wait is where the deadline is spent.
  std::vector<Request*> live;
  live.reserve(batch.size());
  for (Request& req : batch) {
    if (req.has_deadline && batch_start >= req.deadline) {
      m.deadline_exceeded.add();
      Response r;
      r.status = Status::kDeadlineExceeded;
      r.shard = shard_index_;
      finish_request(req, r, m);
    } else {
      live.push_back(&req);
    }
  }
  const std::size_t n = live.size();
  if (n == 0) return;

  // Stage 1 — rasterize + content-hash, fanned out across the pool (each
  // request touches only its own slot, so this is bit-stable at any thread
  // count). Requests the fleet router already rasterized to route carry
  // their bitmap and hash along; rasterization is pure, so the prehashed
  // and recomputed paths are bit-identical.
  std::vector<std::vector<float>> bitmaps(n);
  std::vector<std::uint64_t> hashes(n);
  std::vector<char> hit(n, 0);
  {
    HSD_SPAN("serve/features");
    runtime::parallel_for(0, n, 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        if (live[i]->prehashed) {
          bitmaps[i] = std::move(live[i]->bitmap);
          hashes[i] = live[i]->content_hash;
        } else {
          bitmaps[i] = extractor_.rasterizer().rasterize(live[i]->clip);
          hashes[i] = common::content_hash(bitmaps[i]);
        }
      }
    });

    // Stage 2 — cache consultation in request order (the LRU must see a
    // deterministic access sequence). Hit rows are copied out immediately so
    // later inserts can never invalidate them; each distinct uncached hash
    // becomes one DCT job regardless of how often it repeats in the batch.
    std::vector<std::vector<float>> rows(n);
    std::vector<std::size_t> misses;
    std::map<std::uint64_t, std::size_t> first_miss;  // hash -> request index
    std::uint64_t hits = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (const std::vector<float>* c = cache_.find(hashes[i])) {
        rows[i] = *c;
        hit[i] = 1;
        ++hits;
      } else if (first_miss.emplace(hashes[i], i).second) {
        misses.push_back(i);
      }
    }
    m.cache_hits.add(hits);
    m.cache_misses.add(misses.size());

    if (!misses.empty()) {
      // Pack the distinct miss bitmaps and run one batched truncated DCT
      // over the lot — the dispatch, basis loads, and pool fan-out are paid
      // once per batch instead of once per miss. Bit-identical rows to the
      // old per-miss extract_bitmap calls on the scalar backend.
      const std::size_t g = extractor_.grid();
      const std::size_t dim = extractor_.dimension();
      std::vector<float> packed(misses.size() * g * g);
      std::vector<float> flat(misses.size() * dim);
      for (std::size_t k = 0; k < misses.size(); ++k) {
        std::memcpy(packed.data() + k * g * g, bitmaps[misses[k]].data(),
                    g * g * sizeof(float));
      }
      extractor_.extract_bitmaps(packed.data(), misses.size(), flat.data());
      for (std::size_t k = 0; k < misses.size(); ++k) {
        rows[misses[k]].assign(flat.data() + k * dim,
                               flat.data() + (k + 1) * dim);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (rows[i].empty()) rows[i] = rows[first_miss.at(hashes[i])];
    }
    for (const std::size_t i : misses) {
      cache_.insert(hashes[i], rows[i]);
    }

    const std::size_t row = extractor_.dimension();
    const std::size_t keep = extractor_.keep();
    const tensor::Shape shape{n, 1, keep, keep};
    if (input_.shape() != shape) input_ = tensor::Tensor(shape);
    for (std::size_t i = 0; i < n; ++i) {
      std::copy(rows[i].begin(), rows[i].end(), input_.data() + i * row);
    }
  }

  // Stage 3 — one batched forward pass + calibration. Each output row is a
  // function of its input row alone, so batching never perturbs bits.
  std::vector<std::vector<double>> probs;
  {
    HSD_SPAN("serve/forward");
    probs = detector_.probabilities(input_, temperature_);
  }

  m.batches.add();
  m.batch_fill.observe(static_cast<double>(n));
  m.batch_seconds.observe(seconds_between(batch_start, Request::Clock::now()));
  m.completed.add(n);

  for (std::size_t i = 0; i < n; ++i) {
    Response r;
    r.status = Status::kOk;
    r.probability = probs[i][1];
    r.hotspot = r.probability >= decision_threshold_;
    r.cache_hit = hit[i] != 0;
    r.content_hash = hashes[i];
    r.shard = shard_index_;
    r.batch_size = n;
    finish_request(*live[i], r, m);
  }
}

}  // namespace hsd::serve
