#pragma once
// The serve <-> net adapter: the only code that knows both vocabularies
// (serve::Request/Response and net::wire::*). Everything needed to split
// the fleet across OS processes lives here:
//
//   * ShardServer — hosts one InferenceService shard behind a net::Server.
//     The handler maps each wire PredictRequest to a serve::Request
//     (prehashed bitmap + relative deadline budget resolved against the
//     server's own clock) and hands the service future back as the
//     connection's ResponseWaiter. Drain is two-phase: a `shutdown` RPC or
//     the embedder's SIGTERM loop triggers begin_shutdown (stop admitting),
//     then drain_and_stop() completes everything admitted before tearing
//     the sockets down — so every accepted request is answered, exactly
//     like an in-process fleet drain.
//
//   * RemoteShard — implements the serve::Shard seam over a net::Channel,
//     so FleetRouter routes over TCP or UDS without knowing it. Wire
//     statuses map 1:1 back onto serve::Status; when the transport itself
//     fails (retry budget exhausted, RPC deadline) the shard synthesizes
//     the client-side kNetError/kNetTimeout statuses, which never travel
//     on the wire.
//
// Determinism: shard inference is a pure function of clip content and the
// bitmap + content hash travel with the request, so a remote fleet's
// answers are bit-identical to the in-process fleet at any shard count x
// batch cut x HSD_THREADS — pinned by serve_remote_equivalence_test,
// including across mid-drain shutdown and injected connection kills.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>

#include "core/detector.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"
#include "serve/shard.hpp"

namespace hsd::serve {

/// Wire status (net::wire::kStatus*) -> serve::Status. Unknown wire values
/// map to kNetError (a server speaking a newer status vocabulary is a
/// transport-level failure, not a verdict).
Status status_from_wire(std::uint8_t wire_status);

/// serve::Status -> wire status. The client-only kNetTimeout/kNetError
/// family is unreachable on the server side; mapped defensively to
/// kStatusShutdown.
std::uint8_t status_to_wire(Status status);

struct RemoteShardConfig {
  /// Transport to the shard server (endpoint, deadlines, retry budget,
  /// backoff seed, metric prefix, fault spec).
  net::ChannelConfig channel;
  /// Stamped into synthesized kNetError/kNetTimeout responses so failure
  /// metrics still attribute to the right ring slot. Successful responses
  /// carry the server's own shard index.
  std::uint32_t shard_index = 0;
  /// Raster grid of the bitmaps this shard ships; must match the server's
  /// ServiceConfig::feature_grid.
  std::size_t feature_grid = 64;
  /// Forward drains to the server: begin_shutdown() sends one `shutdown`
  /// RPC. Off by default — a router tearing down its own view of the fleet
  /// must not take down a server other clients may share.
  bool drain_server = false;
  int drain_rpc_timeout_ms = 2000;
};

/// serve::Shard implemented over a socket to a ShardServer in another
/// process. Thread-safe like InferenceService: any number of concurrent
/// submitters; completions run on the channel's IO thread.
class RemoteShard : public Shard {
 public:
  explicit RemoteShard(const RemoteShardConfig& config);
  ~RemoteShard() override;  // shutdown()

  RemoteShard(const RemoteShard&) = delete;
  RemoteShard& operator=(const RemoteShard&) = delete;

  /// Ships the request's prehashed bitmap to the server. `admitted` is
  /// always true — admission happens in the server process and a shed
  /// arrives as a kShedFleetOverloaded/kRejectedQueueFull response.
  std::future<Response> submit_routed(Request&& req, bool& admitted) override;

  /// Remote shards have no local queue to pump; always 0. A manual-pump
  /// router spinning on its futures still terminates because the server
  /// answers asynchronously.
  std::size_t pump() override;

  /// Sends one `shutdown` RPC when drain_server is set (once, idempotent);
  /// otherwise a no-op — stopping local admission is the router's job.
  void begin_shutdown() override;

  /// begin_shutdown() + waits for every in-flight call to complete (ok,
  /// shed, timeout, or error). Idempotent.
  void shutdown() override;

  /// In-flight calls not yet answered (transport view of queue depth).
  std::size_t queue_depth() const override;

  /// Transport counters for tests and the bench (retries, reconnects, ...).
  net::ChannelStats transport_stats() const { return channel_.stats(); }

  const RemoteShardConfig& config() const { return config_; }

 private:
  RemoteShardConfig config_;
  net::Channel channel_;
  std::atomic<bool> drain_sent_{false};
};

struct ShardServerConfig {
  /// The hosted shard. manual_pump is forced off (waiters block on the
  /// collector thread); shard_index must match the ring slot the routers
  /// assign this server, or fleet answers diverge from in-process.
  ServiceConfig service;
  /// Listener endpoint + per-connection admission bound.
  net::ServerConfig server;
};

/// One InferenceService shard hosted behind a net::Server — the process
/// boundary of the multi-process fleet (`hsd_cli shard-server`).
class ShardServer {
 public:
  ShardServer(const ShardServerConfig& config, core::HotspotDetector detector);
  ~ShardServer();  // drain_and_stop()

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Binds and starts serving. Throws net::NetError.
  void start();

  /// The endpoint actually bound (resolves tcp port 0). Valid after start().
  const net::Endpoint& endpoint() const { return server_.endpoint(); }

  /// True once a `shutdown` RPC has arrived (admission is already stopped
  /// by then). The host loop polls this — or its own SIGTERM flag — and
  /// then calls drain_and_stop().
  bool drain_requested() const { return server_.drain_requested(); }

  /// The full two-phase drain: stop accepting connections, stop admitting
  /// requests, complete everything admitted, flush + close all
  /// connections. Idempotent; called by the destructor.
  void drain_and_stop();

  InferenceService& service() { return service_; }

 private:
  net::Server::ResponseWaiter handle(net::wire::PredictRequest&& wreq);

  ShardServerConfig config_;
  InferenceService service_;
  net::Server server_;
};

}  // namespace hsd::serve
