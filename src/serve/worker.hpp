#pragma once
// The worker layer of the serving stack: executes one micro-batch of
// requests against one detector replica — rasterize (unless the router
// prehashed), consult the per-shard LRU feature cache, DCT the misses, run
// one batched CNN forward, calibrate, and answer every request.
//
// A BatchWorker has no queue and no threads of its own; exactly one
// execution context (the shard's collector thread, or a pump() caller in
// manual mode) calls execute() at a time, which is what keeps cache access
// order deterministic. The split from the shard's queueing logic means a
// future multi-process serving fleet can move this class behind an RPC
// boundary without touching admission or batching code.

#include <chrono>
#include <cstddef>
#include <deque>

#include "core/detector.hpp"
#include "data/features.hpp"
#include "serve/feature_cache.hpp"
#include "serve/request.hpp"
#include "serve/serve_metrics.hpp"
#include "tensor/tensor.hpp"

namespace hsd::serve {

/// Answers `req` with `response` (stamping the final latency) and counts
/// it in the shard's latency histogram.
void finish_request(Request& req, Response response, ShardMetrics& metrics);

class BatchWorker {
 public:
  /// `grid`/`keep` define the feature pipeline; `keep` must equal the
  /// detector's input_side (validated by the owning service).
  BatchWorker(std::size_t grid, std::size_t keep, std::size_t cache_capacity,
              double temperature, double decision_threshold,
              std::uint32_t shard_index, core::HotspotDetector detector);

  /// Executes one micro-batch: sweeps expired deadlines, then computes and
  /// answers every live request. Touches model and cache state, so callers
  /// must serialize execute() invocations.
  void execute(std::deque<Request>& batch, ShardMetrics& metrics);

  const data::FeatureExtractor& extractor() const { return extractor_; }
  std::size_t cache_size() const { return cache_.size(); }

 private:
  core::HotspotDetector detector_;
  data::FeatureExtractor extractor_;
  FeatureCache cache_;
  double temperature_;
  double decision_threshold_;
  std::uint32_t shard_index_;
  tensor::Tensor input_;  ///< batch staging, reused across batches
};

}  // namespace hsd::serve
