#pragma once
// Deterministic load-model primitives for the serving benchmarks: zipfian
// clip popularity (a handful of standard-cell pattern families dominate
// real full-chip tile streams, with a long tail of rare geometry) and an
// open-loop Poisson arrival process with periodic bursts (steady background
// traffic punctuated by batched tool submissions).
//
// Everything here is a pure function of its explicit seed: bench_serve
// derives every stream from one --seed via runtime::derive_seed, so two
// runs at the same seed offer bit-identical load schedules — the property
// that makes the checked-in BENCH_serve.json trajectory comparable across
// commits. Pinned by serve_loadgen_test.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/rng.hpp"

namespace hsd::serve {

/// Zipf-distributed index sampler over [0, n): P(k) proportional to
/// 1/(k+1)^exponent. exponent ~1 matches measured pattern-popularity skew;
/// 0 degenerates to uniform. Sampling is inverse-CDF via binary search, so
/// one sample consumes exactly one uniform draw — stream alignment stays
/// trivial to reason about.
class ZipfSampler {
 public:
  /// `n` >= 1 distinct items.
  ZipfSampler(std::size_t n, double exponent);

  /// Draws one index using (and advancing) `rng`.
  std::size_t sample(stats::Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }
  double exponent() const { return exponent_; }

 private:
  std::vector<double> cdf_;  ///< cumulative popularity, cdf_.back() == 1
  double exponent_;
};

/// Open-loop arrival model: Poisson base traffic plus periodic bursts.
struct ArrivalSpec {
  /// Mean base rate (requests/second) of the Poisson process; must be > 0.
  double rate_qps = 100.0;
  /// A burst of `burst_size` extra simultaneous arrivals is injected every
  /// `burst_every_seconds` (0 disables bursts).
  double burst_every_seconds = 0.0;
  std::size_t burst_size = 0;
};

/// Generates exactly `count` ascending arrival times (seconds from start):
/// exponential inter-arrival gaps at `spec.rate_qps`, with each burst tick
/// contributing `burst_size` arrivals at the same instant. Deterministic in
/// `seed` (drawn from stats::Rng(seed)); same seed, same schedule, to the
/// bit.
std::vector<double> arrival_schedule(std::size_t count, const ArrivalSpec& spec,
                                     std::uint64_t seed);

/// FNV-1a fingerprint of an offered-load schedule (arrival times and clip
/// choices, exact bits). bench_serve reports it per sweep point so CI can
/// assert that two runs at one seed offered identical load.
std::uint64_t schedule_fingerprint(const std::vector<double>& arrivals,
                                   const std::vector<std::size_t>& clip_ids);

}  // namespace hsd::serve
