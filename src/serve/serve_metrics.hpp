#pragma once
// Per-shard metric handles. Every InferenceService instance owns one of
// these, constructed from its configured metric prefix: the standalone
// service keeps the historical "serve/*" names, fleet shards register
// "serve/shard<i>/*" so the obs rollup can aggregate fleet totals while
// keeping per-shard breakdowns. Handle references stay valid for the
// process lifetime (the obs registry never frees metrics), so re-creating
// a service with the same prefix re-binds to the same cells.

#include <string>

#include "obs/metrics.hpp"

namespace hsd::serve {

struct ShardMetrics {
  explicit ShardMetrics(const std::string& prefix)
      : submitted(obs::counter(prefix + "/requests")),
        accepted(obs::counter(prefix + "/accepted")),
        completed(obs::counter(prefix + "/completed")),
        rejected_queue_full(obs::counter(prefix + "/rejected_queue_full")),
        rejected_shutdown(obs::counter(prefix + "/rejected_shutdown")),
        deadline_exceeded(obs::counter(prefix + "/deadline_exceeded")),
        batches(obs::counter(prefix + "/batches")),
        cache_hits(obs::counter(prefix + "/cache_hits")),
        cache_misses(obs::counter(prefix + "/cache_misses")),
        queue_depth(obs::gauge(prefix + "/queue_depth")),
        latency(obs::histogram(prefix + "/latency_seconds")),
        batch_seconds(obs::histogram(prefix + "/batch_seconds")),
        batch_fill(obs::histogram(prefix + "/batch_fill")) {}

  obs::Counter& submitted;
  obs::Counter& accepted;
  obs::Counter& completed;
  obs::Counter& rejected_queue_full;
  obs::Counter& rejected_shutdown;
  obs::Counter& deadline_exceeded;
  obs::Counter& batches;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Gauge& queue_depth;
  obs::Histogram& latency;
  obs::Histogram& batch_seconds;
  obs::Histogram& batch_fill;
};

}  // namespace hsd::serve
