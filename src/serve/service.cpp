#include "serve/service.hpp"

#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"

namespace hsd::serve {

InferenceService::InferenceService(const ServiceConfig& config,
                                   core::HotspotDetector detector)
    : config_(config),
      metrics_(config.metric_prefix),
      worker_(config.feature_grid, config.feature_keep, config.cache_capacity,
              config.temperature, config.decision_threshold,
              config.shard_index, std::move(detector)) {
  if (config_.max_batch == 0) {
    throw std::invalid_argument("InferenceService: max_batch must be >= 1");
  }
  if (config_.max_queue == 0) {
    throw std::invalid_argument("InferenceService: max_queue must be >= 1");
  }
  if (worker_.extractor().keep() != config_.feature_keep) {
    throw std::invalid_argument("InferenceService: extractor keep mismatch");
  }
  if (!config_.manual_pump) {
    // The collector is a long-lived dedicated thread, not a data-parallel
    // task: parking it in the runtime pool would wedge a serial pool
    // (HSD_THREADS=1 runs submissions inline) and permanently eat a worker
    // otherwise. It joins in shutdown(), which the destructor guarantees.
    // hsd-lint: allow(no-raw-thread)
    collector_ = std::thread([this] { collector_main(); });
  }
}

InferenceService::~InferenceService() { shutdown(); }

std::future<Response> InferenceService::submit(const layout::Clip& clip) {
  return submit_impl(clip, false, std::chrono::microseconds(0));
}

std::future<Response> InferenceService::submit(const layout::Clip& clip,
                                               std::chrono::microseconds budget) {
  return submit_impl(clip, true, budget);
}

std::future<Response> InferenceService::submit_impl(
    const layout::Clip& clip, bool has_deadline,
    std::chrono::microseconds budget) {
  Request req;
  req.clip = clip;
  req.enqueued = Clock::now();
  req.has_deadline = has_deadline;
  if (has_deadline) req.deadline = req.enqueued + budget;
  bool admitted = false;
  return admit(std::move(req), admitted);
}

std::future<Response> InferenceService::submit_routed(Request&& req,
                                                      bool& admitted) {
  return admit(std::move(req), admitted);
}

std::future<Response> InferenceService::admit(Request&& req, bool& admitted) {
  metrics_.submitted.add();
  std::future<Response> future = req.promise.get_future();

  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) {
    lock.unlock();
    admitted = false;
    metrics_.rejected_shutdown.add();
    Response r;
    r.status = Status::kRejectedShutdown;
    r.shard = config_.shard_index;
    finish_request(req, r, metrics_);
    return future;
  }
  if (queue_.size() >= config_.max_queue) {
    lock.unlock();
    admitted = false;
    // Counted as a queue overflow either way; the response status tells the
    // caller whether a standalone service or the fleet router shed it.
    metrics_.rejected_queue_full.add();
    Response r;
    r.status = req.overflow_status;
    r.shard = config_.shard_index;
    finish_request(req, r, metrics_);
    return future;
  }
  queue_.push_back(std::move(req));
  metrics_.queue_depth.set(static_cast<double>(queue_.size()));
  metrics_.accepted.add();
  admitted = true;
  lock.unlock();
  queue_cv_.notify_one();
  return future;
}

Response InferenceService::predict(const layout::Clip& clip) {
  std::future<Response> f = submit(clip);
  if (config_.manual_pump) {
    while (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      pump();
    }
  }
  return f.get();
}

std::deque<Request> InferenceService::take_batch() {
  std::deque<Request> batch;
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t n = std::min(config_.max_batch, queue_.size());
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  metrics_.queue_depth.set(static_cast<double>(queue_.size()));
  return batch;
}

std::size_t InferenceService::pump() {
  std::deque<Request> batch = take_batch();
  if (!batch.empty()) worker_.execute(batch, metrics_);
  return batch.size();
}

void InferenceService::collector_main() {
  obs::set_current_thread_name("serve-collector");
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      // Batch-forming window: wait for company until the batch is full,
      // the delay budget since the first request expires, or a drain
      // begins. Spurious wakeups just re-evaluate the predicate.
      const auto window_end =
          Clock::now() + std::chrono::microseconds(config_.max_delay_us);
      queue_cv_.wait_until(lock, window_end, [this] {
        return stopping_ || queue_.size() >= config_.max_batch;
      });
    }
    pump();
  }
}

void InferenceService::begin_shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
}

void InferenceService::shutdown() {
  begin_shutdown();
  // Concurrent shutdown() calls all block here until the drain completes,
  // so every caller returns only once all admitted requests are answered.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  if (collector_.joinable()) {
    collector_.join();
  } else if (config_.manual_pump) {
    // Manual mode: drain synchronously so graceful shutdown still answers
    // every admitted request.
    while (pump() > 0) {
    }
  }
}

std::size_t InferenceService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace hsd::serve
