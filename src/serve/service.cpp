#include "serve/service.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace hsd::serve {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct ServeMetrics {
  obs::Counter& submitted = obs::counter("serve/requests");
  obs::Counter& accepted = obs::counter("serve/accepted");
  obs::Counter& completed = obs::counter("serve/completed");
  obs::Counter& rejected_queue_full = obs::counter("serve/rejected_queue_full");
  obs::Counter& rejected_shutdown = obs::counter("serve/rejected_shutdown");
  obs::Counter& deadline_exceeded = obs::counter("serve/deadline_exceeded");
  obs::Counter& batches = obs::counter("serve/batches");
  obs::Counter& cache_hits = obs::counter("serve/cache_hits");
  obs::Counter& cache_misses = obs::counter("serve/cache_misses");
  obs::Gauge& queue_depth = obs::gauge("serve/queue_depth");
  obs::Histogram& latency = obs::histogram("serve/latency_seconds");
  obs::Histogram& batch_seconds = obs::histogram("serve/batch_seconds");
  obs::Histogram& batch_fill = obs::histogram("serve/batch_fill");
};

ServeMetrics& metrics() {
  // hsd-lint: allow(no-mutable-static) — magic-static metric handles
  static ServeMetrics m;
  return m;
}

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kRejectedQueueFull: return "rejected_queue_full";
    case Status::kRejectedShutdown: return "rejected_shutdown";
    case Status::kDeadlineExceeded: return "deadline_exceeded";
  }
  return "unknown";
}

InferenceService::InferenceService(const ServiceConfig& config,
                                   core::HotspotDetector detector)
    : config_(config),
      detector_(std::move(detector)),
      extractor_(config.feature_grid, config.feature_keep),
      cache_(config.cache_capacity) {
  if (config_.max_batch == 0) {
    throw std::invalid_argument("InferenceService: max_batch must be >= 1");
  }
  if (config_.max_queue == 0) {
    throw std::invalid_argument("InferenceService: max_queue must be >= 1");
  }
  if (detector_.config().input_side != config_.feature_keep) {
    throw std::invalid_argument(
        "InferenceService: detector input_side != feature_keep");
  }
  if (!config_.manual_pump) {
    // The collector is a long-lived dedicated thread, not a data-parallel
    // task: parking it in the runtime pool would wedge a serial pool
    // (HSD_THREADS=1 runs submissions inline) and permanently eat a worker
    // otherwise. It joins in shutdown(), which the destructor guarantees.
    // hsd-lint: allow(no-raw-thread)
    collector_ = std::thread([this] { collector_main(); });
  }
}

InferenceService::~InferenceService() { shutdown(); }

std::future<Response> InferenceService::submit(const layout::Clip& clip) {
  return submit_impl(clip, false, std::chrono::microseconds(0));
}

std::future<Response> InferenceService::submit(const layout::Clip& clip,
                                               std::chrono::microseconds budget) {
  return submit_impl(clip, true, budget);
}

std::future<Response> InferenceService::submit_impl(
    const layout::Clip& clip, bool has_deadline,
    std::chrono::microseconds budget) {
  ServeMetrics& m = metrics();
  m.submitted.add();

  Request req;
  req.clip = clip;
  req.enqueued = Clock::now();
  req.has_deadline = has_deadline;
  if (has_deadline) req.deadline = req.enqueued + budget;
  std::future<Response> future = req.promise.get_future();

  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) {
    lock.unlock();
    m.rejected_shutdown.add();
    Response r;
    r.status = Status::kRejectedShutdown;
    finish(req, r);
    return future;
  }
  if (queue_.size() >= config_.max_queue) {
    lock.unlock();
    m.rejected_queue_full.add();
    Response r;
    r.status = Status::kRejectedQueueFull;
    finish(req, r);
    return future;
  }
  queue_.push_back(std::move(req));
  m.queue_depth.set(static_cast<double>(queue_.size()));
  m.accepted.add();
  lock.unlock();
  queue_cv_.notify_one();
  return future;
}

Response InferenceService::predict(const layout::Clip& clip) {
  std::future<Response> f = submit(clip);
  if (config_.manual_pump) {
    while (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      pump();
    }
  }
  return f.get();
}

std::deque<InferenceService::Request> InferenceService::take_batch() {
  std::deque<Request> batch;
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t n = std::min(config_.max_batch, queue_.size());
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  metrics().queue_depth.set(static_cast<double>(queue_.size()));
  return batch;
}

std::size_t InferenceService::pump() {
  std::deque<Request> batch = take_batch();
  if (!batch.empty()) execute_batch(batch);
  return batch.size();
}

void InferenceService::collector_main() {
  obs::set_current_thread_name("serve-collector");
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      // Batch-forming window: wait for company until the batch is full,
      // the delay budget since the first request expires, or a drain
      // begins. Spurious wakeups just re-evaluate the predicate.
      const auto window_end =
          Clock::now() + std::chrono::microseconds(config_.max_delay_us);
      queue_cv_.wait_until(lock, window_end, [this] {
        return stopping_ || queue_.size() >= config_.max_batch;
      });
    }
    pump();
  }
}

void InferenceService::execute_batch(std::deque<Request>& batch) {
  HSD_SPAN("serve/batch");
  ServeMetrics& m = metrics();
  const auto batch_start = Clock::now();

  // Expire requests whose deadline passed while queued. They are answered
  // here, not at submission: admission happens before the wait, and the
  // wait is where the deadline is spent.
  std::vector<Request*> live;
  live.reserve(batch.size());
  for (Request& req : batch) {
    if (req.has_deadline && batch_start >= req.deadline) {
      m.deadline_exceeded.add();
      Response r;
      r.status = Status::kDeadlineExceeded;
      finish(req, r);
    } else {
      live.push_back(&req);
    }
  }
  const std::size_t n = live.size();
  if (n == 0) return;

  // Stage 1 — rasterize + content-hash, fanned out across the pool (each
  // request touches only its own slot, so this is bit-stable at any thread
  // count).
  std::vector<std::vector<float>> bitmaps(n);
  std::vector<std::uint64_t> hashes(n);
  std::vector<char> hit(n, 0);
  {
    HSD_SPAN("serve/features");
    runtime::parallel_for(0, n, 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        bitmaps[i] = extractor_.rasterizer().rasterize(live[i]->clip);
        hashes[i] = common::content_hash(bitmaps[i]);
      }
    });

    // Stage 2 — cache consultation in request order (the LRU must see a
    // deterministic access sequence). Hit rows are copied out immediately so
    // later inserts can never invalidate them; each distinct uncached hash
    // becomes one DCT job regardless of how often it repeats in the batch.
    std::vector<std::vector<float>> rows(n);
    std::vector<std::size_t> misses;
    std::map<std::uint64_t, std::size_t> first_miss;  // hash -> request index
    std::uint64_t hits = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (const std::vector<float>* c = cache_.find(hashes[i])) {
        rows[i] = *c;
        hit[i] = 1;
        ++hits;
      } else if (first_miss.emplace(hashes[i], i).second) {
        misses.push_back(i);
      }
    }
    m.cache_hits.add(hits);
    m.cache_misses.add(misses.size());

    runtime::parallel_for(0, misses.size(), 1,
                          [&](std::size_t lo, std::size_t hi) {
                            for (std::size_t k = lo; k < hi; ++k) {
                              const std::size_t i = misses[k];
                              rows[i] = extractor_.extract_bitmap(bitmaps[i]);
                            }
                          });
    for (std::size_t i = 0; i < n; ++i) {
      if (rows[i].empty()) rows[i] = rows[first_miss.at(hashes[i])];
    }
    for (const std::size_t i : misses) {
      cache_.insert(hashes[i], rows[i]);
    }

    const std::size_t row = extractor_.dimension();
    const tensor::Shape shape{n, 1, config_.feature_keep, config_.feature_keep};
    if (input_.shape() != shape) input_ = tensor::Tensor(shape);
    for (std::size_t i = 0; i < n; ++i) {
      std::copy(rows[i].begin(), rows[i].end(), input_.data() + i * row);
    }
  }

  // Stage 3 — one batched forward pass + calibration. Each output row is a
  // function of its input row alone, so batching never perturbs bits.
  std::vector<std::vector<double>> probs;
  {
    HSD_SPAN("serve/forward");
    probs = detector_.probabilities(input_, config_.temperature);
  }

  m.batches.add();
  m.batch_fill.observe(static_cast<double>(n));
  m.batch_seconds.observe(seconds_between(batch_start, Clock::now()));
  m.completed.add(n);

  for (std::size_t i = 0; i < n; ++i) {
    Response r;
    r.status = Status::kOk;
    r.probability = probs[i][1];
    r.hotspot = r.probability >= config_.decision_threshold;
    r.cache_hit = hit[i] != 0;
    r.content_hash = hashes[i];
    r.batch_size = n;
    finish(*live[i], r);
  }
}

void InferenceService::finish(Request& req, Response response) const {
  response.latency_seconds = seconds_between(req.enqueued, Clock::now());
  metrics().latency.observe(response.latency_seconds);
  req.promise.set_value(std::move(response));
}

void InferenceService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  // Concurrent shutdown() calls all block here until the drain completes,
  // so every caller returns only once all admitted requests are answered.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  if (collector_.joinable()) {
    collector_.join();
  } else if (config_.manual_pump) {
    // Manual mode: drain synchronously so graceful shutdown still answers
    // every admitted request.
    while (pump() > 0) {
    }
  }
}

std::size_t InferenceService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace hsd::serve
