#pragma once
// LRU cache from clip content hash to extracted DCT feature row, used by
// the inference service to skip the dominant per-request cost (the O(grid³)
// DCT) for repeated patterns. Real layouts are duplicate-heavy — standard
// cells and via arrays repeat the same clip geometry across the chip — so
// the hit path is the common path, not an optimization afterthought.
//
// The cache is intentionally NOT thread-safe: only the service's collector
// thread (or a pump() caller in manual mode) touches it, always between
// batch boundaries, so lookups and evictions happen in a single
// deterministic request order. Determinism matters because the equivalence
// tests pin cached and recomputed features to the same bits; an LRU whose
// eviction order depended on thread timing would make cache state — though
// never results — run-dependent.

#include <cstdint>
#include <cstddef>
#include <list>
#include <map>
#include <utility>
#include <vector>

namespace hsd::serve {

/// Fixed-capacity LRU map: content hash -> feature row.
class FeatureCache {
 public:
  /// `capacity` 0 disables the cache (find always misses, insert drops).
  explicit FeatureCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached row and refreshes its recency, or nullptr on miss.
  /// The pointer stays valid until the next insert().
  const std::vector<float>* find(std::uint64_t key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    entries_.splice(entries_.begin(), entries_, it->second);  // move to MRU
    return &it->second->second;
  }

  /// Inserts (or refreshes) a row, evicting the least recently used entry
  /// when full. A key already present keeps its existing row — features are
  /// a pure function of the key, so the stored bits cannot differ.
  void insert(std::uint64_t key, std::vector<float> row) {
    if (capacity_ == 0) return;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    if (entries_.size() >= capacity_) {
      index_.erase(entries_.back().first);
      entries_.pop_back();
    }
    entries_.emplace_front(key, std::move(row));
    index_[key] = entries_.begin();
  }

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  using Entry = std::pair<std::uint64_t, std::vector<float>>;
  std::size_t capacity_;
  std::list<Entry> entries_;  ///< front = most recently used
  std::map<std::uint64_t, std::list<Entry>::iterator> index_;
};

}  // namespace hsd::serve
