#pragma once
// Consistent-hash ring with virtual nodes: places N shards on the 64-bit
// FNV-1a circle and routes a clip content hash to the owning shard.
//
// Determinism contract (pinned by serve_ring_test):
//   * Placement is a pure function of (shards, virtual_nodes): ring points
//     are FNV-1a over explicit little-endian byte encodings of
//     (shard, replica), passed through a SplitMix64 finalizer (FNV-1a's
//     high bits diffuse poorly on short inputs, and ring ownership is a
//     high-bit comparison), so the ring is identical across runs,
//     processes, platforms, and endianness — no pointer mixing, no
//     per-process seed.
//   * Lookup is a binary search over a sorted point list; equal points
//     (astronomically unlikely) tie-break toward the lower shard index, so
//     even collisions route deterministically.
//   * Changing the shard count from N to N+1 moves only the keys captured
//     by the new shard's virtual nodes — in expectation K/(N+1) of K keys —
//     and every moved key lands on the new shard (classic consistent
//     hashing, Karger et al.); nothing else rehashes.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hsd::serve {

class HashRing {
 public:
  /// `shards` >= 1 ring members, `virtual_nodes` >= 1 points per shard
  /// (more virtual nodes -> smoother key balance; 64 keeps the max/mean
  /// shard load under ~1.4x for uniform keys).
  HashRing(std::size_t shards, std::size_t virtual_nodes);

  /// The shard owning `key`: the first ring point clockwise from the key.
  std::size_t shard_for(std::uint64_t key) const;

  std::size_t shards() const { return shards_; }
  std::size_t virtual_nodes() const { return virtual_nodes_; }

  /// Sorted (point, shard) pairs — exposed for ring tests and diagnostics.
  const std::vector<std::pair<std::uint64_t, std::uint32_t>>& points() const {
    return points_;
  }

  /// The ring point for one (shard, replica) virtual node: FNV-1a over the
  /// two indices encoded as little-endian uint32 bytes (byte-order-explicit
  /// so the ring is identical on any platform), SplitMix64-finalized for
  /// high-bit diffusion.
  static std::uint64_t ring_point(std::uint32_t shard, std::uint32_t replica);

 private:
  std::size_t shards_;
  std::size_t virtual_nodes_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;
};

}  // namespace hsd::serve
