#include "serve/loadgen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/hash.hpp"

namespace hsd::serve {

ZipfSampler::ZipfSampler(std::size_t n, double exponent) : exponent_(exponent) {
  if (n == 0) {
    throw std::invalid_argument("ZipfSampler: need at least one item");
  }
  if (exponent < 0.0) {
    throw std::invalid_argument("ZipfSampler: exponent must be >= 0");
  }
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding shaving the top off
}

std::size_t ZipfSampler::sample(stats::Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<std::size_t>(it - cdf_.begin());
}

std::vector<double> arrival_schedule(std::size_t count, const ArrivalSpec& spec,
                                     std::uint64_t seed) {
  if (spec.rate_qps <= 0.0) {
    throw std::invalid_argument("arrival_schedule: rate_qps must be > 0");
  }
  std::vector<double> arrivals;
  arrivals.reserve(count);
  stats::Rng rng(seed);
  double t = 0.0;
  double next_burst = spec.burst_every_seconds > 0.0 && spec.burst_size > 0
                          ? spec.burst_every_seconds
                          : -1.0;
  while (arrivals.size() < count) {
    // Exponential inter-arrival gap via inverse CDF; 1-u keeps the argument
    // of log strictly positive for u in [0, 1).
    const double gap = -std::log(1.0 - rng.uniform()) / spec.rate_qps;
    const double next = t + gap;
    // Every burst tick that elapsed before the next Poisson arrival fires
    // first; the Poisson stream continues underneath, so `next` is still
    // emitted afterwards (if room).
    while (next_burst > 0.0 && next_burst <= next && arrivals.size() < count) {
      for (std::size_t b = 0; b < spec.burst_size && arrivals.size() < count;
           ++b) {
        arrivals.push_back(next_burst);
      }
      next_burst += spec.burst_every_seconds;
    }
    if (arrivals.size() < count) {
      arrivals.push_back(next);
      t = next;
    }
  }
  std::sort(arrivals.begin(), arrivals.end());
  return arrivals;
}

std::uint64_t schedule_fingerprint(const std::vector<double>& arrivals,
                                   const std::vector<std::size_t>& clip_ids) {
  common::Fnv1a h;
  h.add(static_cast<std::uint64_t>(arrivals.size()));
  for (const double a : arrivals) h.add(a);
  h.add(static_cast<std::uint64_t>(clip_ids.size()));
  for (const std::size_t c : clip_ids) h.add(static_cast<std::uint64_t>(c));
  return h.value();
}

}  // namespace hsd::serve
