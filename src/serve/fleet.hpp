#pragma once
// The fleet (router) layer of the serving stack: N InferenceService shards
// behind a content-routed front door.
//
// Routing: the router rasterizes the clip, takes the FNV-1a content hash
// (the same hash the per-shard feature caches key on), and consistent-
// hashes it onto a shard via a virtual-node ring (serve/hash_ring.hpp).
// Because placement is a pure function of clip content, a clip's features
// live on exactly one shard — cache capacity scales horizontally with no
// cross-shard duplication — and repeat traffic for a pattern family always
// lands where its features are warm. The rasterized bitmap and hash travel
// with the request, so routing never duplicates feature work.
//
// Load shedding: each shard keeps its own bounded admission queue; when a
// request's *target* shard is full the fleet sheds it immediately with the
// distinct kShedFleetOverloaded status (counted under
// "<prefix>/router/shed") rather than spilling onto a sibling shard —
// spilling would silently duplicate cached features and make placement
// load-dependent, breaking the determinism contract.
//
// Determinism contract: fleet answers are bit-identical to the single
// InferenceService path (and to one-at-a-time detector inference) at any
// shard count x batch cut x HSD_THREADS, because every shard runs an
// identical detector replica (the factory must be pure), features are pure
// functions of clip content, and per-shard batching never mixes rows.
// Pinned by serve_fleet_equivalence_test, including across mid-drain
// shutdown.
//
// Metrics: shard i registers under "<metric_prefix>/shard<i>/*"; the
// router adds "<metric_prefix>/router/requests|shed". fleet_rollup()
// aggregates the per-shard families into "<metric_prefix>/fleet/*" totals
// via obs::rollup_shards.
//
// The router/shard/worker split is transport-shaped on purpose: submit()
// hands a self-contained Request to the owning shard, so replacing that
// handoff with a multi-process or RPC boundary is a transport swap, not a
// rewrite.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "data/features.hpp"
#include "layout/clip.hpp"
#include "obs/metrics.hpp"
#include "serve/hash_ring.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"
#include "serve/shard.hpp"

namespace hsd::serve {

struct FleetConfig {
  /// Number of InferenceService shards (>= 1).
  std::size_t shards = 4;
  /// Virtual nodes per shard on the consistent-hash ring.
  std::size_t virtual_nodes = 64;
  /// Per-shard service configuration. metric_prefix is the fleet-wide
  /// prefix: shard i registers under "<metric_prefix>/shard<i>/*" and its
  /// shard_index is overwritten with i.
  ServiceConfig shard;
};

/// Content-routed front door over N identically-modelled shards.
///
/// Thread-safe for any number of concurrent submitters (routing state is
/// immutable after construction; each shard serializes internally).
class FleetRouter {
 public:
  /// `detector_factory` is called once per shard and must be pure: every
  /// invocation returns a detector with bit-identical weights (e.g.
  /// construct from the same seed, or load the same checkpoint). That
  /// purity is what makes fleet answers independent of the shard count.
  FleetRouter(const FleetConfig& config,
              const std::function<core::HotspotDetector()>& detector_factory);

  /// Transport-agnostic constructor: routes over pre-built shards (e.g.
  /// serve/remote.hpp RemoteShards speaking to other processes). The ring
  /// is sized to `shards.size()`; ring slot i routes to shards[i], so with
  /// remote shards the server process behind shards[i] must be configured
  /// with shard_index i for responses to match the in-process fleet
  /// bit-for-bit. config.shard's feature grid/keep still configure the
  /// router-side rasterizer and must match the shard services'.
  FleetRouter(const FleetConfig& config,
              std::vector<std::unique_ptr<Shard>> shards);

  ~FleetRouter();  // shutdown() all shards

  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  /// Routes one clip to its content-determined shard. The future always
  /// resolves; a full target shard resolves immediately with
  /// kShedFleetOverloaded.
  std::future<Response> submit(const layout::Clip& clip);

  /// Deadline-carrying variant (same semantics as InferenceService).
  std::future<Response> submit(const layout::Clip& clip,
                               std::chrono::microseconds budget);

  /// Synchronous convenience: submit and wait (pumps inline in manual mode).
  Response predict(const layout::Clip& clip);

  /// Manual mode: drains one micro-batch from every shard on the calling
  /// thread (shard 0 first — deterministic order). Returns the total number
  /// of requests answered.
  std::size_t pump();

  /// Graceful fleet-wide drain: stops admission on every shard, then
  /// completes everything already admitted. Idempotent.
  void shutdown();

  /// The shard that owns `clip`'s content (routing is pure, so this is
  /// usable for placement-stability tests and cache-locality diagnostics).
  std::size_t shard_for(const layout::Clip& clip) const;
  std::size_t shard_for_hash(std::uint64_t content_hash) const {
    return ring_.shard_for(content_hash);
  }

  /// Fleet totals ("<prefix>/fleet/*") aggregated from the per-shard
  /// metric families currently in the registry. Meaningful only while
  /// obs metrics collection is enabled.
  obs::MetricsSnapshot fleet_rollup() const;

  std::size_t num_shards() const { return shards_.size(); }
  Shard& shard(std::size_t i) { return *shards_.at(i); }
  const HashRing& ring() const { return ring_; }
  const FleetConfig& config() const { return config_; }

 private:
  std::future<Response> submit_impl(const layout::Clip& clip,
                                    bool has_deadline,
                                    std::chrono::microseconds budget);

  FleetConfig config_;
  HashRing ring_;
  data::FeatureExtractor extractor_;  ///< router-side rasterize + hash only
  std::vector<std::unique_ptr<Shard>> shards_;
  obs::Counter& routed_;
  obs::Counter& shed_;
};

}  // namespace hsd::serve
