#include "serve/remote.hpp"

#include <chrono>
#include <memory>
#include <utility>

namespace hsd::serve {

Status status_from_wire(std::uint8_t wire_status) {
  switch (wire_status) {
    case net::wire::kStatusOk: return Status::kOk;
    case net::wire::kStatusQueueFull: return Status::kRejectedQueueFull;
    case net::wire::kStatusShutdown: return Status::kRejectedShutdown;
    case net::wire::kStatusDeadlineExceeded: return Status::kDeadlineExceeded;
    case net::wire::kStatusFleetOverloaded: return Status::kShedFleetOverloaded;
    default: return Status::kNetError;
  }
}

std::uint8_t status_to_wire(Status status) {
  switch (status) {
    case Status::kOk: return net::wire::kStatusOk;
    case Status::kRejectedQueueFull: return net::wire::kStatusQueueFull;
    case Status::kRejectedShutdown: return net::wire::kStatusShutdown;
    case Status::kDeadlineExceeded: return net::wire::kStatusDeadlineExceeded;
    case Status::kShedFleetOverloaded: return net::wire::kStatusFleetOverloaded;
    case Status::kNetTimeout:
    case Status::kNetError: break;  // client-only; unreachable server-side
  }
  return net::wire::kStatusShutdown;
}

RemoteShard::RemoteShard(const RemoteShardConfig& config)
    : config_(config), channel_(config.channel) {}

RemoteShard::~RemoteShard() { shutdown(); }

std::future<Response> RemoteShard::submit_routed(Request&& req,
                                                 bool& admitted) {
  admitted = true;  // admission verdicts arrive in the response

  net::wire::PredictRequest wreq;  // request_id assigned by the channel
  wreq.content_hash = req.content_hash;
  wreq.grid = static_cast<std::uint32_t>(config_.feature_grid);
  if (req.has_deadline) {
    wreq.flags |= net::wire::kFlagHasDeadline;
    // Ship the budget relative to now; the server resolves it against its
    // own clock, so the two processes' clocks are never compared.
    wreq.deadline_budget_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            req.deadline - Request::Clock::now())
            .count();
  }
  if (req.overflow_status == Status::kShedFleetOverloaded) {
    wreq.flags |= net::wire::kFlagShedAsFleet;
  }
  wreq.bitmap = std::move(req.bitmap);

  // The channel callback must be copyable (std::function), so the
  // request's promise moves behind a shared_ptr.
  auto promise =
      std::make_shared<std::promise<Response>>(std::move(req.promise));
  std::future<Response> future = promise->get_future();

  const auto enqueued = req.enqueued;
  const std::uint64_t content_hash = req.content_hash;
  const std::uint32_t slot = config_.shard_index;
  channel_.call(std::move(wreq),
                [promise, enqueued, content_hash, slot](net::CallResult&& r) {
                  Response resp;
                  if (r.kind == net::CallResult::Kind::kOk) {
                    resp.status = status_from_wire(r.response.status);
                    resp.probability = r.response.probability;
                    resp.hotspot = r.response.hotspot != 0;
                    resp.cache_hit = r.response.cache_hit != 0;
                    resp.shard = r.response.shard;
                    resp.content_hash = r.response.content_hash;
                    resp.batch_size =
                        static_cast<std::size_t>(r.response.batch_size);
                  } else {
                    resp.status = r.kind == net::CallResult::Kind::kTimeout
                                      ? Status::kNetTimeout
                                      : Status::kNetError;
                    resp.shard = slot;
                    resp.content_hash = content_hash;
                  }
                  resp.latency_seconds = std::chrono::duration<double>(
                                             Request::Clock::now() - enqueued)
                                             .count();
                  promise->set_value(std::move(resp));
                });
  return future;
}

std::size_t RemoteShard::pump() { return 0; }

void RemoteShard::begin_shutdown() {
  if (!config_.drain_server) return;
  if (drain_sent_.exchange(true)) return;
  net::shutdown_rpc(config_.channel.endpoint, config_.drain_rpc_timeout_ms);
}

void RemoteShard::shutdown() {
  begin_shutdown();
  channel_.drain();
}

std::size_t RemoteShard::queue_depth() const {
  return static_cast<std::size_t>(channel_.stats().pending);
}

namespace {

ShardServerConfig sanitize(ShardServerConfig config) {
  // Waiters block until the collector answers; a pump-less service would
  // deadlock every connection writer.
  config.service.manual_pump = false;
  return config;
}

}  // namespace

ShardServer::ShardServer(const ShardServerConfig& config,
                         core::HotspotDetector detector)
    : config_(sanitize(config)),
      service_(config_.service, std::move(detector)),
      server_(
          config_.server,
          [this](net::wire::PredictRequest&& wreq) {
            return handle(std::move(wreq));
          },
          [this] { service_.begin_shutdown(); }) {}

ShardServer::~ShardServer() { drain_and_stop(); }

void ShardServer::start() { server_.start(); }

void ShardServer::drain_and_stop() {
  server_.stop_accepting();
  service_.begin_shutdown();
  // Everything admitted completes here, so every waiter the server still
  // holds is resolvable before the sockets come down (net::Server's drain
  // contract).
  service_.shutdown();
  server_.stop();
}

net::Server::ResponseWaiter ShardServer::handle(
    net::wire::PredictRequest&& wreq) {
  Request req;
  req.enqueued = Request::Clock::now();
  req.bitmap = std::move(wreq.bitmap);
  req.content_hash = wreq.content_hash;
  req.prehashed = true;
  req.has_deadline = (wreq.flags & net::wire::kFlagHasDeadline) != 0;
  if (req.has_deadline) {
    req.deadline =
        req.enqueued + std::chrono::microseconds(wreq.deadline_budget_us);
  }
  req.overflow_status = (wreq.flags & net::wire::kFlagShedAsFleet) != 0
                            ? Status::kShedFleetOverloaded
                            : Status::kRejectedQueueFull;

  const std::uint64_t id = wreq.request_id;
  const auto start = req.enqueued;
  bool admitted = false;  // rejections still resolve the future immediately
  auto future = std::make_shared<std::future<Response>>(
      service_.submit_routed(std::move(req), admitted));

  return [future, id, start]() {
    Response r = future->get();
    net::wire::PredictResponse out;
    out.request_id = id;
    out.status = status_to_wire(r.status);
    out.hotspot = r.hotspot ? 1 : 0;
    out.cache_hit = r.cache_hit ? 1 : 0;
    out.shard = r.shard;
    out.content_hash = r.content_hash;
    out.batch_size = static_cast<std::uint64_t>(r.batch_size);
    out.probability = r.probability;
    out.server_seconds =
        std::chrono::duration<double>(Request::Clock::now() - start).count();
    return out;
  };
}

}  // namespace hsd::serve
