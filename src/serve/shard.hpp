#pragma once
// The shard seam of the serving stack. FleetRouter routes self-contained
// Requests to Shard instances; whether a shard is the in-process
// InferenceService or a socket to another OS process (serve/remote.hpp) is
// invisible above this interface — that transparency is what makes the
// multi-process split a transport swap instead of a router rewrite, and it
// is why remote fleet answers can be pinned bit-identical to in-process
// ones (serve_remote_equivalence_test).

#include <cstddef>
#include <future>

#include "serve/request.hpp"

namespace hsd::serve {

class Shard {
 public:
  virtual ~Shard() = default;

  /// Accepts one fully-formed request (prehashed bitmap, deadline, overflow
  /// status set by the router). The future always resolves. `admitted`
  /// reports whether the request entered a local queue; a remote shard
  /// always reports true — its shed/shutdown outcome arrives in the
  /// response instead, because admission happens in another process.
  virtual std::future<Response> submit_routed(Request&& req,
                                              bool& admitted) = 0;

  /// Manual-pump mode: drains one micro-batch on the calling thread;
  /// returns requests answered. Remote shards have no local queue and
  /// return 0 (their server pumps for them).
  virtual std::size_t pump() = 0;

  /// Phase one of a drain: stop admitting, without waiting. Idempotent.
  virtual void begin_shutdown() = 0;

  /// Completes everything admitted, then returns. Idempotent.
  virtual void shutdown() = 0;

  /// Requests admitted but not yet answered.
  virtual std::size_t queue_depth() const = 0;
};

}  // namespace hsd::serve
