#pragma once
// Online hotspot inference shard with dynamic micro-batching — the middle
// layer of the serving stack (fleet router -> shard service -> batch
// worker; see serve/fleet.hpp for the router).
//
// The offline flow classifies a benchmark in one giant batch; a deployed
// detector instead sees a stream of single-clip requests (EPIC-style "score
// this clip now" traffic from OPC and routing tools). Serving them one at a
// time wastes the batch-level GEMM throughput the runtime pool was built
// for, so the service queues requests and a collector drains the queue into
// micro-batches: a batch closes when it reaches `max_batch` requests or
// when `max_delay_us` has elapsed since its first request — full batches
// under load, bounded queueing delay when idle.
//
// Per request: rasterize -> content-hash the bitmap -> DCT features (LRU
// cache keyed by the hash; repeated pattern families skip the dominant DCT
// cost) -> one batched CNN forward on the runtime pool -> temperature-
// calibrated probability -> hotspot verdict. The feature/cache/forward
// pipeline lives in serve/worker.hpp; this class owns admission, queueing,
// batch cutting, and drain.
//
// Admission control is explicit: a bounded queue rejects on overflow
// (kRejectedQueueFull standalone; the fleet router substitutes
// kShedFleetOverloaded), submissions after shutdown() are refused
// (kRejectedShutdown), and a request whose deadline has passed by the time
// its batch forms is answered kDeadlineExceeded without paying for
// inference. shutdown() is graceful: everything admitted before it still
// completes. All outcomes are counted under <metric_prefix>/* metrics.
//
// Determinism contract: predictions are a pure function of the clip and
// the model. Batch composition, batch cuts, thread count, cache hits, and
// arrival order never change a single bit of any probability — pinned by
// serve_equivalence_test against per-clip HotspotDetector::predict, and by
// serve_fleet_equivalence_test at every shard count.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>

#include "core/detector.hpp"
#include "layout/clip.hpp"
#include "serve/request.hpp"
#include "serve/serve_metrics.hpp"
#include "serve/shard.hpp"
#include "serve/worker.hpp"

namespace hsd::serve {

struct ServiceConfig {
  /// Raster grid and retained DCT block of the feature pipeline; must match
  /// what the model was trained on (keep == detector input_side).
  std::size_t feature_grid = 64;
  std::size_t feature_keep = 16;
  /// Temperature for probability calibration (Eq. 5; 1 = uncalibrated).
  double temperature = 1.0;
  /// Hotspot decision boundary (paper fixes h = 0.4).
  double decision_threshold = 0.4;
  /// Largest micro-batch a collector pass executes.
  std::size_t max_batch = 16;
  /// Longest a batch waits for company after its first request.
  std::uint64_t max_delay_us = 200;
  /// Bounded-queue depth; submissions beyond it are rejected.
  std::size_t max_queue = 1024;
  /// LRU feature-cache entries (0 disables caching).
  std::size_t cache_capacity = 4096;
  /// Metric namespace: this service's counters/histograms register as
  /// "<metric_prefix>/<name>". The standalone service keeps the historical
  /// "serve" prefix; the fleet router assigns "serve/shard<i>" per shard so
  /// obs::rollup_shards can aggregate fleet totals.
  std::string metric_prefix = "serve";
  /// Stamped into Response::shard (0 for a standalone service).
  std::uint32_t shard_index = 0;
  /// Tests: do not start a collector thread; batches run only when pump()
  /// is called, so admission and batching become single-stepped and exact.
  bool manual_pump = false;
};

/// In-process prediction shard around one HotspotDetector replica.
///
/// Thread-safe for any number of concurrent submitters; all model and cache
/// state is touched only by the single batch-execution context (collector
/// thread, or the pump() caller in manual mode).
class InferenceService : public Shard {
 public:
  /// Takes ownership of the (trained) detector. The detector config's
  /// input_side must equal `config.feature_keep`.
  InferenceService(const ServiceConfig& config, core::HotspotDetector detector);
  ~InferenceService() override;  // shutdown() + join

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Enqueues one clip with no deadline. The future always resolves —
  /// rejected requests resolve immediately with their rejection status.
  std::future<Response> submit(const layout::Clip& clip);

  /// Enqueues one clip that must start executing within `budget` of
  /// submission. A non-positive budget is already expired and will be
  /// answered kDeadlineExceeded by the next batch.
  std::future<Response> submit(const layout::Clip& clip,
                               std::chrono::microseconds budget);

  /// Router entry point: enqueues a fully-formed request (prehashed bitmap,
  /// deadline, and overflow status already set by the caller). `admitted`
  /// reports whether the request entered the queue or was rejected
  /// immediately (shed / shutdown).
  std::future<Response> submit_routed(Request&& req, bool& admitted) override;

  /// Synchronous convenience: submit and wait (pumps inline in manual mode).
  Response predict(const layout::Clip& clip);

  /// Manual mode: drains one micro-batch on the calling thread. Returns the
  /// number of requests answered (including deadline rejections); 0 when
  /// the queue is empty. Also usable after shutdown() to finish a drain.
  std::size_t pump() override;

  /// Phase one of a drain: stops admitting (new submissions resolve
  /// kRejectedShutdown) and wakes the collector, without waiting for the
  /// queue to empty. The fleet router calls this on every shard before
  /// draining any of them. Idempotent.
  void begin_shutdown() override;

  /// Stops admitting, completes every already-admitted request, and joins
  /// the collector. Idempotent; called by the destructor.
  void shutdown() override;

  /// Requests admitted but not yet claimed by a batch.
  std::size_t queue_depth() const override;

  const ServiceConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  std::future<Response> submit_impl(const layout::Clip& clip,
                                    bool has_deadline,
                                    std::chrono::microseconds budget);
  /// Shared admission path: bounded-queue check + enqueue under the mutex.
  std::future<Response> admit(Request&& req, bool& admitted);
  void collector_main();
  /// Pops up to max_batch requests (FIFO). Returns an empty batch only when
  /// the queue is empty.
  std::deque<Request> take_batch();

  ServiceConfig config_;
  ShardMetrics metrics_;
  BatchWorker worker_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  std::mutex shutdown_mutex_;  ///< serializes the join/drain in shutdown()
  // Not started in manual_pump mode. hsd-lint: allow(no-raw-thread)
  std::thread collector_;
};

}  // namespace hsd::serve
