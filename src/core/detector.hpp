#pragma once
// The CNN hotspot classifier: a small convolutional network over the
// low-frequency DCT feature block of a clip, exposing logits, calibrated
// probabilities, and the penultimate representation the diversity metric
// uses. Stands in for the paper's TensorFlow model.

#include <vector>

#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "nn/pooling.hpp"
#include "stats/rng.hpp"

namespace hsd::core {

struct DetectorConfig {
  std::size_t input_side = 8;     ///< DCT block side (input is 1 x side x side)
  std::size_t conv1_channels = 8;
  std::size_t conv2_channels = 16;
  std::size_t hidden = 32;        ///< penultimate feature width
  /// Dropout probability on the hidden representation (0 disables).
  double dropout = 0.0;
  double learning_rate = 1e-3;
  std::size_t initial_epochs = 30;
  std::size_t finetune_epochs = 8;
  std::size_t batch_size = 32;
  /// Inference chunk size (bounds activation memory on full-chip scans).
  std::size_t inference_chunk = 4096;
};

/// Builds the two-conv / two-dense CNN described in DetectorConfig.
nn::Network make_hotspot_cnn(const DetectorConfig& config, hsd::stats::Rng& rng);

/// Trainable hotspot classifier with class-imbalance-aware training.
class HotspotDetector {
 public:
  HotspotDetector(DetectorConfig config, hsd::stats::Rng rng);

  /// Full training from the current (initial) weights: `initial_epochs`.
  void train_initial(const tensor::Tensor& x, const std::vector<int>& labels);

  /// Fine-tuning after a batch of new labels: `finetune_epochs`.
  void finetune(const tensor::Tensor& x, const std::vector<int>& labels);

  /// Logits for a batch, computed in chunks.
  tensor::Tensor logits(const tensor::Tensor& x);

  /// Logits plus penultimate features. Batches no larger than
  /// `inference_chunk` (the serving hot path) are forwarded directly with no
  /// input copy; larger batches are processed in chunks through a
  /// preallocated scratch tensor that is reused across chunks and calls, so
  /// steady-state batch prediction allocates nothing for its inputs.
  nn::ForwardResult forward(const tensor::Tensor& x);

  /// Calibrated [p0, p1] rows at temperature T (Eq. 5; T = 1 uncalibrated).
  std::vector<std::vector<double>> probabilities(const tensor::Tensor& x,
                                                 double temperature = 1.0);

  /// Inverse-frequency class weights for a label vector (never zero).
  static std::vector<double> class_weights(const std::vector<int>& labels);

  /// Persists / restores the CNN weights (architecture must match).
  void save(std::ostream& os) { net_.save(os); }
  void load(std::istream& is) { net_.load(is); }

  /// Persists / restores the full training state: CNN weights, per-layer
  /// extra state, Adam moments, and the detector's own RNG stream — enough
  /// for a restored detector to continue training bit-identically
  /// (checkpoint/resume of the AL loop).
  void save_state(std::ostream& os);
  void load_state(std::istream& is);

  nn::Network& network() { return net_; }
  const DetectorConfig& config() const { return config_; }

 private:
  void train_epochs(const tensor::Tensor& x, const std::vector<int>& labels,
                    std::size_t epochs);

  DetectorConfig config_;
  hsd::stats::Rng rng_;
  nn::Network net_;
  nn::Adam opt_;
  /// Chunk staging buffer for forward(); pure cache, never serialized.
  tensor::Tensor inference_scratch_;
};

}  // namespace hsd::core
