#include "core/framework.hpp"

#include "common/check.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "ckpt/checkpoint.hpp"
#include "common/binio.hpp"
#include "common/env.hpp"
#include "common/registry.hpp"
#include "core/calibration.hpp"
#include "data/features.hpp"
#include "obs/metrics.hpp"
#include "obs/round_report.hpp"
#include "obs/trace.hpp"
#include "stats/pca.hpp"
#include "stats/reliability.hpp"
#include "stats/roc.hpp"

namespace hsd::core {

namespace {

/// Wall-clock stopwatch for the per-round stage timings. Reading the clock
/// per stage is a handful of nanoseconds, so it runs unconditionally and
/// the round reporter simply ignores the values when disabled.
class Stopwatch {
 public:
  // hsd-lint: allow(no-wall-clock) — stage-timing telemetry only
  Stopwatch() : last_(std::chrono::steady_clock::now()) {}
  /// Seconds since construction or the previous lap() call.
  double lap() {
    const auto now = std::chrono::steady_clock::now();  // hsd-lint: allow(no-wall-clock)
    const double dt = std::chrono::duration<double>(now - last_).count();
    last_ = now;
    return dt;
  }

 private:
  std::chrono::steady_clock::time_point last_;
};

/// Indices of the `count` smallest values in `score` restricted to `among`.
/// Ties break by ascending index so the result does not depend on the order
/// of `among` (the unlabeled pool's internal order changes with removals).
std::vector<std::size_t> lowest_k(const std::vector<double>& score,
                                  const std::vector<std::size_t>& among,
                                  std::size_t count) {
  std::vector<std::size_t> idx = among;
  count = std::min(count, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(count),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      return score[a] < score[b] || (score[a] == score[b] && a < b);
                    });
  idx.resize(count);
  return idx;
}

/// Hash of every config field that shapes the deterministic run (plus the
/// population size): a checkpoint written under one fingerprint must not be
/// resumed under another — it would silently diverge instead of continuing
/// the interrupted run.
std::uint64_t config_fingerprint(const FrameworkConfig& cfg, std::size_t n_total) {
  hsd::common::Fnv1a h;
  h.add<std::uint64_t>(n_total);
  h.add<std::uint64_t>(cfg.seed);
  h.add<std::uint64_t>(cfg.initial_train);
  h.add<std::uint64_t>(cfg.validation);
  h.add<std::uint64_t>(cfg.query_size);
  h.add<std::uint64_t>(cfg.batch_k);
  h.add<std::uint64_t>(cfg.iterations);
  h.add<std::uint64_t>(cfg.patience);
  h.add<std::uint64_t>(cfg.gmm_components);
  h.add<std::uint64_t>(cfg.gmm_pca_dims);
  h.add<double>(cfg.decision_threshold);
  h.add<std::uint32_t>(static_cast<std::uint32_t>(cfg.sampler.kind));
  h.add<double>(cfg.sampler.h);
  h.add<std::uint8_t>(cfg.sampler.use_uncertainty ? 1 : 0);
  h.add<std::uint8_t>(cfg.sampler.use_diversity ? 1 : 0);
  h.add<std::uint8_t>(cfg.sampler.dynamic_weights ? 1 : 0);
  h.add<double>(cfg.sampler.fixed_w2);
  h.add<double>(cfg.sampler.qp_uncertainty_weight);
  h.add<std::uint64_t>(cfg.detector.input_side);
  h.add<std::uint64_t>(cfg.detector.conv1_channels);
  h.add<std::uint64_t>(cfg.detector.conv2_channels);
  h.add<std::uint64_t>(cfg.detector.hidden);
  h.add<double>(cfg.detector.dropout);
  h.add<double>(cfg.detector.learning_rate);
  h.add<std::uint64_t>(cfg.detector.initial_epochs);
  h.add<std::uint64_t>(cfg.detector.finetune_epochs);
  h.add<std::uint64_t>(cfg.detector.batch_size);
  return h.value();
}

/// HSD_FAULT_AFTER_ROUND as a round index, 0 when unset. A malformed value
/// throws (common/env.hpp) — a fault-injection drill that silently doesn't
/// inject would report a vacuous pass.
std::size_t fault_after_round_env() {
  return common::env_size(reg::kEnvFaultAfterRound, 0);
}

ckpt::RoundLog to_round_log(const IterationLog& log) {
  ckpt::RoundLog r;
  r.iteration = log.iteration;
  r.temperature = log.temperature;
  r.w_uncertainty = log.w_uncertainty;
  r.w_diversity = log.w_diversity;
  r.labeled_size = log.labeled_size;
  r.new_hotspots = log.new_hotspots;
  return r;
}

IterationLog from_round_log(const ckpt::RoundLog& r) {
  IterationLog log;
  log.iteration = static_cast<std::size_t>(r.iteration);
  log.temperature = r.temperature;
  log.w_uncertainty = r.w_uncertainty;
  log.w_diversity = r.w_diversity;
  log.labeled_size = static_cast<std::size_t>(r.labeled_size);
  log.new_hotspots = static_cast<std::size_t>(r.new_hotspots);
  return log;
}

}  // namespace

AlOutcome run_active_learning(const FrameworkConfig& config,
                              const tensor::Tensor& features,
                              const std::vector<layout::Clip>& clips,
                              litho::LithoOracle& oracle) {
  HSD_SPAN("al/run");
  const std::size_t n_total = features.dim(0);
  if (clips.size() != n_total) {
    throw std::invalid_argument("run_active_learning: features/clips size mismatch");
  }
  // The CNN input side follows the feature tensor, not the config default.
  FrameworkConfig cfg = config;
  if (features.rank() == 4) cfg.detector.input_side = features.dim(2);
  if (n_total < cfg.initial_train + cfg.validation + 1) {
    throw std::invalid_argument("run_active_learning: population too small");
  }

  const auto t_start = std::chrono::steady_clock::now();  // hsd-lint: allow(no-wall-clock)
  AlOutcome out;
  hsd::stats::Rng rng(cfg.seed);
  const std::size_t litho_before = oracle.simulation_count();
  obs::RoundReporter reporter =
      obs::RoundReporter::from_path_or_env(cfg.round_log_path);

  const std::uint64_t cfg_hash = config_fingerprint(cfg, n_total);
  // ---- Resume: pick up the latest durable round state, if asked to. ------
  std::optional<ckpt::RunState> restored;
  if (cfg.resume && !cfg.checkpoint_dir.empty()) {
    if (const auto latest = ckpt::find_latest(cfg.checkpoint_dir)) {
      ckpt::RunState st = ckpt::load_file(*latest);
      if (st.config_hash != cfg_hash) {
        throw std::runtime_error(
            "run_active_learning: checkpoint " + *latest +
            " was written under a different config or population; refusing to resume");
      }
      restored = std::move(st);
    }
  }

  // ---- Alg. 2 line 1: GMM density over all clip features. ----------------
  // On resume the fitted mixture and its densities come back verbatim:
  // refitting would waste the EM cost and consume RNG draws the original
  // run never made after this point.
  std::vector<double> density;
  ckpt::GmmState gmm_state;
  if (restored) {
    density = restored->density;
    gmm_state = restored->gmm;
  } else {
    HSD_SPAN("al/gmm_density");
    std::vector<std::vector<double>> rows = data::to_double_rows(features);
    std::vector<std::vector<double>> gmm_rows;
    if (cfg.gmm_pca_dims > 0 && cfg.gmm_pca_dims < rows[0].size()) {
      const auto pca = hsd::stats::Pca::fit(rows, cfg.gmm_pca_dims);
      gmm_rows = pca.transform(rows);
    } else {
      gmm_rows = rows;
    }
    gmm::GmmConfig gmm_cfg;
    gmm_cfg.components = std::min(cfg.gmm_components, n_total);
    hsd::stats::Rng gmm_rng = rng.split();
    const auto mixture = gmm::GaussianMixture::fit(gmm_rows, gmm_cfg, gmm_rng);
    density = mixture.log_densities(gmm_rows);
    gmm_state.weights = mixture.weights();
    gmm_state.means = mixture.means();
    gmm_state.variances = mixture.variances();
  }

  // ---- Alg. 2 line 2: split into L0 (lowest density), V0, U0. -------------
  data::UnlabeledPool unlabeled;
  if (restored) {
    // The pool's exact internal order is part of the run state (swap-and-pop
    // removal makes it history-dependent), so it is restored verbatim
    // rather than rebuilt from the labeled sets.
    out.train = restored->train;
    out.val = restored->val;
    unlabeled = data::UnlabeledPool(restored->unlabeled);
  } else {
    std::vector<std::size_t> all(n_total);
    std::iota(all.begin(), all.end(), std::size_t{0});
    const std::vector<std::size_t> seed_train =
        lowest_k(density, all, cfg.initial_train);

    unlabeled = data::UnlabeledPool(n_total);
    // Oracle labeling of a whole batch runs in parallel on the runtime pool;
    // bookkeeping stays in the original (deterministic) order.
    {
      const std::vector<std::uint8_t> labels = oracle.label_batch(clips, seed_train);
      HSD_CHECK_EQ(labels.size(), seed_train.size(), "oracle label batch (seed)");
      for (std::size_t i = 0; i < seed_train.size(); ++i) {
        unlabeled.remove(seed_train[i]);
        out.train.add(seed_train[i], labels[i] != 0 ? 1 : 0);
      }
    }
    // Validation: random sample of the remainder so both classes can appear
    // and temperature scaling sees the natural class balance.
    {
      const auto& rest = unlabeled.indices();
      const std::vector<std::size_t> pick =
          rng.sample_without_replacement(rest.size(), std::min(cfg.validation, rest.size()));
      std::vector<std::size_t> val_indices;
      val_indices.reserve(pick.size());
      for (std::size_t p : pick) val_indices.push_back(rest[p]);
      const std::vector<std::uint8_t> labels = oracle.label_batch(clips, val_indices);
      HSD_CHECK_EQ(labels.size(), val_indices.size(), "oracle label batch (val)");
      for (std::size_t i = 0; i < val_indices.size(); ++i) {
        unlabeled.remove(val_indices[i]);
        out.val.add(val_indices[i], labels[i] != 0 ? 1 : 0);
      }
    }
  }

  // ---- Alg. 2 lines 3-5: initialize and train the model on L0. -----------
  // A resumed detector gets a placeholder RNG and is then overwritten
  // wholesale (weights, optimizer moments, RNG streams) by load_state.
  HotspotDetector detector(cfg.detector,
                           restored ? hsd::stats::Rng(cfg.seed) : rng.split());
  if (restored) {
    std::istringstream ds(restored->detector_state);
    detector.load_state(ds);
  } else {
    HSD_SPAN("al/initial_train");
    const tensor::Tensor x0 = data::make_batch(features, out.train.indices);
    detector.train_initial(x0, out.train.labels);
  }
  const tensor::Tensor val_x = data::make_batch(features, out.val.indices);

  // ---- Alg. 2 lines 6-13: iterative batch-mode sampling. ------------------
  hsd::stats::Rng sample_rng = restored ? hsd::stats::Rng(cfg.seed) : rng.split();
  std::size_t dry_batches = 0;
  std::size_t start_iter = 0;
  // Oracle calls paid before this process started (resumed runs): the
  // outcome must report the whole run's spend, not this process's share.
  std::size_t spent_offset = 0;
  if (restored) {
    sample_rng.load_state(restored->sampler_rng);
    dry_batches = static_cast<std::size_t>(restored->dry_batches);
    start_iter = static_cast<std::size_t>(restored->rounds_done);
    spent_offset = static_cast<std::size_t>(restored->oracle_spent);
    out.iterations.reserve(restored->logs.size());
    for (const ckpt::RoundLog& r : restored->logs) {
      out.iterations.push_back(from_round_log(r));
    }
    restored.reset();  // drop the detector blob copy
  }
  // Magic-static metric handles: registered once, handle itself immutable.
  // hsd-lint: allow(no-mutable-static)
  static obs::Counter& rounds_counter = obs::counter("al/rounds");
  for (std::size_t iter = start_iter; iter < cfg.iterations && !unlabeled.empty(); ++iter) {
    // Termination condition (Alg. 2): checked at the top of the round so a
    // run resumed exactly at the patience limit stops like an
    // uninterrupted one would have.
    if (cfg.patience > 0 && dry_batches >= cfg.patience) break;
    HSD_SPAN("al/round");
    Stopwatch watch;
    obs::RoundRecord record;

    // Line 7: query set = n lowest-density unlabeled clips. Unselected
    // query clips stay in U (no discarding), so re-querying them later is
    // possible — the information-loss fix the paper highlights.
    std::vector<std::size_t> query;
    {
      HSD_SPAN("al/gmm_query");
      query = lowest_k(density, unlabeled.indices(), cfg.query_size);
    }
    record.query_seconds = watch.lap();
    if (query.empty()) break;

    // Line 8: fit T on the validation set.
    tensor::Tensor val_logits;
    CalibrationResult cal;
    {
      HSD_SPAN("al/calibration");
      val_logits = detector.logits(val_x);
      cal = fit_temperature(val_logits, out.val.labels);
    }
    record.calibration_seconds = watch.lap();

    // Line 9: batch selection on the query set.
    SamplingDiagnostics diag;
    std::vector<std::size_t> picked_pos;
    {
      HSD_SPAN("al/scoring");
      const tensor::Tensor qx = data::make_batch(features, query);
      const nn::ForwardResult fwd = detector.forward(qx);
      const double t_used =
          cfg.sampler.kind == SamplerKind::kQp ? 1.0 : cal.temperature;
      const std::vector<std::vector<double>> probs =
          calibrated_probabilities(fwd.logits, t_used);
      const std::vector<std::vector<double>> qfeat =
          data::to_double_rows(fwd.features);
      picked_pos = select_batch(probs, qfeat, cfg.batch_k, cfg.sampler,
                                sample_rng, &diag);
    }
    record.scoring_seconds = watch.lap();

    // Lines 10-11: litho-label the batch, move it from U to L.
    IterationLog log;
    log.iteration = iter + 1;
    log.temperature = cal.temperature;
    log.w_uncertainty = diag.w_uncertainty;
    log.w_diversity = diag.w_diversity;
    std::vector<std::size_t> picked_indices;
    picked_indices.reserve(picked_pos.size());
    for (std::size_t pos : picked_pos) picked_indices.push_back(query[pos]);
    {
      HSD_SPAN("al/labeling");
      const std::vector<std::uint8_t> labels =
          oracle.label_batch(clips, picked_indices);
      for (std::size_t i = 0; i < picked_indices.size(); ++i) {
        unlabeled.remove(picked_indices[i]);
        const int label = labels[i] != 0 ? 1 : 0;
        out.train.add(picked_indices[i], label);
        log.new_hotspots += (label == 1);
      }
    }
    record.labeling_seconds = watch.lap();

    // Line 12: update the model on the grown L.
    {
      HSD_SPAN("al/finetune");
      const tensor::Tensor lx = data::make_batch(features, out.train.indices);
      detector.finetune(lx, out.train.labels);
    }
    record.finetune_seconds = watch.lap();
    log.labeled_size = out.train.size();
    out.iterations.push_back(log);

    rounds_counter.add();
    if (reporter.enabled()) {
      // Quality on the eval split (V0): ECE of the calibrated confidences
      // plus the TPR/FPR operating point at the decision threshold. These
      // reuse this round's validation logits, so the report costs no extra
      // forward pass and never perturbs the sampling stream.
      record.round = log.iteration;
      record.labeled = log.labeled_size;
      record.oracle_calls =
          spent_offset + (oracle.simulation_count() - litho_before);
      record.batch_hotspots = log.new_hotspots;
      record.batch_nonhotspots = picked_indices.size() - log.new_hotspots;
      record.temperature = cal.temperature;
      const std::vector<std::vector<double>> val_probs =
          calibrated_probabilities(val_logits, cal.temperature);
      record.ece =
          hsd::stats::reliability_diagram(val_probs, out.val.labels).ece;
      std::vector<double> p_hot(val_probs.size());
      for (std::size_t i = 0; i < val_probs.size(); ++i) p_hot[i] = val_probs[i][1];
      const hsd::stats::Confusion conf = hsd::stats::confusion_at(
          p_hot, out.val.labels, cfg.decision_threshold);
      record.tpr = conf.recall();
      record.fpr = conf.fp + conf.tn > 0
                       ? static_cast<double>(conf.fp) /
                             static_cast<double>(conf.fp + conf.tn)
                       : 0.0;
      reporter.write(record);

      // hsd-lint: allow(no-mutable-static)
      static obs::Gauge& temp_gauge = obs::gauge("al/temperature");
      // hsd-lint: allow(no-mutable-static)
      static obs::Gauge& ece_gauge = obs::gauge("al/ece");
      temp_gauge.set(cal.temperature);
      ece_gauge.set(record.ece);
    }

    // Termination bookkeeping: the query stream has run dry of hotspots.
    // Updated before the checkpoint write so the patience counter is part
    // of the durable round state.
    dry_batches = log.new_hotspots == 0 ? dry_batches + 1 : 0;

    if (!cfg.checkpoint_dir.empty()) {
      HSD_SPAN("al/checkpoint");
      ckpt::RunState st;
      st.config_hash = cfg_hash;
      st.rounds_done = log.iteration;
      st.oracle_spent = spent_offset + (oracle.simulation_count() - litho_before);
      st.dry_batches = dry_batches;
      st.last_temperature = cal.temperature;
      st.train = out.train;
      st.val = out.val;
      st.unlabeled = unlabeled.indices();
      st.density = density;
      st.gmm = gmm_state;
      {
        std::ostringstream ds;
        detector.save_state(ds);
        st.detector_state = ds.str();
      }
      st.sampler_rng = sample_rng.save_state();
      st.logs.reserve(out.iterations.size());
      for (const IterationLog& l : out.iterations) st.logs.push_back(to_round_log(l));
      ckpt::save(cfg.checkpoint_dir, st);
    }
    if (cfg.after_round) cfg.after_round(log.iteration);
    if (const std::size_t fault = fault_after_round_env();
        fault != 0 && fault == log.iteration) {
      throw std::runtime_error("run_active_learning: simulated crash after round " +
                               std::to_string(fault) + " (HSD_FAULT_AFTER_ROUND)");
    }
  }

  // ---- Final calibrated full-chip detection on the remaining U. ----------
  {
    HSD_SPAN("al/final_inference");
    const tensor::Tensor val_logits = detector.logits(val_x);
    const CalibrationResult cal = fit_temperature(val_logits, out.val.labels);
    out.final_temperature = cal.temperature;

    out.unlabeled_indices = unlabeled.indices();
    const tensor::Tensor ux = data::make_batch(features, out.unlabeled_indices);
    const std::vector<std::vector<double>> probs =
        detector.probabilities(ux, cal.temperature);
    out.predicted.resize(probs.size());
    out.confidence_hotspot.resize(probs.size());
    for (std::size_t i = 0; i < probs.size(); ++i) {
      out.confidence_hotspot[i] = probs[i][1];
      out.predicted[i] = probs[i][1] >= cfg.decision_threshold ? 1 : 0;
    }
  }

  out.litho_labeling = spent_offset + (oracle.simulation_count() - litho_before);
  out.pshd_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)  // hsd-lint: allow(no-wall-clock)
          .count();
  return out;
}

}  // namespace hsd::core
