#include "core/calibrators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/calibration.hpp"

namespace hsd::core {

namespace {

/// Binary logit margin z1 - z0 per sample.
std::vector<double> margins(const tensor::Tensor& logits) {
  if (logits.rank() != 2 || logits.dim(1) != 2) {
    throw std::invalid_argument("calibrator: binary (N, 2) logits expected");
  }
  const std::size_t n = logits.dim(0);
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) {
    z[i] = static_cast<double>(logits[i * 2 + 1]) - logits[i * 2 + 0];
  }
  return z;
}

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

// ---- temperature -----------------------------------------------------------

void TemperatureCalibrator::fit(const tensor::Tensor& logits,
                                const std::vector<int>& labels) {
  temperature_ = fit_temperature(logits, labels).temperature;
}

std::vector<std::vector<double>> TemperatureCalibrator::transform(
    const tensor::Tensor& logits) const {
  return calibrated_probabilities(logits, temperature_);
}

// ---- Platt ------------------------------------------------------------------

PlattCalibrator::PlattCalibrator(std::size_t iterations, double learning_rate)
    : iterations_(iterations), lr_(learning_rate) {
  if (iterations == 0 || learning_rate <= 0.0) {
    throw std::invalid_argument("PlattCalibrator: bad hyperparameters");
  }
}

void PlattCalibrator::fit(const tensor::Tensor& logits, const std::vector<int>& labels) {
  const std::vector<double> z = margins(logits);
  if (z.size() != labels.size()) throw std::invalid_argument("PlattCalibrator: sizes");
  if (z.empty()) return;
  const auto n = static_cast<double>(z.size());
  a_ = 1.0;
  b_ = 0.0;
  for (std::size_t iter = 0; iter < iterations_; ++iter) {
    double ga = 0.0, gb = 0.0;
    for (std::size_t i = 0; i < z.size(); ++i) {
      const double p = sigmoid(a_ * z[i] + b_);
      const double err = p - (labels[i] == 1 ? 1.0 : 0.0);
      ga += err * z[i];
      gb += err;
    }
    a_ -= lr_ * ga / n;
    b_ -= lr_ * gb / n;
  }
}

std::vector<std::vector<double>> PlattCalibrator::transform(
    const tensor::Tensor& logits) const {
  const std::vector<double> z = margins(logits);
  std::vector<std::vector<double>> out;
  out.reserve(z.size());
  for (double zi : z) {
    const double p1 = sigmoid(a_ * zi + b_);
    out.push_back({1.0 - p1, p1});
  }
  return out;
}

// ---- histogram binning ------------------------------------------------------

HistogramBinningCalibrator::HistogramBinningCalibrator(std::size_t bins) : bins_(bins) {
  if (bins == 0) throw std::invalid_argument("HistogramBinningCalibrator: bins == 0");
}

void HistogramBinningCalibrator::fit(const tensor::Tensor& logits,
                                     const std::vector<int>& labels) {
  const auto probs = calibrated_probabilities(logits, 1.0);
  if (probs.size() != labels.size()) {
    throw std::invalid_argument("HistogramBinningCalibrator: sizes");
  }
  std::vector<double> sum(bins_, 0.0);
  std::vector<std::size_t> count(bins_, 0);
  for (std::size_t i = 0; i < probs.size(); ++i) {
    auto b = static_cast<std::size_t>(probs[i][1] * static_cast<double>(bins_));
    if (b >= bins_) b = bins_ - 1;
    sum[b] += labels[i] == 1 ? 1.0 : 0.0;
    count[b]++;
  }
  bin_value_.assign(bins_, 0.0);
  for (std::size_t b = 0; b < bins_; ++b) {
    // Empty bins fall back to the bin midpoint (identity behaviour).
    bin_value_[b] = count[b] > 0
                        ? sum[b] / static_cast<double>(count[b])
                        : (static_cast<double>(b) + 0.5) / static_cast<double>(bins_);
  }
}

std::vector<std::vector<double>> HistogramBinningCalibrator::transform(
    const tensor::Tensor& logits) const {
  if (bin_value_.empty()) throw std::logic_error("HistogramBinningCalibrator: not fitted");
  const auto probs = calibrated_probabilities(logits, 1.0);
  std::vector<std::vector<double>> out;
  out.reserve(probs.size());
  for (const auto& p : probs) {
    auto b = static_cast<std::size_t>(p[1] * static_cast<double>(bins_));
    if (b >= bins_) b = bins_ - 1;
    const double p1 = std::clamp(bin_value_[b], 1e-6, 1.0 - 1e-6);
    out.push_back({1.0 - p1, p1});
  }
  return out;
}

// ---- identity ---------------------------------------------------------------

void IdentityCalibrator::fit(const tensor::Tensor& logits,
                             const std::vector<int>& labels) {
  (void)logits;
  (void)labels;
}

std::vector<std::vector<double>> IdentityCalibrator::transform(
    const tensor::Tensor& logits) const {
  return calibrated_probabilities(logits, 1.0);
}

std::vector<std::unique_ptr<Calibrator>> all_calibrators() {
  std::vector<std::unique_ptr<Calibrator>> out;
  out.push_back(std::make_unique<IdentityCalibrator>());
  out.push_back(std::make_unique<TemperatureCalibrator>());
  out.push_back(std::make_unique<PlattCalibrator>());
  out.push_back(std::make_unique<HistogramBinningCalibrator>());
  return out;
}

}  // namespace hsd::core
