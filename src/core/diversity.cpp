#include "core/diversity.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "stats/normalize.hpp"

namespace hsd::core {

namespace {

std::vector<std::vector<double>> normalized_copy(
    const std::vector<std::vector<double>>& features) {
  std::vector<std::vector<double>> unit = features;
  for (auto& row : unit) hsd::stats::l2_normalize(row);
  return unit;
}

}  // namespace

std::vector<double> similarity_matrix(const std::vector<std::vector<double>>& features) {
  HSD_SPAN("core/similarity_matrix");
  const auto unit = normalized_copy(features);
  const std::size_t n = unit.size();
  std::vector<double> s(n * n, 0.0);
  if (runtime::global_pool().size() <= 1) {
    // Serial: each pair once, mirrored into both triangles.
    for (std::size_t i = 0; i < n; ++i) {
      s[i * n + i] = 1.0;
      for (std::size_t j = i + 1; j < n; ++j) {
        const double sim = hsd::stats::dot(unit[i], unit[j]);
        s[i * n + j] = sim;
        s[j * n + i] = sim;
      }
    }
    return s;
  }
  // Parallel: each block owns whole rows (no cross-block writes), computing
  // both triangles. dot() is a same-order sum of commutative products, so
  // the recomputed lower triangle matches the mirrored serial values bit
  // for bit; the duplicated flops amortize from two threads up.
  runtime::parallel_for(0, n, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        s[i * n + j] = i == j ? 1.0 : hsd::stats::dot(unit[i], unit[j]);
      }
    }
  });
  return s;
}

std::vector<double> diversity_matrix(const std::vector<std::vector<double>>& features) {
  std::vector<double> d = similarity_matrix(features);
  const std::size_t n = features.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      d[i * n + j] = i == j ? 0.0 : 1.0 - d[i * n + j];
    }
  }
  return d;
}

std::vector<double> diversity_scores(const std::vector<std::vector<double>>& features) {
  HSD_SPAN("core/diversity_scores");
  const auto unit = normalized_copy(features);
  const std::size_t n = unit.size();
  std::vector<double> scores(n, 0.0);
  if (n <= 1) return scores;  // a lone sample has no neighbor; score 0
  // The min-distance scan of candidate i touches only scores[i]; rows go
  // wide over the pool with the serial inner loop untouched.
  runtime::parallel_for(0, n, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      double max_sim = -std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        max_sim = std::max(max_sim, hsd::stats::dot(unit[i], unit[j]));
      }
      scores[i] = 1.0 - max_sim;  // min distance == 1 - max similarity
    }
  });
  return scores;
}

}  // namespace hsd::core
