#pragma once
// Algorithm 1 of the paper (EntropySampling) plus the baseline batch
// selectors it is compared against (TS-only, the QP formulation of [14],
// and uniform random), all operating on one query set.

#include <cstddef>
#include <vector>

#include "stats/rng.hpp"

namespace hsd::core {

/// Which batch-selection strategy to run.
///
/// The first four are the paper's method and its evaluated baselines; the
/// remaining three are the classic active-learning selectors the paper's
/// introduction cites ([9], [13], and core-set selection), provided for
/// extension studies (bench_ablation).
enum class SamplerKind {
  kEntropy,            ///< the paper's method (Alg. 1)
  kTsOnly,             ///< calibrated-uncertainty-only top-k ("TS" column)
  kQp,                 ///< relaxed QP diversity + uncertainty of Yang et al. [14]
  kRandom,             ///< uniform random batch
  kPredictiveEntropy,  ///< top-k by Shannon entropy of the prediction [9]
  kCoreset,            ///< greedy k-center coverage on features (Sener & Savarese)
  kBadge               ///< k-means++ on loss-gradient embeddings (Ash et al. [13])
};

struct SamplerConfig {
  SamplerKind kind = SamplerKind::kEntropy;
  /// Decision boundary h of Eq. 6 (paper fixes 0.4 for imbalanced sets).
  double h = 0.4;
  /// Ablation switches (Table III): disabling diversity is "w/o.D",
  /// disabling uncertainty is "w/o.U", static weights is "w/o.E".
  bool use_uncertainty = true;
  bool use_diversity = true;
  bool dynamic_weights = true;
  /// Diversity weight omega_2 when dynamic_weights is false.
  double fixed_w2 = 0.5;
  /// QP baseline: weight of the (uncalibrated BvSB) uncertainty linear term.
  double qp_uncertainty_weight = 1.0;
};

/// Per-call diagnostics (entropy weights, raw scores) for logging and the
/// weight-comparison experiment of Fig. 6(a).
struct SamplingDiagnostics {
  double w_uncertainty = 0.0;
  double w_diversity = 0.0;
  double e_uncertainty = 1.0;
  double e_diversity = 1.0;
  std::vector<double> uncertainty;  ///< raw per-sample uncertainty scores
  std::vector<double> diversity;    ///< raw per-sample diversity scores
  std::vector<double> score;        ///< fused entropy-based scores
};

/// Selects k batch positions (indices into the query set).
///
/// `probs` are per-sample [p_non_hotspot, p_hotspot] rows — already
/// temperature-calibrated for kEntropy/kTsOnly, uncalibrated (T = 1) for
/// the kQp baseline, matching each method's published formulation.
/// `features` are the penultimate-layer representations of the same query
/// samples. Returns min(k, n) distinct positions.
std::vector<std::size_t> select_batch(const std::vector<std::vector<double>>& probs,
                                      const std::vector<std::vector<double>>& features,
                                      std::size_t k, const SamplerConfig& config,
                                      hsd::stats::Rng& rng,
                                      SamplingDiagnostics* diag = nullptr);

}  // namespace hsd::core
