#pragma once
// Temperature scaling (Guo et al., ICML'17; Eq. 5 of the paper): a single
// scalar T > 0 divides the logits before the softmax. T is fitted by
// minimizing the negative log likelihood on the held-out validation set.
// Scaling never changes the argmax, only the confidence, so calibration is
// "free" accuracy-wise — which is why the paper can plug it directly into
// its uncertainty score.

#include <vector>

#include "tensor/tensor.hpp"

namespace hsd::core {

struct CalibrationResult {
  double temperature = 1.0;
  double nll_before = 0.0;  ///< validation NLL at T = 1
  double nll_after = 0.0;   ///< validation NLL at the fitted T
  /// Total NLL evaluations spent, including the T = 1 baseline. The
  /// reported temperature reuses an already-evaluated bracket probe, so no
  /// extra evaluation is paid for the final answer.
  std::size_t evaluations = 0;
};

/// Fits T by golden-section search on log T over [log t_min, log t_max]
/// (the NLL is unimodal in T for fixed logits). `logits` is (N, C); labels
/// are class indices.
CalibrationResult fit_temperature(const tensor::Tensor& logits,
                                  const std::vector<int>& labels,
                                  double t_min = 0.05, double t_max = 20.0);

/// Softmax probabilities at temperature T, one row per sample (Eq. 5).
std::vector<std::vector<double>> calibrated_probabilities(
    const tensor::Tensor& logits, double temperature);

}  // namespace hsd::core
