#include "core/entropy_sampling.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/diversity.hpp"
#include "core/uncertainty.hpp"
#include "qp/qp.hpp"
#include "stats/entropy.hpp"
#include "stats/kmeans.hpp"
#include "stats/normalize.hpp"

namespace hsd::core {

namespace {

std::vector<std::size_t> top_k_positions(const std::vector<double>& score,
                                         std::size_t k) {
  std::vector<std::size_t> idx(score.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  k = std::min(k, idx.size());
  // Ties break by ascending position: equal scores are common (constant
  // uncertainty early in training, duplicated clips), and partial_sort's
  // order among equals is implementation-defined — which would make the
  // selected batch, and every downstream oracle call, non-reproducible.
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k), idx.end(),
                    [&](std::size_t a, std::size_t b) {
                      return score[a] > score[b] || (score[a] == score[b] && a < b);
                    });
  idx.resize(k);
  return idx;
}

std::vector<std::size_t> entropy_batch(const std::vector<std::vector<double>>& probs,
                                       const std::vector<std::vector<double>>& features,
                                       std::size_t k, const SamplerConfig& config,
                                       SamplingDiagnostics* diag) {
  const std::size_t n = probs.size();
  SamplingDiagnostics local;
  SamplingDiagnostics& d = diag != nullptr ? *diag : local;

  d.uncertainty = config.use_uncertainty
                      ? hotspot_aware_uncertainty(probs, config.h)
                      : std::vector<double>(n, 0.0);
  d.diversity = config.use_diversity ? diversity_scores(features)
                                     : std::vector<double>(n, 0.0);

  const std::vector<double> nu = hsd::stats::minmax_normalized(d.uncertainty);
  const std::vector<double> nd = hsd::stats::minmax_normalized(d.diversity);

  if (config.use_uncertainty && config.use_diversity) {
    if (config.dynamic_weights) {
      const auto w = hsd::stats::entropy_weighting(nu, nd);
      d.w_uncertainty = w.w_uncertainty;
      d.w_diversity = w.w_diversity;
      d.e_uncertainty = w.e_uncertainty;
      d.e_diversity = w.e_diversity;
    } else {
      d.w_diversity = config.fixed_w2;
      d.w_uncertainty = 1.0 - config.fixed_w2;
    }
  } else if (config.use_uncertainty) {
    d.w_uncertainty = 1.0;
    d.w_diversity = 0.0;
  } else if (config.use_diversity) {
    d.w_uncertainty = 0.0;
    d.w_diversity = 1.0;
  } else {
    throw std::invalid_argument("select_batch: both metrics disabled");
  }

  d.score.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    d.score[i] = d.w_uncertainty * nu[i] + d.w_diversity * nd[i];
  }
  return top_k_positions(d.score, k);
}

std::vector<std::size_t> qp_batch(const std::vector<std::vector<double>>& probs,
                                  const std::vector<std::vector<double>>& features,
                                  std::size_t k, const SamplerConfig& config,
                                  SamplingDiagnostics* diag) {
  const std::size_t n = probs.size();
  // Yang et al. [14]: maximize batch diversity and uncertainty via
  //   min 0.5 x^T S x - lambda u^T x,  sum x = k, x in [0,1],
  // with S the pairwise similarity and u the (uncalibrated) BvSB score.
  const std::vector<double> s = similarity_matrix(features);
  const std::vector<double> u = bvsb_uncertainty(probs);
  std::vector<double> c(n);
  for (std::size_t i = 0; i < n; ++i) c[i] = -config.qp_uncertainty_weight * u[i];
  const hsd::qp::QpResult sol =
      hsd::qp::solve_box_budget_qp(s, n, c, static_cast<double>(std::min(k, n)));
  if (diag != nullptr) {
    diag->uncertainty = u;
    diag->score = sol.x;
  }
  return hsd::qp::top_k_indices(sol.x, std::min(k, n));
}

std::vector<std::size_t> predictive_entropy_batch(
    const std::vector<std::vector<double>>& probs, std::size_t k) {
  std::vector<double> score;
  score.reserve(probs.size());
  for (const auto& p : probs) score.push_back(hsd::stats::shannon_entropy(p));
  return top_k_positions(score, k);
}

std::vector<std::size_t> coreset_batch(const std::vector<std::vector<double>>& features,
                                       std::size_t k) {
  // Greedy k-center: repeatedly pick the point farthest (Euclidean) from the
  // current selection; the first pick is the point farthest from the mean.
  const std::size_t n = features.size();
  const std::size_t dim = features[0].size();
  std::vector<double> mean(dim, 0.0);
  for (const auto& f : features) {
    for (std::size_t j = 0; j < dim; ++j) mean[j] += f[j];
  }
  for (double& m : mean) m /= static_cast<double>(n);

  std::vector<double> min_d2(n);
  for (std::size_t i = 0; i < n; ++i) {
    min_d2[i] = hsd::stats::squared_distance(features[i], mean);
  }
  std::vector<std::size_t> picked;
  picked.reserve(k);
  std::vector<bool> taken(n, false);
  for (std::size_t round = 0; round < k; ++round) {
    std::size_t best = 0;
    double best_d = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!taken[i] && min_d2[i] > best_d) {
        best_d = min_d2[i];
        best = i;
      }
    }
    picked.push_back(best);
    taken[best] = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (taken[i]) continue;
      min_d2[i] = std::min(min_d2[i],
                           hsd::stats::squared_distance(features[i], features[best]));
    }
  }
  return picked;
}

std::vector<std::size_t> badge_batch(const std::vector<std::vector<double>>& probs,
                                     const std::vector<std::vector<double>>& features,
                                     std::size_t k, hsd::stats::Rng& rng) {
  // BADGE (Ash et al.): the last-layer loss-gradient embedding of sample i
  // under its own predicted label is (p - onehot(argmax p)) (x) features;
  // its norm encodes uncertainty and its direction diversity. k-means++
  // seeding over the embeddings picks an uncertain AND diverse batch.
  const std::size_t n = probs.size();
  const std::size_t dim = features[0].size();
  const std::size_t classes = probs[0].size();
  std::vector<std::vector<double>> embeddings(n, std::vector<double>(dim * classes));
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t pred = 0;
    for (std::size_t c = 1; c < classes; ++c) {
      if (probs[i][c] > probs[i][pred]) pred = c;
    }
    for (std::size_t c = 0; c < classes; ++c) {
      const double g = probs[i][c] - (c == pred ? 1.0 : 0.0);
      for (std::size_t j = 0; j < dim; ++j) {
        embeddings[i][c * dim + j] = g * features[i][j];
      }
    }
  }
  return hsd::stats::kmeanspp_seed(embeddings, k, rng);
}

}  // namespace

std::vector<std::size_t> select_batch(const std::vector<std::vector<double>>& probs,
                                      const std::vector<std::vector<double>>& features,
                                      std::size_t k, const SamplerConfig& config,
                                      hsd::stats::Rng& rng, SamplingDiagnostics* diag) {
  const std::size_t n = probs.size();
  if (features.size() != n) throw std::invalid_argument("select_batch: probs/features size");
  if (n == 0 || k == 0) return {};
  if (k >= n) {
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), std::size_t{0});
    return all;
  }

  switch (config.kind) {
    case SamplerKind::kEntropy:
      return entropy_batch(probs, features, k, config, diag);
    case SamplerKind::kTsOnly: {
      SamplerConfig ts = config;
      ts.use_uncertainty = true;
      ts.use_diversity = false;
      return entropy_batch(probs, features, k, ts, diag);
    }
    case SamplerKind::kQp:
      return qp_batch(probs, features, k, config, diag);
    case SamplerKind::kRandom:
      return rng.sample_without_replacement(n, k);
    case SamplerKind::kPredictiveEntropy:
      return predictive_entropy_batch(probs, k);
    case SamplerKind::kCoreset:
      return coreset_batch(features, k);
    case SamplerKind::kBadge:
      return badge_batch(probs, features, k, rng);
  }
  throw std::invalid_argument("select_batch: unknown sampler kind");
}

}  // namespace hsd::core
