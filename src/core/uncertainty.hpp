#pragma once
// Uncertainty scores over binary hotspot/non-hotspot probabilities.
// Class convention throughout the library: class 0 = non-hotspot,
// class 1 = hotspot.

#include <vector>

namespace hsd::core {

/// Binary Best-versus-Second-Best uncertainty (Eq. 3):
/// u = 1 - |p0 - p1|, maximal (1) at p = 0.5, minimal (0) at p in {0, 1}.
double bvsb_uncertainty(double p_hotspot);

/// The paper's hotspot-aware uncertainty score (Eq. 6) with decision
/// boundary h (fixed to 0.4 in the paper because the sets are imbalanced):
///   u = p0 + h  if p1 > h   (uncertain or hotspot-leaning: elevated score)
///   u = p1      if p1 < h   (confident non-hotspot: score = its small p1)
/// `p_hotspot` must already come from the *calibrated* softmax (Eq. 5).
double hotspot_aware_uncertainty(double p_hotspot, double h = 0.4);

/// Batch versions over per-sample [p0, p1] rows.
std::vector<double> bvsb_uncertainty(const std::vector<std::vector<double>>& probs);
std::vector<double> hotspot_aware_uncertainty(
    const std::vector<std::vector<double>>& probs, double h = 0.4);

}  // namespace hsd::core
