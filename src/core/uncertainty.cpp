#include "core/uncertainty.hpp"

#include <cmath>
#include <stdexcept>

namespace hsd::core {

double bvsb_uncertainty(double p_hotspot) {
  const double p0 = 1.0 - p_hotspot;
  return 1.0 - std::abs(p0 - p_hotspot);
}

double hotspot_aware_uncertainty(double p_hotspot, double h) {
  if (h <= 0.0 || h >= 1.0) throw std::invalid_argument("hotspot_aware_uncertainty: h");
  const double p0 = 1.0 - p_hotspot;
  if (p_hotspot > h) return p0 + h;
  return p_hotspot;
}

std::vector<double> bvsb_uncertainty(const std::vector<std::vector<double>>& probs) {
  std::vector<double> out;
  out.reserve(probs.size());
  for (const auto& p : probs) {
    if (p.size() != 2) throw std::invalid_argument("bvsb_uncertainty: binary rows expected");
    out.push_back(bvsb_uncertainty(p[1]));
  }
  return out;
}

std::vector<double> hotspot_aware_uncertainty(
    const std::vector<std::vector<double>>& probs, double h) {
  std::vector<double> out;
  out.reserve(probs.size());
  for (const auto& p : probs) {
    if (p.size() != 2) {
      throw std::invalid_argument("hotspot_aware_uncertainty: binary rows expected");
    }
    out.push_back(hotspot_aware_uncertainty(p[1], h));
  }
  return out;
}

}  // namespace hsd::core
