#include "core/uncertainty.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace hsd::core {

namespace {

// Per-sample uncertainty is a handful of flops, so blocks stay large; a
// bad row throws inside the pool and parallel_for rethrows it unchanged.
constexpr std::size_t kUncertaintyGrain = 4096;

}  // namespace

double bvsb_uncertainty(double p_hotspot) {
  const double p0 = 1.0 - p_hotspot;
  return 1.0 - std::abs(p0 - p_hotspot);
}

double hotspot_aware_uncertainty(double p_hotspot, double h) {
  if (h <= 0.0 || h >= 1.0) throw std::invalid_argument("hotspot_aware_uncertainty: h");
  const double p0 = 1.0 - p_hotspot;
  if (p_hotspot > h) return p0 + h;
  return p_hotspot;
}

std::vector<double> bvsb_uncertainty(const std::vector<std::vector<double>>& probs) {
  HSD_SPAN("core/uncertainty_scan");
  std::vector<double> out(probs.size());
  runtime::parallel_for(
      0, probs.size(), kUncertaintyGrain, [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          if (probs[i].size() != 2) {
            throw std::invalid_argument("bvsb_uncertainty: binary rows expected");
          }
          out[i] = bvsb_uncertainty(probs[i][1]);
        }
      });
  return out;
}

std::vector<double> hotspot_aware_uncertainty(
    const std::vector<std::vector<double>>& probs, double h) {
  HSD_SPAN("core/uncertainty_scan");
  std::vector<double> out(probs.size());
  runtime::parallel_for(
      0, probs.size(), kUncertaintyGrain, [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          if (probs[i].size() != 2) {
            throw std::invalid_argument(
                "hotspot_aware_uncertainty: binary rows expected");
          }
          out[i] = hotspot_aware_uncertainty(probs[i][1], h);
        }
      });
  return out;
}

}  // namespace hsd::core
