#include "core/metrics.hpp"

#include <ostream>
#include <stdexcept>

namespace hsd::core {

PshdMetrics evaluate_outcome(const AlOutcome& outcome,
                             const std::vector<int>& ground_truth,
                             double seconds_per_litho) {
  PshdMetrics m;
  for (int y : ground_truth) m.hs_total += (y == 1);

  for (std::size_t i = 0; i < outcome.train.size(); ++i) {
    const std::size_t idx = outcome.train.indices[i];
    if (idx >= ground_truth.size()) throw std::invalid_argument("evaluate_outcome: index");
    m.hs_train += (ground_truth[idx] == 1);
  }
  for (std::size_t i = 0; i < outcome.val.size(); ++i) {
    m.hs_val += (ground_truth[outcome.val.indices[i]] == 1);
  }
  for (std::size_t i = 0; i < outcome.unlabeled_indices.size(); ++i) {
    const std::size_t idx = outcome.unlabeled_indices[i];
    if (outcome.predicted[i] == 1) {
      if (ground_truth[idx] == 1) {
        m.hits++;
      } else {
        m.false_alarms++;
      }
    }
  }

  m.accuracy = m.hs_total > 0
                   ? static_cast<double>(m.hs_train + m.hs_val + m.hits) /
                         static_cast<double>(m.hs_total)
                   : 1.0;
  m.litho = outcome.train.size() + outcome.val.size() + m.false_alarms;
  m.pshd_seconds = outcome.pshd_seconds;
  m.modeled_runtime_seconds =
      m.pshd_seconds + seconds_per_litho * static_cast<double>(m.litho);
  return m;
}

PshdMetrics evaluate_pm(const pm::PmResult& result,
                        const std::vector<int>& ground_truth,
                        double pshd_seconds, double seconds_per_litho) {
  if (result.predicted.size() != ground_truth.size()) {
    throw std::invalid_argument("evaluate_pm: size mismatch");
  }
  PshdMetrics m;
  std::vector<char> is_rep(ground_truth.size(), 0);
  for (std::size_t r : result.representatives) is_rep[r] = 1;

  std::size_t detected_hs = 0;
  for (std::size_t i = 0; i < ground_truth.size(); ++i) {
    m.hs_total += (ground_truth[i] == 1);
    if (result.predicted[i] == 1 && ground_truth[i] == 1) detected_hs++;
    if (result.predicted[i] == 1 && ground_truth[i] == 0 && !is_rep[i]) {
      m.false_alarms++;
    }
  }
  m.hits = detected_hs;
  m.accuracy = m.hs_total > 0
                   ? static_cast<double>(detected_hs) / static_cast<double>(m.hs_total)
                   : 1.0;
  m.litho = result.litho_count + m.false_alarms;
  m.pshd_seconds = pshd_seconds;
  m.modeled_runtime_seconds =
      pshd_seconds + seconds_per_litho * static_cast<double>(m.litho);
  return m;
}

void write_iteration_csv(std::ostream& os, const AlOutcome& outcome) {
  os << "iteration,temperature,w_uncertainty,w_diversity,labeled_size,new_hotspots\n";
  for (const IterationLog& log : outcome.iterations) {
    os << log.iteration << ',' << log.temperature << ',' << log.w_uncertainty << ','
       << log.w_diversity << ',' << log.labeled_size << ',' << log.new_hotspots
       << '\n';
  }
  if (!os) throw std::runtime_error("write_iteration_csv: stream failure");
}

}  // namespace hsd::core
