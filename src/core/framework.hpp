#pragma once
// Algorithm 2: the overall pattern sampling and hotspot detection (PSHD)
// framework. Given the full-chip clip population, it
//   1. fits a GMM over (PCA-reduced) clip features and scores every clip's
//      density — low density = hotspot-like outlier,
//   2. seeds the labeled training set L0 with the lowest-density clips and a
//      validation set V0 for temperature scaling (all labels paid for at the
//      counted lithography oracle),
//   3. iterates: query the n lowest-density unlabeled clips, fit T on V0,
//      select a batch of k via the configured strategy (Alg. 1 / TS / QP /
//      random), litho-label it, fine-tune the CNN — never discarding
//      unselected query clips,
//   4. runs calibrated full-chip inference on the remaining unlabeled clips.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/entropy_sampling.hpp"
#include "data/dataset.hpp"
#include "gmm/gmm.hpp"
#include "layout/clip.hpp"
#include "litho/oracle.hpp"
#include "tensor/tensor.hpp"

namespace hsd::core {

struct FrameworkConfig {
  SamplerConfig sampler;
  DetectorConfig detector;
  /// |L0|: lowest-GMM-density seeds for the initial training set.
  std::size_t initial_train = 48;
  /// |V0|: validation clips for temperature scaling.
  std::size_t validation = 48;
  /// n: query-set size per iteration (Alg. 2 line 7).
  std::size_t query_size = 512;
  /// k: batch size selected per iteration (Alg. 1).
  std::size_t batch_k = 32;
  /// N: maximum number of sampling iterations.
  std::size_t iterations = 10;
  /// Early termination: stop once this many consecutive batches contain no
  /// new hotspots (0 disables — always run all N iterations). This is the
  /// "termination condition" of Alg. 2: when the query stream stops yielding
  /// hotspots, further labeling buys nothing.
  std::size_t patience = 0;
  std::size_t gmm_components = 4;
  /// PCA dimensions before GMM fitting (0 = fit on raw features).
  std::size_t gmm_pca_dims = 8;
  /// Hotspot decision boundary for the final full-chip detection; the paper
  /// fixes h = 0.4 because the benchmark sets are imbalanced (Section
  /// III-A1), trading false alarms for recall.
  double decision_threshold = 0.4;
  std::uint64_t seed = 1;
  /// Per-round telemetry JSONL destination. Empty defers to the
  /// HSD_ROUND_LOG environment variable; when both are empty, no round
  /// report is written (and none of its extra eval-split metrics are
  /// computed). See obs/round_report.hpp for the record schema.
  std::string round_log_path;
  /// Checkpoint directory (empty disables checkpointing). After every
  /// completed sampling round the full run state is atomically written to
  /// `<checkpoint_dir>/round-<i>.ckpt`; see ckpt/checkpoint.hpp for the
  /// format and the crash-recovery model.
  std::string checkpoint_dir;
  /// Resume from the latest checkpoint in `checkpoint_dir` (no-op when the
  /// directory is empty or holds no checkpoint). The resumed run yields an
  /// AlOutcome bit-identical to an uninterrupted one. Throws
  /// std::runtime_error if the checkpoint was written under a different
  /// config or population.
  bool resume = false;
  /// Hook invoked after each round's checkpoint (if any) is durable, with
  /// the 1-based round index. Tests throw from here to simulate a crash at
  /// an exact round boundary; the HSD_FAULT_AFTER_ROUND environment
  /// variable does the same for whole-process (CLI) crash drills.
  std::function<void(std::size_t)> after_round;
};

/// Per-iteration diagnostics for the weight/trade-off figures.
struct IterationLog {
  std::size_t iteration = 0;
  double temperature = 1.0;
  double w_uncertainty = 0.0;
  double w_diversity = 0.0;
  std::size_t labeled_size = 0;
  std::size_t new_hotspots = 0;  ///< hotspots among the freshly labeled batch
};

/// Everything the evaluation needs from one framework run.
struct AlOutcome {
  data::LabeledSet train;                    ///< L after the final iteration
  data::LabeledSet val;                      ///< V0
  std::vector<std::size_t> unlabeled_indices;///< remaining U (clip indices)
  std::vector<int> predicted;                ///< predictions aligned with U
  std::vector<double> confidence_hotspot;    ///< calibrated p(hotspot) for U
  double final_temperature = 1.0;
  std::size_t litho_labeling = 0;            ///< oracle calls spent on L + V
  double pshd_seconds = 0.0;                 ///< compute wall time of the run
  std::vector<IterationLog> iterations;
};

/// Runs Algorithm 2 on a clip population.
///
/// `features` is the (N, 1, s, s) DCT feature tensor of all clips, `clips`
/// the geometry (for oracle labeling), `oracle` the counted lithography
/// simulator. Ground-truth labels are never consulted; all supervision is
/// bought from the oracle.
AlOutcome run_active_learning(const FrameworkConfig& config,
                              const tensor::Tensor& features,
                              const std::vector<layout::Clip>& clips,
                              litho::LithoOracle& oracle);

}  // namespace hsd::core
