#include "core/detector.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/binio.hpp"
#include "core/calibration.hpp"

namespace hsd::core {

nn::Network make_hotspot_cnn(const DetectorConfig& config, hsd::stats::Rng& rng) {
  if (config.input_side < 4 || config.input_side % 4 != 0) {
    throw std::invalid_argument("make_hotspot_cnn: input_side must be a multiple of 4");
  }
  nn::Network net;
  net.add<nn::Conv2d>(1, config.conv1_channels, 3, rng, 1, 1);
  net.add<nn::Relu>();
  net.add<nn::MaxPool2d>(2);
  net.add<nn::Conv2d>(config.conv1_channels, config.conv2_channels, 3, rng, 1, 1);
  net.add<nn::Relu>();
  net.add<nn::MaxPool2d>(2);
  net.add<nn::Flatten>();
  const std::size_t spatial = config.input_side / 4;
  net.add<nn::Dense>(config.conv2_channels * spatial * spatial, config.hidden, rng);
  net.add<nn::Relu>();
  if (config.dropout > 0.0) net.add<nn::Dropout>(config.dropout, rng.split());
  net.add<nn::Dense>(config.hidden, 2, rng);
  return net;
}

HotspotDetector::HotspotDetector(DetectorConfig config, hsd::stats::Rng rng)
    : config_(config), rng_(rng), net_(make_hotspot_cnn(config, rng_)),
      opt_(config.learning_rate) {}

std::vector<double> HotspotDetector::class_weights(const std::vector<int>& labels) {
  double n1 = 0.0;
  for (int y : labels) n1 += (y == 1);
  const double n = static_cast<double>(labels.size());
  const double n0 = n - n1;
  if (n0 <= 0.0 || n1 <= 0.0) return {1.0, 1.0};
  // Inverse-frequency weights normalized so the average weight is 1.
  return {n / (2.0 * n0), n / (2.0 * n1)};
}

void HotspotDetector::train_epochs(const tensor::Tensor& x,
                                   const std::vector<int>& labels,
                                   std::size_t epochs) {
  if (x.dim(0) == 0) return;
  const std::vector<double> weights = class_weights(labels);
  net_.set_training(true);
  net_.fit(x, labels, opt_, epochs, config_.batch_size, rng_, weights);
  net_.set_training(false);
}

void HotspotDetector::train_initial(const tensor::Tensor& x,
                                    const std::vector<int>& labels) {
  train_epochs(x, labels, config_.initial_epochs);
}

void HotspotDetector::finetune(const tensor::Tensor& x, const std::vector<int>& labels) {
  train_epochs(x, labels, config_.finetune_epochs);
}

tensor::Tensor HotspotDetector::logits(const tensor::Tensor& x) {
  return forward(x).logits;
}

nn::ForwardResult HotspotDetector::forward(const tensor::Tensor& x) {
  const std::size_t n = x.dim(0);
  const std::size_t chunk = std::max<std::size_t>(config_.inference_chunk, 1);
  nn::ForwardResult out;
  if (n == 0) return out;
  // Single-chunk batches (every serving micro-batch) skip input staging
  // entirely; the network reads the caller's tensor in place.
  if (n <= chunk) return net_.forward_with_features(x);

  const std::size_t row = x.size() / n;
  for (std::size_t start = 0; start < n; start += chunk) {
    const std::size_t end = std::min(start + chunk, n);
    // Chunks are contiguous row ranges, so staging one is a single copy
    // into the reused scratch tensor. The shape only changes on the final
    // partial chunk (and on the first call), so steady-state chunking never
    // reallocates — measured by bench_serve against the old per-chunk
    // gather_rows allocation.
    tensor::Shape cshape = x.shape();
    cshape[0] = end - start;
    if (inference_scratch_.shape() != cshape) {
      inference_scratch_ = tensor::Tensor(cshape);
    }
    std::copy(x.data() + start * row, x.data() + end * row,
              inference_scratch_.data());
    nn::ForwardResult r = net_.forward_with_features(inference_scratch_);
    if (start == 0) {
      tensor::Shape lshape = r.logits.shape();
      lshape[0] = n;
      tensor::Shape fshape = r.features.shape();
      fshape[0] = n;
      out.logits = tensor::Tensor(lshape);
      out.features = tensor::Tensor(fshape);
    }
    const std::size_t lrow = r.logits.size() / (end - start);
    const std::size_t frow = r.features.size() / (end - start);
    std::copy(r.logits.data(), r.logits.data() + r.logits.size(),
              out.logits.data() + start * lrow);
    std::copy(r.features.data(), r.features.data() + r.features.size(),
              out.features.data() + start * frow);
  }
  return out;
}

std::vector<std::vector<double>> HotspotDetector::probabilities(
    const tensor::Tensor& x, double temperature) {
  return calibrated_probabilities(logits(x), temperature);
}

void HotspotDetector::save_state(std::ostream& os) {
  net_.save(os, &opt_);
  hsd::common::write_string(os, rng_.save_state());
}

void HotspotDetector::load_state(std::istream& is) {
  net_.load(is, &opt_);
  rng_.load_state(hsd::common::read_string(is));
}

}  // namespace hsd::core
