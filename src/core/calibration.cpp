#include "core/calibration.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/reliability.hpp"
#include "tensor/ops.hpp"

namespace hsd::core {

std::vector<std::vector<double>> calibrated_probabilities(
    const tensor::Tensor& logits, double temperature) {
  if (logits.rank() != 2) throw std::invalid_argument("calibrated_probabilities: rank != 2");
  const std::size_t n = logits.dim(0);
  const std::size_t c = logits.dim(1);
  std::vector<std::vector<double>> out(n, std::vector<double>(c));
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(c);
    for (std::size_t j = 0; j < c; ++j) {
      row[j] = static_cast<double>(logits[i * c + j]);
    }
    out[i] = tensor::softmax(row, temperature);
  }
  return out;
}

CalibrationResult fit_temperature(const tensor::Tensor& logits,
                                  const std::vector<int>& labels, double t_min,
                                  double t_max) {
  if (logits.rank() != 2 || logits.dim(0) != labels.size()) {
    throw std::invalid_argument("fit_temperature: shape/label mismatch");
  }
  if (t_min <= 0.0 || t_max <= t_min) throw std::invalid_argument("fit_temperature: bad range");

  CalibrationResult res;
  auto nll_at = [&](double t) {
    res.evaluations++;
    return hsd::stats::negative_log_likelihood(calibrated_probabilities(logits, t),
                                               labels);
  };
  res.nll_before = nll_at(1.0);

  // Golden-section search on u = log T.
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = std::log(t_min);
  double hi = std::log(t_max);
  double x1 = hi - phi * (hi - lo);
  double x2 = lo + phi * (hi - lo);
  double f1 = nll_at(std::exp(x1));
  double f2 = nll_at(std::exp(x2));
  for (int iter = 0; iter < 60 && (hi - lo) > 1e-5; ++iter) {
    if (f1 <= f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = nll_at(std::exp(x1));
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = nll_at(std::exp(x2));
    }
  }
  // The bracket's interior probes were both evaluated already: reuse the
  // better one instead of paying one more NLL pass at a midpoint no
  // iteration ever measured.
  const double t_star = std::exp(f1 <= f2 ? x1 : x2);
  const double nll_star = std::min(f1, f2);
  // Never report a temperature worse than the identity.
  if (nll_star <= res.nll_before) {
    res.temperature = t_star;
    res.nll_after = nll_star;
  } else {
    res.temperature = 1.0;
    res.nll_after = res.nll_before;
  }
  return res;
}

}  // namespace hsd::core
