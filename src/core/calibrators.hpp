#pragma once
// Alternative post-hoc calibrators to compare against the paper's choice of
// temperature scaling (Guo et al. study all three): Platt scaling fits a
// 2-parameter logistic map on the logit margin; histogram binning replaces
// each confidence by its bin's empirical accuracy. All operate on binary
// (non-hotspot / hotspot) logits and share a common interface so the
// calibration ablation bench can swap them.

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace hsd::core {

/// Common interface: fit on validation logits/labels, then map logits to
/// calibrated [p0, p1] rows.
class Calibrator {
 public:
  virtual ~Calibrator() = default;
  virtual void fit(const tensor::Tensor& logits, const std::vector<int>& labels) = 0;
  virtual std::vector<std::vector<double>> transform(
      const tensor::Tensor& logits) const = 0;
  virtual std::string name() const = 0;
};

/// Temperature scaling (Eq. 5 of the paper) behind the common interface.
class TemperatureCalibrator : public Calibrator {
 public:
  void fit(const tensor::Tensor& logits, const std::vector<int>& labels) override;
  std::vector<std::vector<double>> transform(
      const tensor::Tensor& logits) const override;
  std::string name() const override { return "temperature"; }
  double temperature() const { return temperature_; }

 private:
  double temperature_ = 1.0;
};

/// Platt scaling: p(hotspot) = sigmoid(a * (z1 - z0) + b), (a, b) fitted by
/// gradient descent on the validation NLL.
class PlattCalibrator : public Calibrator {
 public:
  explicit PlattCalibrator(std::size_t iterations = 500, double learning_rate = 0.1);
  void fit(const tensor::Tensor& logits, const std::vector<int>& labels) override;
  std::vector<std::vector<double>> transform(
      const tensor::Tensor& logits) const override;
  std::string name() const override { return "platt"; }
  double slope() const { return a_; }
  double intercept() const { return b_; }

 private:
  std::size_t iterations_;
  double lr_;
  double a_ = 1.0;
  double b_ = 0.0;
};

/// Histogram binning: the hotspot probability is replaced by the empirical
/// hotspot rate of its validation bin. Non-monotone but often the lowest ECE
/// on enough data.
class HistogramBinningCalibrator : public Calibrator {
 public:
  explicit HistogramBinningCalibrator(std::size_t bins = 10);
  void fit(const tensor::Tensor& logits, const std::vector<int>& labels) override;
  std::vector<std::vector<double>> transform(
      const tensor::Tensor& logits) const override;
  std::string name() const override { return "histogram"; }
  const std::vector<double>& bin_values() const { return bin_value_; }

 private:
  std::size_t bins_;
  std::vector<double> bin_value_;  // calibrated p(hotspot) per bin
};

/// Raw uncalibrated softmax behind the same interface (control condition).
class IdentityCalibrator : public Calibrator {
 public:
  void fit(const tensor::Tensor& logits, const std::vector<int>& labels) override;
  std::vector<std::vector<double>> transform(
      const tensor::Tensor& logits) const override;
  std::string name() const override { return "identity"; }
};

/// Factory covering all calibrators for sweep benches.
std::vector<std::unique_ptr<Calibrator>> all_calibrators();

}  // namespace hsd::core
