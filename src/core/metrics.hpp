#pragma once
// PSHD evaluation metrics: detection accuracy (Eq. 1), lithography
// simulation overhead (Eq. 2), and the paper's runtime model (Fig. 6b:
// PSHD compute time + 10 s per litho-clip).

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "core/framework.hpp"
#include "pm/pattern_matching.hpp"

namespace hsd::core {

struct PshdMetrics {
  double accuracy = 0.0;      ///< Eq. 1, in [0, 1]
  std::size_t litho = 0;      ///< Eq. 2: #Tr + #Val + #FA (or clusters + #FA for PM)
  std::size_t hits = 0;       ///< true hotspots predicted in the unlabeled set
  std::size_t false_alarms = 0;
  std::size_t hs_train = 0;   ///< hotspots captured into the training set
  std::size_t hs_val = 0;     ///< hotspots captured into the validation set
  std::size_t hs_total = 0;
  double pshd_seconds = 0.0;
  /// Modeled end-to-end runtime: pshd_seconds + seconds_per_litho * litho.
  double modeled_runtime_seconds = 0.0;
};

/// Scores an active-learning outcome against ground truth (1 = hotspot).
PshdMetrics evaluate_outcome(const AlOutcome& outcome,
                             const std::vector<int>& ground_truth,
                             double seconds_per_litho = 10.0);

/// Scores a pattern-matching result. Representatives were litho-labeled
/// (correct by construction); non-representative clips predicted hotspot
/// that are clean are false alarms.
PshdMetrics evaluate_pm(const pm::PmResult& result,
                        const std::vector<int>& ground_truth,
                        double pshd_seconds = 0.0,
                        double seconds_per_litho = 10.0);

/// Writes the per-iteration log of a run as CSV (header + one row per
/// sampling iteration): iteration, temperature, w_uncertainty, w_diversity,
/// labeled_size, new_hotspots.
void write_iteration_csv(std::ostream& os, const AlOutcome& outcome);

}  // namespace hsd::core
