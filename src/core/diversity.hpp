#pragma once
// The paper's diversity metric (Eqs. 7-8): features (penultimate CNN layer)
// are L2-normalized; the pairwise difference is D_ij = 1 - x_i . x_j, and a
// sample's diversity score is its distance to its nearest neighbor in the
// query set. High scores = isolated/boundary samples worth labeling.

#include <cstddef>
#include <vector>

namespace hsd::core {

/// Full pairwise difference matrix D (row-major n x n, zero diagonal) of
/// Eq. 8 over L2-normalized copies of `features`.
std::vector<double> diversity_matrix(const std::vector<std::vector<double>>& features);

/// Per-sample diversity scores d_i = min_{j != i} D_ij (Eq. 7), computed
/// directly in O(n^2 d) without materializing D.
std::vector<double> diversity_scores(const std::vector<std::vector<double>>& features);

/// Similarity matrix S_ij = x_i . x_j on normalized features (the quadratic
/// form of the QP baseline); diagonal is 1.
std::vector<double> similarity_matrix(const std::vector<std::vector<double>>& features);

}  // namespace hsd::core
