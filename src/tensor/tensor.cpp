#include "tensor/tensor.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <ostream>

namespace hsd::tensor {

std::size_t volume(const Shape& shape) {
  if (shape.empty()) return 0;
  std::size_t v = 1;
  for (std::size_t d : shape) v *= d;
  return v;
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)), data_(volume(shape_), 0.0F) {}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)), data_(volume(shape_), value) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != volume(shape_)) {
    throw std::invalid_argument("Tensor: data size does not match shape volume");
  }
}

Tensor Tensor::from_vector(const std::vector<float>& v) {
  return Tensor({v.size()}, v);
}

Tensor Tensor::randn(Shape shape, hsd::stats::Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_) x = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, hsd::stats::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_) x = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

std::size_t Tensor::dim(std::size_t d) const {
  if (d >= shape_.size()) throw std::invalid_argument("Tensor::dim: out of range");
  return shape_[d];
}

float& Tensor::at(std::size_t i) {
  if (i >= data_.size()) throw std::out_of_range("Tensor::at: index out of range");
  return data_[i];
}

float Tensor::at(std::size_t i) const {
  if (i >= data_.size()) throw std::out_of_range("Tensor::at: index out of range");
  return data_[i];
}

float& Tensor::at2(std::size_t i, std::size_t j) {
  if (rank() != 2) throw std::invalid_argument("Tensor::at2: rank != 2");
  return data_[i * shape_[1] + j];
}

float Tensor::at2(std::size_t i, std::size_t j) const {
  if (rank() != 2) throw std::invalid_argument("Tensor::at2: rank != 2");
  return data_[i * shape_[1] + j];
}

float& Tensor::at3(std::size_t i, std::size_t j, std::size_t k) {
  if (rank() != 3) throw std::invalid_argument("Tensor::at3: rank != 3");
  return data_[(i * shape_[1] + j) * shape_[2] + k];
}

float Tensor::at3(std::size_t i, std::size_t j, std::size_t k) const {
  if (rank() != 3) throw std::invalid_argument("Tensor::at3: rank != 3");
  return data_[(i * shape_[1] + j) * shape_[2] + k];
}

float& Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  if (rank() != 4) throw std::invalid_argument("Tensor::at4: rank != 4");
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
  if (rank() != 4) throw std::invalid_argument("Tensor::at4: rank != 4");
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (volume(new_shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshaped: volume mismatch");
  }
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

Tensor& Tensor::operator+=(const Tensor& other) {
  if (shape_ != other.shape_) throw std::invalid_argument("Tensor+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  if (shape_ != other.shape_) throw std::invalid_argument("Tensor-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& x : data_) x *= s;
  return *this;
}

void Tensor::add_scaled(const Tensor& other, float alpha) {
  if (shape_ != other.shape_) throw std::invalid_argument("Tensor::add_scaled: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

float Tensor::sum() const {
  float s = 0.0F;
  for (float x : data_) s += x;
  return s;
}

float Tensor::min() const {
  if (data_.empty()) return 0.0F;
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  if (data_.empty()) return 0.0F;
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::mean() const {
  if (data_.empty()) return 0.0F;
  return sum() / static_cast<float>(data_.size());
}

std::ostream& operator<<(std::ostream& os, const Tensor& t) {
  os << "Tensor(shape=[";
  for (std::size_t i = 0; i < t.shape().size(); ++i) {
    if (i) os << ", ";
    os << t.shape()[i];
  }
  os << "], data=[";
  const std::size_t show = std::min<std::size_t>(t.size(), 8);
  for (std::size_t i = 0; i < show; ++i) {
    if (i) os << ", ";
    os << t[i];
  }
  if (t.size() > show) os << ", ...";
  os << "])";
  return os;
}

}  // namespace hsd::tensor
