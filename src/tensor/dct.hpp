#pragma once
// 2-D type-II discrete cosine transform, the layout feature encoder used by
// DCT-based hotspot detectors (Yang et al., JM3'17 / TCAD'20). The low
// frequency block of the transformed clip raster is the CNN input feature.

#include <cstddef>
#include <vector>

namespace hsd::tensor {

/// Precomputed orthonormal DCT-II basis for a fixed size n, enabling the
/// separable 2-D transform C * X * C^T with two small GEMMs.
class Dct2d {
 public:
  /// Builds the basis for n x n blocks (n >= 1).
  explicit Dct2d(std::size_t n);

  std::size_t size() const { return n_; }

  /// Forward 2-D DCT of a row-major n x n block.
  std::vector<float> forward(const std::vector<float>& block) const;

  /// Inverse 2-D DCT (orthonormal, so inverse = transpose pair).
  std::vector<float> inverse(const std::vector<float>& coeffs) const;

  /// Forward transform keeping only the top-left `keep x keep` low-frequency
  /// coefficients in zig-zag-free row-major order (keep <= n).
  std::vector<float> forward_lowfreq(const std::vector<float>& block,
                                     std::size_t keep) const;

 private:
  std::size_t n_;
  std::vector<float> basis_;   // row-major n x n, basis_[k*n + i] = C_{k,i}
};

}  // namespace hsd::tensor
