#pragma once
// 2-D type-II discrete cosine transform, the layout feature encoder used by
// DCT-based hotspot detectors (Yang et al., JM3'17 / TCAD'20). The low
// frequency block of the transformed clip raster is the CNN input feature.

#include <cstddef>
#include <vector>

namespace hsd::tensor {

/// Precomputed orthonormal DCT-II basis for a fixed size n, enabling the
/// separable 2-D transform C * X * C^T with two small GEMMs.
class Dct2d {
 public:
  /// Builds the basis for n x n blocks (n >= 1).
  explicit Dct2d(std::size_t n);

  std::size_t size() const { return n_; }

  /// Forward 2-D DCT of a row-major n x n block.
  std::vector<float> forward(const std::vector<float>& block) const;

  /// Inverse 2-D DCT (orthonormal, so inverse = transpose pair).
  std::vector<float> inverse(const std::vector<float>& coeffs) const;

  /// Forward transform keeping only the top-left `keep x keep` low-frequency
  /// coefficients in zig-zag-free row-major order (keep <= n). Both basis
  /// multiplies are truncated to the retained rows, so discarded high
  /// frequencies are never computed.
  std::vector<float> forward_lowfreq(const std::vector<float>& block,
                                     std::size_t keep) const;

  /// Batched truncated forward transform: `count` row-major n x n blocks
  /// stored back-to-back in `blocks`, the keep x keep coefficients of block
  /// i written to `out + i*keep*keep`. The whole population rides two large
  /// stacked GEMMs through the kernel backend dispatch, partitioned across
  /// the pool by clip row ranges. Per element this is the same kernel and
  /// accumulation order as forward_lowfreq, so results are bit-identical to
  /// the per-clip path on every backend (scalar, blocked, avx2) at any
  /// HSD_THREADS; cross-backend comparisons stay under the §13/§15 ULP
  /// contract.
  void forward_lowfreq_batch(const float* blocks, std::size_t count,
                             std::size_t keep, float* out) const;

  /// forward_lowfreq_batch with the magnitude epilogue `|y| * scale` fused
  /// into the output pass (the feature encoding data::FeatureExtractor
  /// uses, with scale = 1/n so the DC term is mean coverage).
  void forward_lowfreq_batch_abs(const float* blocks, std::size_t count,
                                 std::size_t keep, float scale,
                                 float* out) const;

 private:
  void lowfreq_batch(const float* blocks, std::size_t count, std::size_t keep,
                     bool magnitude, float scale, float* out) const;

  std::size_t n_;
  std::vector<float> basis_;   // row-major n x n, basis_[k*n + i] = C_{k,i}
};

}  // namespace hsd::tensor
