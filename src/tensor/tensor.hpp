#pragma once
// Minimal dense tensor used by the neural-network engine and feature
// pipeline. Row-major float storage, up to rank-4 shapes (N, C, H, W).
//
// The class is a regular value type: cheap default construction, deep copy,
// move. All shape errors throw std::invalid_argument; indexing is unchecked
// in release builds via operator[] and checked via at().

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <stdexcept>
#include <vector>

#include "stats/rng.hpp"

namespace hsd::tensor {

/// Shape of a tensor; an empty shape denotes an empty tensor.
using Shape = std::vector<std::size_t>;

/// Dense row-major float tensor.
class Tensor {
 public:
  Tensor() = default;

  /// Creates a zero-filled tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Creates a tensor of the given shape filled with `value`.
  Tensor(Shape shape, float value);

  /// Creates a tensor from explicit data; data.size() must equal the shape
  /// volume.
  Tensor(Shape shape, std::vector<float> data);

  /// Convenience rank-1 constructor.
  static Tensor from_vector(const std::vector<float>& v);

  /// Tensor of i.i.d. N(mean, stddev) entries.
  static Tensor randn(Shape shape, hsd::stats::Rng& rng, float mean = 0.0F,
                      float stddev = 1.0F);

  /// Tensor of i.i.d. U[lo, hi) entries.
  static Tensor rand_uniform(Shape shape, hsd::stats::Rng& rng, float lo,
                             float hi);

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Extent of dimension `d`; throws if out of range.
  std::size_t dim(std::size_t d) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Bounds-checked flat access.
  float& at(std::size_t i);
  float at(std::size_t i) const;

  /// Multi-index access for ranks 2-4 (unchecked dimensions, checked rank).
  float& at2(std::size_t i, std::size_t j);
  float at2(std::size_t i, std::size_t j) const;
  float& at3(std::size_t i, std::size_t j, std::size_t k);
  float at3(std::size_t i, std::size_t j, std::size_t k) const;
  float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  float at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  /// Returns a reshaped copy-free view (same data, new shape); the new shape
  /// must have the same volume.
  Tensor reshaped(Shape new_shape) const;

  void fill(float value);

  /// Element-wise in-place operations (shapes must match exactly).
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float s);

  /// axpy: this += alpha * other.
  void add_scaled(const Tensor& other, float alpha);

  /// Sum / min / max / mean over all elements.
  float sum() const;
  float min() const;
  float max() const;
  float mean() const;

  /// Underlying storage (e.g. for serialization).
  const std::vector<float>& storage() const { return data_; }
  std::vector<float>& storage() { return data_; }

  friend bool operator==(const Tensor& a, const Tensor& b) {
    return a.shape_ == b.shape_ && a.data_ == b.data_;
  }

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// Volume of a shape (product of extents; empty shape -> 0).
std::size_t volume(const Shape& shape);

/// Pretty-prints shape + first elements for debugging.
std::ostream& operator<<(std::ostream& os, const Tensor& t);

}  // namespace hsd::tensor
