#include "tensor/dct.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numbers>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/backend/backend.hpp"
#include "tensor/ops.hpp"

namespace hsd::tensor {

namespace {

obs::Counter& dct_calls() {
  // hsd-lint: allow(no-mutable-static) — magic-static metric handle
  static obs::Counter& calls = obs::counter("tensor/dct2d_calls");
  return calls;
}

obs::Counter& dct_batch_calls() {
  // hsd-lint: allow(no-mutable-static) — magic-static metric handle
  static obs::Counter& calls = obs::counter("tensor/dct2d_batch_calls");
  return calls;
}

}  // namespace

Dct2d::Dct2d(std::size_t n) : n_(n), basis_(n * n) {
  if (n == 0) throw std::invalid_argument("Dct2d: n == 0");
  const double pi = std::numbers::pi;
  const double nf = static_cast<double>(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double scale = k == 0 ? std::sqrt(1.0 / nf) : std::sqrt(2.0 / nf);
    for (std::size_t i = 0; i < n; ++i) {
      basis_[k * n + i] = static_cast<float>(
          scale * std::cos(pi * (static_cast<double>(i) + 0.5) *
                           static_cast<double>(k) / nf));
    }
  }
}

std::vector<float> Dct2d::forward(const std::vector<float>& block) const {
  if (block.size() != n_ * n_) throw std::invalid_argument("Dct2d::forward: bad block size");
  dct_calls().add();
  // The separable transform C * X * C^T is two GEMMs, routed through the
  // kernel backend dispatch so the DCT rides the vectorized path. With the
  // scalar backend the accumulation order per element is identical to the
  // historical hand-rolled loops (ascending inner index).
  std::vector<float> tmp(n_ * n_);
  matmul(basis_.data(), block.data(), tmp.data(), n_, n_, n_);
  std::vector<float> out(n_ * n_);
  matmul_a_bt(tmp.data(), basis_.data(), out.data(), n_, n_, n_);
  return out;
}

std::vector<float> Dct2d::inverse(const std::vector<float>& coeffs) const {
  if (coeffs.size() != n_ * n_) throw std::invalid_argument("Dct2d::inverse: bad size");
  dct_calls().add();
  // X = C^T * Y * C, again two dispatched GEMMs.
  std::vector<float> tmp(n_ * n_);
  matmul_at_b(basis_.data(), coeffs.data(), tmp.data(), n_, n_, n_);
  std::vector<float> out(n_ * n_);
  matmul(tmp.data(), basis_.data(), out.data(), n_, n_, n_);
  return out;
}

std::vector<float> Dct2d::forward_lowfreq(const std::vector<float>& block,
                                          std::size_t keep) const {
  if (keep > n_) throw std::invalid_argument("Dct2d::forward_lowfreq: keep > n");
  if (block.size() != n_ * n_) {
    throw std::invalid_argument("Dct2d::forward_lowfreq: bad block size");
  }
  dct_calls().add();
  if (keep == 0) return {};
  // Only the `keep` lowest-frequency basis rows survive into the feature,
  // so the first GEMM computes just those rows of C * X and the second just
  // the keep x keep block of (C * X) * C^T. The retained rows of basis_ are
  // a contiguous prefix and every kernel is row-local, so each surviving
  // element is bit-identical to the full n x n transform followed by a crop
  // — at keep/n of the arithmetic.
  std::vector<float> tmp(keep * n_);
  matmul(basis_.data(), block.data(), tmp.data(), keep, n_, n_);
  std::vector<float> out(keep * keep);
  matmul_a_bt(tmp.data(), basis_.data(), out.data(), keep, n_, keep);
  return out;
}

void Dct2d::forward_lowfreq_batch(const float* blocks, std::size_t count,
                                  std::size_t keep, float* out) const {
  lowfreq_batch(blocks, count, keep, /*magnitude=*/false, 1.0F, out);
}

void Dct2d::forward_lowfreq_batch_abs(const float* blocks, std::size_t count,
                                      std::size_t keep, float scale,
                                      float* out) const {
  lowfreq_batch(blocks, count, keep, /*magnitude=*/true, scale, out);
}

void Dct2d::lowfreq_batch(const float* blocks, std::size_t count,
                          std::size_t keep, bool magnitude, float scale,
                          float* out) const {
  if (keep > n_) {
    throw std::invalid_argument("Dct2d::forward_lowfreq_batch: keep > n");
  }
  if (count == 0 || keep == 0) return;
  if (blocks == nullptr || out == nullptr) {
    throw std::invalid_argument("Dct2d::forward_lowfreq_batch: null buffer");
  }
  HSD_SPAN("tensor/dct2d_batch");
  dct_calls().add(count);
  dct_batch_calls().add();

  // The clips are interleaved column-wise so the first basis multiply runs
  // as one wide gemm() call, then re-gathered into per-clip rows so the
  // second runs as one tall gemm_a_bt():
  //
  //   XB   = [X_0 | X_1 | ... ]    (g x nblk*g, row i of clip c at columns
  //                                 [c*g, (c+1)*g))
  //   TMP  = C_keep * XB           (keep x nblk*g; column block c is exactly
  //                                 C_keep * X_c)
  //   TMPS = rows of TMP gathered per clip ((nblk*keep) x g, contiguous
  //                                 memcpy per row)
  //   OUT  = gemm_a_bt(TMPS, C_keep)  ((nblk*keep) x keep, written straight
  //                                 into the caller's buffer)
  //
  // Bit-exactness with the per-clip path, per element, on every backend:
  // stage 1 is the same gemm kernel over the same basis rows — each element
  // accumulates the identical products in the identical ascending order
  // whatever the column count — and stage 2 is literally the per-clip
  // second GEMM on concatenated rows of a row-local kernel. Parallel blocks
  // cover whole clips and never split an accumulation, so any HSD_THREADS
  // yields the same bits.
  const std::size_t g = n_;
  const backend::Backend& be = backend::active();
  // Clips per stacked GEMM: wide enough to amortize kernel entry, small
  // enough that XB (kChunk * g^2 floats) stays L2-resident.
  constexpr std::size_t kChunk = 64;
  const std::size_t ops = g * keep * (g + keep);
  const std::size_t grain =
      std::max<std::size_t>(kChunk, (std::size_t{1} << 18) / ops);
  runtime::parallel_for(0, count, grain, [&](std::size_t c0, std::size_t c1) {
    const std::size_t cap = std::min(kChunk, c1 - c0);
    // One uninitialized scratch block per parallel block, reused across
    // chunks: every region is fully written before it is read (xb/tmps by
    // the pack loops, tmp by the gemm kernel itself), and value-initializing
    // ~cap*g^2 floats per block would cost more memset than the transform
    // does arithmetic.
    const auto scratch = std::make_unique_for_overwrite<float[]>(
        cap * g * g + 2 * cap * keep * g);
    float* const xb = scratch.get();          // clips interleaved by column
    float* const tmp = xb + cap * g * g;      // C_keep * XB
    float* const tmps = tmp + cap * keep * g; // per-clip rows of TMP
    for (std::size_t cc0 = c0; cc0 < c1; cc0 += kChunk) {
      const std::size_t cc1 = std::min(c1, cc0 + kChunk);
      const std::size_t nblk = cc1 - cc0;
      const std::size_t w = nblk * g;  // stage-1 column count
      // Pack in tiles of a few clips so the destination writes stay mostly
      // sequential while the reads are a handful of prefetchable streams.
      constexpr std::size_t kPackTile = 8;
      for (std::size_t ct = cc0; ct < cc1; ct += kPackTile) {
        const std::size_t ce = std::min(cc1, ct + kPackTile);
        for (std::size_t i = 0; i < g; ++i) {
          for (std::size_t c = ct; c < ce; ++c) {
            std::memcpy(xb + i * w + (c - cc0) * g, blocks + c * g * g + i * g,
                        g * sizeof(float));
          }
        }
      }
      be.gemm(basis_.data(), xb, tmp, 0, keep, g, w);
      for (std::size_t l = 0; l < nblk; ++l) {
        for (std::size_t u = 0; u < keep; ++u) {
          std::memcpy(tmps + (l * keep + u) * g, tmp + u * w + l * g,
                      g * sizeof(float));
        }
      }
      float* const o = out + cc0 * keep * keep;
      be.gemm_a_bt(tmps, basis_.data(), o, 0, nblk * keep, g, keep);
      if (magnitude) {
        const std::size_t total = nblk * keep * keep;
        for (std::size_t i = 0; i < total; ++i) o[i] = std::abs(o[i]) * scale;
      }
    }
  });
}

}  // namespace hsd::tensor
