#include "tensor/dct.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace hsd::tensor {

Dct2d::Dct2d(std::size_t n) : n_(n), basis_(n * n) {
  if (n == 0) throw std::invalid_argument("Dct2d: n == 0");
  const double pi = std::numbers::pi;
  const double nf = static_cast<double>(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double scale = k == 0 ? std::sqrt(1.0 / nf) : std::sqrt(2.0 / nf);
    for (std::size_t i = 0; i < n; ++i) {
      basis_[k * n + i] = static_cast<float>(
          scale * std::cos(pi * (static_cast<double>(i) + 0.5) *
                           static_cast<double>(k) / nf));
    }
  }
}

std::vector<float> Dct2d::forward(const std::vector<float>& block) const {
  if (block.size() != n_ * n_) throw std::invalid_argument("Dct2d::forward: bad block size");
  // tmp = C * X
  std::vector<float> tmp(n_ * n_, 0.0F);
  for (std::size_t k = 0; k < n_; ++k) {
    for (std::size_t i = 0; i < n_; ++i) {
      const float cki = basis_[k * n_ + i];
      if (cki == 0.0F) continue;
      const float* xrow = block.data() + i * n_;
      float* trow = tmp.data() + k * n_;
      for (std::size_t j = 0; j < n_; ++j) trow[j] += cki * xrow[j];
    }
  }
  // out = tmp * C^T
  std::vector<float> out(n_ * n_, 0.0F);
  for (std::size_t k = 0; k < n_; ++k) {
    for (std::size_t l = 0; l < n_; ++l) {
      const float* trow = tmp.data() + k * n_;
      const float* crow = basis_.data() + l * n_;
      float s = 0.0F;
      for (std::size_t j = 0; j < n_; ++j) s += trow[j] * crow[j];
      out[k * n_ + l] = s;
    }
  }
  return out;
}

std::vector<float> Dct2d::inverse(const std::vector<float>& coeffs) const {
  if (coeffs.size() != n_ * n_) throw std::invalid_argument("Dct2d::inverse: bad size");
  // X = C^T * Y * C
  std::vector<float> tmp(n_ * n_, 0.0F);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t k = 0; k < n_; ++k) {
      const float cki = basis_[k * n_ + i];
      if (cki == 0.0F) continue;
      const float* yrow = coeffs.data() + k * n_;
      float* trow = tmp.data() + i * n_;
      for (std::size_t l = 0; l < n_; ++l) trow[l] += cki * yrow[l];
    }
  }
  std::vector<float> out(n_ * n_, 0.0F);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      const float* trow = tmp.data() + i * n_;
      float s = 0.0F;
      for (std::size_t l = 0; l < n_; ++l) s += trow[l] * basis_[l * n_ + j];
      out[i * n_ + j] = s;
    }
  }
  return out;
}

std::vector<float> Dct2d::forward_lowfreq(const std::vector<float>& block,
                                          std::size_t keep) const {
  if (keep > n_) throw std::invalid_argument("Dct2d::forward_lowfreq: keep > n");
  const std::vector<float> full = forward(block);
  std::vector<float> out(keep * keep);
  for (std::size_t i = 0; i < keep; ++i) {
    for (std::size_t j = 0; j < keep; ++j) out[i * keep + j] = full[i * n_ + j];
  }
  return out;
}

}  // namespace hsd::tensor
