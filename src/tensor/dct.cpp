#include "tensor/dct.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "tensor/ops.hpp"

namespace hsd::tensor {

namespace {

obs::Counter& dct_calls() {
  // hsd-lint: allow(no-mutable-static) — magic-static metric handle
  static obs::Counter& calls = obs::counter("tensor/dct2d_calls");
  return calls;
}

}  // namespace

Dct2d::Dct2d(std::size_t n) : n_(n), basis_(n * n) {
  if (n == 0) throw std::invalid_argument("Dct2d: n == 0");
  const double pi = std::numbers::pi;
  const double nf = static_cast<double>(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double scale = k == 0 ? std::sqrt(1.0 / nf) : std::sqrt(2.0 / nf);
    for (std::size_t i = 0; i < n; ++i) {
      basis_[k * n + i] = static_cast<float>(
          scale * std::cos(pi * (static_cast<double>(i) + 0.5) *
                           static_cast<double>(k) / nf));
    }
  }
}

std::vector<float> Dct2d::forward(const std::vector<float>& block) const {
  if (block.size() != n_ * n_) throw std::invalid_argument("Dct2d::forward: bad block size");
  dct_calls().add();
  // The separable transform C * X * C^T is two GEMMs, routed through the
  // kernel backend dispatch so the DCT rides the vectorized path. With the
  // scalar backend the accumulation order per element is identical to the
  // historical hand-rolled loops (ascending inner index).
  std::vector<float> tmp(n_ * n_);
  matmul(basis_.data(), block.data(), tmp.data(), n_, n_, n_);
  std::vector<float> out(n_ * n_);
  matmul_a_bt(tmp.data(), basis_.data(), out.data(), n_, n_, n_);
  return out;
}

std::vector<float> Dct2d::inverse(const std::vector<float>& coeffs) const {
  if (coeffs.size() != n_ * n_) throw std::invalid_argument("Dct2d::inverse: bad size");
  dct_calls().add();
  // X = C^T * Y * C, again two dispatched GEMMs.
  std::vector<float> tmp(n_ * n_);
  matmul_at_b(basis_.data(), coeffs.data(), tmp.data(), n_, n_, n_);
  std::vector<float> out(n_ * n_);
  matmul(tmp.data(), basis_.data(), out.data(), n_, n_, n_);
  return out;
}

std::vector<float> Dct2d::forward_lowfreq(const std::vector<float>& block,
                                          std::size_t keep) const {
  if (keep > n_) throw std::invalid_argument("Dct2d::forward_lowfreq: keep > n");
  const std::vector<float> full = forward(block);
  std::vector<float> out(keep * keep);
  for (std::size_t i = 0; i < keep; ++i) {
    for (std::size_t j = 0; j < keep; ++j) out[i * keep + j] = full[i * n_ + j];
  }
  return out;
}

}  // namespace hsd::tensor
