#include "tensor/ops.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/backend/backend.hpp"
#include "tensor/backend/impl.hpp"

namespace hsd::tensor {

namespace {

// Rows per parallel_for block so each block carries enough arithmetic to
// amortize a fork. parallel_for runs inline when one block covers the
// whole range, so small GEMMs never pay for threading.
std::size_t row_grain(std::size_t ops_per_row) {
  constexpr std::size_t kMinOpsPerBlock = std::size_t{1} << 15;
  if (ops_per_row == 0) return kMinOpsPerBlock;
  return std::max<std::size_t>(1, (kMinOpsPerBlock + ops_per_row - 1) / ops_per_row);
}

// Per-backend per-kernel dispatch counters, indexed by Backend::ordinal so
// the hot path pays an array load instead of a registry name lookup.
struct KernelCounters {
  obs::Counter* gemm;
  obs::Counter* gemm_at_b;
  obs::Counter* gemm_a_bt;
  obs::Counter* im2col;
};

const KernelCounters& dispatch_counters(const backend::Backend& be) {
  static const std::array<KernelCounters, backend::kBackendSlots> all = [] {
    std::array<KernelCounters, backend::kBackendSlots> out{};
    const char* names[backend::kBackendSlots] = {"scalar", "blocked", "avx2"};
    for (std::size_t i = 0; i < backend::kBackendSlots; ++i) {
      const std::string prefix = std::string("tensor/") + names[i] + "/";
      out[i] = {&obs::counter(prefix + "gemm"),
                &obs::counter(prefix + "gemm_at_b"),
                &obs::counter(prefix + "gemm_a_bt"),
                &obs::counter(prefix + "im2col")};
    }
    return out;
  }();
  return all[backend::ordinal_of(be)];
}

}  // namespace

void matmul(const float* a, const float* b, float* c, std::size_t m,
            std::size_t k, std::size_t n) {
  HSD_SPAN("tensor/matmul");
  HSD_DCHECK(a != nullptr && b != nullptr && c != nullptr, "matmul: null operand");
  debug_check_finite(a, m * k, "matmul: A");
  debug_check_finite(b, k * n, "matmul: B");
  // hsd-lint: allow(no-mutable-static) — magic-static metric handle
  static obs::Counter& calls = obs::counter("tensor/matmul_calls");
  calls.add();
  // Rows of C are independent, so blocks of rows go wide; every backend
  // accumulates each element over p in ascending order, keeping results
  // bit-identical across thread counts (see backend/backend.hpp).
  const backend::Backend& be = backend::active();
  dispatch_counters(be).gemm->add();
  runtime::parallel_for(0, m, row_grain(k * n),
                        [=, &be](std::size_t i0, std::size_t i1) {
                          be.gemm(a, b, c, i0, i1, k, n);
                        });
}

void matmul_at_b(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n) {
  HSD_SPAN("tensor/matmul_at_b");
  HSD_DCHECK(a != nullptr && b != nullptr && c != nullptr, "matmul_at_b: null operand");
  debug_check_finite(a, k * m, "matmul_at_b: A");
  debug_check_finite(b, k * n, "matmul_at_b: B");
  // hsd-lint: allow(no-mutable-static) — magic-static metric handle
  static obs::Counter& calls = obs::counter("tensor/matmul_calls");
  calls.add();
  const backend::Backend& be = backend::active();
  dispatch_counters(be).gemm_at_b->add();
  runtime::parallel_for(0, m, row_grain(k * n),
                        [=, &be](std::size_t i0, std::size_t i1) {
                          be.gemm_at_b(a, b, c, m, i0, i1, k, n);
                        });
}

void matmul_a_bt(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n) {
  HSD_SPAN("tensor/matmul_a_bt");
  HSD_DCHECK(a != nullptr && b != nullptr && c != nullptr, "matmul_a_bt: null operand");
  debug_check_finite(a, m * k, "matmul_a_bt: A");
  debug_check_finite(b, n * k, "matmul_a_bt: B");
  // hsd-lint: allow(no-mutable-static) — magic-static metric handle
  static obs::Counter& calls = obs::counter("tensor/matmul_calls");
  calls.add();
  const backend::Backend& be = backend::active();
  dispatch_counters(be).gemm_a_bt->add();
  runtime::parallel_for(0, m, row_grain(k * n),
                        [=, &be](std::size_t i0, std::size_t i1) {
                          be.gemm_a_bt(a, b, c, i0, i1, k, n);
                        });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("matmul: incompatible shapes");
  }
  Tensor c({a.dim(0), b.dim(1)});
  matmul(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(1));
  debug_check_finite(c.data(), c.size(), "matmul: C");
  return c;
}

std::size_t conv_out_extent(std::size_t in, std::size_t kernel,
                            std::size_t stride, std::size_t pad) {
  if (stride == 0) throw std::invalid_argument("conv_out_extent: stride == 0");
  if (in + 2 * pad < kernel) {
    throw std::invalid_argument("conv_out_extent: kernel larger than padded input");
  }
  return (in + 2 * pad - kernel) / stride + 1;
}

void im2col(const float* image, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kh, std::size_t kw,
            std::size_t stride, std::size_t pad, float* columns) {
  HSD_SPAN("tensor/im2col");
  const std::size_t oh = conv_out_extent(height, kh, stride, pad);
  const std::size_t ow = conv_out_extent(width, kw, stride, pad);
  const std::size_t out_spatial = oh * ow;
  // Each (c, ki, kj) combination fills a disjoint `columns` row. im2col is
  // pure data movement, so every backend must (and does) produce identical
  // bytes; the fast backends just memset/memcpy whole segments.
  const backend::Backend& be = backend::active();
  dispatch_counters(be).im2col->add();
  runtime::parallel_for(0, channels * kh * kw, row_grain(out_spatial),
                        [=, &be](std::size_t r0, std::size_t r1) {
                          be.im2col(image, height, width, kh, kw, stride, pad,
                                    oh, ow, r0, r1, columns);
                        });
}

void col2im(const float* columns, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kh, std::size_t kw,
            std::size_t stride, std::size_t pad, float* image_grad) {
  HSD_SPAN("tensor/col2im");
  const std::size_t oh = conv_out_extent(height, kh, stride, pad);
  const std::size_t ow = conv_out_extent(width, kw, stride, pad);
  const std::size_t out_spatial = oh * ow;
  // Kernel offsets of one channel scatter-add into overlapping pixels, so
  // only the channel dimension can go wide (disjoint image planes).
  runtime::parallel_for(0, channels, 1, [=](std::size_t c0, std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c) {
      for (std::size_t ki = 0; ki < kh; ++ki) {
        for (std::size_t kj = 0; kj < kw; ++kj) {
          const std::size_t row = (c * kh + ki) * kw + kj;
          const float* src = columns + row * out_spatial;
          for (std::size_t oi = 0; oi < oh; ++oi) {
            const std::ptrdiff_t ii =
                static_cast<std::ptrdiff_t>(oi * stride + ki) -
                static_cast<std::ptrdiff_t>(pad);
            if (ii < 0 || ii >= static_cast<std::ptrdiff_t>(height)) continue;
            for (std::size_t oj = 0; oj < ow; ++oj) {
              const std::ptrdiff_t jj =
                  static_cast<std::ptrdiff_t>(oj * stride + kj) -
                  static_cast<std::ptrdiff_t>(pad);
              if (jj < 0 || jj >= static_cast<std::ptrdiff_t>(width)) continue;
              image_grad[(c * height + static_cast<std::size_t>(ii)) * width +
                         static_cast<std::size_t>(jj)] += src[oi * ow + oj];
            }
          }
        }
      }
    }
  });
}

std::vector<double> softmax(const std::vector<double>& logits, double temperature) {
  if (temperature <= 0.0) throw std::invalid_argument("softmax: temperature <= 0");
  std::vector<double> out(logits.size());
  if (logits.empty()) return out;
  double mx = logits[0];
  for (double z : logits) mx = std::max(mx, z);
  double denom = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp((logits[i] - mx) / temperature);
    denom += out[i];
  }
  for (double& p : out) p /= denom;
  return out;
}

Tensor softmax_rows(const Tensor& logits, double temperature) {
  if (logits.rank() != 2) throw std::invalid_argument("softmax_rows: rank != 2");
  if (temperature <= 0.0) throw std::invalid_argument("softmax_rows: temperature <= 0");
  const std::size_t rows = logits.dim(0);
  const std::size_t cols = logits.dim(1);
  Tensor out({rows, cols});
  for (std::size_t i = 0; i < rows; ++i) {
    const float* src = logits.data() + i * cols;
    float* dst = out.data() + i * cols;
    float mx = src[0];
    for (std::size_t j = 1; j < cols; ++j) mx = std::max(mx, src[j]);
    float denom = 0.0F;
    for (std::size_t j = 0; j < cols; ++j) {
      dst[j] = std::exp((src[j] - mx) / static_cast<float>(temperature));
      denom += dst[j];
    }
    for (std::size_t j = 0; j < cols; ++j) dst[j] /= denom;
  }
  return out;
}

std::size_t argmax(const std::vector<double>& row) {
  if (row.empty()) throw std::invalid_argument("argmax: empty row");
  return static_cast<std::size_t>(std::max_element(row.begin(), row.end()) -
                                  row.begin());
}

Tensor gather_rows(const Tensor& x, const std::vector<std::size_t>& indices) {
  if (x.rank() < 1) throw std::invalid_argument("gather_rows: rank 0 tensor");
  const std::size_t n = x.dim(0);
  const std::size_t row_size = n > 0 ? x.size() / n : 0;
  Shape shape = x.shape();
  shape[0] = indices.size();
  Tensor out(shape);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= n) throw std::out_of_range("gather_rows: index out of range");
    std::memcpy(out.data() + i * row_size, x.data() + indices[i] * row_size,
                row_size * sizeof(float));
  }
  return out;
}

}  // namespace hsd::tensor
