#pragma once
// Dense kernels behind the neural-network engine: GEMM, im2col/col2im for
// convolution, pooling helpers, softmax, and reductions.

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "tensor/tensor.hpp"

namespace hsd::tensor {

/// Debug-build guard: aborts if any of the `n` floats is NaN or Inf.
/// Compiled out under NDEBUG — the O(n) scan is too expensive for Release
/// hot paths, but in Debug it pins poisoned values to the kernel entry that
/// first saw them instead of a downstream metric going quietly wrong.
inline void debug_check_finite([[maybe_unused]] const float* data,
                               [[maybe_unused]] std::size_t n,
                               [[maybe_unused]] const char* what) {
#ifndef NDEBUG
  for (std::size_t i = 0; i < n; ++i) {
    HSD_CHECK(std::isfinite(data[i]), what, ": non-finite value at index ", i);
  }
#endif
}

/// C = A * B for row-major matrices; A is (m x k), B is (k x n), C is (m x n).
/// C is overwritten.
void matmul(const float* a, const float* b, float* c, std::size_t m,
            std::size_t k, std::size_t n);

/// C = A^T * B; A is (k x m), B is (k x n), C is (m x n).
void matmul_at_b(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n);

/// C = A * B^T; A is (m x k), B is (n x k), C is (m x n).
void matmul_a_bt(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n);

/// Rank-2 convenience overload: returns A(m x k) * B(k x n).
Tensor matmul(const Tensor& a, const Tensor& b);

/// Spatial output extent for a convolution/pooling dimension.
/// Requires in + 2*pad >= kernel and stride >= 1.
std::size_t conv_out_extent(std::size_t in, std::size_t kernel,
                            std::size_t stride, std::size_t pad);

/// im2col: unpacks one image (C, H, W) into a (C*KH*KW) x (OH*OW) matrix so
/// convolution becomes a single GEMM. Zero padding.
void im2col(const float* image, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kh, std::size_t kw,
            std::size_t stride, std::size_t pad, float* columns);

/// col2im: scatters gradient columns back into an image gradient; the
/// adjoint of im2col. `image_grad` is accumulated into (caller zeroes it).
void col2im(const float* columns, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kh, std::size_t kw,
            std::size_t stride, std::size_t pad, float* image_grad);

/// Numerically stable softmax over the last dimension of a rank-2 tensor of
/// logits (rows = samples). Optional temperature divides logits first
/// (Eq. 5 of the paper); T must be > 0.
Tensor softmax_rows(const Tensor& logits, double temperature = 1.0);

/// Softmax of a single logit row.
std::vector<double> softmax(const std::vector<double>& logits,
                            double temperature = 1.0);

/// argmax over a row.
std::size_t argmax(const std::vector<double>& row);

/// Copies rows `indices` of the sample-major tensor `x` (any rank >= 1,
/// first dim = samples) into a new batch tensor.
Tensor gather_rows(const Tensor& x, const std::vector<std::size_t>& indices);

}  // namespace hsd::tensor
