#pragma once
// Kernel-dispatch layer for the dense hot paths (GEMM family, im2col).
//
// A Backend is a set of row-range kernels with one shared contract:
//
//   * Each output element c[i][j] accumulates its k products in ascending-p
//     order into a single accumulator. Threading partitions disjoint row
//     ranges, so any backend is bit-identical to itself at every
//     HSD_THREADS — the determinism property PR 1 established for the
//     scalar path holds for every backend by construction.
//   * The `scalar` backend is the bit-exact reference; `blocked` tiles the
//     loops without reordering any per-element accumulation and must match
//     scalar bit for bit; `avx2` keeps the ascending-p order but fuses
//     multiply-add (FMA) and vector-reduces dot products, so it agrees
//     with scalar only within the documented ULP tolerances
//     (tests/backend_compare.hpp is the gate).
//
// Selection order (first hit wins), resolved once on first kernel call:
//   1. HSD_BACKEND environment variable: scalar | blocked | avx2 | auto.
//      Naming an unavailable backend throws — an explicit request must not
//      silently degrade.
//   2. `auto` (also the default when the variable is unset): the fastest
//      backend the CPU supports — avx2 when compiled in and CPUID reports
//      AVX2+FMA, else blocked.
//
// Tests and benches switch backends with set_active(); the active backend
// is recorded in obs metrics (gauge `tensor/backend`, counter
// `tensor/backend/<name>/selected`) and every dispatch bumps a per-backend
// per-kernel counter (`tensor/<name>/gemm` ...), so benchmark numbers and
// telemetry always attribute to the code that produced them.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace hsd::tensor::backend {

/// Row-range kernels. `a`, `b`, `c` always point at the full operands; the
/// [i0, i1) range selects the C rows (or im2col rows) this call produces.
/// Every call fully overwrites the rows it owns.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Stable lowercase identifier ("scalar", "blocked", "avx2").
  virtual std::string_view name() const = 0;

  /// True when the current CPU can execute this backend.
  virtual bool supported() const = 0;

  /// C = A * B; A is (m x k), B is (k x n). Rows [i0, i1) of C.
  virtual void gemm(const float* a, const float* b, float* c, std::size_t i0,
                    std::size_t i1, std::size_t k, std::size_t n) const = 0;

  /// C = A^T * B; A is (k x m), B is (k x n). Rows [i0, i1) of C.
  virtual void gemm_at_b(const float* a, const float* b, float* c,
                         std::size_t m, std::size_t i0, std::size_t i1,
                         std::size_t k, std::size_t n) const = 0;

  /// C = A * B^T; A is (m x k), B is (n x k). Rows [i0, i1) of C.
  virtual void gemm_a_bt(const float* a, const float* b, float* c,
                         std::size_t i0, std::size_t i1, std::size_t k,
                         std::size_t n) const = 0;

  /// im2col rows [r0, r1) of the (channels*kh*kw) x (oh*ow) column matrix.
  /// Pure data movement — every backend must match scalar bit for bit.
  virtual void im2col(const float* image, std::size_t height, std::size_t width,
                      std::size_t kh, std::size_t kw, std::size_t stride,
                      std::size_t pad, std::size_t oh, std::size_t ow,
                      std::size_t r0, std::size_t r1, float* columns) const = 0;
};

/// The bit-exact reference backend (always available).
const Backend& scalar_backend();

/// Every compiled-in backend the current CPU supports, fastest first.
std::vector<const Backend*> available_backends();

/// Lookup by name; nullptr when unknown or unsupported on this CPU.
const Backend* find_backend(std::string_view name);

/// The backend kernels dispatch to. First call resolves HSD_BACKEND.
const Backend& active();

/// Name of the active backend (resolves it if needed).
std::string_view active_name();

/// Replaces the active backend ("scalar", "blocked", "avx2", or "auto").
/// Test/bench hook; must not race with in-flight kernels (same contract as
/// runtime::set_global_threads). Throws std::runtime_error when the name is
/// unknown or the backend is unsupported on this CPU.
void set_active(std::string_view name);

}  // namespace hsd::tensor::backend
