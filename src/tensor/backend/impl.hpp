#pragma once
// Internal backend implementations. Only backend.cpp / avx2.cpp and the
// differential tests include this; library code dispatches through
// backend::active() and never names a concrete backend.

#include "tensor/backend/backend.hpp"

namespace hsd::tensor::backend {

/// Number of distinct backend ordinals ever compiled in (scalar, blocked,
/// avx2). Metric caches index by Backend::ordinal(), which is < this.
inline constexpr std::size_t kBackendSlots = 3;

/// Ordinal of a backend, stable across processes: scalar=0, blocked=1,
/// avx2=2. Exposed so dispatch-site metric caches can be arrays.
std::size_t ordinal_of(const Backend& b);

/// The verbatim loops PR 1 parallelized — the bit-exact reference.
class ScalarBackend : public Backend {
 public:
  std::string_view name() const override { return "scalar"; }
  bool supported() const override { return true; }
  void gemm(const float* a, const float* b, float* c, std::size_t i0,
            std::size_t i1, std::size_t k, std::size_t n) const override;
  void gemm_at_b(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t i0, std::size_t i1, std::size_t k,
                 std::size_t n) const override;
  void gemm_a_bt(const float* a, const float* b, float* c, std::size_t i0,
                 std::size_t i1, std::size_t k, std::size_t n) const override;
  void im2col(const float* image, std::size_t height, std::size_t width,
              std::size_t kh, std::size_t kw, std::size_t stride,
              std::size_t pad, std::size_t oh, std::size_t ow, std::size_t r0,
              std::size_t r1, float* columns) const override;
};

/// Cache-tiled loops. Tiling only changes which (i, j) cell is visited
/// when; every cell still accumulates its k products ascending-p into one
/// accumulator, so this backend is gated on EXACT bit equality with
/// scalar (see tensor_backend_test.cpp).
class BlockedBackend : public Backend {
 public:
  std::string_view name() const override { return "blocked"; }
  bool supported() const override { return true; }
  void gemm(const float* a, const float* b, float* c, std::size_t i0,
            std::size_t i1, std::size_t k, std::size_t n) const override;
  void gemm_at_b(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t i0, std::size_t i1, std::size_t k,
                 std::size_t n) const override;
  void gemm_a_bt(const float* a, const float* b, float* c, std::size_t i0,
                 std::size_t i1, std::size_t k, std::size_t n) const override;
  /// Edge-aware: zero borders via memset, stride-1 interiors via memcpy.
  /// Pure data movement, so still bit-exact.
  void im2col(const float* image, std::size_t height, std::size_t width,
              std::size_t kh, std::size_t kw, std::size_t stride,
              std::size_t pad, std::size_t oh, std::size_t ow, std::size_t r0,
              std::size_t r1, float* columns) const override;
};

/// The AVX2+FMA backend when compiled for x86 with GCC/Clang, else
/// nullptr. The returned object's supported() still gates on CPUID at
/// runtime (compile-time availability != the deployment machine's ISA).
const Backend* avx2_backend_or_null();

}  // namespace hsd::tensor::backend
