// AVX2 + FMA kernels with runtime CPUID dispatch. This file is the ONLY
// place SIMD intrinsics are allowed (hsd_lint rule no-raw-simd); it always
// compiles with the project's baseline flags — the vector bodies carry
// per-function target attributes, and supported() gates execution on
// __builtin_cpu_supports, so a binary built here runs unchanged on a
// pre-AVX2 machine (it just never selects this backend).
//
// Numerics contract: every c[i][j] still accumulates its k products in
// ascending-p order, but (a) multiplies and adds fuse into FMAs with no
// intermediate rounding, and (b) gemm_a_bt dot products reduce through 8
// vector lanes before a horizontal sum. Both deviations are ULP-bounded
// against the scalar reference and gated by tensor_backend_test.

#include "tensor/backend/impl.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define HSD_BACKEND_COMPILED_AVX2 1
#include <immintrin.h>

#include <cmath>
#include <cstring>
#endif

namespace hsd::tensor::backend {

#ifdef HSD_BACKEND_COMPILED_AVX2

namespace {

#define HSD_AVX2_TARGET __attribute__((target("avx2,fma")))

/// Horizontal sum of one ymm register. The lane-pairing order is fixed, so
/// the reduction is deterministic (just not the scalar order).
HSD_AVX2_TARGET inline float hsum8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

/// One C row: c[j] += aip * b[j] over a j range, 16 floats per iteration.
HSD_AVX2_TARGET inline void axpy_row(float aip, const float* brow, float* crow,
                                     std::size_t n) {
  const __m256 va = _mm256_set1_ps(aip);
  std::size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    __m256 c0 = _mm256_loadu_ps(crow + j);
    __m256 c1 = _mm256_loadu_ps(crow + j + 8);
    c0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow + j), c0);
    c1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow + j + 8), c1);
    _mm256_storeu_ps(crow + j, c0);
    _mm256_storeu_ps(crow + j + 8, c1);
  }
  for (; j + 8 <= n; j += 8) {
    __m256 c0 = _mm256_loadu_ps(crow + j);
    c0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow + j), c0);
    _mm256_storeu_ps(crow + j, c0);
  }
  for (; j < n; ++j) crow[j] = std::fmaf(aip, brow[j], crow[j]);
}

/// C = A * B rows [i0, i1). 2 rows x 16 columns of C live in registers
/// across the whole p loop, so B traffic is halved and C is written once.
HSD_AVX2_TARGET void gemm_avx2(const float* a, const float* b, float* c,
                               std::size_t i0, std::size_t i1, std::size_t k,
                               std::size_t n) {
  std::size_t i = i0;
  for (; i + 2 <= i1; i += 2) {
    const float* arow0 = a + i * k;
    const float* arow1 = arow0 + k;
    float* crow0 = c + i * n;
    float* crow1 = crow0 + n;
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      __m256 c00 = _mm256_setzero_ps();
      __m256 c01 = _mm256_setzero_ps();
      __m256 c10 = _mm256_setzero_ps();
      __m256 c11 = _mm256_setzero_ps();
      for (std::size_t p = 0; p < k; ++p) {
        const __m256 b0 = _mm256_loadu_ps(b + p * n + j);
        const __m256 b1 = _mm256_loadu_ps(b + p * n + j + 8);
        const __m256 va0 = _mm256_set1_ps(arow0[p]);
        const __m256 va1 = _mm256_set1_ps(arow1[p]);
        c00 = _mm256_fmadd_ps(va0, b0, c00);
        c01 = _mm256_fmadd_ps(va0, b1, c01);
        c10 = _mm256_fmadd_ps(va1, b0, c10);
        c11 = _mm256_fmadd_ps(va1, b1, c11);
      }
      _mm256_storeu_ps(crow0 + j, c00);
      _mm256_storeu_ps(crow0 + j + 8, c01);
      _mm256_storeu_ps(crow1 + j, c10);
      _mm256_storeu_ps(crow1 + j + 8, c11);
    }
    if (j < n) {
      // Odd column tail: fall back to the axpy form for both rows.
      std::memset(crow0 + j, 0, (n - j) * sizeof(float));
      std::memset(crow1 + j, 0, (n - j) * sizeof(float));
      for (std::size_t p = 0; p < k; ++p) {
        axpy_row(arow0[p], b + p * n + j, crow0 + j, n - j);
        axpy_row(arow1[p], b + p * n + j, crow1 + j, n - j);
      }
    }
  }
  // Odd row tail. No zero-skip here (unlike scalar): whether a row lands in
  // the paired path or this one depends on how parallel_for partitioned the
  // rows, and bit-stability across thread counts requires the identical
  // per-element FMA chain either way.
  for (; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    std::memset(crow, 0, n * sizeof(float));
    for (std::size_t p = 0; p < k; ++p) {
      axpy_row(arow[p], b + p * n, crow, n);
    }
  }
}

/// C = A^T * B rows [i0, i1); A is (k x m) so a[i] is the strided column.
HSD_AVX2_TARGET void gemm_at_b_avx2(const float* a, const float* b, float* c,
                                    std::size_t m, std::size_t i0,
                                    std::size_t i1, std::size_t k,
                                    std::size_t n) {
  for (std::size_t i = i0; i < i1; ++i) {
    float* crow = c + i * n;
    std::memset(crow, 0, n * sizeof(float));
    const float* acol = a + i;
    for (std::size_t p = 0; p < k; ++p) {
      const float api = acol[p * m];
      if (api == 0.0F) continue;
      axpy_row(api, b + p * n, crow, n);
    }
  }
}

/// C = A * B^T rows [i0, i1): 8-lane dot products with a horizontal sum,
/// scalar FMA tail for k % 8.
HSD_AVX2_TARGET void gemm_a_bt_avx2(const float* a, const float* b, float* c,
                                    std::size_t i0, std::size_t i1,
                                    std::size_t k, std::size_t n) {
  for (std::size_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      __m256 acc = _mm256_setzero_ps();
      std::size_t p = 0;
      for (; p + 8 <= k; p += 8) {
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(arow + p),
                              _mm256_loadu_ps(brow + p), acc);
      }
      float s = hsum8(acc);
      for (; p < k; ++p) s = std::fmaf(arow[p], brow[p], s);
      c[i * n + j] = s;
    }
  }
}

class Avx2Backend final : public BlockedBackend {
 public:
  std::string_view name() const override { return "avx2"; }
  bool supported() const override {
    return __builtin_cpu_supports("avx2") != 0 &&
           __builtin_cpu_supports("fma") != 0;
  }
  void gemm(const float* a, const float* b, float* c, std::size_t i0,
            std::size_t i1, std::size_t k, std::size_t n) const override {
    gemm_avx2(a, b, c, i0, i1, k, n);
  }
  void gemm_at_b(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t i0, std::size_t i1, std::size_t k,
                 std::size_t n) const override {
    gemm_at_b_avx2(a, b, c, m, i0, i1, k, n);
  }
  void gemm_a_bt(const float* a, const float* b, float* c, std::size_t i0,
                 std::size_t i1, std::size_t k, std::size_t n) const override {
    gemm_a_bt_avx2(a, b, c, i0, i1, k, n);
  }
  // im2col: inherited from BlockedBackend — pure data movement gains
  // nothing from intrinsics and stays bit-exact.
};

}  // namespace

const Backend* avx2_backend_or_null() {
  static const Avx2Backend backend;
  return &backend;
}

#else  // !HSD_BACKEND_COMPILED_AVX2

const Backend* avx2_backend_or_null() { return nullptr; }

#endif

}  // namespace hsd::tensor::backend
