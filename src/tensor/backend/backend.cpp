#include "tensor/backend/backend.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "common/registry.hpp"
#include "obs/metrics.hpp"
#include "tensor/backend/impl.hpp"

namespace hsd::tensor::backend {

// ---------------------------------------------------------------------------
// Scalar reference
// ---------------------------------------------------------------------------

void ScalarBackend::gemm(const float* a, const float* b, float* c,
                         std::size_t i0, std::size_t i1, std::size_t k,
                         std::size_t n) const {
  // ikj order keeps B and C accesses sequential; each c[i][j] accumulates
  // over p in ascending order. Skipping aip == 0 performs no FP op, which
  // is bit-identical to adding the +/-0 product (the accumulator starts at
  // +0 and +0 + (+/-0) == +0).
  std::memset(c + i0 * n, 0, (i1 - i0) * n * sizeof(float));
  for (std::size_t i = i0; i < i1; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float aip = a[i * k + p];
      if (aip == 0.0F) continue;
      const float* brow = b + p * n;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
    }
  }
}

void ScalarBackend::gemm_at_b(const float* a, const float* b, float* c,
                              std::size_t m, std::size_t i0, std::size_t i1,
                              std::size_t k, std::size_t n) const {
  // p outer so each c[i][j] sees the same ascending-p accumulation as gemm.
  std::memset(c + i0 * n, 0, (i1 - i0) * n * sizeof(float));
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (std::size_t i = i0; i < i1; ++i) {
      const float api = arow[i];
      if (api == 0.0F) continue;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += api * brow[j];
    }
  }
}

void ScalarBackend::gemm_a_bt(const float* a, const float* b, float* c,
                              std::size_t i0, std::size_t i1, std::size_t k,
                              std::size_t n) const {
  for (std::size_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float s = 0.0F;
      for (std::size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      c[i * n + j] = s;
    }
  }
}

void ScalarBackend::im2col(const float* image, std::size_t height,
                           std::size_t width, std::size_t kh, std::size_t kw,
                           std::size_t stride, std::size_t pad, std::size_t oh,
                           std::size_t ow, std::size_t r0, std::size_t r1,
                           float* columns) const {
  const std::size_t out_spatial = oh * ow;
  for (std::size_t row = r0; row < r1; ++row) {
    const std::size_t c = row / (kh * kw);
    const std::size_t ki = (row / kw) % kh;
    const std::size_t kj = row % kw;
    float* dst = columns + row * out_spatial;
    for (std::size_t oi = 0; oi < oh; ++oi) {
      const std::ptrdiff_t ii = static_cast<std::ptrdiff_t>(oi * stride + ki) -
                                static_cast<std::ptrdiff_t>(pad);
      for (std::size_t oj = 0; oj < ow; ++oj) {
        const std::ptrdiff_t jj =
            static_cast<std::ptrdiff_t>(oj * stride + kj) -
            static_cast<std::ptrdiff_t>(pad);
        float v = 0.0F;
        if (ii >= 0 && ii < static_cast<std::ptrdiff_t>(height) && jj >= 0 &&
            jj < static_cast<std::ptrdiff_t>(width)) {
          v = image[(c * height + static_cast<std::size_t>(ii)) * width +
                    static_cast<std::size_t>(jj)];
        }
        dst[oi * ow + oj] = v;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Blocked (cache-tiled) — bit-exact with scalar by construction
// ---------------------------------------------------------------------------

namespace {

// L1-sized tiles: a 64x64 float B tile is 16 KiB, and the 64-float C row
// segment stays resident across the whole p tile.
constexpr std::size_t kTileJ = 64;
constexpr std::size_t kTileP = 64;

}  // namespace

void BlockedBackend::gemm(const float* a, const float* b, float* c,
                          std::size_t i0, std::size_t i1, std::size_t k,
                          std::size_t n) const {
  std::memset(c + i0 * n, 0, (i1 - i0) * n * sizeof(float));
  for (std::size_t j0 = 0; j0 < n; j0 += kTileJ) {
    const std::size_t j1 = std::min(n, j0 + kTileJ);
    for (std::size_t p0 = 0; p0 < k; p0 += kTileP) {
      const std::size_t p1 = std::min(k, p0 + kTileP);
      for (std::size_t i = i0; i < i1; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (std::size_t p = p0; p < p1; ++p) {
          const float aip = arow[p];
          if (aip == 0.0F) continue;
          const float* brow = b + p * n;
          for (std::size_t j = j0; j < j1; ++j) crow[j] += aip * brow[j];
        }
      }
    }
  }
}

void BlockedBackend::gemm_at_b(const float* a, const float* b, float* c,
                               std::size_t m, std::size_t i0, std::size_t i1,
                               std::size_t k, std::size_t n) const {
  std::memset(c + i0 * n, 0, (i1 - i0) * n * sizeof(float));
  for (std::size_t j0 = 0; j0 < n; j0 += kTileJ) {
    const std::size_t j1 = std::min(n, j0 + kTileJ);
    for (std::size_t p0 = 0; p0 < k; p0 += kTileP) {
      const std::size_t p1 = std::min(k, p0 + kTileP);
      for (std::size_t p = p0; p < p1; ++p) {
        const float* arow = a + p * m;
        const float* brow = b + p * n;
        for (std::size_t i = i0; i < i1; ++i) {
          const float api = arow[i];
          if (api == 0.0F) continue;
          float* crow = c + i * n;
          for (std::size_t j = j0; j < j1; ++j) crow[j] += api * brow[j];
        }
      }
    }
  }
}

void BlockedBackend::gemm_a_bt(const float* a, const float* b, float* c,
                               std::size_t i0, std::size_t i1, std::size_t k,
                               std::size_t n) const {
  // j-tiled so a tile of B rows stays hot across all the i rows; each dot
  // product still runs ascending-p into a single accumulator.
  for (std::size_t j0 = 0; j0 < n; j0 += kTileJ) {
    const std::size_t j1 = std::min(n, j0 + kTileJ);
    for (std::size_t i = i0; i < i1; ++i) {
      const float* arow = a + i * k;
      for (std::size_t j = j0; j < j1; ++j) {
        const float* brow = b + j * k;
        float s = 0.0F;
        for (std::size_t p = 0; p < k; ++p) s += arow[p] * brow[p];
        c[i * n + j] = s;
      }
    }
  }
}

void BlockedBackend::im2col(const float* image, std::size_t height,
                            std::size_t width, std::size_t kh, std::size_t kw,
                            std::size_t stride, std::size_t pad, std::size_t oh,
                            std::size_t ow, std::size_t r0, std::size_t r1,
                            float* columns) const {
  const std::size_t out_spatial = oh * ow;
  for (std::size_t row = r0; row < r1; ++row) {
    const std::size_t c = row / (kh * kw);
    const std::size_t ki = (row / kw) % kh;
    const std::size_t kj = row % kw;
    float* dst = columns + row * out_spatial;
    const float* plane = image + c * height * width;
    for (std::size_t oi = 0; oi < oh; ++oi) {
      float* drow = dst + oi * ow;
      const std::ptrdiff_t ii = static_cast<std::ptrdiff_t>(oi * stride + ki) -
                                static_cast<std::ptrdiff_t>(pad);
      if (ii < 0 || ii >= static_cast<std::ptrdiff_t>(height)) {
        std::memset(drow, 0, ow * sizeof(float));
        continue;
      }
      // Valid oj range: 0 <= oj*stride + kj - pad < width.
      std::size_t oj_lo = 0;
      if (pad > kj) oj_lo = (pad - kj + stride - 1) / stride;
      std::size_t oj_hi = 0;  // one past the last in-bounds oj
      const std::ptrdiff_t max_jj = static_cast<std::ptrdiff_t>(width) - 1 +
                                    static_cast<std::ptrdiff_t>(pad) -
                                    static_cast<std::ptrdiff_t>(kj);
      if (max_jj >= 0) {
        oj_hi = std::min(ow, static_cast<std::size_t>(max_jj) / stride + 1);
      }
      oj_lo = std::min(oj_lo, oj_hi);
      std::memset(drow, 0, oj_lo * sizeof(float));
      const float* srow = plane + static_cast<std::size_t>(ii) * width;
      const std::ptrdiff_t jj_lo =
          static_cast<std::ptrdiff_t>(oj_lo * stride + kj) -
          static_cast<std::ptrdiff_t>(pad);
      if (stride == 1) {
        std::memcpy(drow + oj_lo, srow + jj_lo,
                    (oj_hi - oj_lo) * sizeof(float));
      } else {
        const float* src = srow + jj_lo;
        for (std::size_t oj = oj_lo; oj < oj_hi; ++oj) {
          drow[oj] = *src;
          src += stride;
        }
      }
      std::memset(drow + oj_hi, 0, (ow - oj_hi) * sizeof(float));
    }
  }
}

// ---------------------------------------------------------------------------
// Registry & selection
// ---------------------------------------------------------------------------

namespace {

const ScalarBackend& scalar_instance() {
  static const ScalarBackend backend;
  return backend;
}

const BlockedBackend& blocked_instance() {
  static const BlockedBackend backend;
  return backend;
}

/// Compiled-in backends, fastest first. Entries may be unsupported on the
/// running CPU; callers filter with supported().
const std::vector<const Backend*>& compiled_backends() {
  static const std::vector<const Backend*> all = [] {
    std::vector<const Backend*> v;
    if (const Backend* avx2 = avx2_backend_or_null()) v.push_back(avx2);
    v.push_back(&blocked_instance());
    v.push_back(&scalar_instance());
    return v;
  }();
  return all;
}

/// Best supported backend — what "auto" resolves to.
const Backend& best_backend() {
  for (const Backend* b : compiled_backends()) {
    if (b->supported()) return *b;
  }
  return scalar_instance();
}

const Backend& resolve(std::string_view name) {
  if (name.empty() || name == "auto") return best_backend();
  if (const Backend* b = find_backend(name)) return *b;
  throw std::runtime_error("HSD_BACKEND: unknown or unsupported backend '" +
                           std::string(name) +
                           "' (available: scalar, blocked" +
                           (avx2_backend_or_null() != nullptr &&
                                    avx2_backend_or_null()->supported()
                                ? ", avx2)"
                                : ")"));
}

/// Records the selection in obs metrics so telemetry and bench JSON can
/// attribute every number to the kernels that produced it.
void record_selection(const Backend& b) {
  obs::gauge("tensor/backend").set(static_cast<double>(ordinal_of(b)));
  obs::counter("tensor/backend/" + std::string(b.name()) + "/selected").add();
}

std::atomic<const Backend*> g_active{nullptr};

}  // namespace

std::size_t ordinal_of(const Backend& b) {
  const std::string_view n = b.name();
  if (n == "blocked") return 1;
  if (n == "avx2") return 2;
  return 0;
}

const Backend& scalar_backend() { return scalar_instance(); }

std::vector<const Backend*> available_backends() {
  std::vector<const Backend*> out;
  for (const Backend* b : compiled_backends()) {
    if (b->supported()) out.push_back(b);
  }
  return out;
}

const Backend* find_backend(std::string_view name) {
  for (const Backend* b : compiled_backends()) {
    if (b->name() == name && b->supported()) return b;
  }
  return nullptr;
}

const Backend& active() {
  const Backend* b = g_active.load(std::memory_order_acquire);
  if (b == nullptr) {
    // Magic static: concurrent first calls resolve the environment once.
    static const Backend* const resolved = [] {
      const char* env = std::getenv(reg::kEnvBackend);
      const Backend& r = resolve(env == nullptr ? std::string_view{} : env);
      record_selection(r);
      return &r;
    }();
    const Backend* expected = nullptr;
    g_active.compare_exchange_strong(expected, resolved, std::memory_order_acq_rel,
                                     std::memory_order_acquire);
    b = g_active.load(std::memory_order_acquire);
  }
  return *b;
}

std::string_view active_name() { return active().name(); }

void set_active(std::string_view name) {
  const Backend& b = resolve(name);
  record_selection(b);
  g_active.store(&b, std::memory_order_release);
}

}  // namespace hsd::tensor::backend
