#include "pm/pattern_matching.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "common/check.hpp"

#include "stats/normalize.hpp"

namespace hsd::pm {

namespace {

/// Clusters by a precomputed exact key (pattern hash or tolerance-quantized
/// hash): one cluster per distinct key.
void cluster_by_key(const std::vector<std::uint64_t>& keys, PmResult& res) {
  std::unordered_map<std::uint64_t, std::size_t> first_of;
  first_of.reserve(keys.size());
  res.cluster_of.resize(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto [it, inserted] = first_of.try_emplace(keys[i], res.representatives.size());
    if (inserted) res.representatives.push_back(i);
    HSD_DCHECK_LT(it->second, res.representatives.size(), "cluster_by_key");
    res.cluster_of[i] = it->second;
  }
}

/// Hash of geometry normalized to its bounding-box origin: translations of
/// the same pattern inside the clip window collide (clip shifting).
std::uint64_t shift_hash(const layout::Clip& clip) {
  layout::Clip shifted = clip;
  const layout::Rect box = layout::bounding_box(shifted.shapes);
  if (box.valid()) {
    for (auto& r : shifted.shapes) r = r.shifted(-box.x0, -box.y0);
  }
  layout::canonicalize(shifted);
  return layout::hash_geometry(shifted);
}

/// Hash of geometry with every coordinate snapped to `tol` buckets; clips
/// whose corresponding edges lie within the same buckets collide.
std::uint64_t tolerance_hash(const layout::Clip& clip, layout::Coord tol) {
  layout::Clip snapped = clip;
  const layout::Coord t = std::max<layout::Coord>(tol, 1);
  for (auto& r : snapped.shapes) {
    r.x0 = static_cast<layout::Coord>(r.x0 / t);
    r.y0 = static_cast<layout::Coord>(r.y0 / t);
    r.x1 = static_cast<layout::Coord>(r.x1 / t);
    r.y1 = static_cast<layout::Coord>(r.y1 / t);
  }
  layout::canonicalize(snapped);
  return layout::hash_geometry(snapped);
}

/// Greedy leader clustering under cosine similarity, bucketed by the first
/// feature component (mean pattern density) so each clip is compared only
/// against representatives of similar density.
void cluster_by_similarity(const std::vector<std::vector<double>>& features,
                           double threshold, PmResult& res) {
  const std::size_t n = features.size();
  res.cluster_of.resize(n);

  std::vector<std::vector<double>> unit = features;
  for (auto& row : unit) hsd::stats::l2_normalize(row);

  // Density bucketing: cos >= threshold clusters have similar DC terms, so
  // comparing against +-1 neighboring buckets is a sound speedup for the
  // baseline without changing its character.
  const double bucket_width = 0.02;
  std::unordered_map<long long, std::vector<std::size_t>> reps_by_bucket;
  auto bucket_of = [&](std::size_t i) {
    const double dc = features[i].empty() ? 0.0 : features[i][0];
    return static_cast<long long>(std::floor(dc / bucket_width));
  };

  for (std::size_t i = 0; i < n; ++i) {
    const long long b = bucket_of(i);
    double best_sim = -1.0;
    std::size_t best_cluster = 0;
    for (long long nb = b - 1; nb <= b + 1; ++nb) {
      const auto it = reps_by_bucket.find(nb);
      if (it == reps_by_bucket.end()) continue;
      for (std::size_t rep_pos : it->second) {
        const std::size_t rep_clip = res.representatives[rep_pos];
        const double sim = hsd::stats::dot(unit[i], unit[rep_clip]);
        if (sim > best_sim) {
          best_sim = sim;
          best_cluster = rep_pos;
        }
      }
    }
    if (best_sim >= threshold) {
      res.cluster_of[i] = best_cluster;
    } else {
      const std::size_t cluster = res.representatives.size();
      res.representatives.push_back(i);
      reps_by_bucket[b].push_back(cluster);
      res.cluster_of[i] = cluster;
    }
  }
}

}  // namespace

PmResult run_pattern_matching(const std::vector<layout::Clip>& clips,
                              const std::vector<std::vector<double>>& features,
                              litho::LithoOracle& oracle, const PmConfig& config) {
  PmResult res;
  const std::size_t n = clips.size();
  if (n == 0) return res;

  switch (config.mode) {
    case MatchMode::kExact: {
      std::vector<std::uint64_t> keys(n);
      for (std::size_t i = 0; i < n; ++i) keys[i] = clips[i].pattern_hash;
      cluster_by_key(keys, res);
      break;
    }
    case MatchMode::kEdgeTolerance: {
      std::vector<std::uint64_t> keys(n);
      for (std::size_t i = 0; i < n; ++i) keys[i] = tolerance_hash(clips[i], config.edge_tol);
      cluster_by_key(keys, res);
      break;
    }
    case MatchMode::kShiftExact: {
      std::vector<std::uint64_t> keys(n);
      for (std::size_t i = 0; i < n; ++i) keys[i] = shift_hash(clips[i]);
      cluster_by_key(keys, res);
      break;
    }
    case MatchMode::kSimilarity: {
      if (features.size() != n) {
        throw std::invalid_argument(
            "run_pattern_matching: similarity mode needs one feature row per clip");
      }
      cluster_by_similarity(features, config.sim_threshold, res);
      break;
    }
  }

  // Lithography-simulate one representative per cluster and propagate.
  // Every clip must have been assigned to a cluster whose representative
  // index is in range; a violation here is a clustering bug, not bad input,
  // and would otherwise read out of bounds below.
  HSD_CHECK_EQ(res.cluster_of.size(), n, "pattern matching: clustering incomplete");
  std::vector<int> cluster_label(res.representatives.size(), 0);
  for (std::size_t c = 0; c < res.representatives.size(); ++c) {
    HSD_CHECK_LT(res.representatives[c], n, "pattern matching: representative");
    cluster_label[c] = oracle.label(clips[res.representatives[c]]) ? 1 : 0;
  }
  res.litho_count = res.representatives.size();
  res.predicted.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    HSD_DCHECK_LT(res.cluster_of[i], cluster_label.size(), "pattern matching: cluster id");
    res.predicted[i] = cluster_label[res.cluster_of[i]];
  }
  return res;
}

}  // namespace hsd::pm
