#pragma once
// Pattern-matching hotspot detection baselines (Chen et al., DAC'17 — the
// "PM" columns of Table II). The full-chip clip population is clustered by
// pattern equivalence; one representative per cluster is sent to lithography
// simulation (the counted cost) and its label is propagated to the whole
// cluster.
//
// Three equivalences are provided:
//   kExact         — bit-identical geometry (PM-exact; always correct,
//                    maximal litho count),
//   kSimilarity    — cosine similarity of clip features above a threshold
//                    (PM-a95 / PM-a90 fuzzy matching),
//   kEdgeTolerance — all rectangle edges within +-tol nm (PM-e2).

#include <cstddef>
#include <vector>

#include "layout/clip.hpp"
#include "litho/oracle.hpp"

namespace hsd::pm {

/// kShiftExact additionally canonicalizes translation (clips that are the
/// same pattern shifted inside the window cluster together) — the
/// clip-shifting cluster-minimization idea of Chen et al. [2].
enum class MatchMode { kExact, kSimilarity, kEdgeTolerance, kShiftExact };

struct PmConfig {
  MatchMode mode = MatchMode::kExact;
  /// Cosine similarity threshold for kSimilarity (e.g. 0.95 for PM-a95).
  double sim_threshold = 0.95;
  /// Edge displacement tolerance in nm for kEdgeTolerance (e.g. 2).
  layout::Coord edge_tol = 2;
};

struct PmResult {
  /// Predicted label per clip (1 = hotspot).
  std::vector<int> predicted;
  /// Cluster id per clip.
  std::vector<std::size_t> cluster_of;
  /// Clip index of each cluster's litho-simulated representative.
  std::vector<std::size_t> representatives;
  /// Number of lithography simulations spent (== representatives.size()).
  std::size_t litho_count = 0;
};

/// Runs the pattern-matching flow. `features` must be one row per clip for
/// kSimilarity mode (any per-clip descriptor; rows are L2-normalized
/// internally) and may be empty for the other modes. Simulations go through
/// `oracle` and are counted there as well.
PmResult run_pattern_matching(const std::vector<layout::Clip>& clips,
                              const std::vector<std::vector<double>>& features,
                              litho::LithoOracle& oracle, const PmConfig& config);

}  // namespace hsd::pm
