#pragma once
// Contract-check macros for internal invariants.
//
// Policy (see DESIGN.md "Error handling & contracts"):
//   - User-facing API validation (bad shapes, bad config handed in by a
//     caller) throws std::invalid_argument / std::out_of_range and is
//     covered by EXPECT_THROW tests.
//   - Internal invariants — conditions that can only be false if the
//     library itself has a bug — use HSD_CHECK (always on, aborts) or
//     HSD_DCHECK (debug builds only, compiled out under NDEBUG).
//
// On failure the macros print `file:line: HSD_CHECK failed: <expr> ...`
// to stderr, with captured operand values for the _EQ/_NE/... forms and
// an optional streamed message, then call std::abort() so sanitizers and
// core dumps see the exact failure point.
//
//   HSD_CHECK(n > 0);
//   HSD_CHECK(n > 0, "batch of ", n, " rows");
//   HSD_CHECK_EQ(grad.size(), val.size(), "param ", p.name);
//   HSD_DCHECK_LT(i, data_.size());

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace hsd::common::detail {

inline std::string format_msg() { return {}; }

template <class... Ts>
std::string format_msg(const Ts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

[[noreturn]] inline void check_fail(const char* file, int line, const char* kind,
                                    const char* expr, const std::string& values,
                                    const std::string& msg) {
  std::fprintf(stderr, "%s:%d: %s failed: %s", file, line, kind, expr);
  if (!values.empty()) std::fprintf(stderr, " (%s)", values.c_str());
  if (!msg.empty()) std::fprintf(stderr, " — %s", msg.c_str());
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

template <class A, class B>
std::string format_operands(const A& a, const B& b) {
  std::ostringstream os;
  os << "lhs=" << a << " rhs=" << b;
  return os.str();
}

}  // namespace hsd::common::detail

#define HSD_CHECK(cond, ...)                                                   \
  do {                                                                         \
    if (!(cond)) {                                                             \
      ::hsd::common::detail::check_fail(                                       \
          __FILE__, __LINE__, "HSD_CHECK", #cond, std::string{},               \
          ::hsd::common::detail::format_msg(__VA_ARGS__));                     \
    }                                                                          \
  } while (false)

// Binary comparison checks capture both operand values on failure. The
// operands are evaluated exactly once.
#define HSD_CHECK_OP_(op, kind, a, b, ...)                                     \
  do {                                                                         \
    const auto& hsd_check_a_ = (a);                                            \
    const auto& hsd_check_b_ = (b);                                            \
    if (!(hsd_check_a_ op hsd_check_b_)) {                                     \
      ::hsd::common::detail::check_fail(                                       \
          __FILE__, __LINE__, kind, #a " " #op " " #b,                         \
          ::hsd::common::detail::format_operands(hsd_check_a_, hsd_check_b_),  \
          ::hsd::common::detail::format_msg(__VA_ARGS__));                     \
    }                                                                          \
  } while (false)

#define HSD_CHECK_EQ(a, b, ...) HSD_CHECK_OP_(==, "HSD_CHECK_EQ", a, b, __VA_ARGS__)
#define HSD_CHECK_NE(a, b, ...) HSD_CHECK_OP_(!=, "HSD_CHECK_NE", a, b, __VA_ARGS__)
#define HSD_CHECK_LT(a, b, ...) HSD_CHECK_OP_(<, "HSD_CHECK_LT", a, b, __VA_ARGS__)
#define HSD_CHECK_LE(a, b, ...) HSD_CHECK_OP_(<=, "HSD_CHECK_LE", a, b, __VA_ARGS__)
#define HSD_CHECK_GT(a, b, ...) HSD_CHECK_OP_(>, "HSD_CHECK_GT", a, b, __VA_ARGS__)
#define HSD_CHECK_GE(a, b, ...) HSD_CHECK_OP_(>=, "HSD_CHECK_GE", a, b, __VA_ARGS__)

// Debug-only variants: compiled out (operands not evaluated) under NDEBUG.
// The `if (false)` arm keeps the expression type-checked in all builds.
#ifdef NDEBUG
#define HSD_DCHECK(cond, ...)                                                  \
  do {                                                                         \
    if (false) {                                                               \
      (void)(cond);                                                            \
    }                                                                          \
  } while (false)
#define HSD_DCHECK_OP_(op, a, b, ...)                                          \
  do {                                                                         \
    if (false) {                                                               \
      (void)(a);                                                               \
      (void)(b);                                                               \
    }                                                                          \
  } while (false)
#else
#define HSD_DCHECK(cond, ...) HSD_CHECK(cond, __VA_ARGS__)
#define HSD_DCHECK_OP_(op, a, b, ...)                                          \
  HSD_CHECK_OP_(op, "HSD_DCHECK", a, b, __VA_ARGS__)
#endif

#define HSD_DCHECK_EQ(a, b, ...) HSD_DCHECK_OP_(==, a, b, __VA_ARGS__)
#define HSD_DCHECK_NE(a, b, ...) HSD_DCHECK_OP_(!=, a, b, __VA_ARGS__)
#define HSD_DCHECK_LT(a, b, ...) HSD_DCHECK_OP_(<, a, b, __VA_ARGS__)
#define HSD_DCHECK_LE(a, b, ...) HSD_DCHECK_OP_(<=, a, b, __VA_ARGS__)
#define HSD_DCHECK_GT(a, b, ...) HSD_DCHECK_OP_(>, a, b, __VA_ARGS__)
#define HSD_DCHECK_GE(a, b, ...) HSD_DCHECK_OP_(>=, a, b, __VA_ARGS__)
