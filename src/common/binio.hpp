#pragma once
// Shared little-helpers for binary stream (de)serialization, used by the
// nn weight format, the data set serializers, and the ckpt subsystem.
//
// All I/O goes through std::memcpy into char buffers rather than
// reinterpret_cast'ing object pointers: memcpy is the sanctioned way to
// read an object representation, so UBSan stays quiet and the lint rule
// no-reinterpret-cast holds for the whole library.
//
// Conventions: fixed-width integers are written in the host's native byte
// order (checkpoints and weight files are machine-local artifacts, not an
// interchange format); variable-length payloads are length-prefixed with a
// u64 count so a reader can always skip a record it does not understand.

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "common/hash.hpp"  // Fnv1a lives there now; kept included for users

namespace hsd::common {

template <class T>
void write_pod(std::ostream& os, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  os.write(buf, sizeof(T));
}

template <class T>
T read_pod(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  is.read(buf, sizeof(T));
  if (!is) throw std::runtime_error("binio: truncated stream");
  T v{};
  std::memcpy(&v, buf, sizeof(T));
  return v;
}

/// Length-prefixed (u64) byte string.
inline void write_string(std::ostream& os, const std::string& s) {
  write_pod(os, static_cast<std::uint64_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline std::string read_string(std::istream& is) {
  const auto n = read_pod<std::uint64_t>(is);
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  if (!is) throw std::runtime_error("binio: truncated string");
  return s;
}

/// Length-prefixed (u64) vector of trivially copyable elements.
template <class T>
void write_vector(std::ostream& os, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_pod(os, static_cast<std::uint64_t>(v.size()));
  if (!v.empty()) {
    std::vector<char> buf(v.size() * sizeof(T));
    std::memcpy(buf.data(), v.data(), buf.size());
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  }
}

template <class T>
std::vector<T> read_vector(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto n = read_pod<std::uint64_t>(is);
  std::vector<T> v(n);
  if (n > 0) {
    std::vector<char> buf(n * sizeof(T));
    is.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (!is) throw std::runtime_error("binio: truncated vector");
    std::memcpy(v.data(), buf.data(), buf.size());
  }
  return v;
}

/// Raw float array (no length prefix; caller knows the count).
inline void write_f32_array(std::ostream& os, const float* data, std::size_t count) {
  std::vector<char> buf(count * sizeof(float));
  std::memcpy(buf.data(), data, buf.size());
  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

inline void read_f32_array(std::istream& is, float* data, std::size_t count) {
  std::vector<char> buf(count * sizeof(float));
  is.read(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!is) throw std::runtime_error("binio: truncated float array");
  std::memcpy(data, buf.data(), buf.size());
}

}  // namespace hsd::common
