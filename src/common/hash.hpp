#pragma once
// Stable 64-bit content hashing (FNV-1a) shared by the checkpoint headers,
// the exact pattern-matching baseline, and the serving feature cache.
//
// The hash is a pure function of the input bytes: no per-process seeding,
// no pointer mixing, so equal content always hashes equal across runs,
// thread counts, and processes. That property is what lets the serving
// layer key its feature cache by clip content and lets checkpoints verify
// a config fingerprint after a restart. Not cryptographic — collisions are
// merely astronomically unlikely, never impossible.

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace hsd::common {

/// FNV-1a 64-bit accumulator for cheap structural hashes. Feed bytes or
/// trivially copyable values; value() is stable for a given feed sequence.
class Fnv1a {
 public:
  Fnv1a& add_bytes(const void* data, std::size_t n) {
    const char* p = static_cast<const char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]));
      hash_ *= 0x100000001b3ULL;
    }
    return *this;
  }

  template <class T>
  Fnv1a& add(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    char buf[sizeof(T)];
    std::memcpy(buf, &v, sizeof(T));
    return add_bytes(buf, sizeof(T));
  }

  Fnv1a& add(const std::string& s) {
    add(static_cast<std::uint64_t>(s.size()));
    return add_bytes(s.data(), s.size());
  }

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/// FNV-1a over the raw byte representation of a float array. Because the
/// input is the exact bit pattern (not a rounded decimal form), two arrays
/// hash equal iff they are bit-identical — the same contract the serving
/// determinism tests pin for predictions. An empty array hashes to the FNV
/// offset basis.
inline std::uint64_t content_hash_f32(const float* data, std::size_t n) {
  return Fnv1a().add_bytes(data, n * sizeof(float)).value();
}

/// Convenience overload for a rasterized clip bitmap (or any float vector).
inline std::uint64_t content_hash(const std::vector<float>& v) {
  return content_hash_f32(v.data(), v.size());
}

}  // namespace hsd::common
