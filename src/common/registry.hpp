#pragma once
// Identifier registry: the single source of truth for every HSD_*
// environment variable and every obs metric/span name the project emits.
// hsd_lint's registry pass enforces the contract (see DESIGN.md §14):
//
//   * each identifier is registered here exactly once, on a line tagged
//     `hsd-reg: env|metric|span`;
//   * an HSD_* string literal anywhere else is a finding — call sites
//     spell env vars via these constants;
//   * metric/span names at obs call sites stay as literals (the name at
//     the emission site is the documentation), but must match a
//     registered pattern. `%` in a pattern matches any substring, which
//     is how per-shard (`serve/shard3/requests`), per-backend
//     (`tensor/backend/avx2/selected`), and rollup (`serve/fleet/...`)
//     families are covered by one entry;
//   * every entry must be mentioned in DESIGN.md/README.md, so no knob
//     or signal ships undocumented.
//
// Adding an identifier: declare it here with the tag comment, use the
// constant (env) or the literal (metric/span) at the call site, and add a
// row to the table in DESIGN.md §14.

namespace hsd::reg {

// --- environment variables -------------------------------------------------

// Core runtime and observability knobs.
inline constexpr const char kEnvThreads[] = "HSD_THREADS";  // hsd-reg: env
inline constexpr const char kEnvMetrics[] = "HSD_METRICS";  // hsd-reg: env
inline constexpr const char kEnvTrace[] = "HSD_TRACE";  // hsd-reg: env
inline constexpr const char kEnvRoundLog[] = "HSD_ROUND_LOG";  // hsd-reg: env
inline constexpr const char kEnvBackend[] = "HSD_BACKEND";  // hsd-reg: env
inline constexpr const char kEnvFaultAfterRound[] = "HSD_FAULT_AFTER_ROUND";  // hsd-reg: env
inline constexpr const char kEnvFaultNet[] = "HSD_FAULT_NET";  // hsd-reg: env

// Benchmark harness knobs (bench/).
inline constexpr const char kEnvIccad12Scale[] = "HSD_ICCAD12_SCALE";  // hsd-reg: env
inline constexpr const char kEnvRepeats[] = "HSD_REPEATS";  // hsd-reg: env
inline constexpr const char kEnvBenchRounds[] = "HSD_BENCH_ROUNDS";  // hsd-reg: env
inline constexpr const char kEnvBenchWarmup[] = "HSD_BENCH_WARMUP";  // hsd-reg: env
inline constexpr const char kEnvServeRequests[] = "HSD_SERVE_REQUESTS";  // hsd-reg: env
inline constexpr const char kEnvServeProducers[] = "HSD_SERVE_PRODUCERS";  // hsd-reg: env
inline constexpr const char kEnvServeDistinct[] = "HSD_SERVE_DISTINCT";  // hsd-reg: env
inline constexpr const char kEnvServeUniverse[] = "HSD_SERVE_UNIVERSE";  // hsd-reg: env
inline constexpr const char kEnvServeRepeats[] = "HSD_SERVE_REPEATS";  // hsd-reg: env
inline constexpr const char kEnvServeShards[] = "HSD_SERVE_SHARDS";  // hsd-reg: env
inline constexpr const char kEnvServeTransports[] = "HSD_SERVE_TRANSPORTS";  // hsd-reg: env

// --- metrics ---------------------------------------------------------------

// litho oracle.
inline constexpr const char kMetLithoOracleCalls[] = "litho/oracle_calls";  // hsd-reg: metric
inline constexpr const char kMetLithoSimulateSeconds[] = "litho/simulate_seconds";  // hsd-reg: metric

// data pipeline.
inline constexpr const char kMetDataClipsFeaturized[] = "data/clips_featurized";  // hsd-reg: metric

// tensor kernels and backend dispatch.
inline constexpr const char kMetTensorMatmulCalls[] = "tensor/matmul_calls";  // hsd-reg: metric
inline constexpr const char kMetTensorDct2dCalls[] = "tensor/dct2d_calls";  // hsd-reg: metric
inline constexpr const char kMetTensorDct2dBatchCalls[] = "tensor/dct2d_batch_calls";  // hsd-reg: metric
inline constexpr const char kMetTensorBackend[] = "tensor/backend";  // hsd-reg: metric
inline constexpr const char kMetTensorBackendSelected[] = "tensor/backend/%/selected";  // hsd-reg: metric
inline constexpr const char kMetTensorGemm[] = "tensor/%/gemm";  // hsd-reg: metric
inline constexpr const char kMetTensorGemmAtB[] = "tensor/%/gemm_at_b";  // hsd-reg: metric
inline constexpr const char kMetTensorGemmABt[] = "tensor/%/gemm_a_bt";  // hsd-reg: metric
inline constexpr const char kMetTensorIm2col[] = "tensor/%/im2col";  // hsd-reg: metric

// checkpointing.
inline constexpr const char kMetCkptWrites[] = "ckpt/writes";  // hsd-reg: metric
inline constexpr const char kMetCkptBytes[] = "ckpt/bytes";  // hsd-reg: metric
inline constexpr const char kMetCkptWriteSeconds[] = "ckpt/write_seconds";  // hsd-reg: metric

// active-learning loop.
inline constexpr const char kMetAlRounds[] = "al/rounds";  // hsd-reg: metric
inline constexpr const char kMetAlTemperature[] = "al/temperature";  // hsd-reg: metric
inline constexpr const char kMetAlEce[] = "al/ece";  // hsd-reg: metric

// serving. The `%` absorbs the placement infix: "" for the standalone
// service, "/shard<i>" per fleet shard, "/fleet" for rollup totals.
inline constexpr const char kMetServeShardPrefix[] = "serve/shard%";  // hsd-reg: metric
inline constexpr const char kMetServeRequests[] = "serve%/requests";  // hsd-reg: metric
inline constexpr const char kMetServeAccepted[] = "serve%/accepted";  // hsd-reg: metric
inline constexpr const char kMetServeCompleted[] = "serve%/completed";  // hsd-reg: metric
inline constexpr const char kMetServeRejectedQueueFull[] = "serve%/rejected_queue_full";  // hsd-reg: metric
inline constexpr const char kMetServeRejectedShutdown[] = "serve%/rejected_shutdown";  // hsd-reg: metric
inline constexpr const char kMetServeDeadlineExceeded[] = "serve%/deadline_exceeded";  // hsd-reg: metric
inline constexpr const char kMetServeBatches[] = "serve%/batches";  // hsd-reg: metric
inline constexpr const char kMetServeCacheHits[] = "serve%/cache_hits";  // hsd-reg: metric
inline constexpr const char kMetServeCacheMisses[] = "serve%/cache_misses";  // hsd-reg: metric
inline constexpr const char kMetServeQueueDepth[] = "serve%/queue_depth";  // hsd-reg: metric
inline constexpr const char kMetServeLatencySeconds[] = "serve%/latency_seconds";  // hsd-reg: metric
inline constexpr const char kMetServeBatchSeconds[] = "serve%/batch_seconds";  // hsd-reg: metric
inline constexpr const char kMetServeBatchFill[] = "serve%/batch_fill";  // hsd-reg: metric
inline constexpr const char kMetServeRouterRequests[] = "serve%/router/requests";  // hsd-reg: metric
inline constexpr const char kMetServeRouterShed[] = "serve%/router/shed";  // hsd-reg: metric

// serving RPC transport (src/net). Server side registers full literals;
// client channels register under "serve/net/client[/shard<i>]" — the `%`
// absorbs the per-shard infix.
inline constexpr const char kMetNetServerConnections[] = "serve/net/server/connections";  // hsd-reg: metric
inline constexpr const char kMetNetServerFramesIn[] = "serve/net/server/frames_in";  // hsd-reg: metric
inline constexpr const char kMetNetServerFramesOut[] = "serve/net/server/frames_out";  // hsd-reg: metric
inline constexpr const char kMetNetServerBytesIn[] = "serve/net/server/bytes_in";  // hsd-reg: metric
inline constexpr const char kMetNetServerBytesOut[] = "serve/net/server/bytes_out";  // hsd-reg: metric
inline constexpr const char kMetNetServerOverflowRejects[] = "serve/net/server/overflow_rejects";  // hsd-reg: metric
inline constexpr const char kMetNetServerShutdownRpcs[] = "serve/net/server/shutdown_rpcs";  // hsd-reg: metric
inline constexpr const char kMetNetServerRpcSeconds[] = "serve/net/server/rpc_seconds";  // hsd-reg: metric
inline constexpr const char kMetNetClientRequests[] = "serve/net/client%/requests";  // hsd-reg: metric
inline constexpr const char kMetNetClientBytesOut[] = "serve/net/client%/bytes_out";  // hsd-reg: metric
inline constexpr const char kMetNetClientBytesIn[] = "serve/net/client%/bytes_in";  // hsd-reg: metric
inline constexpr const char kMetNetClientRetries[] = "serve/net/client%/retries";  // hsd-reg: metric
inline constexpr const char kMetNetClientReconnects[] = "serve/net/client%/reconnects";  // hsd-reg: metric
inline constexpr const char kMetNetClientTimeouts[] = "serve/net/client%/timeouts";  // hsd-reg: metric
inline constexpr const char kMetNetClientNetErrors[] = "serve/net/client%/net_errors";  // hsd-reg: metric
inline constexpr const char kMetNetClientRpcSeconds[] = "serve/net/client%/rpc_seconds";  // hsd-reg: metric

// --- trace spans -----------------------------------------------------------

// active-learning loop phases.
inline constexpr const char kSpanAlRun[] = "al/run";  // hsd-reg: span
inline constexpr const char kSpanAlRound[] = "al/round";  // hsd-reg: span
inline constexpr const char kSpanAlInitialTrain[] = "al/initial_train";  // hsd-reg: span
inline constexpr const char kSpanAlGmmDensity[] = "al/gmm_density";  // hsd-reg: span
inline constexpr const char kSpanAlGmmQuery[] = "al/gmm_query";  // hsd-reg: span
inline constexpr const char kSpanAlCalibration[] = "al/calibration";  // hsd-reg: span
inline constexpr const char kSpanAlScoring[] = "al/scoring";  // hsd-reg: span
inline constexpr const char kSpanAlLabeling[] = "al/labeling";  // hsd-reg: span
inline constexpr const char kSpanAlFinetune[] = "al/finetune";  // hsd-reg: span
inline constexpr const char kSpanAlCheckpoint[] = "al/checkpoint";  // hsd-reg: span
inline constexpr const char kSpanAlFinalInference[] = "al/final_inference";  // hsd-reg: span

// sampling internals.
inline constexpr const char kSpanCoreUncertaintyScan[] = "core/uncertainty_scan";  // hsd-reg: span
inline constexpr const char kSpanCoreSimilarityMatrix[] = "core/similarity_matrix";  // hsd-reg: span
inline constexpr const char kSpanCoreDiversityScores[] = "core/diversity_scores";  // hsd-reg: span

// litho simulation.
inline constexpr const char kSpanLithoSimulate[] = "litho/simulate";  // hsd-reg: span
inline constexpr const char kSpanLithoSimulateBatch[] = "litho/simulate_batch";  // hsd-reg: span
inline constexpr const char kSpanLithoLabelBatch[] = "litho/label_batch";  // hsd-reg: span
inline constexpr const char kSpanLithoAerial[] = "litho/aerial";  // hsd-reg: span

// feature extraction and kernels.
inline constexpr const char kSpanDataDctFeatures[] = "data/dct_features";  // hsd-reg: span
inline constexpr const char kSpanNnConvFwd[] = "nn/conv_fwd";  // hsd-reg: span
inline constexpr const char kSpanNnConvBwd[] = "nn/conv_bwd";  // hsd-reg: span
inline constexpr const char kSpanTensorDct2dBatch[] = "tensor/dct2d_batch";  // hsd-reg: span
inline constexpr const char kSpanTensorMatmul[] = "tensor/matmul";  // hsd-reg: span
inline constexpr const char kSpanTensorMatmulAtB[] = "tensor/matmul_at_b";  // hsd-reg: span
inline constexpr const char kSpanTensorMatmulABt[] = "tensor/matmul_a_bt";  // hsd-reg: span
inline constexpr const char kSpanTensorIm2col[] = "tensor/im2col";  // hsd-reg: span
inline constexpr const char kSpanTensorCol2im[] = "tensor/col2im";  // hsd-reg: span

// serving pipeline.
inline constexpr const char kSpanServeBatch[] = "serve/batch";  // hsd-reg: span
inline constexpr const char kSpanServeFeatures[] = "serve/features";  // hsd-reg: span
inline constexpr const char kSpanServeForward[] = "serve/forward";  // hsd-reg: span

// serving RPC transport.
inline constexpr const char kSpanNetConnect[] = "net/connect";  // hsd-reg: span
inline constexpr const char kSpanNetHandle[] = "net/handle";  // hsd-reg: span

}  // namespace hsd::reg
