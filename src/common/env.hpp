#pragma once
// Strict numeric environment-variable parsing. An unset or empty variable
// yields the fallback; anything else must parse completely as a number of
// the requested kind or the helper throws std::runtime_error naming the
// variable. A malformed knob must fail loudly, not silently become a
// default (HSD_BENCH_ROUNDS=abc once became strtod's 0.0 and ran the
// benches with a clamped single round).

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace hsd::common {

namespace detail {

[[noreturn]] inline void throw_malformed_env(const char* name,
                                             const char* value,
                                             const char* kind) {
  throw std::runtime_error(std::string(name) + ": malformed " + kind +
                           " value \"" + value + "\"");
}

inline const char* skip_trailing_ws(const char* p) {
  while (*p == ' ' || *p == '\t') ++p;
  return p;
}

}  // namespace detail

/// Floating-point env knob.
inline double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *detail::skip_trailing_ws(end) != '\0') {
    detail::throw_malformed_env(name, v, "numeric");
  }
  return parsed;
}

/// Non-negative integer env knob (counts, sizes, round indices).
inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *detail::skip_trailing_ws(end) != '\0' || parsed < 0) {
    detail::throw_malformed_env(name, v, "non-negative integer");
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace hsd::common
