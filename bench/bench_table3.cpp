// Table III — components effectiveness verification of the entropy-based
// method: w/o.E (static equal weights), w/o.D (no diversity), w/o.U (no
// uncertainty), and the Full framework.

#include <cstdio>

#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace hsd;
  harness::apply_obs_flags(argc, argv);

  const auto specs = harness::paper_specs();
  const std::vector<std::string> methods{"w/o.E", "w/o.D", "w/o.U", "Full"};

  std::vector<core::SamplerConfig> samplers(4);
  samplers[0].dynamic_weights = false;   // w/o.E: fixed 0.5/0.5 fusion
  samplers[0].fixed_w2 = 0.5;
  samplers[1].use_diversity = false;     // w/o.D
  samplers[2].use_uncertainty = false;   // w/o.U
  // samplers[3] stays the full configuration.

  std::vector<std::vector<core::PshdMetrics>> metrics(methods.size());
  for (const auto& spec : specs) {
    const auto& built = harness::get_benchmark(spec);
    for (std::size_t m = 0; m < methods.size(); ++m) {
      core::FrameworkConfig cfg = harness::default_config(built);
      cfg.sampler = samplers[m];
      metrics[m].push_back(harness::run_strategy(built, cfg).metrics);
    }
    std::fprintf(stderr, "[table3] %s done\n", spec.name.c_str());
  }

  std::printf("Table III: Components effectiveness of the entropy-based method\n");
  std::printf("%-11s", "Benchmark");
  for (const auto& m : methods) std::printf(" |%7s: Acc%%  Litho#", m.c_str());
  std::printf("\n");
  for (std::size_t b = 0; b < specs.size(); ++b) {
    std::printf("%-11s", specs[b].name.c_str());
    for (std::size_t m = 0; m < methods.size(); ++m) {
      std::printf(" |%8s %6.2f %7zu", "", metrics[m][b].accuracy * 100.0,
                  metrics[m][b].litho);
    }
    std::printf("\n");
  }

  std::vector<double> avg_acc(methods.size(), 0.0), avg_litho(methods.size(), 0.0);
  for (std::size_t m = 0; m < methods.size(); ++m) {
    for (const auto& x : metrics[m]) {
      avg_acc[m] += x.accuracy;
      avg_litho[m] += static_cast<double>(x.litho);
    }
    avg_acc[m] /= static_cast<double>(specs.size());
    avg_litho[m] /= static_cast<double>(specs.size());
  }
  const std::size_t ref = methods.size() - 1;
  std::printf("%-11s", "Average");
  for (std::size_t m = 0; m < methods.size(); ++m) {
    std::printf(" |%8s %6.2f %7.0f", "", avg_acc[m] * 100.0, avg_litho[m]);
  }
  std::printf("\n%-11s", "Ratio");
  for (std::size_t m = 0; m < methods.size(); ++m) {
    std::printf(" |%8s %6.3f %7.3f", "", avg_acc[m] / avg_acc[ref],
                avg_litho[m] / avg_litho[ref]);
  }
  std::printf("\n\nPaper shape check: the Full framework attains the best"
              " accuracy/overhead trade-off; each removed component degrades it.\n");
  return 0;
}
