// Fig. 5 — hotspot distribution and sampled clips on the ICCAD16-2 layout
// for PM-exact, TS, QP, and Ours. Each method's lithography-simulated clips
// are drawn on an ASCII chip map together with the real hotspot positions:
//   X  real hotspot, litho-simulated by the method
//   x  real hotspot, not simulated
//   #  clean clip that was litho-simulated (overhead)
//   .  clean clip, untouched

#include <cstdio>
#include <vector>

#include "harness.hpp"

namespace {

using hsd::harness::BuiltBenchmark;

void print_map(const char* title, const BuiltBenchmark& built,
               const std::vector<bool>& simulated) {
  const auto& bench = built.bench;
  std::printf("%s\n", title);
  std::size_t sim_count = 0, hs_sim = 0;
  for (std::size_t i = 0; i < bench.size(); ++i) {
    sim_count += simulated[i];
    hs_sim += simulated[i] && bench.labels[i] == 1;
  }
  // Downsample the chip grid to at most 64 columns for terminal output;
  // a cell aggregates its clips (hotspot/simulated dominate).
  const std::size_t max_cols = 64;
  const std::size_t stride = (bench.chip_cols + max_cols - 1) / max_cols;
  const std::size_t cols = (bench.chip_cols + stride - 1) / stride;
  const std::size_t rows = (bench.chip_rows + stride - 1) / stride;
  std::vector<int> cell_hs(cols * rows, 0), cell_sim(cols * rows, 0);
  for (std::size_t i = 0; i < bench.size(); ++i) {
    const std::size_t c = (i % bench.chip_cols) / stride;
    const std::size_t r = (i / bench.chip_cols) / stride;
    cell_hs[r * cols + c] |= (bench.labels[i] == 1);
    cell_sim[r * cols + c] |= simulated[i] ? (bench.labels[i] == 1 ? 2 : 1)
                                           : 0;
  }
  for (std::size_t r = 0; r < rows; ++r) {
    std::printf("  ");
    for (std::size_t c = 0; c < cols; ++c) {
      const bool hs = cell_hs[r * cols + c] != 0;
      const int sim = cell_sim[r * cols + c];
      char ch = '.';
      if (hs && sim == 2) {
        ch = 'X';
      } else if (hs) {
        ch = 'x';
      } else if (sim != 0) {
        ch = '#';
      }
      std::putchar(ch);
    }
    std::printf("\n");
  }
  std::printf("  simulated clips: %zu (%.1f%% of chip), hotspots among them: %zu\n\n",
              sim_count, 100.0 * static_cast<double>(sim_count) /
                             static_cast<double>(bench.size()),
              hs_sim);
}

std::vector<bool> al_simulated(const BuiltBenchmark& built,
                               const hsd::core::AlOutcome& out) {
  std::vector<bool> sim(built.bench.size(), false);
  for (std::size_t i : out.train.indices) sim[i] = true;
  for (std::size_t i : out.val.indices) sim[i] = true;
  // False alarms are verified by lithography as well (Definition 3).
  for (std::size_t p = 0; p < out.unlabeled_indices.size(); ++p) {
    if (out.predicted[p] == 1 && built.bench.labels[out.unlabeled_indices[p]] == 0) {
      sim[out.unlabeled_indices[p]] = true;
    }
  }
  return sim;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hsd;
  harness::apply_obs_flags(argc, argv);

  const auto& built = harness::get_benchmark(data::iccad16_spec(2));
  std::printf("Fig. 5: hotspot distribution and sampled clips on the ICCAD16-2"
              " layout (%zux%zu clip grid)\n",
              built.bench.chip_cols, built.bench.chip_rows);
  std::printf("legend: X hotspot+simulated, x hotspot missed by sampling,"
              " # clean simulated, . clean untouched\n\n");

  {
    pm::PmConfig cfg;
    cfg.mode = pm::MatchMode::kExact;
    const auto run = harness::run_pm(built, cfg);
    std::vector<bool> sim(built.bench.size(), false);
    for (std::size_t rep : run.result.representatives) sim[rep] = true;
    print_map("(a) PM-exact", built, sim);
  }
  {
    const auto run = harness::run_strategy(built, core::SamplerKind::kTsOnly);
    print_map("(b) TS", built, al_simulated(built, run.outcome));
  }
  {
    const auto run = harness::run_strategy(built, core::SamplerKind::kQp);
    print_map("(c) QP [14]", built, al_simulated(built, run.outcome));
  }
  {
    const auto run = harness::run_strategy(built, core::SamplerKind::kEntropy);
    print_map("(d) Ours", built, al_simulated(built, run.outcome));
  }

  std::printf("Paper shape check: PM-exact shades most of the chip; the active"
              " learning methods touch a small fraction, with Ours covering the"
              " hotspot regions at the least shaded area.\n");
  return 0;
}
