// Process-variation extension bench: runs the PV-band corner sweep over a
// benchmark population and reports (a) how the hotspot rate grows from the
// nominal corner to the worst case, and (b) how strongly the PV-band width
// separates hotspots from clean clips — evidence that the synthetic litho
// substrate has realistic margin structure.

#include <cstdio>

#include "harness.hpp"
#include "litho/pvband.hpp"
#include "stats/roc.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace hsd;
  harness::apply_obs_flags(argc, argv);

  std::printf("PV-band analysis (dose +-5%%, defocus +15%%)\n\n");
  std::printf("%-11s %9s %9s %9s %12s %12s %10s\n", "Benchmark", "sampled",
              "nominalHS", "worstHS", "bandLatent", "bandRobust", "latentAUC");

  for (int case_id : {2, 3, 4}) {
    const auto& built = harness::get_benchmark(data::iccad16_spec(case_id));
    const auto& bench = built.bench;
    const litho::OpticalModel model = bench.spec.optics;

    std::size_t sampled = 0, nominal_hs = 0, worst_hs = 0;
    // Among nominally-clean clips: does the core PV band predict which ones
    // fail under process excursions (latent hotspots)?
    std::vector<double> band_latent, band_robust, clean_scores;
    std::vector<int> clean_labels;
    const std::size_t stride = bench.size() > 1500 ? bench.size() / 1500 : 1;
    for (std::size_t i = 0; i < bench.size(); i += stride) {
      const auto res =
          litho::pv_band_analysis(bench.clips[i], bench.spec.grid, model);
      sampled++;
      nominal_hs += res.nominal_hotspot;
      worst_hs += res.worst_case_hotspot;
      if (!res.nominal_hotspot) {
        const auto band = static_cast<double>(res.core_band_area_px);
        const bool latent = res.worst_case_hotspot;
        (latent ? band_latent : band_robust).push_back(band);
        clean_scores.push_back(band);
        clean_labels.push_back(latent ? 1 : 0);
      }
    }
    const auto roc = stats::roc_curve(clean_scores, clean_labels);
    std::printf("%-11s %9zu %9zu %9zu %12.1f %12.1f %10.3f\n",
                bench.spec.name.c_str(), sampled, nominal_hs, worst_hs,
                stats::mean(band_latent), stats::mean(band_robust), roc.auc);
  }

  std::printf("\nShape expectations: worst-case hotspots strictly exceed"
              " nominal ones; among nominally-clean clips, the ones that fail"
              " at some corner (latent hotspots) carry wider core PV bands,"
              " so the band predicts latent marginality (AUC > 0.5).\n");
  return 0;
}
