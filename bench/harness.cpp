#include "harness.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>

#include "common/env.hpp"
#include "common/registry.hpp"
#include "stats/bootstrap.hpp"
#include "stats/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hsd::harness {

double iccad12_scale() {
  const double s = common::env_double(hsd::reg::kEnvIccad12Scale, 0.05);
  if (s <= 0.0 || s > 1.0) {
    throw std::runtime_error(std::string(hsd::reg::kEnvIccad12Scale) +
                             " out of (0, 1]");
  }
  return s;
}

std::size_t repeats() {
  const std::size_t r = common::env_size(hsd::reg::kEnvRepeats, 5);
  return r < 1 ? 1 : r;
}

std::size_t bench_rounds() {
  const std::size_t r = common::env_size(hsd::reg::kEnvBenchRounds, 7);
  return r < 1 ? 1 : r;
}

std::size_t bench_warmup() {
  return common::env_size(hsd::reg::kEnvBenchWarmup, 2);
}

TimingEstimate measure(const std::function<void()>& fn, std::size_t warmup,
                       std::size_t rounds) {
  if (rounds == 0) {
    throw std::invalid_argument(
        "harness::measure: rounds == 0 (no sample to estimate from)");
  }
  for (std::size_t i = 0; i < warmup; ++i) fn();
  TimingEstimate est;
  est.rounds_seconds.reserve(rounds);
  for (std::size_t i = 0; i < rounds; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    est.rounds_seconds.push_back(dt);
    est.mean_seconds += dt;
  }
  est.min_seconds =
      *std::min_element(est.rounds_seconds.begin(), est.rounds_seconds.end());
  est.mean_seconds /= static_cast<double>(rounds);
  // Fixed seed: the resample stream is a property of the estimator, not of
  // the run, so identical rounds produce identical CI bounds.
  stats::Rng rng(1729);
  const stats::SampleDispersion d =
      stats::sample_dispersion(est.rounds_seconds, rng);
  est.ci_lo_seconds = d.mean_ci.lo;
  est.ci_hi_seconds = d.mean_ci.hi;
  est.outlier_rounds = d.outliers;
  return est;
}

TimingEstimate measure(const std::function<void()>& fn) {
  return measure(fn, bench_warmup(), bench_rounds());
}

void apply_obs_flags(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      obs::enable_trace(argv[++i]);
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      obs::enable_metrics(argv[++i]);
    }
  }
}

const BuiltBenchmark& get_benchmark(const data::BenchmarkSpec& spec) {
  static std::map<std::string, BuiltBenchmark> cache;
  auto it = cache.find(spec.name);
  if (it != cache.end()) return it->second;

  std::fprintf(stderr, "[harness] building %s (%zu HS / %zu NHS)...\n",
               spec.name.c_str(), spec.hs_target, spec.nhs_target);
  BuiltBenchmark built;
  built.bench = data::build_benchmark(spec);
  const data::FeatureExtractor fx(spec.feature_grid, spec.feature_keep);
  built.features = fx.extract_benchmark(built.bench);
  built.rows = data::to_double_rows(built.features);
  auto [pos, inserted] = cache.emplace(spec.name, std::move(built));
  return pos->second;
}

std::vector<data::BenchmarkSpec> paper_specs() {
  return data::evaluated_specs(iccad12_scale());
}

core::FrameworkConfig default_config(const BuiltBenchmark& built, std::uint64_t seed) {
  const std::size_t n = built.bench.size();
  core::FrameworkConfig cfg;
  cfg.seed = seed;
  // Scale the sampling schedule with the population, bounded to keep runs
  // laptop-sized; ratios follow the paper's regime (a few percent of the
  // chip ends up labeled).
  cfg.initial_train = std::clamp<std::size_t>(n / 40, 24, 160);
  cfg.validation = std::clamp<std::size_t>(n / 40, 24, 160);
  cfg.query_size = std::clamp<std::size_t>(n / 6, 120, 1200);
  cfg.batch_k = std::clamp<std::size_t>(n / 80, 16, 96);
  cfg.iterations = 14;
  cfg.detector.initial_epochs = 30;
  cfg.detector.finetune_epochs = 6;
  return cfg;
}

RunResult run_strategy(const BuiltBenchmark& built, core::SamplerKind kind,
                       std::uint64_t seed) {
  core::FrameworkConfig cfg = default_config(built, seed);
  cfg.sampler.kind = kind;
  return run_strategy(built, cfg);
}

RunResult run_strategy(const BuiltBenchmark& built,
                       const core::FrameworkConfig& config) {
  litho::LithoOracle oracle = built.bench.make_oracle();
  RunResult r;
  r.outcome = core::run_active_learning(config, built.features, built.bench.clips, oracle);
  r.metrics = core::evaluate_outcome(r.outcome, built.bench.labels);
  return r;
}

PmRunResult run_pm(const BuiltBenchmark& built, const pm::PmConfig& config) {
  litho::LithoOracle oracle = built.bench.make_oracle();
  const auto t0 = std::chrono::steady_clock::now();
  PmRunResult r;
  r.result = pm::run_pattern_matching(built.bench.clips, built.rows, oracle, config);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  r.metrics = core::evaluate_pm(r.result, built.bench.labels, secs);
  return r;
}

}  // namespace hsd::harness
