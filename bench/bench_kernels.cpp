// Kernel microbenchmarks, self-contained warmup+repeat harness (no
// external benchmark framework): the dense primitives behind the
// reproduction, measured per kernel backend.
//
// Three sections, one schema-stable JSON document (stdout + --out file):
//   * "dispatched"   — kernels routed through the src/tensor backend
//     dispatch (GEMM variants, CNN forward, 2-D DCT). Each is measured
//     once per registered backend, with the scalar reference first so
//     every fast backend reports a speedup_vs_scalar.
//   * "dct_batch"    — Dct2d::forward_lowfreq_batch_abs over clip
//     populations N ∈ {64, 1024, 8192} versus the per-clip
//     forward_lowfreq loop, per backend (speedup_vs_perclip is the
//     batching win the serving and AL feature paths see).
//   * "independent"  — hot loops that never touch the dispatcher (aerial
//     image, GMM fit, diversity scan, QP solve, capped-simplex
//     projection, pattern generation), measured once.
//
// Threads are pinned to 1 so the numbers isolate the backend effect from
// the runtime pool (bench_runtime owns the threading story).
//
// Flags:   --seed N (default 1)   --out FILE (default BENCH_kernels.json)
//          --trace FILE  --metrics FILE (shared obs taps)
// Env:     HSD_BENCH_ROUNDS (default 7)   HSD_BENCH_WARMUP (default 2)
//          HSD_BACKEND restricts the dispatched sweep to that backend.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/registry.hpp"
#include "core/detector.hpp"
#include "core/diversity.hpp"
#include "data/pattern_generator.hpp"
#include "gmm/gmm.hpp"
#include "harness.hpp"
#include "litho/optical.hpp"
#include "nn/conv.hpp"
#include "qp/qp.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/backend/backend.hpp"
#include "tensor/dct.hpp"
#include "tensor/ops.hpp"

namespace {

using hsd::harness::TimingEstimate;
using hsd::stats::Rng;
using hsd::tensor::Tensor;

/// One benchmark case. `flops` is the arithmetic cost of a single run
/// (0 when a flop count is not meaningful), used to report GFLOP/s.
struct Case {
  std::string name;
  double flops = 0.0;
  std::function<void()> run;
};

std::vector<std::vector<double>> random_rows(std::size_t n, std::size_t dim,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows(n, std::vector<double>(dim));
  for (auto& r : rows) {
    for (auto& v : r) v = rng.normal();
  }
  return rows;
}

/// Kernels whose inner loops go through tensor::backend dispatch.
std::vector<Case> dispatched_cases(std::uint64_t seed) {
  std::vector<Case> cases;

  for (const std::size_t n : {std::size_t{64}, std::size_t{128}, std::size_t{256}}) {
    Rng rng(seed);
    auto a = std::make_shared<Tensor>(Tensor::randn({n, n}, rng));
    auto b = std::make_shared<Tensor>(Tensor::randn({n, n}, rng));
    auto c = std::make_shared<std::vector<float>>(n * n);
    const double flops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                         static_cast<double>(n);
    cases.push_back({"gemm_" + std::to_string(n), flops, [a, b, c, n] {
                       hsd::tensor::matmul(a->data(), b->data(), c->data(), n,
                                           n, n);
                     }});
  }

  {  // The transposed variants at one representative size.
    const std::size_t n = 128;
    Rng rng(seed + 1);
    auto a = std::make_shared<Tensor>(Tensor::randn({n, n}, rng));
    auto b = std::make_shared<Tensor>(Tensor::randn({n, n}, rng));
    auto c = std::make_shared<std::vector<float>>(n * n);
    const double flops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                         static_cast<double>(n);
    cases.push_back({"gemm_at_b_128", flops, [a, b, c, n] {
                       hsd::tensor::matmul_at_b(a->data(), b->data(), c->data(),
                                                n, n, n);
                     }});
    cases.push_back({"gemm_a_bt_128", flops, [a, b, c, n] {
                       hsd::tensor::matmul_a_bt(a->data(), b->data(), c->data(),
                                                n, n, n);
                     }});
  }

  {  // Conv forward: batch of 32 single-channel 64x64 images, 8 filters.
    Rng rng(seed + 2);
    auto conv = std::make_shared<hsd::nn::Conv2d>(1, 8, 3, rng, 1, 1);
    auto x = std::make_shared<Tensor>(
        Tensor::rand_uniform({32, 1, 64, 64}, rng, 0.0F, 1.0F));
    cases.push_back({"conv_forward", 0.0, [conv, x] { conv->forward(*x); }});
  }

  {  // Detector CNN forward: batch of 512 DCT feature maps.
    Rng rng(seed + 3);
    hsd::core::DetectorConfig cfg;
    auto det = std::make_shared<hsd::core::HotspotDetector>(cfg, rng.split());
    auto x = std::make_shared<Tensor>(
        Tensor::rand_uniform({512, 1, 8, 8}, rng, 0.0F, 1.0F));
    cases.push_back({"cnn_forward_512", 0.0, [det, x] { det->forward(*x); }});
  }

  for (const std::size_t n : {std::size_t{32}, std::size_t{64}}) {
    auto dct = std::make_shared<hsd::tensor::Dct2d>(n);
    Rng rng(seed + 4);
    auto block = std::make_shared<std::vector<float>>(n * n);
    for (auto& v : *block) v = static_cast<float>(rng.uniform());
    cases.push_back({"dct2d_" + std::to_string(n), 0.0,
                     [dct, block] { dct->forward_lowfreq(*block, 8); }});
  }

  return cases;
}

/// Kernels that never reach the backend dispatch; measured once.
std::vector<Case> independent_cases(std::uint64_t seed) {
  std::vector<Case> cases;

  {  // Gaussian aerial-image model on a 64 px grid.
    Rng rng(seed + 10);
    auto mask = std::make_shared<std::vector<float>>(64 * 64);
    for (auto& v : *mask) v = rng.bernoulli(0.4) ? 1.0F : 0.0F;
    cases.push_back({"aerial_image_64", 0.0, [mask] {
                       hsd::litho::aerial_image(*mask, 64,
                                                hsd::litho::duv28_model());
                     }});
  }

  {  // GMM fit: 1000 points, 8-d, 4 components, 20 EM iterations.
    auto rows = std::make_shared<std::vector<std::vector<double>>>(
        random_rows(1000, 8, seed + 11));
    cases.push_back({"gmm_fit_1000", 0.0, [rows, seed] {
                       Rng rng(seed + 12);
                       hsd::gmm::GmmConfig cfg;
                       cfg.components = 4;
                       cfg.max_iters = 20;
                       hsd::gmm::GaussianMixture::fit(*rows, cfg, rng);
                     }});
  }

  {  // Min-distance diversity scan: 512 candidates, 32-d features.
    auto rows = std::make_shared<std::vector<std::vector<double>>>(
        random_rows(512, 32, seed + 13));
    cases.push_back({"diversity_scores_512", 0.0,
                     [rows] { hsd::core::diversity_scores(*rows); }});
  }

  {  // QP batch selection on the same similarity structure.
    const std::size_t n = 128;
    auto rows = std::make_shared<std::vector<std::vector<double>>>(
        random_rows(n, 32, seed + 14));
    auto s = std::make_shared<std::vector<double>>(
        hsd::core::similarity_matrix(*rows));
    cases.push_back({"qp_diversity_128", 0.0, [s, n] {
                       hsd::qp::solve_box_budget_qp(
                           *s, n, {}, static_cast<double>(n / 10));
                     }});
  }

  {  // Capped-simplex projection, 512-d.
    Rng rng(seed + 15);
    auto y = std::make_shared<std::vector<double>>(512);
    for (auto& v : *y) v = rng.normal();
    cases.push_back({"capped_simplex_512", 0.0, [y] {
                       hsd::qp::project_capped_simplex(*y, 64.0);
                     }});
  }

  {  // Synthetic clip generation (geometry + finalize).
    auto gen = std::make_shared<hsd::data::PatternGenerator>(
        hsd::data::GeneratorConfig{}, Rng(seed + 16));
    cases.push_back({"pattern_generation", 0.0, [gen] { gen->next(); }});
  }

  return cases;
}

void emit_estimate(std::ostringstream& os, const TimingEstimate& est) {
  os << "\"min_seconds\": " << est.min_seconds
     << ", \"mean_seconds\": " << est.mean_seconds
     << ", \"ci_lo_seconds\": " << est.ci_lo_seconds
     << ", \"ci_hi_seconds\": " << est.ci_hi_seconds
     << ", \"outlier_rounds\": " << est.outlier_rounds;
}

/// Batched-vs-per-clip truncated DCT sweep (the FeatureExtractor hot path:
/// g=32 rasters, keep=8). Emitted as its own schema section so the CI smoke
/// can gate on speedup_vs_perclip.
void emit_dct_batch_section(std::ostringstream& json,
                            const std::vector<std::string>& backend_names,
                            std::uint64_t seed, std::size_t warmup,
                            std::size_t rounds) {
  const std::size_t g = 32;
  const std::size_t keep = 8;
  const float scale = 1.0F / static_cast<float>(g);
  const hsd::tensor::Dct2d dct(g);
  json << "  \"dct_batch\": [\n";
  const std::vector<std::size_t> sizes{64, 1024, 8192};
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const std::size_t n = sizes[si];
    Rng rng(seed + 20);
    std::vector<std::vector<float>> clip_masks(n, std::vector<float>(g * g));
    std::vector<float> packed(n * g * g);
    for (std::size_t i = 0; i < n; ++i) {
      for (auto& v : clip_masks[i]) v = static_cast<float>(rng.uniform());
      std::copy(clip_masks[i].begin(), clip_masks[i].end(),
                packed.begin() + static_cast<std::ptrdiff_t>(i * g * g));
    }
    std::vector<float> out(n * keep * keep);
    json << "    {\"name\": \"dct_batch_" << n << "\", \"clips\": " << n
         << ", \"grid\": " << g << ", \"keep\": " << keep
         << ", \"backends\": [";
    double scalar_min = 0.0;
    for (std::size_t bi = 0; bi < backend_names.size(); ++bi) {
      hsd::tensor::backend::set_active(backend_names[bi]);
      const TimingEstimate batched = hsd::harness::measure(
          [&] {
            dct.forward_lowfreq_batch_abs(packed.data(), n, keep, scale,
                                          out.data());
          },
          warmup, rounds);
      // Per-clip baseline is the feature path as it stood before batching:
      // a full g x g forward transform per clip, cropped to the keep x keep
      // corner, plus the magnitude epilogue (forward_lowfreq used to compute
      // the full transform too; the truncation shipped with the batch).
      const TimingEstimate perclip = hsd::harness::measure(
          [&] {
            for (std::size_t i = 0; i < n; ++i) {
              const std::vector<float> f = dct.forward(clip_masks[i]);
              for (std::size_t u = 0; u < keep; ++u) {
                for (std::size_t v = 0; v < keep; ++v) {
                  out[i * keep * keep + u * keep + v] =
                      std::abs(f[u * g + v]) * scale;
                }
              }
            }
          },
          warmup, rounds);
      if (backend_names[bi] == "scalar") scalar_min = batched.min_seconds;
      if (bi > 0) json << ", ";
      json << "\n      {\"backend\": \"" << backend_names[bi] << "\", ";
      emit_estimate(json, batched);
      json << ", \"perclip_min_seconds\": " << perclip.min_seconds
           << ", \"perclip_mean_seconds\": " << perclip.mean_seconds;
      if (batched.min_seconds > 0.0) {
        json << ", \"speedup_vs_perclip\": "
             << perclip.min_seconds / batched.min_seconds;
        if (scalar_min > 0.0) {
          json << ", \"speedup_vs_scalar\": "
               << scalar_min / batched.min_seconds;
        }
      }
      json << "}";
    }
    json << "]}" << (si + 1 < sizes.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  hsd::tensor::backend::set_active("auto");
}

}  // namespace

int main(int argc, char** argv) {
  hsd::harness::apply_obs_flags(argc, argv);
  std::uint64_t seed = 1;
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  const std::size_t rounds = hsd::harness::bench_rounds();
  const std::size_t warmup = hsd::harness::bench_warmup();
  hsd::runtime::set_global_threads(1);

  // Scalar runs first so every later backend can report a speedup against
  // it. When HSD_BACKEND pins a single backend, only that one is swept
  // (speedups then reference its own scalar-relative entry only if scalar
  // is the pinned backend).
  std::vector<std::string> backend_names;
  if (const char* pinned = std::getenv(hsd::reg::kEnvBackend);
      pinned != nullptr && *pinned != '\0' &&
      std::string_view(pinned) != "auto") {
    backend_names.emplace_back(pinned);
  } else {
    backend_names.emplace_back("scalar");
    for (const auto* be : hsd::tensor::backend::available_backends()) {
      if (be->name() != "scalar") backend_names.emplace_back(be->name());
    }
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"bench_kernels\",\n";
  json << "  \"schema_version\": 3,\n";
  json << "  \"seed\": " << seed << ",\n";
  json << "  \"rounds\": " << rounds << ",\n  \"warmup\": " << warmup << ",\n";
  json << "  \"threads\": 1,\n";
  json << "  \"backends\": [";
  for (std::size_t i = 0; i < backend_names.size(); ++i) {
    json << (i > 0 ? ", " : "") << '"' << backend_names[i] << '"';
  }
  json << "],\n";
  json << "  \"dispatched\": [\n";

  const std::vector<Case> dispatched = dispatched_cases(seed);
  for (std::size_t ci = 0; ci < dispatched.size(); ++ci) {
    const Case& c = dispatched[ci];
    json << "    {\"name\": \"" << c.name << "\", \"backends\": [";
    double scalar_min = 0.0;
    for (std::size_t bi = 0; bi < backend_names.size(); ++bi) {
      hsd::tensor::backend::set_active(backend_names[bi]);
      const TimingEstimate est = hsd::harness::measure(c.run, warmup, rounds);
      if (backend_names[bi] == "scalar") scalar_min = est.min_seconds;
      if (bi > 0) json << ", ";
      json << "\n      {\"backend\": \"" << backend_names[bi] << "\", ";
      emit_estimate(json, est);
      if (c.flops > 0.0 && est.min_seconds > 0.0) {
        json << ", \"gflops\": " << c.flops / est.min_seconds / 1e9;
      }
      if (scalar_min > 0.0 && est.min_seconds > 0.0) {
        json << ", \"speedup_vs_scalar\": " << scalar_min / est.min_seconds;
      }
      json << "}";
    }
    json << "]}" << (ci + 1 < dispatched.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  hsd::tensor::backend::set_active("auto");

  emit_dct_batch_section(json, backend_names, seed, warmup, rounds);

  json << "  \"independent\": [\n";
  const std::vector<Case> independent = independent_cases(seed);
  for (std::size_t ci = 0; ci < independent.size(); ++ci) {
    const Case& c = independent[ci];
    const TimingEstimate est = hsd::harness::measure(c.run, warmup, rounds);
    json << "    {\"name\": \"" << c.name << "\", ";
    emit_estimate(json, est);
    json << "}" << (ci + 1 < independent.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";

  std::cout << json.str();
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json.str();
  }
  return 0;
}
