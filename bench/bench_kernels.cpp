// Kernel microbenchmarks (google-benchmark): the dense primitives behind
// the reproduction — GEMM, CNN forward, 2-D DCT, the Gaussian aerial-image
// model, GMM fitting, the min-distance diversity metric vs. the QP solve,
// and the capped-simplex projection.

#include <benchmark/benchmark.h>

#include "core/detector.hpp"
#include "core/diversity.hpp"
#include "data/pattern_generator.hpp"
#include "gmm/gmm.hpp"
#include "litho/optical.hpp"
#include "qp/qp.hpp"
#include "tensor/dct.hpp"
#include "tensor/ops.hpp"

namespace {

using hsd::stats::Rng;
using hsd::tensor::Tensor;

std::vector<std::vector<double>> random_rows(std::size_t n, std::size_t dim,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows(n, std::vector<double>(dim));
  for (auto& r : rows) {
    for (auto& v : r) v = rng.normal();
  }
  return rows;
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hsd::tensor::matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128);

void BM_CnnForward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  hsd::core::DetectorConfig cfg;
  hsd::core::HotspotDetector det(cfg, rng.split());
  const Tensor x = Tensor::rand_uniform({batch, 1, 8, 8}, rng, 0.0F, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.forward(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_CnnForward)->Arg(32)->Arg(512);

void BM_Dct2d(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  hsd::tensor::Dct2d dct(n);
  Rng rng(3);
  std::vector<float> block(n * n);
  for (auto& v : block) v = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dct.forward_lowfreq(block, 8));
  }
}
BENCHMARK(BM_Dct2d)->Arg(32)->Arg(64);

void BM_AerialImage(benchmark::State& state) {
  const auto grid = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  std::vector<float> mask(grid * grid);
  for (auto& v : mask) v = rng.bernoulli(0.4) ? 1.0F : 0.0F;
  const auto model = hsd::litho::duv28_model();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hsd::litho::aerial_image(mask, grid, model));
  }
}
BENCHMARK(BM_AerialImage)->Arg(64);

void BM_GmmFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto rows = random_rows(n, 8, 5);
  for (auto _ : state) {
    Rng rng(6);
    hsd::gmm::GmmConfig cfg;
    cfg.components = 4;
    cfg.max_iters = 20;
    benchmark::DoNotOptimize(hsd::gmm::GaussianMixture::fit(rows, cfg, rng));
  }
}
BENCHMARK(BM_GmmFit)->Arg(1000);

void BM_DiversityScores(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto rows = random_rows(n, 32, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hsd::core::diversity_scores(rows));
  }
}
BENCHMARK(BM_DiversityScores)->Arg(128)->Arg(512);

void BM_QpDiversity(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto rows = random_rows(n, 32, 8);
  const auto s = hsd::core::similarity_matrix(rows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hsd::qp::solve_box_budget_qp(s, n, {}, static_cast<double>(n / 10)));
  }
}
BENCHMARK(BM_QpDiversity)->Arg(128)->Arg(512);

void BM_CappedSimplexProjection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  std::vector<double> y(n);
  for (auto& v : y) v = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hsd::qp::project_capped_simplex(y, static_cast<double>(n) / 8.0));
  }
}
BENCHMARK(BM_CappedSimplexProjection)->Arg(512);

void BM_PatternGeneration(benchmark::State& state) {
  hsd::data::GeneratorConfig cfg;
  hsd::data::PatternGenerator gen(cfg, Rng(10));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
}
BENCHMARK(BM_PatternGeneration);

}  // namespace
