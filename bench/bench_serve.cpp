// Load generator for the serving stack: the single dynamic-batching
// service and the sharded fleet behind the consistent-hash router.
//
// Sections, one schema-stable JSON document (stdout + --out file):
//
//  1. Single-service offered-load sweep (closed loop): unloaded capacity is
//     measured first (all requests submitted at once), then paced producer
//     threads offer fractions of that capacity; achieved QPS, reject rate,
//     and exact p50/p95/p99 latencies are reported per point.
//
//  2. Single-service cache sweep: duplicate-heavy traffic replayed with the
//     feature LRU disabled vs. enabled; the QPS ratio isolates what the
//     cache buys when the DCT dominates per-request cost.
//
//  3. Fleet sweep (open loop): a zipfian clip-popularity model over a large
//     distinct-clip universe (standard-cell reality: a few pattern families
//     dominate, with a long tail) and Poisson-plus-burst arrivals, swept
//     over shard count x offered QPS. Reports fleet p50/p95/p99, shed rate,
//     and per-shard cache hit rates from the obs metrics rollup.
//
//  4. Transport sweep (closed loop): the same flooded fleet workload routed
//     in-process vs. over UDS vs. over TCP (in-process shard servers, real
//     sockets — DESIGN.md §16), isolating the RPC overhead per transport.
//     Reports achieved QPS, latency percentiles, and the channel
//     retry/reconnect counters (nonzero only when the transport misbehaved).
//
// Reproducibility: every stochastic stream (zipf clip choice, Poisson
// arrivals) derives from one --seed via runtime::derive_seed, and each
// fleet point reports a schedule_fingerprint — two runs at the same seed
// offer bit-identical load (CI asserts exactly this). Each config runs
// `repeats` times; scalar results report min/mean across repeats.
//
// Flags:   --seed N (default 1)   --out FILE (default BENCH_serve.json)
// Env:     HSD_SERVE_REQUESTS   requests per sweep point (default 256)
//          HSD_SERVE_PRODUCERS  producer threads (default 4)
//          HSD_SERVE_DISTINCT   distinct clips in the cache sweep (default 8)
//          HSD_SERVE_UNIVERSE   fleet distinct-clip universe (default 1024)
//          HSD_SERVE_SHARDS     fleet shard counts, comma list (default 1,2,4)
//          HSD_SERVE_REPEATS    repeats per config (default 3)
//          HSD_SERVE_TRANSPORTS transport axis, comma list of inproc|uds|tcp
//                               (default inproc,uds,tcp; --transports wins)

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/env.hpp"
#include "common/registry.hpp"
#include "core/detector.hpp"
#include "layout/clip.hpp"
#include "net/client.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/rollup.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/fleet.hpp"
#include "serve/loadgen.hpp"
#include "serve/remote.hpp"
#include "serve/service.hpp"
#include "stats/rng.hpp"

namespace {

using hsd::serve::ArrivalSpec;
using hsd::serve::FleetConfig;
using hsd::serve::FleetRouter;
using hsd::serve::InferenceService;
using hsd::serve::Response;
using hsd::serve::ServiceConfig;
using hsd::serve::Status;
using hsd::serve::ZipfSampler;

// Strict parse (common/env.hpp throws on malformed values); a well-formed
// zero falls back to the default — every knob here is a positive count.
std::size_t env_size(const char* name, std::size_t fallback) {
  const std::size_t v = hsd::common::env_size(name, fallback);
  return v == 0 ? fallback : v;
}

std::vector<std::size_t> env_size_list(const char* name,
                                       std::vector<std::size_t> fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  std::vector<std::size_t> out;
  std::istringstream is(v);
  std::string token;
  while (std::getline(is, token, ',')) {
    char* end = nullptr;
    const long parsed = std::strtol(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' || parsed <= 0) {
      throw std::runtime_error(std::string(name) +
                               ": malformed positive-integer list token \"" +
                               token + "\"");
    }
    out.push_back(static_cast<std::size_t>(parsed));
  }
  return out.empty() ? fallback : out;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

hsd::layout::Clip line_clip(hsd::layout::Coord width, hsd::layout::Coord offset) {
  hsd::layout::Clip c;
  c.window = hsd::layout::Rect{0, 0, 640, 640};
  c.core = hsd::layout::centered_core(c.window, 0.5);
  const auto y = static_cast<hsd::layout::Coord>(320 + offset - width / 2);
  c.shapes.push_back(
      hsd::layout::Rect{0, y, 640, static_cast<hsd::layout::Coord>(y + width)});
  hsd::layout::finalize(c);
  return c;
}

std::vector<hsd::layout::Clip> clip_population(std::size_t count) {
  std::vector<hsd::layout::Clip> clips;
  clips.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    clips.push_back(line_clip(static_cast<hsd::layout::Coord>(20 + (i % 5) * 10),
                              static_cast<hsd::layout::Coord>((i % 11) * 8) - 40));
  }
  return clips;
}

/// `count` geometrically distinct clips (width x vertical position grid) —
/// the popularity universe for the zipfian fleet workload.
std::vector<hsd::layout::Clip> clip_universe(std::size_t count) {
  std::vector<hsd::layout::Clip> clips;
  clips.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto width = static_cast<hsd::layout::Coord>(16 + (i % 64));
    const auto offset = static_cast<hsd::layout::Coord>(
        static_cast<long>(i / 64 % 64) * 8 - 256);
    clips.push_back(line_clip(width, offset));
  }
  return clips;
}

hsd::core::HotspotDetector make_detector(const ServiceConfig& cfg,
                                         std::uint64_t seed) {
  hsd::core::DetectorConfig dcfg;
  dcfg.input_side = cfg.feature_keep;
  return hsd::core::HotspotDetector(dcfg, hsd::stats::Rng(seed));
}

std::unique_ptr<InferenceService> make_service(const ServiceConfig& cfg,
                                               std::uint64_t seed) {
  return std::make_unique<InferenceService>(cfg, make_detector(cfg, seed));
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - static_cast<double>(lo));
}

/// min/mean summary of one scalar across repeats.
struct Agg {
  double min = 0.0, mean = 0.0;
};

Agg aggregate(const std::vector<double>& xs) {
  Agg a;
  if (xs.empty()) return a;
  a.min = *std::min_element(xs.begin(), xs.end());
  double sum = 0.0;
  for (const double x : xs) sum += x;
  a.mean = sum / static_cast<double>(xs.size());
  return a;
}

std::string agg_json(const Agg& a) {
  std::ostringstream os;
  os << "{\"min\": " << a.min << ", \"mean\": " << a.mean << "}";
  return os.str();
}

// ---------------------------------------------------------------------------
// Section 1+2: single-service sweeps (closed loop)
// ---------------------------------------------------------------------------

struct PointStats {
  double achieved_qps = 0.0;
  double reject_rate = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
};

/// Replays `requests` indices over `clips` through a fresh service.
/// `offered_qps` > 0 paces each producer's inter-arrival gap; 0 floods.
PointStats run_closed_point(const ServiceConfig& cfg,
                            const std::vector<hsd::layout::Clip>& clips,
                            std::size_t requests, std::size_t producers,
                            double offered_qps, std::uint64_t seed) {
  const std::unique_ptr<InferenceService> service = make_service(cfg, seed);
  std::vector<std::vector<std::future<Response>>> futures(producers);
  const std::chrono::nanoseconds gap(
      offered_qps > 0 ? static_cast<long long>(1e9 * static_cast<double>(producers) /
                                               offered_qps)
                      : 0);

  const double t0 = now_seconds();
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (std::size_t i = p; i < requests; i += producers) {
        futures[p].push_back(service->submit(clips[i % clips.size()]));
        if (gap.count() > 0) std::this_thread::sleep_for(gap);
      }
    });
  }
  for (auto& t : threads) t.join();

  PointStats pt;
  std::size_t ok = 0, rejected = 0;
  std::vector<double> latencies;
  latencies.reserve(requests);
  for (auto& lane : futures) {
    for (auto& f : lane) {
      const Response r = f.get();
      if (r.status == Status::kOk) {
        ++ok;
        latencies.push_back(r.latency_seconds);
      } else {
        ++rejected;
      }
    }
  }
  const double wall = now_seconds() - t0;
  service->shutdown();

  std::sort(latencies.begin(), latencies.end());
  pt.achieved_qps = wall > 0 ? static_cast<double>(ok) / wall : 0.0;
  pt.reject_rate = static_cast<double>(rejected) / static_cast<double>(requests);
  pt.p50_ms = 1e3 * percentile(latencies, 0.50);
  pt.p95_ms = 1e3 * percentile(latencies, 0.95);
  pt.p99_ms = 1e3 * percentile(latencies, 0.99);
  return pt;
}

/// Single-producer flood of duplicate-heavy traffic; returns achieved QPS.
double run_cache_pass(const ServiceConfig& cfg,
                      const std::vector<hsd::layout::Clip>& clips,
                      std::size_t requests, std::uint64_t seed) {
  const std::unique_ptr<InferenceService> service = make_service(cfg, seed);
  // One pass up front so the warm run measures a populated cache, not the
  // cold misses that populate it (for the disabled-cache config this is
  // just an identical extra pass).
  for (std::size_t i = 0; i < clips.size(); ++i) {
    service->predict(clips[i % clips.size()]);
  }
  std::vector<std::future<Response>> futures;
  futures.reserve(requests);
  const double t0 = now_seconds();
  for (std::size_t i = 0; i < requests; ++i) {
    futures.push_back(service->submit(clips[i % clips.size()]));
  }
  std::size_t ok = 0;
  for (auto& f : futures) {
    if (f.get().status == Status::kOk) ++ok;
  }
  const double wall = now_seconds() - t0;
  service->shutdown();
  return wall > 0 ? static_cast<double>(ok) / wall : 0.0;
}

// ---------------------------------------------------------------------------
// Section 3: fleet sweep (open loop, zipf + Poisson/burst)
// ---------------------------------------------------------------------------

struct FleetPointStats {
  double achieved_qps = 0.0;
  double shed_rate = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  double cache_hit_rate = 0.0;
  /// Per-shard (requests completed, cache hit rate) from the obs rollup.
  std::vector<std::pair<std::uint64_t, double>> per_shard;
};

/// Offers `schedule`/`clip_ids` open-loop through a fresh fleet: producer p
/// handles arrivals i = p mod producers, sleeping until each arrival time.
FleetPointStats run_fleet_point(const FleetConfig& fcfg, std::uint64_t model_seed,
                                const std::vector<hsd::layout::Clip>& universe,
                                const std::vector<double>& schedule,
                                const std::vector<std::size_t>& clip_ids,
                                std::size_t producers) {
  hsd::obs::reset_metrics();
  FleetRouter fleet(fcfg, [&] { return make_detector(fcfg.shard, model_seed); });

  const std::size_t requests = schedule.size();
  std::vector<std::vector<std::future<Response>>> futures(producers);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (std::size_t i = p; i < requests; i += producers) {
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(schedule[i])));
        futures[p].push_back(fleet.submit(universe[clip_ids[i]]));
      }
    });
  }
  for (auto& t : threads) t.join();

  FleetPointStats pt;
  std::size_t ok = 0, shed = 0, hits = 0;
  std::vector<double> latencies;
  latencies.reserve(requests);
  for (auto& lane : futures) {
    for (auto& f : lane) {
      const Response r = f.get();
      if (r.status == Status::kOk) {
        ++ok;
        hits += r.cache_hit ? 1 : 0;
        latencies.push_back(r.latency_seconds);
      } else if (r.status == Status::kShedFleetOverloaded) {
        ++shed;
      }
    }
  }
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  fleet.shutdown();

  std::sort(latencies.begin(), latencies.end());
  pt.achieved_qps = wall > 0 ? static_cast<double>(ok) / wall : 0.0;
  pt.shed_rate = static_cast<double>(shed) / static_cast<double>(requests);
  pt.p50_ms = 1e3 * percentile(latencies, 0.50);
  pt.p95_ms = 1e3 * percentile(latencies, 0.95);
  pt.p99_ms = 1e3 * percentile(latencies, 0.99);
  pt.cache_hit_rate = ok > 0 ? static_cast<double>(hits) / static_cast<double>(ok) : 0.0;

  // Per-shard breakdown from the metrics registry (the rollup's raw side).
  const hsd::obs::MetricsSnapshot snap = hsd::obs::metrics_snapshot();
  pt.per_shard.assign(fcfg.shards, {0, 0.0});
  std::vector<std::uint64_t> shard_hits(fcfg.shards, 0), shard_misses(fcfg.shards, 0);
  for (const auto& [name, value] : snap.counters) {
    const auto parsed = hsd::obs::parse_shard_metric(name);
    if (!parsed || parsed->shard >= fcfg.shards) continue;
    if (parsed->tail == "completed") pt.per_shard[parsed->shard].first = value;
    if (parsed->tail == "cache_hits") shard_hits[parsed->shard] = value;
    if (parsed->tail == "cache_misses") shard_misses[parsed->shard] = value;
  }
  for (std::size_t s = 0; s < fcfg.shards; ++s) {
    const std::uint64_t total = shard_hits[s] + shard_misses[s];
    pt.per_shard[s].second =
        total > 0 ? static_cast<double>(shard_hits[s]) / static_cast<double>(total)
                  : 0.0;
  }
  return pt;
}

// ---------------------------------------------------------------------------
// Section 4: transport sweep (closed loop, inproc vs uds vs tcp)
// ---------------------------------------------------------------------------

std::vector<std::string> parse_transports(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string token;
  while (std::getline(is, token, ',')) {
    if (token.empty()) continue;
    if (token != "inproc" && token != "uds" && token != "tcp") {
      throw std::runtime_error("bench_serve: unknown transport \"" + token +
                               "\" (expected inproc|uds|tcp)");
    }
    out.push_back(token);
  }
  if (out.empty()) {
    throw std::runtime_error("bench_serve: empty transport list");
  }
  return out;
}

struct TransportPointStats {
  double achieved_qps = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  std::uint64_t net_retries = 0;     ///< frames re-sent after connection loss
  std::uint64_t net_reconnects = 0;  ///< channel re-establishments
};

/// Floods `requests` zipf-free round-robin clips through a fleet built on
/// the named transport. For uds/tcp the shard servers run in-process but
/// speak real sockets (DESIGN.md §16), so the delta vs. inproc is exactly
/// the wire + syscall + channel cost.
TransportPointStats run_transport_point(
    const std::string& transport, const FleetConfig& fcfg,
    std::uint64_t model_seed, const std::vector<hsd::layout::Clip>& clips,
    std::size_t requests, std::size_t producers) {
  static int bench_sockets = 0;  // unique UDS path per fleet construction
  std::vector<std::unique_ptr<hsd::serve::ShardServer>> servers;
  std::vector<hsd::serve::RemoteShard*> remotes;
  std::unique_ptr<FleetRouter> fleet;
  if (transport == "inproc") {
    fleet = std::make_unique<FleetRouter>(
        fcfg, [&] { return make_detector(fcfg.shard, model_seed); });
  } else {
    std::vector<std::unique_ptr<hsd::serve::Shard>> shard_ptrs;
    for (std::size_t i = 0; i < fcfg.shards; ++i) {
      hsd::serve::ShardServerConfig sscfg;
      sscfg.service = fcfg.shard;
      sscfg.service.shard_index = static_cast<std::uint32_t>(i);
      sscfg.service.metric_prefix =
          fcfg.shard.metric_prefix + "/shard" + std::to_string(i);
      if (transport == "uds") {
        hsd::net::Endpoint ep;
        ep.kind = hsd::net::Endpoint::Kind::kUds;
        ep.path = "/tmp/hsd-bench-" + std::to_string(::getpid()) + "-" +
                  std::to_string(bench_sockets++) + ".sock";
        sscfg.server.endpoint = ep;
      } else {
        sscfg.server.endpoint = hsd::net::parse_endpoint("tcp:127.0.0.1:0");
      }
      servers.push_back(std::make_unique<hsd::serve::ShardServer>(
          sscfg, make_detector(fcfg.shard, model_seed)));
      servers.back()->start();

      hsd::serve::RemoteShardConfig rcfg;
      rcfg.channel.endpoint = servers.back()->endpoint();
      rcfg.channel.seed = i;
      rcfg.channel.metric_prefix =
          "serve/net/client/shard" + std::to_string(i);
      rcfg.shard_index = static_cast<std::uint32_t>(i);
      rcfg.feature_grid = fcfg.shard.feature_grid;
      auto remote = std::make_unique<hsd::serve::RemoteShard>(rcfg);
      remotes.push_back(remote.get());
      shard_ptrs.push_back(std::move(remote));
    }
    fleet = std::make_unique<FleetRouter>(fcfg, std::move(shard_ptrs));
  }

  std::vector<std::vector<std::future<Response>>> futures(producers);
  const double t0 = now_seconds();
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (std::size_t i = p; i < requests; i += producers) {
        futures[p].push_back(fleet->submit(clips[i % clips.size()]));
      }
    });
  }
  for (auto& t : threads) t.join();

  TransportPointStats pt;
  std::size_t ok = 0;
  std::vector<double> latencies;
  latencies.reserve(requests);
  for (auto& lane : futures) {
    for (auto& f : lane) {
      const Response r = f.get();
      if (r.status == Status::kOk) {
        ++ok;
        latencies.push_back(r.latency_seconds);
      }
    }
  }
  const double wall = now_seconds() - t0;

  fleet->shutdown();
  for (const auto* remote : remotes) {
    const hsd::net::ChannelStats cs = remote->transport_stats();
    pt.net_retries += cs.retries;
    pt.net_reconnects += cs.reconnects;
  }
  fleet.reset();
  for (auto& server : servers) server->drain_and_stop();

  std::sort(latencies.begin(), latencies.end());
  pt.achieved_qps = wall > 0 ? static_cast<double>(ok) / wall : 0.0;
  pt.p50_ms = 1e3 * percentile(latencies, 0.50);
  pt.p95_ms = 1e3 * percentile(latencies, 0.95);
  pt.p99_ms = 1e3 * percentile(latencies, 0.99);
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::string out_path = "BENCH_serve.json";
  std::string transports_csv;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--transports") == 0 && i + 1 < argc) {
      transports_csv = argv[++i];
    }
  }
  if (transports_csv.empty()) {
    if (const char* env = std::getenv(hsd::reg::kEnvServeTransports)) {
      transports_csv = env;
    }
  }
  const std::vector<std::string> transports = parse_transports(
      transports_csv.empty() ? "inproc,uds,tcp" : transports_csv);

  const std::size_t requests = env_size(hsd::reg::kEnvServeRequests, 256);
  const std::size_t producers = env_size(hsd::reg::kEnvServeProducers, 4);
  const std::size_t distinct = env_size(hsd::reg::kEnvServeDistinct, 8);
  const std::size_t universe_size = env_size(hsd::reg::kEnvServeUniverse, 1024);
  const std::size_t repeats = env_size(hsd::reg::kEnvServeRepeats, 3);
  const std::vector<std::size_t> shard_counts =
      env_size_list(hsd::reg::kEnvServeShards, {1, 2, 4});

  // Per-shard caches are read through the metrics rollup, so collection is
  // on for the whole bench (no export path: snapshots are read in-process).
  hsd::obs::enable_metrics();

  ServiceConfig cfg;
  const std::uint64_t model_seed = hsd::runtime::derive_seed(seed, 0);

  std::ostringstream json;
  json << "{\n  \"bench\": \"bench_serve\",\n";
  json << "  \"schema_version\": 2,\n";
  json << "  \"seed\": " << seed << ",\n";
  json << "  \"repeats\": " << repeats << ",\n";
  json << "  \"requests_per_point\": " << requests << ",\n";
  json << "  \"producers\": " << producers << ",\n";
  json << "  \"max_batch\": " << cfg.max_batch << ",\n";

  // --- Section 1: single-service offered-load sweep ------------------------
  const std::vector<hsd::layout::Clip> unique_clips = clip_population(requests);
  ServiceConfig flood = cfg;
  flood.cache_capacity = 0;
  flood.max_queue = requests;
  ServiceConfig paced = cfg;
  paced.cache_capacity = 0;
  paced.max_queue = std::max<std::size_t>(requests / 4, 32);

  std::vector<double> cap_qps;
  for (std::size_t r = 0; r < repeats; ++r) {
    cap_qps.push_back(
        run_closed_point(flood, unique_clips, requests, producers, 0.0, model_seed)
            .achieved_qps);
  }
  const Agg capacity = aggregate(cap_qps);

  json << "  \"single\": {\n";
  json << "    \"max_queue\": " << paced.max_queue << ",\n";
  json << "    \"capacity_qps\": " << agg_json(capacity) << ",\n";
  json << "    \"sweep\": [\n";
  const std::vector<double> fractions{0.25, 0.5, 1.0};
  for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
    const double offered = fractions[fi] * capacity.mean;
    std::vector<double> qps, rej, p50, p95, p99;
    for (std::size_t r = 0; r < repeats; ++r) {
      const PointStats pt = run_closed_point(paced, unique_clips, requests,
                                             producers, offered, model_seed);
      qps.push_back(pt.achieved_qps);
      rej.push_back(pt.reject_rate);
      p50.push_back(pt.p50_ms);
      p95.push_back(pt.p95_ms);
      p99.push_back(pt.p99_ms);
    }
    json << "      {\"offered_fraction\": " << fractions[fi]
         << ", \"offered_qps\": " << offered
         << ", \"achieved_qps\": " << agg_json(aggregate(qps))
         << ", \"reject_rate\": " << agg_json(aggregate(rej))
         << ",\n       \"p50_ms\": " << agg_json(aggregate(p50))
         << ", \"p95_ms\": " << agg_json(aggregate(p95))
         << ", \"p99_ms\": " << agg_json(aggregate(p99)) << "}"
         << (fi + 1 < fractions.size() ? "," : "") << "\n";
  }
  json << "    ],\n";

  // --- Section 2: cache speedup --------------------------------------------
  const std::vector<hsd::layout::Clip> dup_clips = clip_population(distinct);
  ServiceConfig warm_cfg = cfg;
  warm_cfg.max_queue = requests;
  std::vector<double> cold, warm, speedup;
  for (std::size_t r = 0; r < repeats; ++r) {
    const double c = run_cache_pass(flood, dup_clips, requests, model_seed);
    const double w = run_cache_pass(warm_cfg, dup_clips, requests, model_seed);
    cold.push_back(c);
    warm.push_back(w);
    speedup.push_back(c > 0 ? w / c : 0.0);
  }
  json << "    \"cache\": {\"distinct_clips\": " << distinct
       << ", \"cold_qps\": " << agg_json(aggregate(cold))
       << ", \"warm_qps\": " << agg_json(aggregate(warm))
       << ", \"speedup\": " << agg_json(aggregate(speedup)) << "}\n  },\n";

  // --- Section 3: fleet sweep ----------------------------------------------
  const double zipf_exponent = 1.1;
  const std::vector<hsd::layout::Clip> universe = clip_universe(universe_size);

  json << "  \"fleet\": {\n";
  json << "    \"universe\": " << universe_size << ",\n";
  json << "    \"zipf_exponent\": " << zipf_exponent << ",\n";
  json << "    \"virtual_nodes\": " << FleetConfig{}.virtual_nodes << ",\n";
  json << "    \"points\": [\n";

  bool first_point = true;
  for (std::size_t si = 0; si < shard_counts.size(); ++si) {
    const std::size_t shards = shard_counts[si];
    FleetConfig fcfg;
    fcfg.shards = shards;
    fcfg.shard = cfg;
    fcfg.shard.max_queue =
        std::max<std::size_t>(requests / (4 * shards), 16);
    fcfg.shard.cache_capacity = 4096;

    // Closed-loop fleet capacity at this shard count (flood, big queues).
    FleetConfig flood_cfg = fcfg;
    flood_cfg.shard.max_queue = requests;
    ZipfSampler zipf(universe_size, zipf_exponent);
    std::vector<double> fleet_cap;
    for (std::size_t r = 0; r < repeats; ++r) {
      hsd::stats::Rng crng(hsd::runtime::derive_seed(seed, 100 + si));
      std::vector<std::size_t> ids(requests);
      for (auto& id : ids) id = zipf.sample(crng);
      std::vector<double> now_schedule(requests, 0.0);  // flood: all at t=0
      fleet_cap.push_back(run_fleet_point(flood_cfg, model_seed, universe,
                                          now_schedule, ids, producers)
                              .achieved_qps);
    }
    const Agg cap = aggregate(fleet_cap);

    // Open-loop offered points: below and above capacity (1.4x overload
    // exercises shedding). The load *shape* — unit-rate Poisson arrivals
    // with a burst every requests/8 mean inter-arrivals, plus the zipfian
    // clip choices — is a pure function of --seed, and that shape is what
    // the fingerprint covers (so two runs at one seed fingerprint
    // identically on any machine). Only the replay time scale adapts to the
    // measured capacity.
    ArrivalSpec spec;
    spec.rate_qps = 1.0;  // unit rate; replay divides by the offered QPS
    spec.burst_every_seconds = static_cast<double>(requests) / 8.0;
    spec.burst_size = std::max<std::size_t>(requests / 32, 4);
    for (const double fraction : {0.7, 1.4}) {
      const double offered = std::max(fraction * cap.mean, 1.0);

      std::vector<double> qps, shed, p50, p95, p99, hit;
      std::uint64_t fingerprint = 0;
      FleetPointStats last;
      for (std::size_t r = 0; r < repeats; ++r) {
        // One stream per (shard count, fraction, repeat): schedules repeat
        // exactly at a fixed --seed and never alias across configs.
        const std::uint64_t stream =
            1000 + si * 100 + static_cast<std::uint64_t>(fraction * 10) * 10 + r;
        const std::vector<double> unit_schedule = hsd::serve::arrival_schedule(
            requests, spec, hsd::runtime::derive_seed(seed, stream));
        hsd::stats::Rng zrng(hsd::runtime::derive_seed(seed, stream + 50000));
        std::vector<std::size_t> ids(requests);
        for (auto& id : ids) id = zipf.sample(zrng);
        if (r == 0) {
          fingerprint = hsd::serve::schedule_fingerprint(unit_schedule, ids);
        }
        std::vector<double> schedule = unit_schedule;
        for (double& t : schedule) t /= offered;

        last = run_fleet_point(fcfg, model_seed, universe, schedule, ids,
                               producers);
        qps.push_back(last.achieved_qps);
        shed.push_back(last.shed_rate);
        p50.push_back(last.p50_ms);
        p95.push_back(last.p95_ms);
        p99.push_back(last.p99_ms);
        hit.push_back(last.cache_hit_rate);
      }

      json << (first_point ? "" : ",\n");
      first_point = false;
      json << "      {\"shards\": " << shards
           << ", \"offered_fraction\": " << fraction
           << ", \"offered_qps\": " << offered
           << ", \"capacity_qps\": " << agg_json(cap)
           << ",\n       \"schedule_fingerprint\": \"" << std::hex << fingerprint
           << std::dec << "\",\n";
      json << "       \"achieved_qps\": " << agg_json(aggregate(qps))
           << ", \"shed_rate\": " << agg_json(aggregate(shed))
           << ", \"cache_hit_rate\": " << agg_json(aggregate(hit)) << ",\n";
      json << "       \"p50_ms\": " << agg_json(aggregate(p50))
           << ", \"p95_ms\": " << agg_json(aggregate(p95))
           << ", \"p99_ms\": " << agg_json(aggregate(p99)) << ",\n";
      json << "       \"per_shard\": [";
      for (std::size_t s = 0; s < last.per_shard.size(); ++s) {
        json << (s > 0 ? ", " : "") << "{\"shard\": " << s
             << ", \"completed\": " << last.per_shard[s].first
             << ", \"cache_hit_rate\": " << last.per_shard[s].second << "}";
      }
      json << "]}";
    }
  }
  json << "\n    ]\n  },\n";

  // --- Section 4: transport sweep ------------------------------------------
  const std::size_t transport_shards = 2;
  FleetConfig tcfg;
  tcfg.shards = transport_shards;
  tcfg.shard = cfg;
  tcfg.shard.max_queue = requests;
  tcfg.shard.cache_capacity = 4096;

  json << "  \"transport\": {\n";
  json << "    \"shards\": " << transport_shards << ",\n";
  json << "    \"points\": [\n";
  for (std::size_t ti = 0; ti < transports.size(); ++ti) {
    std::vector<double> qps, p50, p95, p99;
    std::uint64_t retries = 0, reconnects = 0;
    for (std::size_t r = 0; r < repeats; ++r) {
      const TransportPointStats pt = run_transport_point(
          transports[ti], tcfg, model_seed, unique_clips, requests, producers);
      qps.push_back(pt.achieved_qps);
      p50.push_back(pt.p50_ms);
      p95.push_back(pt.p95_ms);
      p99.push_back(pt.p99_ms);
      retries += pt.net_retries;
      reconnects += pt.net_reconnects;
    }
    json << "      {\"transport\": \"" << transports[ti]
         << "\", \"achieved_qps\": " << agg_json(aggregate(qps))
         << ",\n       \"p50_ms\": " << agg_json(aggregate(p50))
         << ", \"p95_ms\": " << agg_json(aggregate(p95))
         << ", \"p99_ms\": " << agg_json(aggregate(p99))
         << ",\n       \"net_retries\": " << retries
         << ", \"net_reconnects\": " << reconnects << "}"
         << (ti + 1 < transports.size() ? "," : "") << "\n";
  }
  json << "    ]\n  }\n}\n";

  const std::string doc = json.str();
  std::cout << doc;
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << doc;
  }
  return 0;
}
