// Closed-loop load generator for the dynamic-batching inference service.
//
// Two experiments, one JSON document on stdout:
//
//  1. Offered-load sweep: the unloaded capacity is measured first (all
//     requests submitted at once), then paced producer threads offer
//     fractions of that capacity and the achieved QPS, reject rate, and
//     exact p50/p95/p99 response latencies are reported per point. Past
//     saturation the bounded queue starts rejecting instead of building an
//     unbounded backlog — the sweep shows exactly where.
//
//  2. Cache sweep: duplicate-heavy traffic (a few distinct clips repeated
//     many times, the standard-cell reality) is replayed twice — cache
//     disabled vs. cache enabled — and the QPS ratio isolates what the
//     feature LRU buys when the DCT dominates per-request cost.
//
// The model is a randomly initialized detector: serving cost does not
// depend on the weights, and skipping training keeps the bench fast.
//
// Environment knobs:
//   HSD_SERVE_REQUESTS   requests per sweep point (default 256)
//   HSD_SERVE_PRODUCERS  producer threads (default 4)
//   HSD_SERVE_DISTINCT   distinct clips in the cache sweep (default 8)

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/detector.hpp"
#include "layout/clip.hpp"
#include "serve/service.hpp"
#include "stats/rng.hpp"

namespace {

using hsd::serve::InferenceService;
using hsd::serve::Response;
using hsd::serve::ServiceConfig;
using hsd::serve::Status;

std::size_t env_size(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long parsed = std::strtol(v, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

hsd::layout::Clip line_clip(hsd::layout::Coord width, hsd::layout::Coord offset) {
  hsd::layout::Clip c;
  c.window = hsd::layout::Rect{0, 0, 640, 640};
  c.core = hsd::layout::centered_core(c.window, 0.5);
  const auto y = static_cast<hsd::layout::Coord>(320 + offset - width / 2);
  c.shapes.push_back(
      hsd::layout::Rect{0, y, 640, static_cast<hsd::layout::Coord>(y + width)});
  hsd::layout::finalize(c);
  return c;
}

std::vector<hsd::layout::Clip> clip_population(std::size_t count) {
  std::vector<hsd::layout::Clip> clips;
  clips.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    clips.push_back(line_clip(static_cast<hsd::layout::Coord>(20 + (i % 5) * 10),
                              static_cast<hsd::layout::Coord>((i % 11) * 8) - 40));
  }
  return clips;
}

std::unique_ptr<InferenceService> make_service(const ServiceConfig& cfg) {
  hsd::core::DetectorConfig dcfg;
  dcfg.input_side = cfg.feature_keep;
  return std::make_unique<InferenceService>(
      cfg, hsd::core::HotspotDetector(dcfg, hsd::stats::Rng(7)));
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - static_cast<double>(lo));
}

struct SweepPoint {
  double offered_qps = 0.0;   ///< 0 = unpaced (as fast as possible)
  double achieved_qps = 0.0;
  double reject_rate = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
};

/// Replays `requests` indices over `clips` through a fresh service.
/// `offered_qps` > 0 paces each producer's inter-arrival gap; 0 floods.
SweepPoint run_point(const ServiceConfig& cfg, const std::vector<hsd::layout::Clip>& clips,
                     std::size_t requests, std::size_t producers, double offered_qps) {
  const std::unique_ptr<InferenceService> service = make_service(cfg);
  std::vector<std::vector<std::future<Response>>> futures(producers);
  const std::chrono::nanoseconds gap(
      offered_qps > 0 ? static_cast<long long>(1e9 * static_cast<double>(producers) /
                                               offered_qps)
                      : 0);

  const double t0 = now_seconds();
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (std::size_t i = p; i < requests; i += producers) {
        futures[p].push_back(service->submit(clips[i % clips.size()]));
        if (gap.count() > 0) std::this_thread::sleep_for(gap);
      }
    });
  }
  for (auto& t : threads) t.join();

  SweepPoint pt;
  pt.offered_qps = offered_qps;
  std::size_t ok = 0, rejected = 0;
  std::vector<double> latencies;
  latencies.reserve(requests);
  for (auto& lane : futures) {
    for (auto& f : lane) {
      const Response r = f.get();
      if (r.status == Status::kOk) {
        ++ok;
        latencies.push_back(r.latency_seconds);
      } else {
        ++rejected;
      }
    }
  }
  const double wall = now_seconds() - t0;
  service->shutdown();

  std::sort(latencies.begin(), latencies.end());
  pt.achieved_qps = wall > 0 ? static_cast<double>(ok) / wall : 0.0;
  pt.reject_rate = static_cast<double>(rejected) / static_cast<double>(requests);
  pt.p50_ms = 1e3 * percentile(latencies, 0.50);
  pt.p95_ms = 1e3 * percentile(latencies, 0.95);
  pt.p99_ms = 1e3 * percentile(latencies, 0.99);
  return pt;
}

/// Single-producer flood of duplicate-heavy traffic; returns achieved QPS.
double run_cache_pass(const ServiceConfig& cfg, const std::vector<hsd::layout::Clip>& clips,
                      std::size_t requests) {
  const std::unique_ptr<InferenceService> service = make_service(cfg);
  // One pass up front so the warm run measures a populated cache, not the
  // cold misses that populate it (for the disabled-cache config this is
  // just an identical extra pass).
  for (std::size_t i = 0; i < clips.size(); ++i) {
    service->predict(clips[i % clips.size()]);
  }
  std::vector<std::future<Response>> futures;
  futures.reserve(requests);
  const double t0 = now_seconds();
  for (std::size_t i = 0; i < requests; ++i) {
    futures.push_back(service->submit(clips[i % clips.size()]));
  }
  std::size_t ok = 0;
  for (auto& f : futures) {
    if (f.get().status == Status::kOk) ++ok;
  }
  const double wall = now_seconds() - t0;
  service->shutdown();
  return wall > 0 ? static_cast<double>(ok) / wall : 0.0;
}

}  // namespace

int main() {
  const std::size_t requests = env_size("HSD_SERVE_REQUESTS", 256);
  const std::size_t producers = env_size("HSD_SERVE_PRODUCERS", 4);
  const std::size_t distinct = env_size("HSD_SERVE_DISTINCT", 8);

  ServiceConfig cfg;

  // Unique clips per request: every offered-load point pays full feature
  // cost, so the sweep measures the pipeline, not the cache.
  const std::vector<hsd::layout::Clip> unique_clips = clip_population(requests);

  // Capacity measurement floods every request at once, so its queue must
  // hold them all; the paced sweep points use a saturable queue so the
  // admission control actually shows up in reject_rate.
  ServiceConfig flood = cfg;
  flood.cache_capacity = 0;
  flood.max_queue = requests;
  ServiceConfig paced = cfg;
  paced.cache_capacity = 0;
  paced.max_queue = std::max<std::size_t>(requests / 4, 32);

  const SweepPoint capacity = run_point(flood, unique_clips, requests, producers, 0.0);

  std::cout << "{\n  \"bench\": \"bench_serve\",\n";
  std::cout << "  \"requests\": " << requests << ",\n";
  std::cout << "  \"producers\": " << producers << ",\n";
  std::cout << "  \"max_batch\": " << cfg.max_batch << ",\n";
  std::cout << "  \"max_queue\": " << paced.max_queue << ",\n";
  std::cout << "  \"sweep\": [\n";

  std::vector<SweepPoint> points{capacity};
  for (const double fraction : {0.25, 0.5, 1.0}) {
    points.push_back(run_point(paced, unique_clips, requests, producers,
                               fraction * capacity.achieved_qps));
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& pt = points[i];
    std::cout << "    {\"offered_qps\": " << pt.offered_qps
              << ", \"achieved_qps\": " << pt.achieved_qps
              << ", \"reject_rate\": " << pt.reject_rate
              << ", \"p50_ms\": " << pt.p50_ms << ", \"p95_ms\": " << pt.p95_ms
              << ", \"p99_ms\": " << pt.p99_ms << "}"
              << (i + 1 < points.size() ? "," : "") << "\n";
  }
  std::cout << "  ],\n";

  // Duplicate-heavy traffic: `distinct` clips cycled `requests` times.
  const std::vector<hsd::layout::Clip> dup_clips = clip_population(distinct);
  ServiceConfig warm_cfg = cfg;
  warm_cfg.max_queue = requests;
  const double cold_qps = run_cache_pass(flood, dup_clips, requests);
  const double warm_qps = run_cache_pass(warm_cfg, dup_clips, requests);
  std::cout << "  \"cache\": {\"distinct_clips\": " << distinct
            << ", \"cold_qps\": " << cold_qps << ", \"warm_qps\": " << warm_qps
            << ", \"speedup\": " << (cold_qps > 0 ? warm_qps / cold_qps : 0.0)
            << "}\n}\n";
  return 0;
}
