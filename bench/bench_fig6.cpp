// Fig. 6 — (a) fixed vs. dynamic entropy weights on ICCAD16-3: accuracy and
// lithography overhead for fixed omega_2 in {0.2, 0.4, 0.6} against the
// entropy weighting method; (b) overall runtime comparison (PSHD compute
// time + 10 s per litho-clip) for PM-exact, TS, QP, and Ours.

#include <cstdio>

#include "harness.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace hsd;
  harness::apply_obs_flags(argc, argv);
  using core::SamplerKind;

  const std::size_t reps = harness::repeats();

  // ---- (a) weight comparison on ICCAD16-3. --------------------------------
  {
    const auto& built = harness::get_benchmark(data::iccad16_spec(3));
    std::printf("Fig. 6(a): fixed vs. dynamic weights on ICCAD16-3"
                " (%zu repetitions)\n", reps);
    std::printf("  %-8s %10s %10s\n", "omega_2", "Acc%", "Litho#");

    auto run_with = [&](bool dynamic, double w2) {
      std::vector<double> acc, litho;
      for (std::size_t r = 0; r < reps; ++r) {
        core::FrameworkConfig cfg = harness::default_config(built, 300 + r);
        cfg.sampler.dynamic_weights = dynamic;
        cfg.sampler.fixed_w2 = w2;
        const auto run = harness::run_strategy(built, cfg);
        acc.push_back(run.metrics.accuracy);
        litho.push_back(static_cast<double>(run.metrics.litho));
      }
      return std::pair{stats::mean(acc), stats::mean(litho)};
    };

    for (double w2 : {0.2, 0.4, 0.6}) {
      const auto [acc, litho] = run_with(false, w2);
      std::printf("  %-8.1f %10.2f %10.0f\n", w2, acc * 100.0, litho);
    }
    const auto [acc, litho] = run_with(true, 0.0);
    std::printf("  %-8s %10.2f %10.0f\n", "Ours", acc * 100.0, litho);
    std::printf("\n");
  }

  // ---- (b) overall runtime with the 10 s/litho-clip penalty. --------------
  {
    std::printf("Fig. 6(b): overall runtime (PSHD + 10 s x Litho#), averaged"
                " over the evaluated benchmarks\n");
    const auto specs = harness::paper_specs();
    const std::vector<std::string> methods{"PM-exact", "TS", "QP", "Ours"};
    std::vector<double> runtime(methods.size(), 0.0);

    for (const auto& spec : specs) {
      const auto& built = harness::get_benchmark(spec);
      pm::PmConfig pm_cfg;
      pm_cfg.mode = pm::MatchMode::kExact;
      runtime[0] += harness::run_pm(built, pm_cfg).metrics.modeled_runtime_seconds;
      runtime[1] +=
          harness::run_strategy(built, SamplerKind::kTsOnly).metrics.modeled_runtime_seconds;
      runtime[2] +=
          harness::run_strategy(built, SamplerKind::kQp).metrics.modeled_runtime_seconds;
      runtime[3] += harness::run_strategy(built, SamplerKind::kEntropy)
                        .metrics.modeled_runtime_seconds;
      std::fprintf(stderr, "[fig6b] %s done\n", spec.name.c_str());
    }
    std::printf("  %-10s %16s\n", "method", "runtime (s)");
    for (std::size_t m = 0; m < methods.size(); ++m) {
      std::printf("  %-10s %16.0f\n", methods[m].c_str(),
                  runtime[m] / static_cast<double>(specs.size()));
    }
  }

  std::printf("\nPaper shape check: dynamic weights dominate every fixed"
              " omega_2 on both criteria; PM-exact's runtime towers over the"
              " learning methods and Ours is the cheapest.\n");
  return 0;
}
