// Fig. 4 — trade-off of batch selection strategies: each method (Ours, QP,
// TS) is run repeatedly with alternative parameters and seeds; runs are
// grouped by achieved detection accuracy and the lithography overhead is
// averaged per accuracy level, reproducing the paper's accuracy-vs-Litho#
// scatter/curves on ICCAD16-2/3/4 and ICCAD12.

#include <cstdio>

#include "harness.hpp"
#include "stats/bootstrap.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace hsd;
  harness::apply_obs_flags(argc, argv);
  using core::SamplerKind;

  const auto specs = harness::paper_specs();
  const std::size_t reps = harness::repeats();
  const std::vector<std::pair<std::string, SamplerKind>> methods{
      {"Ours", SamplerKind::kEntropy},
      {"QP", SamplerKind::kQp},
      {"TS", SamplerKind::kTsOnly}};

  std::printf("Fig. 4: accuracy vs. lithography overhead trade-off"
              " (%zu repetitions per method, varied batch sizes and seeds)\n\n",
              reps);

  for (const auto& spec : specs) {
    const auto& built = harness::get_benchmark(spec);
    std::printf("== %s ==\n", spec.name.c_str());
    for (const auto& [name, kind] : methods) {
      std::vector<double> acc, litho;
      for (std::size_t r = 0; r < reps; ++r) {
        core::FrameworkConfig cfg = harness::default_config(built, 100 + r);
        cfg.sampler.kind = kind;
        // "Alternative parameters": sweep the batch size around the default,
        // which moves the operating point along the trade-off curve.
        cfg.batch_k = std::max<std::size_t>(8, cfg.batch_k / 2 + r * 8);
        const auto run = harness::run_strategy(built, cfg);
        acc.push_back(run.metrics.accuracy);
        litho.push_back(static_cast<double>(run.metrics.litho));
      }
      // Average litho overhead per accuracy level (2-decimal buckets), the
      // paper's per-accuracy averaging.
      const auto series = stats::group_mean_by(acc, litho, 2);
      std::printf("  %-5s:", name.c_str());
      for (const auto& [a, l] : series) std::printf("  (%.2f, %.0f)", a, l);
      stats::Rng ci_rng(911);
      const auto acc_ci = stats::bootstrap_mean_ci(acc, ci_rng);
      const auto litho_ci = stats::bootstrap_mean_ci(litho, ci_rng);
      std::printf("\n         acc %.4f [%.4f, %.4f]  litho %.0f [%.0f, %.0f]"
                  " (95%% bootstrap CI)\n",
                  acc_ci.point, acc_ci.lo, acc_ci.hi, litho_ci.point, litho_ci.lo,
                  litho_ci.hi);
    }
    std::printf("\n");
  }

  std::printf("Paper shape check: Ours sits lowest (least litho overhead) at"
              " matched accuracy, QP above it, TS cheapest but accuracy-capped;"
              " Ours occupies a narrow accuracy band (stability).\n");
  return 0;
}
