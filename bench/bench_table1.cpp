// Table I — statistics of benchmarks.
//
// Builds the synthetic ICCAD12 / ICCAD16-1..4 suites and reports HS#, NHS#,
// and technology node, mirroring the paper's Table I. ICCAD12 is built at
// HSD_ICCAD12_SCALE (default 0.05) of the contest population; the HS/NHS
// ratio matches Table I at every scale.

#include <cstdio>

#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace hsd;
  harness::apply_obs_flags(argc, argv);

  std::printf("Table I: Statistics of benchmarks (synthetic reproduction)\n");
  std::printf("%-11s %8s %8s %9s %10s\n", "Benchmarks", "HS #", "NHS #", "Tech (nm)",
              "HS ratio");

  std::vector<data::BenchmarkSpec> specs;
  specs.push_back(data::iccad12_spec(harness::iccad12_scale()));
  for (int c = 1; c <= 4; ++c) specs.push_back(data::iccad16_spec(c));

  for (const auto& spec : specs) {
    const auto& built = harness::get_benchmark(spec);
    const auto& b = built.bench;
    const double ratio =
        b.size() > 0 ? static_cast<double>(b.num_hotspots) / static_cast<double>(b.size())
                     : 0.0;
    std::printf("%-11s %8zu %8zu %9d %9.2f%%\n", spec.name.c_str(), b.num_hotspots,
                b.num_non_hotspots, spec.tech_nm, ratio * 100.0);
  }

  std::printf("\nPaper reference (full-scale): ICCAD12 3728/159672 @28nm, "
              "ICCAD16-1 0/63, -2 56/967, -3 1100/3916, -4 157/1678 @7nm.\n");
  std::printf("ICCAD12 built at scale %.3f; ratios are preserved.\n",
              harness::iccad12_scale());
  return 0;
}
