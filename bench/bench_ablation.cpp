// Extension ablations beyond the paper's Table III:
//   (a) query-strategy study — the paper's entropy sampler against the
//       classic selectors its introduction cites (predictive entropy [9],
//       BADGE [13], core-set) and random selection, on a shared benchmark;
//   (b) decision-boundary sweep — the effect of the h parameter of Eq. 6
//       (the paper fixes h = 0.4 for imbalanced sets);
//   (c) GMM component sweep — sensitivity of the density seeding.

#include <cstdio>

#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace hsd;
  harness::apply_obs_flags(argc, argv);
  using core::SamplerKind;

  // ---- (a) strategy study on ICCAD16-3 and ICCAD16-4. ---------------------
  {
    std::printf("Ablation (a): query strategies (extension study)\n");
    const std::vector<std::pair<std::string, SamplerKind>> strategies{
        {"Ours", SamplerKind::kEntropy},
        {"PredEntropy", SamplerKind::kPredictiveEntropy},
        {"BADGE", SamplerKind::kBadge},
        {"Coreset", SamplerKind::kCoreset},
        {"Random", SamplerKind::kRandom}};
    for (int case_id : {3, 4}) {
      const auto& built = harness::get_benchmark(data::iccad16_spec(case_id));
      std::printf("  == %s ==\n", built.bench.spec.name.c_str());
      std::printf("  %-12s %8s %8s %7s\n", "strategy", "Acc%", "Litho#", "HS@L");
      for (const auto& [name, kind] : strategies) {
        const auto run = harness::run_strategy(built, kind);
        std::printf("  %-12s %8.2f %8zu %7zu\n", name.c_str(),
                    run.metrics.accuracy * 100.0, run.metrics.litho,
                    run.outcome.train.num_hotspots());
      }
    }
    std::printf("\n");
  }

  // ---- (b) decision boundary h sweep on ICCAD16-4. ------------------------
  {
    const auto& built = harness::get_benchmark(data::iccad16_spec(4));
    std::printf("Ablation (b): Eq. 6 boundary h sweep on %s (paper fixes 0.4)\n",
                built.bench.spec.name.c_str());
    std::printf("  %-6s %8s %8s\n", "h", "Acc%", "Litho#");
    for (double h : {0.2, 0.3, 0.4, 0.5, 0.6}) {
      core::FrameworkConfig cfg = harness::default_config(built);
      cfg.sampler.h = h;
      cfg.decision_threshold = h;
      const auto run = harness::run_strategy(built, cfg);
      std::printf("  %-6.1f %8.2f %8zu\n", h, run.metrics.accuracy * 100.0,
                  run.metrics.litho);
    }
    std::printf("\n");
  }

  // ---- (c) GMM components sweep on ICCAD16-3. ------------------------------
  {
    const auto& built = harness::get_benchmark(data::iccad16_spec(3));
    std::printf("Ablation (c): GMM component count on %s\n",
                built.bench.spec.name.c_str());
    std::printf("  %-6s %8s %8s %7s\n", "K", "Acc%", "Litho#", "seedHS");
    for (std::size_t k : {1u, 2u, 4u, 8u}) {
      core::FrameworkConfig cfg = harness::default_config(built);
      cfg.gmm_components = k;
      const auto run = harness::run_strategy(built, cfg);
      // Hotspots among the first |L0| seeds.
      std::size_t seed_hs = 0;
      for (std::size_t i = 0; i < cfg.initial_train && i < run.outcome.train.size(); ++i) {
        seed_hs += run.outcome.train.labels[i] == 1;
      }
      std::printf("  %-6zu %8.2f %8zu %7zu\n", k, run.metrics.accuracy * 100.0,
                  run.metrics.litho, seed_hs);
    }
  }

  std::printf("\nShape expectations: the paper's sampler matches or beats the"
              " classic selectors at equal budget; h near 0.4 is the sweet"
              " spot for these imbalanced sets; seeding is robust to K.\n");
  return 0;
}
