// Table II — full chip pattern sampling and hotspot detection on the
// ICCAD12/16 benchmarks: PM-exact / PM-a95 / PM-a90 / PM-e2 (Chen et al.),
// TS (calibrated uncertainty only), QP (Yang et al. [14]), and Ours
// (entropy-based sampling with model calibration). Reports Acc% (Eq. 1) and
// Litho# (Eq. 2) per benchmark, plus Average and Ratio rows.

#include <cstdio>

#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace hsd;
  harness::apply_obs_flags(argc, argv);
  using core::SamplerKind;

  const auto specs = harness::paper_specs();
  const std::vector<std::string> methods{"PM-exact", "PM-a95", "PM-a90", "PM-e2",
                                         "TS", "QP", "Ours"};

  // metrics[method][benchmark]
  std::vector<std::vector<core::PshdMetrics>> metrics(methods.size());

  for (const auto& spec : specs) {
    const auto& built = harness::get_benchmark(spec);

    pm::PmConfig pm_exact;
    pm_exact.mode = pm::MatchMode::kExact;
    metrics[0].push_back(harness::run_pm(built, pm_exact).metrics);

    pm::PmConfig pm_a95;
    pm_a95.mode = pm::MatchMode::kSimilarity;
    pm_a95.sim_threshold = 0.95;
    metrics[1].push_back(harness::run_pm(built, pm_a95).metrics);

    pm::PmConfig pm_a90;
    pm_a90.mode = pm::MatchMode::kSimilarity;
    pm_a90.sim_threshold = 0.90;
    metrics[2].push_back(harness::run_pm(built, pm_a90).metrics);

    pm::PmConfig pm_e2;
    pm_e2.mode = pm::MatchMode::kEdgeTolerance;
    pm_e2.edge_tol = 2 * built.bench.spec.gen.step;
    metrics[3].push_back(harness::run_pm(built, pm_e2).metrics);

    metrics[4].push_back(harness::run_strategy(built, SamplerKind::kTsOnly).metrics);
    metrics[5].push_back(harness::run_strategy(built, SamplerKind::kQp).metrics);
    metrics[6].push_back(harness::run_strategy(built, SamplerKind::kEntropy).metrics);

    std::fprintf(stderr, "[table2] %s done\n", spec.name.c_str());
  }

  std::printf("Table II: Full chip pattern sampling and hotspot detection\n");
  std::printf("%-11s", "Benchmark");
  for (const auto& m : methods) std::printf(" |%9s: Acc%%  Litho#", m.c_str());
  std::printf("\n");
  for (std::size_t b = 0; b < specs.size(); ++b) {
    std::printf("%-11s", specs[b].name.c_str());
    for (std::size_t m = 0; m < methods.size(); ++m) {
      std::printf(" |%10s %6.2f %7zu", "", metrics[m][b].accuracy * 100.0,
                  metrics[m][b].litho);
    }
    std::printf("\n");
  }

  // Average + Ratio rows (reference = Ours).
  const std::size_t ref = methods.size() - 1;
  std::vector<double> avg_acc(methods.size(), 0.0), avg_litho(methods.size(), 0.0);
  for (std::size_t m = 0; m < methods.size(); ++m) {
    for (const auto& x : metrics[m]) {
      avg_acc[m] += x.accuracy;
      avg_litho[m] += static_cast<double>(x.litho);
    }
    avg_acc[m] /= static_cast<double>(specs.size());
    avg_litho[m] /= static_cast<double>(specs.size());
  }
  std::printf("%-11s", "Average");
  for (std::size_t m = 0; m < methods.size(); ++m) {
    std::printf(" |%10s %6.2f %7.0f", "", avg_acc[m] * 100.0, avg_litho[m]);
  }
  std::printf("\n%-11s", "Ratio");
  for (std::size_t m = 0; m < methods.size(); ++m) {
    std::printf(" |%10s %6.3f %7.3f", "", avg_acc[m] / avg_acc[ref],
                avg_litho[m] / avg_litho[ref]);
  }
  std::printf("\n\nPaper shape check: PM-exact 100%% Acc at the largest Litho#;"
              " fuzzy PM degrades sharply; Ours >= QP >= TS in Acc at the lowest"
              " Litho# among learning methods.\n");
  return 0;
}
