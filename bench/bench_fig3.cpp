// Fig. 3 — (a) visualization of the layout-pattern diversity metric: clip
// features are projected to 2-D with PCA and the highest-diversity points
// are reported (they sit away from clusters / on cluster boundaries);
// (b) runtime comparison of the paper's min-distance diversity metric vs.
// the QP-based diversity of Yang et al. [14] on identical query sets
// (paper reports 153.97 vs 8.28 x 1e-4 s).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "core/diversity.hpp"
#include "harness.hpp"
#include "qp/qp.hpp"
#include "stats/pca.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hsd;
  harness::apply_obs_flags(argc, argv);

  const auto& built = harness::get_benchmark(data::iccad16_spec(2));

  // ---- (a) diversity visualization on a query-set-sized sample. ----------
  stats::Rng rng(33);
  const std::size_t q = std::min<std::size_t>(400, built.bench.size());
  const auto pick = rng.sample_without_replacement(built.bench.size(), q);
  std::vector<std::vector<double>> feats;
  feats.reserve(q);
  for (std::size_t idx : pick) feats.push_back(built.rows[idx]);

  const auto scores = core::diversity_scores(feats);
  const auto pca = stats::Pca::fit(feats, 2);
  const auto xy = pca.transform(feats);

  // Rank by diversity and show the top 15 alongside the 2-D embedding.
  std::vector<std::size_t> rank(q);
  for (std::size_t i = 0; i < q; ++i) rank[i] = i;
  std::sort(rank.begin(), rank.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });

  std::printf("Fig. 3(a): layout-pattern diversity visualization (query n=%zu)\n", q);
  std::printf("  top-diversity points (PCA 2-D coordinates):\n");
  std::printf("  %-6s %10s %10s %10s\n", "rank", "pc1", "pc2", "d_i");
  for (std::size_t r = 0; r < 15 && r < q; ++r) {
    const std::size_t i = rank[r];
    std::printf("  %-6zu %10.4f %10.4f %10.4f\n", r + 1, xy[i][0], xy[i][1], scores[i]);
  }
  // Quantify "away from the crowd": mean 2-D nearest-neighbor distance of the
  // top-decile diversity points vs. the whole sample (high-diversity points
  // are the isolated ones, Fig. 3a's orange markers).
  auto nn_dist = [&](std::size_t i) {
    double best = 1e300;
    for (std::size_t j = 0; j < q; ++j) {
      if (j == i) continue;
      const double dx = xy[i][0] - xy[j][0], dy = xy[i][1] - xy[j][1];
      best = std::min(best, dx * dx + dy * dy);
    }
    return std::sqrt(best);
  };
  double top_mean = 0.0, all_mean = 0.0;
  const std::size_t top = std::max<std::size_t>(q / 10, 1);
  for (std::size_t r = 0; r < top; ++r) top_mean += nn_dist(rank[r]);
  for (std::size_t i = 0; i < q; ++i) all_mean += nn_dist(i);
  top_mean /= static_cast<double>(top);
  all_mean /= static_cast<double>(q);
  std::printf("  mean 2-D nearest-neighbor distance: top-decile diversity %.4f"
              " vs all %.4f (ratio %.2fx — isolated points score highest)\n\n",
              top_mean, all_mean, all_mean > 0 ? top_mean / all_mean : 0.0);

  // ---- (b) runtime: ours vs QP on identical query sets. -------------------
  std::printf("Fig. 3(b): diversity-metric runtime, QP [14] vs Ours\n");
  std::printf("  %-6s %14s %14s %9s\n", "n", "QP (s)", "Ours (s)", "speedup");
  for (std::size_t n : {100u, 200u, 400u}) {
    std::vector<std::vector<double>> sub(feats.begin(),
                                         feats.begin() + static_cast<std::ptrdiff_t>(
                                                             std::min<std::size_t>(n, q)));
    // Ours: min-distance scores (Eq. 7).
    const auto t_ours0 = std::chrono::steady_clock::now();
    const auto d = core::diversity_scores(sub);
    const double t_ours = seconds_since(t_ours0);
    // QP: build the similarity matrix is shared context; time the solve as
    // in [14] (the paper's quoted numbers are the selection step).
    const auto s = core::similarity_matrix(sub);
    const auto t_qp0 = std::chrono::steady_clock::now();
    const auto sol = qp::solve_box_budget_qp(s, sub.size(), {},
                                             static_cast<double>(sub.size() / 10));
    const double t_qp = seconds_since(t_qp0);
    std::printf("  %-6zu %14.6f %14.6f %8.1fx\n", sub.size(), t_qp, t_ours,
                t_ours > 0 ? t_qp / t_ours : 0.0);
    (void)d;
    (void)sol;
  }
  std::printf("\nPaper shape check: the min-distance metric is consistently"
              " faster than the QP solve at every query size (paper reports"
              " 153.97 vs 8.28 x 1e-4 s, an 18.6x gap, with its solver).\n");
  return 0;
}
