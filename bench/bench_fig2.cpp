// Fig. 2 — reliability diagrams (confidence vs. accuracy, 10 bins) of the
// hotspot CNN before and after temperature scaling, on the ICCAD12-style
// benchmark. Prints each bin's mean confidence, empirical accuracy, and gap
// plus the summary calibration metrics (ECE / MCE / NLL).

#include <cstdio>

#include "core/calibration.hpp"
#include "data/dataset.hpp"
#include "core/detector.hpp"
#include "harness.hpp"
#include "stats/reliability.hpp"

namespace {

void print_diagram(const char* title, const hsd::stats::ReliabilityDiagram& d) {
  std::printf("%s\n", title);
  std::printf("  %-12s %6s %10s %9s %7s\n", "bin", "count", "confidence", "accuracy",
              "gap");
  for (const auto& bin : d.bins) {
    if (bin.count == 0) {
      std::printf("  [%.1f, %.1f)  %6s %10s %9s %7s\n", bin.lo, bin.hi, "-", "-", "-",
                  "-");
      continue;
    }
    std::printf("  [%.1f, %.1f)  %6zu %10.3f %9.3f %7.3f\n", bin.lo, bin.hi, bin.count,
                bin.mean_confidence, bin.accuracy,
                bin.mean_confidence - bin.accuracy);
  }
  std::printf("  ECE = %.4f   MCE = %.4f   NLL = %.4f   top-1 acc = %.4f\n\n", d.ece,
              d.mce, d.nll, d.accuracy);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hsd;
  harness::apply_obs_flags(argc, argv);

  const auto& built = harness::get_benchmark(data::iccad12_spec(harness::iccad12_scale()));
  const std::size_t n = built.bench.size();

  // Deterministic split: a small (active-learning sized) training set so the
  // CNN is realistically under-trained and mis-calibrated as in Fig. 2(a),
  // a validation set for fitting T, and a held-out set for the diagrams.
  (void)n;
  stats::Rng rng(2021);
  const data::Split split =
      data::shuffled_split(built.bench.labels, 400, 300,
                           std::min<std::size_t>(4000, n - 700), rng);
  const data::LabeledSet& train = split.train;
  const data::LabeledSet& val = split.val;
  const data::LabeledSet& test = split.test;

  core::DetectorConfig det_cfg;
  det_cfg.input_side = built.bench.spec.feature_keep;
  det_cfg.initial_epochs = 40;
  core::HotspotDetector detector(det_cfg, rng.split());
  detector.train_initial(data::make_batch(built.features, train.indices), train.labels);

  const tensor::Tensor val_logits =
      detector.logits(data::make_batch(built.features, val.indices));
  const core::CalibrationResult cal = core::fit_temperature(val_logits, val.labels);

  const tensor::Tensor test_logits =
      detector.logits(data::make_batch(built.features, test.indices));
  const auto probs_raw = core::calibrated_probabilities(test_logits, 1.0);
  const auto probs_cal = core::calibrated_probabilities(test_logits, cal.temperature);

  std::printf("Fig. 2: Reliability diagrams, confidence vs. accuracy (10 bins)\n");
  std::printf("Fitted temperature T = %.3f (validation NLL %.4f -> %.4f)\n\n",
              cal.temperature, cal.nll_before, cal.nll_after);
  print_diagram("(a) Original (T = 1)",
                stats::reliability_diagram(probs_raw, test.labels, 10));
  print_diagram("(b) Calibrated (temperature scaling)",
                stats::reliability_diagram(probs_cal, test.labels, 10));

  std::printf("Paper shape check: the calibrated diagram's gaps (and ECE) shrink"
              " relative to the original.\n");
  return 0;
}
