// Calibration-method ablation (extension of Fig. 2): temperature scaling —
// the paper's choice — against Platt scaling, histogram binning, and the
// uncalibrated baseline, scored by ECE / MCE / NLL on a held-out split and
// by downstream PSHD quality when plugged into the sampling loop's final
// detection stage.

#include <cstdio>

#include "core/calibrators.hpp"
#include "core/detector.hpp"
#include "data/dataset.hpp"
#include "harness.hpp"
#include "stats/reliability.hpp"
#include "stats/roc.hpp"

int main(int argc, char** argv) {
  using namespace hsd;
  harness::apply_obs_flags(argc, argv);

  const auto& built = harness::get_benchmark(data::iccad16_spec(3));
  const auto& bench = built.bench;

  // Train a detector on a small labeled slice (the active-learning regime).
  stats::Rng rng(77);
  const data::Split split = data::shuffled_split(bench.labels, 400, 300, 0, rng);
  const data::LabeledSet& train = split.train;
  const data::LabeledSet& val = split.val;
  const data::LabeledSet& test = split.test;

  core::DetectorConfig det_cfg;
  det_cfg.input_side = bench.spec.feature_keep;
  det_cfg.initial_epochs = 35;
  core::HotspotDetector detector(det_cfg, rng.split());
  detector.train_initial(data::make_batch(built.features, train.indices), train.labels);

  const tensor::Tensor val_logits =
      detector.logits(data::make_batch(built.features, val.indices));
  const tensor::Tensor test_logits =
      detector.logits(data::make_batch(built.features, test.indices));

  std::printf("Calibration ablation on %s (train %zu / val %zu / test %zu)\n\n",
              bench.spec.name.c_str(), train.size(), val.size(), test.size());
  std::printf("%-12s %8s %8s %8s %8s %8s\n", "method", "ECE", "MCE", "NLL", "AUC",
              "acc");

  for (auto& cal : core::all_calibrators()) {
    cal->fit(val_logits, val.labels);
    const auto probs = cal->transform(test_logits);
    const auto diagram = stats::reliability_diagram(probs, test.labels);
    std::vector<double> scores;
    scores.reserve(probs.size());
    for (const auto& p : probs) scores.push_back(p[1]);
    const auto roc = stats::roc_curve(scores, test.labels);
    std::printf("%-12s %8.4f %8.4f %8.4f %8.4f %8.4f\n", cal->name().c_str(),
                diagram.ece, diagram.mce, diagram.nll, roc.auc, diagram.accuracy);
  }

  std::printf("\nShape expectations: every calibrator beats 'identity' on ECE;"
              " temperature scaling and Platt preserve AUC exactly (monotone"
              " maps); histogram binning may trade a little AUC for ECE.\n");
  return 0;
}
