// Serial-vs-parallel speedup of every kernel wired into the runtime pool:
// GEMM, im2col conv forward, batch DCT feature extraction, batch oracle
// labeling, and the min-distance diversity scan.
//
// csbench-style measurement: per (kernel, thread count), a fixed number of
// warmup runs precedes the timed rounds and the minimum round time is the
// reported estimate. Besides timing, every parallel result is compared
// bit-for-bit against the serial result, so the bench doubles as an
// end-to-end determinism check.
//
// Output is a single JSON document on stdout so the bench trajectory can
// track speedups across commits.
//
// Environment knobs:
//   HSD_BENCH_ROUNDS   timed rounds per measurement (default 7)
//   HSD_BENCH_WARMUP   warmup runs per measurement (default 2)

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "common/registry.hpp"
#include "core/diversity.hpp"
#include "data/features.hpp"
#include "litho/oracle.hpp"
#include "nn/conv.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "stats/rng.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace {

using hsd::stats::Rng;
using hsd::tensor::Tensor;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One measured kernel: run() must produce a byte buffer describing the
/// result so parallel runs can be checked against the serial reference.
struct Kernel {
  std::string name;
  std::function<std::vector<float>()> run;
};

struct Estimate {
  double min_seconds = 0.0;
  double mean_seconds = 0.0;
};

Estimate measure(const Kernel& kernel, std::size_t warmup, std::size_t rounds) {
  for (std::size_t i = 0; i < warmup; ++i) kernel.run();
  Estimate est;
  est.min_seconds = 1e300;
  for (std::size_t i = 0; i < rounds; ++i) {
    const double t0 = now_seconds();
    kernel.run();
    const double dt = now_seconds() - t0;
    est.min_seconds = std::min(est.min_seconds, dt);
    est.mean_seconds += dt;
  }
  est.mean_seconds /= static_cast<double>(rounds);
  return est;
}

hsd::layout::Clip line_clip(hsd::layout::Coord width, hsd::layout::Coord offset) {
  hsd::layout::Clip c;
  c.window = hsd::layout::Rect{0, 0, 640, 640};
  c.core = hsd::layout::centered_core(c.window, 0.5);
  const auto y = static_cast<hsd::layout::Coord>(320 + offset - width / 2);
  c.shapes.push_back(
      hsd::layout::Rect{0, y, 640, static_cast<hsd::layout::Coord>(y + width)});
  hsd::layout::finalize(c);
  return c;
}

std::vector<hsd::layout::Clip> clip_population(std::size_t count) {
  std::vector<hsd::layout::Clip> clips;
  clips.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    clips.push_back(line_clip(static_cast<hsd::layout::Coord>(20 + (i % 5) * 10),
                              static_cast<hsd::layout::Coord>((i % 11) * 8) - 40));
  }
  return clips;
}

std::vector<Kernel> build_kernels() {
  std::vector<Kernel> kernels;

  {  // GEMM: 256 x 256 x 256.
    const std::size_t n = 256;
    Rng rng(1);
    auto a = std::make_shared<Tensor>(Tensor::randn({n, n}, rng));
    auto b = std::make_shared<Tensor>(Tensor::randn({n, n}, rng));
    kernels.push_back({"matmul_256", [a, b, n] {
                         std::vector<float> c(n * n);
                         hsd::tensor::matmul(a->data(), b->data(), c.data(), n, n, n);
                         return c;
                       }});
  }

  {  // Conv forward: batch of 32 single-channel 64x64 images, 8 filters.
    Rng rng(2);
    auto conv = std::make_shared<hsd::nn::Conv2d>(1, 8, 3, rng, 1, 1);
    auto x = std::make_shared<Tensor>(Tensor::rand_uniform({32, 1, 64, 64}, rng, 0.0F, 1.0F));
    kernels.push_back({"conv_forward", [conv, x] {
                         const Tensor y = conv->forward(*x);
                         return std::vector<float>(y.data(), y.data() + y.size());
                       }});
  }

  {  // Batch DCT feature extraction: 48 clips on a 64 px grid.
    auto clips = std::make_shared<std::vector<hsd::layout::Clip>>(clip_population(48));
    kernels.push_back({"dct_features", [clips] {
                         const hsd::data::FeatureExtractor fx(64, 8);
                         const Tensor f = fx.extract_batch(*clips);
                         return std::vector<float>(f.data(), f.data() + f.size());
                       }});
  }

  {  // Batch oracle labeling: 24 clips through the full litho stack.
    auto clips = std::make_shared<std::vector<hsd::layout::Clip>>(clip_population(24));
    auto indices = std::make_shared<std::vector<std::size_t>>();
    for (std::size_t i = 0; i < clips->size(); ++i) indices->push_back(i);
    kernels.push_back({"oracle_label_batch", [clips, indices] {
                         hsd::litho::LithoOracle oracle(128, hsd::litho::duv28_model());
                         const auto labels = oracle.label_batch(*clips, *indices);
                         return std::vector<float>(labels.begin(), labels.end());
                       }});
  }

  {  // Min-distance diversity scan: 384 candidates, 64-d features.
    Rng rng(3);
    auto rows = std::make_shared<std::vector<std::vector<double>>>(
        384, std::vector<double>(64));
    for (auto& r : *rows) {
      for (auto& v : r) v = rng.normal();
    }
    kernels.push_back({"diversity_scores", [rows] {
                         const auto scores = hsd::core::diversity_scores(*rows);
                         return std::vector<float>(scores.begin(), scores.end());
                       }});
  }

  return kernels;
}

}  // namespace

int main(int argc, char** argv) {
  // Optional observability taps (same as HSD_TRACE / HSD_METRICS). When
  // neither is given the obs layer stays disabled and the timings below are
  // identical to a build without instrumentation.
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      hsd::obs::enable_trace(argv[++i]);
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      hsd::obs::enable_metrics(argv[++i]);
    }
  }
  const std::size_t rounds =
      std::max<std::size_t>(1, hsd::common::env_size(hsd::reg::kEnvBenchRounds, 7));
  const std::size_t warmup = hsd::common::env_size(hsd::reg::kEnvBenchWarmup, 2);
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());

  std::vector<std::size_t> thread_counts{1, 2, 4};
  if (std::find(thread_counts.begin(), thread_counts.end(), hw) ==
      thread_counts.end()) {
    thread_counts.push_back(hw);
  }
  std::sort(thread_counts.begin(), thread_counts.end());

  const std::vector<Kernel> kernels = build_kernels();

  std::cout << "{\n  \"bench\": \"bench_runtime\",\n";
  std::cout << "  \"hardware_concurrency\": " << hw << ",\n";
  std::cout << "  \"rounds\": " << rounds << ",\n  \"warmup\": " << warmup << ",\n";
  std::cout << "  \"kernels\": [\n";

  for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
    const Kernel& kernel = kernels[ki];

    hsd::runtime::set_global_threads(1);
    const std::vector<float> reference = kernel.run();
    const Estimate serial = measure(kernel, warmup, rounds);

    std::cout << "    {\"name\": \"" << kernel.name << "\", \"serial_seconds\": "
              << serial.min_seconds << ", \"parallel\": [";
    bool first = true;
    for (std::size_t threads : thread_counts) {
      if (threads == 1) continue;
      hsd::runtime::set_global_threads(threads);
      const std::vector<float> result = kernel.run();
      const bool identical =
          result.size() == reference.size() &&
          std::memcmp(result.data(), reference.data(),
                      result.size() * sizeof(float)) == 0;
      const Estimate par = measure(kernel, warmup, rounds);
      if (!first) std::cout << ", ";
      first = false;
      std::cout << "{\"threads\": " << threads << ", \"seconds\": " << par.min_seconds
                << ", \"speedup\": " << serial.min_seconds / par.min_seconds
                << ", \"bit_identical\": " << (identical ? "true" : "false") << "}";
    }
    std::cout << "]}" << (ki + 1 < kernels.size() ? "," : "") << "\n";
  }
  std::cout << "  ]\n}\n";
  hsd::runtime::set_global_threads(1);
  return 0;
}
