#pragma once
// Shared experiment harness for the table/figure reproduction binaries:
// benchmark construction with feature extraction (cached per process),
// per-benchmark default framework configurations, strategy runners, and
// paper-style table printing.
//
// Environment knobs (all optional):
//   HSD_ICCAD12_SCALE  fraction of the full ICCAD12 population to build
//                      (default 0.05 — Table I ratios are preserved; see
//                      EXPERIMENTS.md for the effect on absolute numbers)
//   HSD_REPEATS        repetition count for averaged experiments (default 5)
//   HSD_BENCH_ROUNDS   timed rounds per microbenchmark measurement (default 7)
//   HSD_BENCH_WARMUP   warmup runs per microbenchmark measurement (default 2)
//
// All knobs are parsed strictly (common/env.hpp): a malformed value throws
// std::runtime_error naming the variable instead of silently becoming a
// default.

#include <functional>
#include <string>
#include <vector>

#include "core/framework.hpp"
#include "core/metrics.hpp"
#include "data/benchmark.hpp"
#include "data/features.hpp"
#include "pm/pattern_matching.hpp"

namespace hsd::harness {

/// A benchmark plus everything the experiments need derived from it.
struct BuiltBenchmark {
  data::Benchmark bench;
  tensor::Tensor features;                  ///< (N, 1, 8, 8) DCT features
  std::vector<std::vector<double>> rows;    ///< flattened double rows
};

/// ICCAD12 population scale from HSD_ICCAD12_SCALE (default 0.05).
double iccad12_scale();

/// Repetition count from HSD_REPEATS (default 5).
std::size_t repeats();

/// Builds (or returns the cached) benchmark + features for a spec.
const BuiltBenchmark& get_benchmark(const data::BenchmarkSpec& spec);

/// The paper's four evaluated benchmarks at the configured ICCAD12 scale.
std::vector<data::BenchmarkSpec> paper_specs();

/// Framework configuration scaled to the benchmark population: the query
/// size, batch size, and iteration count grow with the clip count the way
/// the paper's settings do.
core::FrameworkConfig default_config(const BuiltBenchmark& built,
                                     std::uint64_t seed = 1);

/// Result of one strategy run.
struct RunResult {
  core::AlOutcome outcome;
  core::PshdMetrics metrics;
};

/// Runs one active-learning strategy with the default (or given) config.
RunResult run_strategy(const BuiltBenchmark& built, core::SamplerKind kind,
                       std::uint64_t seed = 1);
RunResult run_strategy(const BuiltBenchmark& built,
                       const core::FrameworkConfig& config);

/// Runs a pattern-matching baseline and scores it.
struct PmRunResult {
  pm::PmResult result;
  core::PshdMetrics metrics;
};
PmRunResult run_pm(const BuiltBenchmark& built, const pm::PmConfig& config);

/// csbench-style warmup+repeat timing estimate: the minimum round is the
/// headline number (least-noise estimate on a busy machine); the mean, a
/// bootstrap 95% CI on it, a Tukey-fence outlier count, and the raw rounds
/// are kept for dispersion reporting (stats::sample_dispersion with a fixed
/// seed, so re-running a quiet machine regenerates identical JSON).
struct TimingEstimate {
  double min_seconds = 0.0;
  double mean_seconds = 0.0;
  double ci_lo_seconds = 0.0;       ///< bootstrap 95% CI lower bound on mean
  double ci_hi_seconds = 0.0;       ///< bootstrap 95% CI upper bound on mean
  std::size_t outlier_rounds = 0;   ///< rounds outside the 1.5*IQR fences
  std::vector<double> rounds_seconds;
};

/// Timed rounds per measurement from HSD_BENCH_ROUNDS (default 7).
std::size_t bench_rounds();

/// Warmup runs per measurement from HSD_BENCH_WARMUP (default 2).
std::size_t bench_warmup();

/// Runs `fn` `warmup` times untimed, then `rounds` timed rounds. Throws
/// std::invalid_argument when rounds == 0 — an estimate over an empty
/// sample is meaningless, not zero.
TimingEstimate measure(const std::function<void()>& fn, std::size_t warmup,
                       std::size_t rounds);

/// measure() with the HSD_BENCH_WARMUP / HSD_BENCH_ROUNDS defaults.
TimingEstimate measure(const std::function<void()>& fn);

/// Handles the shared observability flags on a bench binary's command line:
///   --trace FILE    Chrome trace_event JSON of the run
///   --metrics FILE  metrics registry snapshot JSON at exit
/// Equivalent to the HSD_TRACE / HSD_METRICS environment variables. Unknown
/// arguments are ignored so benches keep their own parsing, if any.
void apply_obs_flags(int argc, char** argv);

}  // namespace hsd::harness
