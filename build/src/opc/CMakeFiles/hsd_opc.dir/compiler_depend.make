# Empty compiler generated dependencies file for hsd_opc.
# This may be replaced when dependencies are built.
