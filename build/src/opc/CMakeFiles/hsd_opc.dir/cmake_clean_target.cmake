file(REMOVE_RECURSE
  "libhsd_opc.a"
)
