
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opc/rules.cpp" "src/opc/CMakeFiles/hsd_opc.dir/rules.cpp.o" "gcc" "src/opc/CMakeFiles/hsd_opc.dir/rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/layout/CMakeFiles/hsd_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/litho/CMakeFiles/hsd_litho.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
