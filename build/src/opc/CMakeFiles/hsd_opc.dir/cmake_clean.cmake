file(REMOVE_RECURSE
  "CMakeFiles/hsd_opc.dir/rules.cpp.o"
  "CMakeFiles/hsd_opc.dir/rules.cpp.o.d"
  "libhsd_opc.a"
  "libhsd_opc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_opc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
