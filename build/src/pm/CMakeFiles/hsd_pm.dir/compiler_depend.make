# Empty compiler generated dependencies file for hsd_pm.
# This may be replaced when dependencies are built.
