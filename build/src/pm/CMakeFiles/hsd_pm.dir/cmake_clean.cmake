file(REMOVE_RECURSE
  "CMakeFiles/hsd_pm.dir/pattern_matching.cpp.o"
  "CMakeFiles/hsd_pm.dir/pattern_matching.cpp.o.d"
  "libhsd_pm.a"
  "libhsd_pm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_pm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
