file(REMOVE_RECURSE
  "libhsd_pm.a"
)
