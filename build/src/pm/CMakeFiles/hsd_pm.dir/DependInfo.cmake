
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pm/pattern_matching.cpp" "src/pm/CMakeFiles/hsd_pm.dir/pattern_matching.cpp.o" "gcc" "src/pm/CMakeFiles/hsd_pm.dir/pattern_matching.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/layout/CMakeFiles/hsd_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/litho/CMakeFiles/hsd_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hsd_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
