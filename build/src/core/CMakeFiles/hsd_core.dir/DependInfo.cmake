
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/calibration.cpp" "src/core/CMakeFiles/hsd_core.dir/calibration.cpp.o" "gcc" "src/core/CMakeFiles/hsd_core.dir/calibration.cpp.o.d"
  "/root/repo/src/core/calibrators.cpp" "src/core/CMakeFiles/hsd_core.dir/calibrators.cpp.o" "gcc" "src/core/CMakeFiles/hsd_core.dir/calibrators.cpp.o.d"
  "/root/repo/src/core/detector.cpp" "src/core/CMakeFiles/hsd_core.dir/detector.cpp.o" "gcc" "src/core/CMakeFiles/hsd_core.dir/detector.cpp.o.d"
  "/root/repo/src/core/diversity.cpp" "src/core/CMakeFiles/hsd_core.dir/diversity.cpp.o" "gcc" "src/core/CMakeFiles/hsd_core.dir/diversity.cpp.o.d"
  "/root/repo/src/core/entropy_sampling.cpp" "src/core/CMakeFiles/hsd_core.dir/entropy_sampling.cpp.o" "gcc" "src/core/CMakeFiles/hsd_core.dir/entropy_sampling.cpp.o.d"
  "/root/repo/src/core/framework.cpp" "src/core/CMakeFiles/hsd_core.dir/framework.cpp.o" "gcc" "src/core/CMakeFiles/hsd_core.dir/framework.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/hsd_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/hsd_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/uncertainty.cpp" "src/core/CMakeFiles/hsd_core.dir/uncertainty.cpp.o" "gcc" "src/core/CMakeFiles/hsd_core.dir/uncertainty.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/hsd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hsd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hsd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hsd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/gmm/CMakeFiles/hsd_gmm.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/CMakeFiles/hsd_qp.dir/DependInfo.cmake"
  "/root/repo/build/src/litho/CMakeFiles/hsd_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/hsd_layout.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
