file(REMOVE_RECURSE
  "libhsd_core.a"
)
