# Empty compiler generated dependencies file for hsd_core.
# This may be replaced when dependencies are built.
