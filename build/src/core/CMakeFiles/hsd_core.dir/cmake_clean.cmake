file(REMOVE_RECURSE
  "CMakeFiles/hsd_core.dir/calibration.cpp.o"
  "CMakeFiles/hsd_core.dir/calibration.cpp.o.d"
  "CMakeFiles/hsd_core.dir/calibrators.cpp.o"
  "CMakeFiles/hsd_core.dir/calibrators.cpp.o.d"
  "CMakeFiles/hsd_core.dir/detector.cpp.o"
  "CMakeFiles/hsd_core.dir/detector.cpp.o.d"
  "CMakeFiles/hsd_core.dir/diversity.cpp.o"
  "CMakeFiles/hsd_core.dir/diversity.cpp.o.d"
  "CMakeFiles/hsd_core.dir/entropy_sampling.cpp.o"
  "CMakeFiles/hsd_core.dir/entropy_sampling.cpp.o.d"
  "CMakeFiles/hsd_core.dir/framework.cpp.o"
  "CMakeFiles/hsd_core.dir/framework.cpp.o.d"
  "CMakeFiles/hsd_core.dir/metrics.cpp.o"
  "CMakeFiles/hsd_core.dir/metrics.cpp.o.d"
  "CMakeFiles/hsd_core.dir/uncertainty.cpp.o"
  "CMakeFiles/hsd_core.dir/uncertainty.cpp.o.d"
  "libhsd_core.a"
  "libhsd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
