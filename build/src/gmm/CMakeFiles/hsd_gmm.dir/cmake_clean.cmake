file(REMOVE_RECURSE
  "CMakeFiles/hsd_gmm.dir/gmm.cpp.o"
  "CMakeFiles/hsd_gmm.dir/gmm.cpp.o.d"
  "libhsd_gmm.a"
  "libhsd_gmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_gmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
