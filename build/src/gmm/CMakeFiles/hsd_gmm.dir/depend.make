# Empty dependencies file for hsd_gmm.
# This may be replaced when dependencies are built.
