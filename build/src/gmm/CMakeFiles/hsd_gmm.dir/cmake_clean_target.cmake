file(REMOVE_RECURSE
  "libhsd_gmm.a"
)
