file(REMOVE_RECURSE
  "CMakeFiles/hsd_data.dir/benchmark.cpp.o"
  "CMakeFiles/hsd_data.dir/benchmark.cpp.o.d"
  "CMakeFiles/hsd_data.dir/dataset.cpp.o"
  "CMakeFiles/hsd_data.dir/dataset.cpp.o.d"
  "CMakeFiles/hsd_data.dir/features.cpp.o"
  "CMakeFiles/hsd_data.dir/features.cpp.o.d"
  "CMakeFiles/hsd_data.dir/io.cpp.o"
  "CMakeFiles/hsd_data.dir/io.cpp.o.d"
  "CMakeFiles/hsd_data.dir/pattern_generator.cpp.o"
  "CMakeFiles/hsd_data.dir/pattern_generator.cpp.o.d"
  "libhsd_data.a"
  "libhsd_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
