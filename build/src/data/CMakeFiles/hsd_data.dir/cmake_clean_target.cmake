file(REMOVE_RECURSE
  "libhsd_data.a"
)
