# Empty dependencies file for hsd_data.
# This may be replaced when dependencies are built.
