
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/benchmark.cpp" "src/data/CMakeFiles/hsd_data.dir/benchmark.cpp.o" "gcc" "src/data/CMakeFiles/hsd_data.dir/benchmark.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/hsd_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/hsd_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/features.cpp" "src/data/CMakeFiles/hsd_data.dir/features.cpp.o" "gcc" "src/data/CMakeFiles/hsd_data.dir/features.cpp.o.d"
  "/root/repo/src/data/io.cpp" "src/data/CMakeFiles/hsd_data.dir/io.cpp.o" "gcc" "src/data/CMakeFiles/hsd_data.dir/io.cpp.o.d"
  "/root/repo/src/data/pattern_generator.cpp" "src/data/CMakeFiles/hsd_data.dir/pattern_generator.cpp.o" "gcc" "src/data/CMakeFiles/hsd_data.dir/pattern_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/layout/CMakeFiles/hsd_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/litho/CMakeFiles/hsd_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hsd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hsd_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
