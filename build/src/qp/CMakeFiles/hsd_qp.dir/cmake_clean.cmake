file(REMOVE_RECURSE
  "CMakeFiles/hsd_qp.dir/qp.cpp.o"
  "CMakeFiles/hsd_qp.dir/qp.cpp.o.d"
  "libhsd_qp.a"
  "libhsd_qp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_qp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
