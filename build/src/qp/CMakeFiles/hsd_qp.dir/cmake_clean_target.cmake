file(REMOVE_RECURSE
  "libhsd_qp.a"
)
