# Empty compiler generated dependencies file for hsd_qp.
# This may be replaced when dependencies are built.
