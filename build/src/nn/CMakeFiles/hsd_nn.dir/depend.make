# Empty dependencies file for hsd_nn.
# This may be replaced when dependencies are built.
