
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/hsd_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/hsd_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/nn/CMakeFiles/hsd_nn.dir/conv.cpp.o" "gcc" "src/nn/CMakeFiles/hsd_nn.dir/conv.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/hsd_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/hsd_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/nn/CMakeFiles/hsd_nn.dir/dropout.cpp.o" "gcc" "src/nn/CMakeFiles/hsd_nn.dir/dropout.cpp.o.d"
  "/root/repo/src/nn/flatten.cpp" "src/nn/CMakeFiles/hsd_nn.dir/flatten.cpp.o" "gcc" "src/nn/CMakeFiles/hsd_nn.dir/flatten.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/hsd_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/hsd_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/hsd_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/hsd_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/hsd_nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/hsd_nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/hsd_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/hsd_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/nn/CMakeFiles/hsd_nn.dir/pooling.cpp.o" "gcc" "src/nn/CMakeFiles/hsd_nn.dir/pooling.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/hsd_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/hsd_nn.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/hsd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hsd_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
