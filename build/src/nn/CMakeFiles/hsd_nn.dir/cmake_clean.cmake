file(REMOVE_RECURSE
  "CMakeFiles/hsd_nn.dir/activations.cpp.o"
  "CMakeFiles/hsd_nn.dir/activations.cpp.o.d"
  "CMakeFiles/hsd_nn.dir/conv.cpp.o"
  "CMakeFiles/hsd_nn.dir/conv.cpp.o.d"
  "CMakeFiles/hsd_nn.dir/dense.cpp.o"
  "CMakeFiles/hsd_nn.dir/dense.cpp.o.d"
  "CMakeFiles/hsd_nn.dir/dropout.cpp.o"
  "CMakeFiles/hsd_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/hsd_nn.dir/flatten.cpp.o"
  "CMakeFiles/hsd_nn.dir/flatten.cpp.o.d"
  "CMakeFiles/hsd_nn.dir/layer.cpp.o"
  "CMakeFiles/hsd_nn.dir/layer.cpp.o.d"
  "CMakeFiles/hsd_nn.dir/loss.cpp.o"
  "CMakeFiles/hsd_nn.dir/loss.cpp.o.d"
  "CMakeFiles/hsd_nn.dir/network.cpp.o"
  "CMakeFiles/hsd_nn.dir/network.cpp.o.d"
  "CMakeFiles/hsd_nn.dir/optimizer.cpp.o"
  "CMakeFiles/hsd_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/hsd_nn.dir/pooling.cpp.o"
  "CMakeFiles/hsd_nn.dir/pooling.cpp.o.d"
  "CMakeFiles/hsd_nn.dir/serialize.cpp.o"
  "CMakeFiles/hsd_nn.dir/serialize.cpp.o.d"
  "libhsd_nn.a"
  "libhsd_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
