file(REMOVE_RECURSE
  "libhsd_nn.a"
)
