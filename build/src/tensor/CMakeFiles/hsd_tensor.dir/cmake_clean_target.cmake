file(REMOVE_RECURSE
  "libhsd_tensor.a"
)
