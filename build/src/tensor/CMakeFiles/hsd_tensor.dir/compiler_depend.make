# Empty compiler generated dependencies file for hsd_tensor.
# This may be replaced when dependencies are built.
