file(REMOVE_RECURSE
  "CMakeFiles/hsd_tensor.dir/dct.cpp.o"
  "CMakeFiles/hsd_tensor.dir/dct.cpp.o.d"
  "CMakeFiles/hsd_tensor.dir/ops.cpp.o"
  "CMakeFiles/hsd_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/hsd_tensor.dir/tensor.cpp.o"
  "CMakeFiles/hsd_tensor.dir/tensor.cpp.o.d"
  "libhsd_tensor.a"
  "libhsd_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
