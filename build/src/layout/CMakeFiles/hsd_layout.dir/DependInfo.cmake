
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/chip.cpp" "src/layout/CMakeFiles/hsd_layout.dir/chip.cpp.o" "gcc" "src/layout/CMakeFiles/hsd_layout.dir/chip.cpp.o.d"
  "/root/repo/src/layout/clip.cpp" "src/layout/CMakeFiles/hsd_layout.dir/clip.cpp.o" "gcc" "src/layout/CMakeFiles/hsd_layout.dir/clip.cpp.o.d"
  "/root/repo/src/layout/geometry.cpp" "src/layout/CMakeFiles/hsd_layout.dir/geometry.cpp.o" "gcc" "src/layout/CMakeFiles/hsd_layout.dir/geometry.cpp.o.d"
  "/root/repo/src/layout/io.cpp" "src/layout/CMakeFiles/hsd_layout.dir/io.cpp.o" "gcc" "src/layout/CMakeFiles/hsd_layout.dir/io.cpp.o.d"
  "/root/repo/src/layout/raster.cpp" "src/layout/CMakeFiles/hsd_layout.dir/raster.cpp.o" "gcc" "src/layout/CMakeFiles/hsd_layout.dir/raster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
