# Empty dependencies file for hsd_layout.
# This may be replaced when dependencies are built.
