file(REMOVE_RECURSE
  "CMakeFiles/hsd_layout.dir/chip.cpp.o"
  "CMakeFiles/hsd_layout.dir/chip.cpp.o.d"
  "CMakeFiles/hsd_layout.dir/clip.cpp.o"
  "CMakeFiles/hsd_layout.dir/clip.cpp.o.d"
  "CMakeFiles/hsd_layout.dir/geometry.cpp.o"
  "CMakeFiles/hsd_layout.dir/geometry.cpp.o.d"
  "CMakeFiles/hsd_layout.dir/io.cpp.o"
  "CMakeFiles/hsd_layout.dir/io.cpp.o.d"
  "CMakeFiles/hsd_layout.dir/raster.cpp.o"
  "CMakeFiles/hsd_layout.dir/raster.cpp.o.d"
  "libhsd_layout.a"
  "libhsd_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
