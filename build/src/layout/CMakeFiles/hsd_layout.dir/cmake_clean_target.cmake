file(REMOVE_RECURSE
  "libhsd_layout.a"
)
