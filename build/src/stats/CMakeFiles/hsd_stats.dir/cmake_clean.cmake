file(REMOVE_RECURSE
  "CMakeFiles/hsd_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/hsd_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/hsd_stats.dir/entropy.cpp.o"
  "CMakeFiles/hsd_stats.dir/entropy.cpp.o.d"
  "CMakeFiles/hsd_stats.dir/kmeans.cpp.o"
  "CMakeFiles/hsd_stats.dir/kmeans.cpp.o.d"
  "CMakeFiles/hsd_stats.dir/normalize.cpp.o"
  "CMakeFiles/hsd_stats.dir/normalize.cpp.o.d"
  "CMakeFiles/hsd_stats.dir/pca.cpp.o"
  "CMakeFiles/hsd_stats.dir/pca.cpp.o.d"
  "CMakeFiles/hsd_stats.dir/reliability.cpp.o"
  "CMakeFiles/hsd_stats.dir/reliability.cpp.o.d"
  "CMakeFiles/hsd_stats.dir/rng.cpp.o"
  "CMakeFiles/hsd_stats.dir/rng.cpp.o.d"
  "CMakeFiles/hsd_stats.dir/roc.cpp.o"
  "CMakeFiles/hsd_stats.dir/roc.cpp.o.d"
  "CMakeFiles/hsd_stats.dir/summary.cpp.o"
  "CMakeFiles/hsd_stats.dir/summary.cpp.o.d"
  "libhsd_stats.a"
  "libhsd_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
