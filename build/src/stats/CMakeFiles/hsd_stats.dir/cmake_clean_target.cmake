file(REMOVE_RECURSE
  "libhsd_stats.a"
)
