# Empty dependencies file for hsd_stats.
# This may be replaced when dependencies are built.
