
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bootstrap.cpp" "src/stats/CMakeFiles/hsd_stats.dir/bootstrap.cpp.o" "gcc" "src/stats/CMakeFiles/hsd_stats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/stats/entropy.cpp" "src/stats/CMakeFiles/hsd_stats.dir/entropy.cpp.o" "gcc" "src/stats/CMakeFiles/hsd_stats.dir/entropy.cpp.o.d"
  "/root/repo/src/stats/kmeans.cpp" "src/stats/CMakeFiles/hsd_stats.dir/kmeans.cpp.o" "gcc" "src/stats/CMakeFiles/hsd_stats.dir/kmeans.cpp.o.d"
  "/root/repo/src/stats/normalize.cpp" "src/stats/CMakeFiles/hsd_stats.dir/normalize.cpp.o" "gcc" "src/stats/CMakeFiles/hsd_stats.dir/normalize.cpp.o.d"
  "/root/repo/src/stats/pca.cpp" "src/stats/CMakeFiles/hsd_stats.dir/pca.cpp.o" "gcc" "src/stats/CMakeFiles/hsd_stats.dir/pca.cpp.o.d"
  "/root/repo/src/stats/reliability.cpp" "src/stats/CMakeFiles/hsd_stats.dir/reliability.cpp.o" "gcc" "src/stats/CMakeFiles/hsd_stats.dir/reliability.cpp.o.d"
  "/root/repo/src/stats/rng.cpp" "src/stats/CMakeFiles/hsd_stats.dir/rng.cpp.o" "gcc" "src/stats/CMakeFiles/hsd_stats.dir/rng.cpp.o.d"
  "/root/repo/src/stats/roc.cpp" "src/stats/CMakeFiles/hsd_stats.dir/roc.cpp.o" "gcc" "src/stats/CMakeFiles/hsd_stats.dir/roc.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/hsd_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/hsd_stats.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
