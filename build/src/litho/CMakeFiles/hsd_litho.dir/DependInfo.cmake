
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/litho/defects.cpp" "src/litho/CMakeFiles/hsd_litho.dir/defects.cpp.o" "gcc" "src/litho/CMakeFiles/hsd_litho.dir/defects.cpp.o.d"
  "/root/repo/src/litho/epe.cpp" "src/litho/CMakeFiles/hsd_litho.dir/epe.cpp.o" "gcc" "src/litho/CMakeFiles/hsd_litho.dir/epe.cpp.o.d"
  "/root/repo/src/litho/optical.cpp" "src/litho/CMakeFiles/hsd_litho.dir/optical.cpp.o" "gcc" "src/litho/CMakeFiles/hsd_litho.dir/optical.cpp.o.d"
  "/root/repo/src/litho/oracle.cpp" "src/litho/CMakeFiles/hsd_litho.dir/oracle.cpp.o" "gcc" "src/litho/CMakeFiles/hsd_litho.dir/oracle.cpp.o.d"
  "/root/repo/src/litho/pvband.cpp" "src/litho/CMakeFiles/hsd_litho.dir/pvband.cpp.o" "gcc" "src/litho/CMakeFiles/hsd_litho.dir/pvband.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/layout/CMakeFiles/hsd_layout.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
