# Empty dependencies file for hsd_litho.
# This may be replaced when dependencies are built.
