file(REMOVE_RECURSE
  "libhsd_litho.a"
)
