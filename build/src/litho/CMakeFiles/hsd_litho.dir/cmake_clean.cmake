file(REMOVE_RECURSE
  "CMakeFiles/hsd_litho.dir/defects.cpp.o"
  "CMakeFiles/hsd_litho.dir/defects.cpp.o.d"
  "CMakeFiles/hsd_litho.dir/epe.cpp.o"
  "CMakeFiles/hsd_litho.dir/epe.cpp.o.d"
  "CMakeFiles/hsd_litho.dir/optical.cpp.o"
  "CMakeFiles/hsd_litho.dir/optical.cpp.o.d"
  "CMakeFiles/hsd_litho.dir/oracle.cpp.o"
  "CMakeFiles/hsd_litho.dir/oracle.cpp.o.d"
  "CMakeFiles/hsd_litho.dir/pvband.cpp.o"
  "CMakeFiles/hsd_litho.dir/pvband.cpp.o.d"
  "libhsd_litho.a"
  "libhsd_litho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_litho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
