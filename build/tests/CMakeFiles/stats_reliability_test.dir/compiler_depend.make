# Empty compiler generated dependencies file for stats_reliability_test.
# This may be replaced when dependencies are built.
