file(REMOVE_RECURSE
  "CMakeFiles/stats_reliability_test.dir/stats_reliability_test.cpp.o"
  "CMakeFiles/stats_reliability_test.dir/stats_reliability_test.cpp.o.d"
  "stats_reliability_test"
  "stats_reliability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_reliability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
