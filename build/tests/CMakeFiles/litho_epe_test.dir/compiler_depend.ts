# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for litho_epe_test.
