file(REMOVE_RECURSE
  "CMakeFiles/litho_epe_test.dir/litho_epe_test.cpp.o"
  "CMakeFiles/litho_epe_test.dir/litho_epe_test.cpp.o.d"
  "litho_epe_test"
  "litho_epe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litho_epe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
