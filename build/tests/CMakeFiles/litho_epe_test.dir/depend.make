# Empty dependencies file for litho_epe_test.
# This may be replaced when dependencies are built.
