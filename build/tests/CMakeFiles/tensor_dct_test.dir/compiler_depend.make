# Empty compiler generated dependencies file for tensor_dct_test.
# This may be replaced when dependencies are built.
