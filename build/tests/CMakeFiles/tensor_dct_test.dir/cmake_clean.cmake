file(REMOVE_RECURSE
  "CMakeFiles/tensor_dct_test.dir/tensor_dct_test.cpp.o"
  "CMakeFiles/tensor_dct_test.dir/tensor_dct_test.cpp.o.d"
  "tensor_dct_test"
  "tensor_dct_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_dct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
