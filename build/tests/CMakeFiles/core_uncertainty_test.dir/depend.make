# Empty dependencies file for core_uncertainty_test.
# This may be replaced when dependencies are built.
