file(REMOVE_RECURSE
  "CMakeFiles/core_uncertainty_test.dir/core_uncertainty_test.cpp.o"
  "CMakeFiles/core_uncertainty_test.dir/core_uncertainty_test.cpp.o.d"
  "core_uncertainty_test"
  "core_uncertainty_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_uncertainty_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
