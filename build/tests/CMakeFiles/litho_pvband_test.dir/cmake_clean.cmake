file(REMOVE_RECURSE
  "CMakeFiles/litho_pvband_test.dir/litho_pvband_test.cpp.o"
  "CMakeFiles/litho_pvband_test.dir/litho_pvband_test.cpp.o.d"
  "litho_pvband_test"
  "litho_pvband_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litho_pvband_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
