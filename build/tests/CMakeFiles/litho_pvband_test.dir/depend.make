# Empty dependencies file for litho_pvband_test.
# This may be replaced when dependencies are built.
