# Empty dependencies file for stats_entropy_test.
# This may be replaced when dependencies are built.
