file(REMOVE_RECURSE
  "CMakeFiles/stats_entropy_test.dir/stats_entropy_test.cpp.o"
  "CMakeFiles/stats_entropy_test.dir/stats_entropy_test.cpp.o.d"
  "stats_entropy_test"
  "stats_entropy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_entropy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
