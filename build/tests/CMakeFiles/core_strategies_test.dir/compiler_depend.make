# Empty compiler generated dependencies file for core_strategies_test.
# This may be replaced when dependencies are built.
