file(REMOVE_RECURSE
  "CMakeFiles/core_strategies_test.dir/core_strategies_test.cpp.o"
  "CMakeFiles/core_strategies_test.dir/core_strategies_test.cpp.o.d"
  "core_strategies_test"
  "core_strategies_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_strategies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
