file(REMOVE_RECURSE
  "CMakeFiles/layout_raster_test.dir/layout_raster_test.cpp.o"
  "CMakeFiles/layout_raster_test.dir/layout_raster_test.cpp.o.d"
  "layout_raster_test"
  "layout_raster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_raster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
