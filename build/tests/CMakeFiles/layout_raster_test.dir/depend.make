# Empty dependencies file for layout_raster_test.
# This may be replaced when dependencies are built.
