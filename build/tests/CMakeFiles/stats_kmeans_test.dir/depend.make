# Empty dependencies file for stats_kmeans_test.
# This may be replaced when dependencies are built.
