file(REMOVE_RECURSE
  "CMakeFiles/stats_kmeans_test.dir/stats_kmeans_test.cpp.o"
  "CMakeFiles/stats_kmeans_test.dir/stats_kmeans_test.cpp.o.d"
  "stats_kmeans_test"
  "stats_kmeans_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_kmeans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
