file(REMOVE_RECURSE
  "CMakeFiles/nn_schedule_test.dir/nn_schedule_test.cpp.o"
  "CMakeFiles/nn_schedule_test.dir/nn_schedule_test.cpp.o.d"
  "nn_schedule_test"
  "nn_schedule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
