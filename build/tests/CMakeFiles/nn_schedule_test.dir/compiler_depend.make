# Empty compiler generated dependencies file for nn_schedule_test.
# This may be replaced when dependencies are built.
