# Empty compiler generated dependencies file for stats_roc_test.
# This may be replaced when dependencies are built.
