file(REMOVE_RECURSE
  "CMakeFiles/stats_roc_test.dir/stats_roc_test.cpp.o"
  "CMakeFiles/stats_roc_test.dir/stats_roc_test.cpp.o.d"
  "stats_roc_test"
  "stats_roc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_roc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
