# Empty compiler generated dependencies file for layout_io_test.
# This may be replaced when dependencies are built.
