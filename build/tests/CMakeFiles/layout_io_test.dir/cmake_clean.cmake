file(REMOVE_RECURSE
  "CMakeFiles/layout_io_test.dir/layout_io_test.cpp.o"
  "CMakeFiles/layout_io_test.dir/layout_io_test.cpp.o.d"
  "layout_io_test"
  "layout_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
