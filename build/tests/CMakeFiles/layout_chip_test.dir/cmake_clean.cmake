file(REMOVE_RECURSE
  "CMakeFiles/layout_chip_test.dir/layout_chip_test.cpp.o"
  "CMakeFiles/layout_chip_test.dir/layout_chip_test.cpp.o.d"
  "layout_chip_test"
  "layout_chip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_chip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
