# Empty dependencies file for layout_chip_test.
# This may be replaced when dependencies are built.
