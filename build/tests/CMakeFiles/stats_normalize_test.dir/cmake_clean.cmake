file(REMOVE_RECURSE
  "CMakeFiles/stats_normalize_test.dir/stats_normalize_test.cpp.o"
  "CMakeFiles/stats_normalize_test.dir/stats_normalize_test.cpp.o.d"
  "stats_normalize_test"
  "stats_normalize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_normalize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
