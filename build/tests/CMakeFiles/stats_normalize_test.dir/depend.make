# Empty dependencies file for stats_normalize_test.
# This may be replaced when dependencies are built.
