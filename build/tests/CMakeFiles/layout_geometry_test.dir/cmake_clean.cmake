file(REMOVE_RECURSE
  "CMakeFiles/layout_geometry_test.dir/layout_geometry_test.cpp.o"
  "CMakeFiles/layout_geometry_test.dir/layout_geometry_test.cpp.o.d"
  "layout_geometry_test"
  "layout_geometry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
