# Empty dependencies file for core_sampling_test.
# This may be replaced when dependencies are built.
