file(REMOVE_RECURSE
  "CMakeFiles/core_sampling_test.dir/core_sampling_test.cpp.o"
  "CMakeFiles/core_sampling_test.dir/core_sampling_test.cpp.o.d"
  "core_sampling_test"
  "core_sampling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
