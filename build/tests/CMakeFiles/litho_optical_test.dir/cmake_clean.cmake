file(REMOVE_RECURSE
  "CMakeFiles/litho_optical_test.dir/litho_optical_test.cpp.o"
  "CMakeFiles/litho_optical_test.dir/litho_optical_test.cpp.o.d"
  "litho_optical_test"
  "litho_optical_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litho_optical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
