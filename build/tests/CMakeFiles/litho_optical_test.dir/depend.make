# Empty dependencies file for litho_optical_test.
# This may be replaced when dependencies are built.
