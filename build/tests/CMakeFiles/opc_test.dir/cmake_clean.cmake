file(REMOVE_RECURSE
  "CMakeFiles/opc_test.dir/opc_test.cpp.o"
  "CMakeFiles/opc_test.dir/opc_test.cpp.o.d"
  "opc_test"
  "opc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
