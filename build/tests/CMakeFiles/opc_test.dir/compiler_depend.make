# Empty compiler generated dependencies file for opc_test.
# This may be replaced when dependencies are built.
