# Empty compiler generated dependencies file for litho_defects_test.
# This may be replaced when dependencies are built.
