file(REMOVE_RECURSE
  "CMakeFiles/litho_defects_test.dir/litho_defects_test.cpp.o"
  "CMakeFiles/litho_defects_test.dir/litho_defects_test.cpp.o.d"
  "litho_defects_test"
  "litho_defects_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litho_defects_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
