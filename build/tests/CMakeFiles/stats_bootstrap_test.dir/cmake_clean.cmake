file(REMOVE_RECURSE
  "CMakeFiles/stats_bootstrap_test.dir/stats_bootstrap_test.cpp.o"
  "CMakeFiles/stats_bootstrap_test.dir/stats_bootstrap_test.cpp.o.d"
  "stats_bootstrap_test"
  "stats_bootstrap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_bootstrap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
