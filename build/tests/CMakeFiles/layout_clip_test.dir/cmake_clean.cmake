file(REMOVE_RECURSE
  "CMakeFiles/layout_clip_test.dir/layout_clip_test.cpp.o"
  "CMakeFiles/layout_clip_test.dir/layout_clip_test.cpp.o.d"
  "layout_clip_test"
  "layout_clip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_clip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
