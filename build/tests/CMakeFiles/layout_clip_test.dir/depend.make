# Empty dependencies file for layout_clip_test.
# This may be replaced when dependencies are built.
