file(REMOVE_RECURSE
  "CMakeFiles/core_diversity_test.dir/core_diversity_test.cpp.o"
  "CMakeFiles/core_diversity_test.dir/core_diversity_test.cpp.o.d"
  "core_diversity_test"
  "core_diversity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_diversity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
