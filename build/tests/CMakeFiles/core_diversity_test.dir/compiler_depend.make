# Empty compiler generated dependencies file for core_diversity_test.
# This may be replaced when dependencies are built.
