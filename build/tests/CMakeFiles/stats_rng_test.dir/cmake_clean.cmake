file(REMOVE_RECURSE
  "CMakeFiles/stats_rng_test.dir/stats_rng_test.cpp.o"
  "CMakeFiles/stats_rng_test.dir/stats_rng_test.cpp.o.d"
  "stats_rng_test"
  "stats_rng_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_rng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
