# Empty dependencies file for stats_rng_test.
# This may be replaced when dependencies are built.
