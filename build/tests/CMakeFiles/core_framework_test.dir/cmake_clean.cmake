file(REMOVE_RECURSE
  "CMakeFiles/core_framework_test.dir/core_framework_test.cpp.o"
  "CMakeFiles/core_framework_test.dir/core_framework_test.cpp.o.d"
  "core_framework_test"
  "core_framework_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_framework_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
