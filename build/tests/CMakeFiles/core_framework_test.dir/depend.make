# Empty dependencies file for core_framework_test.
# This may be replaced when dependencies are built.
