# Empty dependencies file for pm_test.
# This may be replaced when dependencies are built.
