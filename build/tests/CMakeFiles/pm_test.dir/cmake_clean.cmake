file(REMOVE_RECURSE
  "CMakeFiles/pm_test.dir/pm_test.cpp.o"
  "CMakeFiles/pm_test.dir/pm_test.cpp.o.d"
  "pm_test"
  "pm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
