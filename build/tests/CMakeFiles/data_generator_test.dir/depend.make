# Empty dependencies file for data_generator_test.
# This may be replaced when dependencies are built.
