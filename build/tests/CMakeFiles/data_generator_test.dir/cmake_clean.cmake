file(REMOVE_RECURSE
  "CMakeFiles/data_generator_test.dir/data_generator_test.cpp.o"
  "CMakeFiles/data_generator_test.dir/data_generator_test.cpp.o.d"
  "data_generator_test"
  "data_generator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
