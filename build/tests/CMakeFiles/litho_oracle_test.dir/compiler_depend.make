# Empty compiler generated dependencies file for litho_oracle_test.
# This may be replaced when dependencies are built.
