file(REMOVE_RECURSE
  "CMakeFiles/litho_oracle_test.dir/litho_oracle_test.cpp.o"
  "CMakeFiles/litho_oracle_test.dir/litho_oracle_test.cpp.o.d"
  "litho_oracle_test"
  "litho_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litho_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
