file(REMOVE_RECURSE
  "CMakeFiles/gmm_test.dir/gmm_test.cpp.o"
  "CMakeFiles/gmm_test.dir/gmm_test.cpp.o.d"
  "gmm_test"
  "gmm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
