# Empty dependencies file for gmm_test.
# This may be replaced when dependencies are built.
