
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tensor_test.cpp" "tests/CMakeFiles/tensor_test.dir/tensor_test.cpp.o" "gcc" "tests/CMakeFiles/tensor_test.dir/tensor_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pm/CMakeFiles/hsd_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/opc/CMakeFiles/hsd_opc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hsd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hsd_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hsd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hsd_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/litho/CMakeFiles/hsd_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/hsd_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/gmm/CMakeFiles/hsd_gmm.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hsd_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/qp/CMakeFiles/hsd_qp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
