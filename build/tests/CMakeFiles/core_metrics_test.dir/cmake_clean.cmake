file(REMOVE_RECURSE
  "CMakeFiles/core_metrics_test.dir/core_metrics_test.cpp.o"
  "CMakeFiles/core_metrics_test.dir/core_metrics_test.cpp.o.d"
  "core_metrics_test"
  "core_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
