# Empty dependencies file for qp_test.
# This may be replaced when dependencies are built.
