file(REMOVE_RECURSE
  "CMakeFiles/qp_test.dir/qp_test.cpp.o"
  "CMakeFiles/qp_test.dir/qp_test.cpp.o.d"
  "qp_test"
  "qp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
