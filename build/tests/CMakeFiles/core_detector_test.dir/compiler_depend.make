# Empty compiler generated dependencies file for core_detector_test.
# This may be replaced when dependencies are built.
