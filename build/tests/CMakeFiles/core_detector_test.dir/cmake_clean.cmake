file(REMOVE_RECURSE
  "CMakeFiles/core_detector_test.dir/core_detector_test.cpp.o"
  "CMakeFiles/core_detector_test.dir/core_detector_test.cpp.o.d"
  "core_detector_test"
  "core_detector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
