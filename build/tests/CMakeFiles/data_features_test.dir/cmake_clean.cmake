file(REMOVE_RECURSE
  "CMakeFiles/data_features_test.dir/data_features_test.cpp.o"
  "CMakeFiles/data_features_test.dir/data_features_test.cpp.o.d"
  "data_features_test"
  "data_features_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
