# Empty dependencies file for data_features_test.
# This may be replaced when dependencies are built.
