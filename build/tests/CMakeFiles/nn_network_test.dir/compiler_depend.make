# Empty compiler generated dependencies file for nn_network_test.
# This may be replaced when dependencies are built.
