file(REMOVE_RECURSE
  "CMakeFiles/nn_network_test.dir/nn_network_test.cpp.o"
  "CMakeFiles/nn_network_test.dir/nn_network_test.cpp.o.d"
  "nn_network_test"
  "nn_network_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
