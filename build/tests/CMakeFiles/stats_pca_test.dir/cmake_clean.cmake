file(REMOVE_RECURSE
  "CMakeFiles/stats_pca_test.dir/stats_pca_test.cpp.o"
  "CMakeFiles/stats_pca_test.dir/stats_pca_test.cpp.o.d"
  "stats_pca_test"
  "stats_pca_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_pca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
