# Empty compiler generated dependencies file for stats_pca_test.
# This may be replaced when dependencies are built.
