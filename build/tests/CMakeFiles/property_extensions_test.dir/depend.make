# Empty dependencies file for property_extensions_test.
# This may be replaced when dependencies are built.
