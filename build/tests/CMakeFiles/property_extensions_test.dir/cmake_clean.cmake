file(REMOVE_RECURSE
  "CMakeFiles/property_extensions_test.dir/property_extensions_test.cpp.o"
  "CMakeFiles/property_extensions_test.dir/property_extensions_test.cpp.o.d"
  "property_extensions_test"
  "property_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
