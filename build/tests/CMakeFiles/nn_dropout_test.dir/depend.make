# Empty dependencies file for nn_dropout_test.
# This may be replaced when dependencies are built.
