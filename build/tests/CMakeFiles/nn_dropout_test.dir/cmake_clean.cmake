file(REMOVE_RECURSE
  "CMakeFiles/nn_dropout_test.dir/nn_dropout_test.cpp.o"
  "CMakeFiles/nn_dropout_test.dir/nn_dropout_test.cpp.o.d"
  "nn_dropout_test"
  "nn_dropout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_dropout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
