file(REMOVE_RECURSE
  "CMakeFiles/data_benchmark_test.dir/data_benchmark_test.cpp.o"
  "CMakeFiles/data_benchmark_test.dir/data_benchmark_test.cpp.o.d"
  "data_benchmark_test"
  "data_benchmark_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_benchmark_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
