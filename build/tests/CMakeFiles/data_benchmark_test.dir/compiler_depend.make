# Empty compiler generated dependencies file for data_benchmark_test.
# This may be replaced when dependencies are built.
