file(REMOVE_RECURSE
  "CMakeFiles/core_calibrators_test.dir/core_calibrators_test.cpp.o"
  "CMakeFiles/core_calibrators_test.dir/core_calibrators_test.cpp.o.d"
  "core_calibrators_test"
  "core_calibrators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_calibrators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
