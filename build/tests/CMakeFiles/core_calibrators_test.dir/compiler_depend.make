# Empty compiler generated dependencies file for core_calibrators_test.
# This may be replaced when dependencies are built.
