file(REMOVE_RECURSE
  "CMakeFiles/compare_strategies.dir/compare_strategies.cpp.o"
  "CMakeFiles/compare_strategies.dir/compare_strategies.cpp.o.d"
  "compare_strategies"
  "compare_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
