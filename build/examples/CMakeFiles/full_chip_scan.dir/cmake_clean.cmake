file(REMOVE_RECURSE
  "CMakeFiles/full_chip_scan.dir/full_chip_scan.cpp.o"
  "CMakeFiles/full_chip_scan.dir/full_chip_scan.cpp.o.d"
  "full_chip_scan"
  "full_chip_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_chip_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
