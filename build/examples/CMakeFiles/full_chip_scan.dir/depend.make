# Empty dependencies file for full_chip_scan.
# This may be replaced when dependencies are built.
