# Empty dependencies file for calibration_demo.
# This may be replaced when dependencies are built.
