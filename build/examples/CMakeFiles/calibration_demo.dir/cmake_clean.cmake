file(REMOVE_RECURSE
  "CMakeFiles/calibration_demo.dir/calibration_demo.cpp.o"
  "CMakeFiles/calibration_demo.dir/calibration_demo.cpp.o.d"
  "calibration_demo"
  "calibration_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
