# Empty compiler generated dependencies file for benchmark_io.
# This may be replaced when dependencies are built.
