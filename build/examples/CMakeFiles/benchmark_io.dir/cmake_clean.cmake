file(REMOVE_RECURSE
  "CMakeFiles/benchmark_io.dir/benchmark_io.cpp.o"
  "CMakeFiles/benchmark_io.dir/benchmark_io.cpp.o.d"
  "benchmark_io"
  "benchmark_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
