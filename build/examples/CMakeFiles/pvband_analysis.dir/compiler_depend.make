# Empty compiler generated dependencies file for pvband_analysis.
# This may be replaced when dependencies are built.
