file(REMOVE_RECURSE
  "CMakeFiles/pvband_analysis.dir/pvband_analysis.cpp.o"
  "CMakeFiles/pvband_analysis.dir/pvband_analysis.cpp.o.d"
  "pvband_analysis"
  "pvband_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvband_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
