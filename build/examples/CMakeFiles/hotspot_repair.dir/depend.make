# Empty dependencies file for hotspot_repair.
# This may be replaced when dependencies are built.
