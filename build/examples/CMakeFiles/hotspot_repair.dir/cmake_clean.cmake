file(REMOVE_RECURSE
  "CMakeFiles/hotspot_repair.dir/hotspot_repair.cpp.o"
  "CMakeFiles/hotspot_repair.dir/hotspot_repair.cpp.o.d"
  "hotspot_repair"
  "hotspot_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
