# Empty compiler generated dependencies file for full_flow.
# This may be replaced when dependencies are built.
