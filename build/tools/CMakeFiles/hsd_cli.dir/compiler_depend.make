# Empty compiler generated dependencies file for hsd_cli.
# This may be replaced when dependencies are built.
