file(REMOVE_RECURSE
  "CMakeFiles/hsd_cli.dir/hsd_cli.cpp.o"
  "CMakeFiles/hsd_cli.dir/hsd_cli.cpp.o.d"
  "hsd_cli"
  "hsd_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
