# Empty dependencies file for bench_pvband.
# This may be replaced when dependencies are built.
