file(REMOVE_RECURSE
  "CMakeFiles/bench_pvband.dir/bench_pvband.cpp.o"
  "CMakeFiles/bench_pvband.dir/bench_pvband.cpp.o.d"
  "bench_pvband"
  "bench_pvband.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pvband.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
