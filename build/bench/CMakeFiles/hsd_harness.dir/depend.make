# Empty dependencies file for hsd_harness.
# This may be replaced when dependencies are built.
