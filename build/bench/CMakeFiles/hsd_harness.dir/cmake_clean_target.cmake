file(REMOVE_RECURSE
  "libhsd_harness.a"
)
