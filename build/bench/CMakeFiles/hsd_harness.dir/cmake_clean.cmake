file(REMOVE_RECURSE
  "CMakeFiles/hsd_harness.dir/harness.cpp.o"
  "CMakeFiles/hsd_harness.dir/harness.cpp.o.d"
  "libhsd_harness.a"
  "libhsd_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsd_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
