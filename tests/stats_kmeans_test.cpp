#include "stats/kmeans.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hsd::stats {
namespace {

std::vector<std::vector<double>> three_blobs(Rng& rng, int per_blob = 40) {
  const std::vector<std::vector<double>> centers{{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  std::vector<std::vector<double>> data;
  for (const auto& c : centers) {
    for (int i = 0; i < per_blob; ++i) {
      data.push_back({c[0] + rng.normal(0.0, 0.3), c[1] + rng.normal(0.0, 0.3)});
    }
  }
  return data;
}

TEST(SquaredDistanceTest, KnownValue) {
  EXPECT_DOUBLE_EQ(squared_distance({0.0, 0.0}, {3.0, 4.0}), 25.0);
}

TEST(SquaredDistanceTest, ThrowsOnMismatch) {
  EXPECT_THROW(squared_distance({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(KMeansppTest, ReturnsKDistinctSeeds) {
  Rng rng(3);
  const auto data = three_blobs(rng);
  const auto seeds = kmeanspp_seed(data, 3, rng);
  EXPECT_EQ(seeds.size(), 3u);
  std::set<std::size_t> s(seeds.begin(), seeds.end());
  EXPECT_EQ(s.size(), 3u);
}

TEST(KMeansppTest, SeedsSpreadAcrossBlobs) {
  Rng rng(7);
  const auto data = three_blobs(rng);
  const auto seeds = kmeanspp_seed(data, 3, rng);
  // With well-separated blobs, D^2 seeding lands one seed per blob
  // (blob id = index / 40).
  std::set<std::size_t> blobs;
  for (std::size_t s : seeds) blobs.insert(s / 40);
  EXPECT_EQ(blobs.size(), 3u);
}

TEST(KMeansppTest, ThrowsOnBadK) {
  Rng rng(1);
  const std::vector<std::vector<double>> data{{0.0}, {1.0}};
  EXPECT_THROW(kmeanspp_seed(data, 0, rng), std::invalid_argument);
  EXPECT_THROW(kmeanspp_seed(data, 3, rng), std::invalid_argument);
}

TEST(KMeansTest, SeparatesWellSeparatedBlobs) {
  Rng rng(11);
  const auto data = three_blobs(rng);
  const auto res = kmeans(data, 3, rng);
  // All members of a blob share a cluster, and the three blobs differ.
  std::set<std::size_t> cluster_ids;
  for (int b = 0; b < 3; ++b) {
    const std::size_t c0 = res.assignment[static_cast<std::size_t>(b) * 40];
    cluster_ids.insert(c0);
    for (int i = 0; i < 40; ++i) {
      EXPECT_EQ(res.assignment[static_cast<std::size_t>(b) * 40 + i], c0);
    }
  }
  EXPECT_EQ(cluster_ids.size(), 3u);
}

TEST(KMeansTest, InertiaIsSmallForTightBlobs) {
  Rng rng(13);
  const auto data = three_blobs(rng);
  const auto res = kmeans(data, 3, rng);
  // Variance 0.09 per axis, 120 points: expected inertia around 2*0.09*120.
  EXPECT_LT(res.inertia, 50.0);
}

TEST(KMeansTest, SingleClusterCentroidIsMean) {
  Rng rng(17);
  const std::vector<std::vector<double>> data{{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}, {2.0, 2.0}};
  const auto res = kmeans(data, 1, rng);
  EXPECT_NEAR(res.centroids[0][0], 1.0, 1e-12);
  EXPECT_NEAR(res.centroids[0][1], 1.0, 1e-12);
}

TEST(KMeansTest, KEqualsNMakesSingletonClusters) {
  Rng rng(19);
  const std::vector<std::vector<double>> data{{0.0}, {5.0}, {10.0}};
  const auto res = kmeans(data, 3, rng);
  std::set<std::size_t> ids(res.assignment.begin(), res.assignment.end());
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_NEAR(res.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, ThrowsOnEmptyData) {
  Rng rng(1);
  EXPECT_THROW(kmeans({}, 1, rng), std::invalid_argument);
}

TEST(KMeansTest, DeterministicUnderSeed) {
  Rng r1(23), r2(23);
  const auto d1 = three_blobs(r1);
  const auto d2 = three_blobs(r2);
  const auto a = kmeans(d1, 3, r1);
  const auto b = kmeans(d2, 3, r2);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

}  // namespace
}  // namespace hsd::stats
