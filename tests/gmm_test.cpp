#include "gmm/gmm.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hsd::gmm {
namespace {

std::vector<std::vector<double>> two_blobs(hsd::stats::Rng& rng, int per_blob = 150) {
  std::vector<std::vector<double>> data;
  for (int i = 0; i < per_blob; ++i) {
    data.push_back({rng.normal(0.0, 0.5), rng.normal(0.0, 0.5)});
  }
  for (int i = 0; i < per_blob; ++i) {
    data.push_back({rng.normal(8.0, 0.5), rng.normal(8.0, 0.5)});
  }
  return data;
}

TEST(GmmTest, LogLikelihoodMonotoneNonDecreasing) {
  hsd::stats::Rng rng(3);
  const auto data = two_blobs(rng);
  GmmConfig cfg;
  cfg.components = 2;
  const auto g = GaussianMixture::fit(data, cfg, rng);
  const auto& hist = g.log_likelihood_history();
  ASSERT_GE(hist.size(), 2u);
  for (std::size_t i = 1; i < hist.size(); ++i) {
    EXPECT_GE(hist[i], hist[i - 1] - 1e-8) << "EM step " << i << " decreased LL";
  }
}

TEST(GmmTest, RecoversBlobMeans) {
  hsd::stats::Rng rng(5);
  const auto data = two_blobs(rng);
  GmmConfig cfg;
  cfg.components = 2;
  const auto g = GaussianMixture::fit(data, cfg, rng);
  // One mean near (0,0), the other near (8,8).
  const auto& m0 = g.means()[0];
  const auto& m1 = g.means()[1];
  const bool ordered = m0[0] < m1[0];
  const auto& low = ordered ? m0 : m1;
  const auto& high = ordered ? m1 : m0;
  EXPECT_NEAR(low[0], 0.0, 0.3);
  EXPECT_NEAR(low[1], 0.0, 0.3);
  EXPECT_NEAR(high[0], 8.0, 0.3);
  EXPECT_NEAR(high[1], 8.0, 0.3);
  // Balanced blobs -> balanced weights.
  EXPECT_NEAR(g.weights()[0], 0.5, 0.1);
}

TEST(GmmTest, PosteriorSumsToOneAndAssignsBlobs) {
  hsd::stats::Rng rng(7);
  const auto data = two_blobs(rng);
  GmmConfig cfg;
  cfg.components = 2;
  const auto g = GaussianMixture::fit(data, cfg, rng);
  const auto p_low = g.posterior({0.0, 0.0});
  const auto p_high = g.posterior({8.0, 8.0});
  EXPECT_NEAR(p_low[0] + p_low[1], 1.0, 1e-9);
  // Confident, opposite assignments.
  const std::size_t c_low = p_low[0] > p_low[1] ? 0 : 1;
  const std::size_t c_high = p_high[0] > p_high[1] ? 0 : 1;
  EXPECT_NE(c_low, c_high);
  EXPECT_GT(std::max(p_low[0], p_low[1]), 0.99);
}

TEST(GmmTest, OutliersHaveLowDensity) {
  // The framework keys on this: hotspot-like outliers score the lowest
  // density and are queried first.
  hsd::stats::Rng rng(9);
  const auto data = two_blobs(rng);
  GmmConfig cfg;
  cfg.components = 2;
  const auto g = GaussianMixture::fit(data, cfg, rng);
  const double inlier = g.log_density({0.0, 0.0});
  const double outlier = g.log_density({4.0, -6.0});
  EXPECT_GT(inlier, outlier + 5.0);
}

TEST(GmmTest, LogDensitiesBatchMatchesSingle) {
  hsd::stats::Rng rng(11);
  const auto data = two_blobs(rng, 30);
  GmmConfig cfg;
  cfg.components = 2;
  const auto g = GaussianMixture::fit(data, cfg, rng);
  const auto batch = g.log_densities(data);
  for (std::size_t i = 0; i < data.size(); i += 7) {
    EXPECT_DOUBLE_EQ(batch[i], g.log_density(data[i]));
  }
}

TEST(GmmTest, SingleComponentMatchesSampleMoments) {
  hsd::stats::Rng rng(13);
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 500; ++i) data.push_back({rng.normal(2.0, 1.5)});
  GmmConfig cfg;
  cfg.components = 1;
  const auto g = GaussianMixture::fit(data, cfg, rng);
  EXPECT_NEAR(g.means()[0][0], 2.0, 0.15);
  EXPECT_NEAR(g.variances()[0][0], 2.25, 0.4);
  EXPECT_DOUBLE_EQ(g.weights()[0], 1.0);
}

TEST(GmmTest, VarianceFloorPreventsCollapse) {
  // Identical points: variance would collapse to zero without the floor.
  hsd::stats::Rng rng(15);
  std::vector<std::vector<double>> data(20, {1.0, 1.0});
  GmmConfig cfg;
  cfg.components = 1;
  cfg.reg = 1e-4;
  const auto g = GaussianMixture::fit(data, cfg, rng);
  EXPECT_GE(g.variances()[0][0], 1e-4);
  EXPECT_TRUE(std::isfinite(g.log_density({1.0, 1.0})));
}

TEST(GmmTest, DeterministicUnderSeed) {
  auto fit_once = [] {
    hsd::stats::Rng rng(21);
    const auto data = two_blobs(rng, 40);
    GmmConfig cfg;
    cfg.components = 2;
    return GaussianMixture::fit(data, cfg, rng).final_log_likelihood();
  };
  EXPECT_DOUBLE_EQ(fit_once(), fit_once());
}

TEST(GmmTest, InvalidArgumentsThrow) {
  hsd::stats::Rng rng(1);
  EXPECT_THROW(GaussianMixture::fit({}, GmmConfig{}, rng), std::invalid_argument);
  GmmConfig too_many;
  too_many.components = 5;
  const std::vector<std::vector<double>> tiny{{0.0}, {1.0}};
  EXPECT_THROW(GaussianMixture::fit(tiny, too_many, rng), std::invalid_argument);
}

TEST(GmmTest, DimensionMismatchThrows) {
  hsd::stats::Rng rng(1);
  const std::vector<std::vector<double>> data{{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}};
  GmmConfig cfg;
  cfg.components = 1;
  const auto g = GaussianMixture::fit(data, cfg, rng);
  EXPECT_THROW(g.log_density({1.0}), std::invalid_argument);
  EXPECT_THROW(g.posterior({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(GmmTest, WeightsFormDistribution) {
  hsd::stats::Rng rng(25);
  const auto data = two_blobs(rng, 60);
  GmmConfig cfg;
  cfg.components = 3;
  const auto g = GaussianMixture::fit(data, cfg, rng);
  double sum = 0.0;
  for (double w : g.weights()) {
    EXPECT_GT(w, 0.0);
    sum += w;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(g.components(), 3u);
  EXPECT_EQ(g.dimension(), 2u);
}

}  // namespace
}  // namespace hsd::gmm
