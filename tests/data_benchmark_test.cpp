#include "data/benchmark.hpp"

#include <gtest/gtest.h>

namespace hsd::data {
namespace {

BenchmarkSpec tiny_spec() {
  BenchmarkSpec spec = iccad16_spec(3);
  spec.name = "tiny";
  spec.hs_target = 30;
  spec.nhs_target = 120;
  spec.seed = 99;
  return spec;
}

TEST(BenchmarkTest, QuotasAreMetExactly) {
  const Benchmark b = build_benchmark(tiny_spec());
  EXPECT_EQ(b.size(), 150u);
  std::size_t hs = 0;
  for (int y : b.labels) hs += (y == 1);
  EXPECT_EQ(hs, 30u);
  EXPECT_EQ(b.num_hotspots, 30u);
  EXPECT_EQ(b.num_non_hotspots, 120u);
}

TEST(BenchmarkTest, LabelsAgreeWithOracle) {
  const Benchmark b = build_benchmark(tiny_spec());
  litho::LithoOracle oracle = b.make_oracle();
  for (std::size_t i = 0; i < b.size(); i += 7) {
    EXPECT_EQ(oracle.label(b.clips[i]) ? 1 : 0, b.labels[i]) << "clip " << i;
  }
}

TEST(BenchmarkTest, DeterministicUnderSeed) {
  const Benchmark a = build_benchmark(tiny_spec());
  const Benchmark b = build_benchmark(tiny_spec());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.labels, b.labels);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.clips[i].pattern_hash, b.clips[i].pattern_hash);
  }
}

TEST(BenchmarkTest, HotspotsAreInterleavedNotClustered) {
  const Benchmark b = build_benchmark(tiny_spec());
  // With 20% hotspots shuffled in, the first half must contain some.
  std::size_t first_half_hs = 0;
  for (std::size_t i = 0; i < b.size() / 2; ++i) first_half_hs += (b.labels[i] == 1);
  EXPECT_GT(first_half_hs, 0u);
  EXPECT_LT(first_half_hs, 30u);
}

TEST(BenchmarkTest, ChipGridCoversAllClips) {
  const Benchmark b = build_benchmark(tiny_spec());
  EXPECT_GE(b.chip_cols * b.chip_rows, b.size());
  // Origins are distinct grid positions.
  for (std::size_t i = 1; i < b.size(); ++i) {
    EXPECT_FALSE(b.clips[i].chip_origin == b.clips[0].chip_origin);
    break;  // spot check
  }
  const auto side = b.spec.gen.clip_side;
  for (std::size_t i = 0; i < b.size(); i += 13) {
    EXPECT_EQ(b.clips[i].chip_origin.x % side, 0);
    EXPECT_EQ(b.clips[i].chip_origin.y % side, 0);
  }
}

TEST(BenchmarkTest, ZeroHotspotSpecWorks) {
  BenchmarkSpec spec = iccad16_spec(1);
  spec.nhs_target = 40;  // shrink for test speed
  const Benchmark b = build_benchmark(spec);
  EXPECT_EQ(b.size(), 40u);
  for (int y : b.labels) EXPECT_EQ(y, 0);
}

TEST(BenchmarkTest, ImpossibleQuotaThrows) {
  // A generator that only draws comfortably wide, well-spaced geometry
  // cannot produce hotspots, so a hotspot quota must exhaust the budget.
  BenchmarkSpec spec = iccad16_spec(1);
  spec.gen.risky_fraction = 0.0;
  spec.gen.min_width = 40;
  spec.gen.max_width = 40;
  spec.gen.min_space = 40;
  spec.gen.max_space = 40;
  // Parallel lines only: their tips sit outside the core, so nothing pinches.
  spec.gen.family_weights = {1.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  spec.hs_target = 10;
  spec.nhs_target = 5;
  spec.max_attempts_factor = 10;
  EXPECT_THROW(build_benchmark(spec), std::runtime_error);
}

TEST(SpecTest, Iccad12MatchesTableOne) {
  const BenchmarkSpec s = iccad12_spec(1.0);
  EXPECT_EQ(s.hs_target, 3728u);
  EXPECT_EQ(s.nhs_target, 159672u);
  EXPECT_EQ(s.tech_nm, 28);
}

TEST(SpecTest, Iccad12ScalePreservesRatio) {
  const BenchmarkSpec s = iccad12_spec(0.1);
  EXPECT_EQ(s.hs_target, 373u);
  EXPECT_EQ(s.nhs_target, 15967u);
  EXPECT_THROW(iccad12_spec(0.0), std::invalid_argument);
  EXPECT_THROW(iccad12_spec(1.5), std::invalid_argument);
}

TEST(SpecTest, Iccad16MatchesTableOne) {
  const BenchmarkSpec s1 = iccad16_spec(1);
  EXPECT_EQ(s1.hs_target, 0u);
  EXPECT_EQ(s1.nhs_target, 63u);
  const BenchmarkSpec s2 = iccad16_spec(2);
  EXPECT_EQ(s2.hs_target, 56u);
  EXPECT_EQ(s2.nhs_target, 967u);
  const BenchmarkSpec s3 = iccad16_spec(3);
  EXPECT_EQ(s3.hs_target, 1100u);
  EXPECT_EQ(s3.nhs_target, 3916u);
  const BenchmarkSpec s4 = iccad16_spec(4);
  EXPECT_EQ(s4.hs_target, 157u);
  EXPECT_EQ(s4.nhs_target, 1678u);
  EXPECT_EQ(s4.tech_nm, 7);
  EXPECT_THROW(iccad16_spec(5), std::invalid_argument);
}

TEST(SpecTest, EvaluatedSpecsSkipCaseOne) {
  const auto specs = evaluated_specs(0.5);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "ICCAD12");
  EXPECT_EQ(specs[1].name, "ICCAD16-2");
  EXPECT_EQ(specs[2].name, "ICCAD16-3");
  EXPECT_EQ(specs[3].name, "ICCAD16-4");
}

}  // namespace
}  // namespace hsd::data
