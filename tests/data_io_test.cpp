#include "data/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "data/features.hpp"

namespace hsd::data {
namespace {

Benchmark small_benchmark() {
  BenchmarkSpec spec = iccad16_spec(2);
  spec.name = "io-test";
  spec.hs_target = 10;
  spec.nhs_target = 50;
  spec.seed = 321;
  return build_benchmark(spec);
}

TEST(DataIoTest, RoundTripPreservesEverything) {
  const Benchmark bench = small_benchmark();
  std::stringstream buf;
  save_benchmark(buf, bench);
  const Benchmark loaded = load_benchmark(buf);

  EXPECT_EQ(loaded.spec.name, bench.spec.name);
  EXPECT_EQ(loaded.spec.grid, bench.spec.grid);
  EXPECT_EQ(loaded.spec.feature_grid, bench.spec.feature_grid);
  EXPECT_EQ(loaded.spec.feature_keep, bench.spec.feature_keep);
  EXPECT_DOUBLE_EQ(loaded.spec.optics.sigma_px, bench.spec.optics.sigma_px);
  EXPECT_EQ(loaded.labels, bench.labels);
  EXPECT_EQ(loaded.num_hotspots, bench.num_hotspots);
  EXPECT_EQ(loaded.num_non_hotspots, bench.num_non_hotspots);
  EXPECT_EQ(loaded.chip_cols, bench.chip_cols);
  ASSERT_EQ(loaded.clips.size(), bench.clips.size());
  for (std::size_t i = 0; i < bench.clips.size(); ++i) {
    EXPECT_EQ(loaded.clips[i].pattern_hash, bench.clips[i].pattern_hash);
  }
}

TEST(DataIoTest, LoadedOracleReproducesLabels) {
  const Benchmark bench = small_benchmark();
  std::stringstream buf;
  save_benchmark(buf, bench);
  const Benchmark loaded = load_benchmark(buf);
  litho::LithoOracle oracle = loaded.make_oracle();
  for (std::size_t i = 0; i < loaded.size(); i += 5) {
    EXPECT_EQ(oracle.label(loaded.clips[i]) ? 1 : 0, loaded.labels[i]);
  }
}

TEST(DataIoTest, LoadedFeaturesMatchOriginal) {
  const Benchmark bench = small_benchmark();
  std::stringstream buf;
  save_benchmark(buf, bench);
  const Benchmark loaded = load_benchmark(buf);
  const FeatureExtractor fx(bench.spec.feature_grid, bench.spec.feature_keep);
  const auto a = fx.extract_benchmark(bench);
  const auto b = fx.extract_benchmark(loaded);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(DataIoTest, FileRoundTrip) {
  const Benchmark bench = small_benchmark();
  const std::string path = "/tmp/hsd_io_test_benchmark.txt";
  save_benchmark_file(path, bench);
  const Benchmark loaded = load_benchmark_file(path);
  EXPECT_EQ(loaded.labels, bench.labels);
  std::remove(path.c_str());
}

TEST(DataIoTest, RejectsWrongMagic) {
  std::stringstream buf("not-a-benchmark 1\n");
  EXPECT_THROW(load_benchmark(buf), std::runtime_error);
}

TEST(DataIoTest, RejectsBadLabelValue) {
  const Benchmark bench = small_benchmark();
  std::stringstream buf;
  save_benchmark(buf, bench);
  std::string text = buf.str();
  const auto pos = text.find("labels");
  ASSERT_NE(pos, std::string::npos);
  text.replace(text.find(' ', pos + 8) + 1, 1, "7");  // corrupt first label
  std::stringstream corrupted(text);
  EXPECT_THROW(load_benchmark(corrupted), std::runtime_error);
}

TEST(DataIoTest, MissingFileThrows) {
  EXPECT_THROW(load_benchmark_file("/nonexistent/path/bench.txt"), std::runtime_error);
}

}  // namespace
}  // namespace hsd::data
