// app -> util is declared in layers.toml, so this include is fine.
#include "util/u.hpp"

namespace fx {
int a_value() { return fx_util_value() + 1; }
}  // namespace fx
