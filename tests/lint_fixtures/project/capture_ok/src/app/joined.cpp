// Clean counterparts: by-reference captures into run() are fine when the
// file joins the receiver, by-value captures are always fine, and [*this]
// copies the object into the task.

namespace fx {

struct TaskGroup {
  template <class F>
  void run(F&&) {}
  void wait() {}
};

int joined_ref(TaskGroup& group) {
  int total = 0;
  group.run([&total] { total += 1; });
  group.wait();
  return total;
}

void value_capture(TaskGroup& group) {
  int local = 7;
  group.run([local] { (void)local; });
  group.wait();
}

struct Owner {
  TaskGroup group;
  void kick() {
    group.run([*this] { (void)this; });
    group.wait();
  }
};

}  // namespace fx
