// Inline suppressions must silence project-pass findings exactly like
// per-line rule findings: same-line and previous-line comment forms.

namespace fx {

struct Pool {
  template <class F>
  void submit(F&&) {}
};

void audited_detach(Pool& pool) {
  int local = 7;
  pool.submit([&] { local += 1; });  // hsd-lint: allow(deferred-ref-capture)
}

struct Audited {
  Pool pool;
  void kick() {
    // hsd-lint: allow(detached-this-capture)
    pool.submit([this] { ping(); });
  }
  void ping() {}
};

}  // namespace fx
