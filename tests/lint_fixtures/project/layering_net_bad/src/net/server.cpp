// The forbidden edge: the transport reaching up into the serving layer.
#include "serve/adapter.hpp"

int serve_from_net() { return adapt(); }
