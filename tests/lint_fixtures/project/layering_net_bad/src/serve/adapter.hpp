#pragma once
#include "common/base.hpp"
inline int adapt() { return base(); }
