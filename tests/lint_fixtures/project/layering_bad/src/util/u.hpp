#pragma once

namespace fx {
inline int fx_util_value() { return 41; }
}  // namespace fx
