// Second half of the declared manifest cycle.
namespace fx {
int loopy_value() { return 5; }
}  // namespace fx
