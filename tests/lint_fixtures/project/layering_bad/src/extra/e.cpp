// This module exists on disk but is not declared in layers.toml.
namespace fx {
int extra_value() { return 3; }
}  // namespace fx
