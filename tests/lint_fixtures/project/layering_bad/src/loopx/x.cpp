// Declared in the manifest's loopx <-> loopy cycle; the directory exists
// so only layer-manifest-error fires for it, not drift.
namespace fx {
int loopx_value() { return 4; }
}  // namespace fx
