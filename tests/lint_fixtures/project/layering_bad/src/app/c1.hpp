#pragma once
// Half of a two-header include cycle (see c2.hpp).
#include "app/c2.hpp"

namespace fx {
inline int c1_value() { return 1; }
}  // namespace fx
