#pragma once
// Completes the include cycle with c1.hpp.
#include "app/c1.hpp"

namespace fx {
inline int c2_value() { return 2; }
}  // namespace fx
