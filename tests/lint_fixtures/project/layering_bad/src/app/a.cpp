// `app` declares no dependencies, so this include is a layer-violation.
#include "util/u.hpp"

namespace fx {
int a_value() { return fx_util_value() + 1; }
}  // namespace fx
