#pragma once
// Fixture registry with two deliberate defects: `fx/runs` is registered
// twice (registry-duplicate) and `fx/ghost` is not mentioned in the
// fixture docs (registry-undocumented).

namespace fx::reg {

inline constexpr const char kEnvMode[] = "HSD_FX_MODE";  // hsd-reg: env

inline constexpr const char kMetricRuns[] = "fx/runs";  // hsd-reg: metric
inline constexpr const char kMetricRunsDup[] = "fx/runs";  // hsd-reg: metric
inline constexpr const char kMetricGhost[] = "fx/ghost";  // hsd-reg: metric

}  // namespace fx::reg
