// Call sites exercising the registry pass: unregistered and repeated env
// literals, an unregistered metric name, and a dynamically-built name with
// an unknown literal fragment.

#include <cstdlib>
#include <string>

namespace fx {

struct Obs {
  void counter(const std::string&) {}
};

bool bad_env() {
  return std::getenv("HSD_FX_SECRET") != nullptr;  // not registered at all
}

bool repeated_env() {
  return std::getenv("HSD_FX_MODE") != nullptr;  // registered: use the constant
}

void touch(Obs& obs) {
  obs.counter("fx/runs");     // registered, fine
  obs.counter("fx/missing");  // unregistered-metric
}

void touch_dynamic(Obs& obs, const std::string& shard) {
  // "fx/" occurs in a registered pattern; "/nope" occurs in none.
  obs.counter("fx/" + shard + "/nope");
}

}  // namespace fx
