// Clean counterpart: env access through the registry constant, exact and
// wildcard-matched metric names, and a dynamic name whose every literal
// fragment occurs in a registered pattern.

#include <cstdlib>
#include <string>

#include "common/registry.hpp"

namespace fx {

struct Obs {
  void counter(const std::string&) {}
};

bool env_through_constant() {
  return std::getenv(reg::kEnvMode) != nullptr;
}

void touch(Obs& obs, const std::string& backend) {
  obs.counter("fx/runs");
  obs.counter("fx/backend/avx2/selected");            // matches the % pattern
  obs.counter("fx/backend/" + backend + "/selected");  // fragments all known
}

}  // namespace fx
