#pragma once
// Clean fixture registry: one env var, one exact metric, one wildcard
// metric pattern, one span. Everything is documented in DESIGN.md.

namespace fx::reg {

inline constexpr const char kEnvMode[] = "HSD_FX_MODE";  // hsd-reg: env

inline constexpr const char kMetricRuns[] = "fx/runs";  // hsd-reg: metric
inline constexpr const char kMetricBackendSelected[] =
    "fx/backend/%/selected";  // hsd-reg: metric

inline constexpr const char kSpanStep[] = "fx/step";  // hsd-reg: span

}  // namespace fx::reg
