// Task-capture fixtures: lambdas handed to deferred run()/submit() with
// dangerous captures and no join path anywhere in the file.

namespace fx {

struct TaskGroup {
  template <class F>
  void run(F&&) {}
};

struct Pool {
  template <class F>
  void submit(F&&) {}
};

int deferred_ref(TaskGroup& group) {
  int total = 0;
  group.run([&total] { total += 1; });  // deferred-ref-capture: no wait()
  return total;
}

void fire_and_forget(Pool& pool) {
  int local = 7;
  pool.submit([&] { local += 1; });  // deferred-ref-capture: submit never joins
}

struct Widget {
  Pool pool;
  void kick() {
    pool.submit([this] { ping(); });  // detached-this-capture
  }
  void ping() {}
};

}  // namespace fx
