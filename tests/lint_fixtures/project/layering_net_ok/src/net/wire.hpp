#pragma once
#include "common/base.hpp"
inline int frame() { return base(); }
