#pragma once
inline int base() { return 0; }
