// The allowed direction: the serve-side adapter speaks the transport's
// wire vocabulary.
#include "net/wire.hpp"

int remote() { return frame(); }
