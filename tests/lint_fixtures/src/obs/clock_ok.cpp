// Same clock read as clock_bad.cpp, but src/obs is exempt by scope.
#include <chrono>

double stamp() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
