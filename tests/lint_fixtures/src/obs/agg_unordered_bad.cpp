#include <string>
#include <unordered_set>

// Aggregation output assembled from unordered iteration: rollup order flaps.
std::string join(const std::unordered_set<std::string>& names) {
  std::string out;
  for (const auto& n : names) out += n;
  return out;
}
