// Fixture: identical raw SIMD inside src/tensor/backend/ is the one
// sanctioned home (no-raw-simd is path-scoped, like no-raw-thread).
#include <immintrin.h>

#ifdef __AVX2__
__m256 twice(__m256 v) { return _mm256_add_ps(v, v); }
#endif

bool have_avx2() { return __builtin_cpu_supports("avx2") != 0; }
