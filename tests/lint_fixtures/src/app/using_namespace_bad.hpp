#pragma once
#include <vector>

using namespace std;
