#include <thread>

void spin() {
  std::thread t([] {});
#pragma omp parallel for
  for (int i = 0; i < 4; ++i) {
  }
  t.join();
}
