// Fixture: explicitly seeded engine is fine; "rand()" in comments/strings
// must not trigger.
#include <random>

const char* kDoc = "never call rand() here";

int roll(unsigned seed) {
  std::mt19937 gen(seed);
  return static_cast<int>(gen() % 6);
}
