#include <chrono>

double stamp() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
