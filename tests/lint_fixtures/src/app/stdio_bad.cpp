#include <cstdio>
#include <iostream>

void report(int n) {
  std::cout << n << "\n";
  printf("%d\n", n);
}
