int answer() {
  static const int kTable = 42;
  static constexpr int kOther = 7;
  return kTable + kOther;
}
