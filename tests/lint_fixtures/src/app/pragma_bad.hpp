// Header without an include guard pragma.
inline int one() { return 1; }
