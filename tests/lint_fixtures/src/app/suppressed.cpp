// Fixture: inline suppressions silence both same-line and previous-line
// violations.
#include <cstdlib>

int noisy() {
  int a = std::rand();  // hsd-lint: allow(no-rand)
  // hsd-lint: allow(no-rand)
  std::srand(7);
  // hsd-lint: allow(no-mutable-static, no-rand)
  static int cache = std::rand();
  return a + cache;
}
