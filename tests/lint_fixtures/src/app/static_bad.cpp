int next_id() {
  static int counter = 0;
  return ++counter;
}
