// Fixture: every no-rand trigger.
#include <cstdlib>
#include <random>

int roll() {
  std::srand(42);
  int x = std::rand() % 6;
  std::random_device rd;
  std::mt19937 gen;
  (void)gen;
  (void)rd;
  return x;
}
