// Fixture: raw SIMD outside src/tensor/backend/ (violates no-raw-simd on
// four lines: the include, the #ifdef, the __m256 declaration, and the
// intrinsic call).
#include <immintrin.h>

#ifdef __AVX2__
float horizontal_sum(__m256 v);
#endif

void scale_in_place(float* x) {
  const auto factor = _mm256_set1_ps(2.0F);
  (void)factor;
  (void)x;
}
