#include <atomic>

int drain(std::atomic<int>& a) {
  a.fetch_add(1, std::memory_order_relaxed);
  return a.load(std::memory_order_acquire);
}
