#pragma once

inline int one() { return 1; }
