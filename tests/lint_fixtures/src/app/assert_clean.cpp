// static_assert and HSD_CHECK are both fine; only raw assert() is banned.
#define HSD_CHECK(cond) (void)(cond)

static_assert(sizeof(int) >= 4, "assumption");

int half(int n) {
  HSD_CHECK(n % 2 == 0);
  return n / 2;
}
