#include <atomic>

int drain(std::atomic<int>& a) {
  a.fetch_add(1);
  return a.load();
}
