#include <cstdio>

// fprintf to stderr (fatal diagnostics) is allowed; word-boundary matching
// must not confuse it with printf.
void report(int n) { std::fprintf(stderr, "%d\n", n); }
