// Fixture: no-rand here is exempted by the allowlist file, not inline.
#include <cstdlib>

int noisy() { return std::rand(); }
