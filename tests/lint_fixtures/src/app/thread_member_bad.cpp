#include <thread>
#include <vector>

// Thread member with no join()/stop()/shutdown() path anywhere in the file:
// destroying the object while a thread is running calls std::terminate.
// (Comments are not scanned, so naming the methods here is fine.)
struct Leaky {
  std::thread worker_;  // hsd-lint: allow(no-raw-thread)
};
