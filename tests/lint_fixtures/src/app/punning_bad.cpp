float punned(unsigned bits) { return *reinterpret_cast<float*>(&bits); }
