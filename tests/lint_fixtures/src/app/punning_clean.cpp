#include <cstring>

float punned(unsigned bits) {
  float f = 0.0F;
  std::memcpy(&f, &bits, sizeof f);
  return f;
}
