#include <cassert>

int half(int n) {
  assert(n % 2 == 0);
  return n / 2;
}
