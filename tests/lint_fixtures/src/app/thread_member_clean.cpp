#include <thread>

// A std::thread member paired with a joining destructor in the same file is
// exactly the pattern thread-member-join asks for.
struct Joined {
  ~Joined() {
    if (worker_.joinable()) worker_.join();
  }
  std::thread worker_;  // hsd-lint: allow(no-raw-thread)
};
