// src/runtime owns raw threads; exempt by scope.
#include <thread>

void spin() {
  std::thread t([] {});
  t.join();
}
