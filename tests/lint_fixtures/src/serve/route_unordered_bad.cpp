#include <cstddef>
#include <unordered_map>

// Iterating this map decides shard placement: order must be deterministic.
std::size_t pick(const std::unordered_map<int, int>& routes) {
  std::size_t n = 0;
  for (const auto& kv : routes) n += static_cast<std::size_t>(kv.second);
  return n;
}
