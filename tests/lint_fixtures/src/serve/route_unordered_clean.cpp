#include <cstddef>
#include <map>

std::size_t pick(const std::map<int, int>& routes) {
  std::size_t n = 0;
  for (const auto& kv : routes) n += static_cast<std::size_t>(kv.second);
  return n;
}
