#include <cstddef>
#include <map>

std::size_t count(const std::map<int, int>& m) { return m.size(); }
