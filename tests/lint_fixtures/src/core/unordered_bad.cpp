#include <cstddef>
#include <unordered_map>

std::size_t count(const std::unordered_map<int, int>& m) { return m.size(); }
