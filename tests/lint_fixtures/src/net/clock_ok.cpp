// Same clock read as clock_bad.cpp, but src/net is exempt by scope:
// deadlines, backoff schedules, and latency metrics are the transport's
// whole job.
#include <chrono>

double stamp() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
