// Drives hsd_lint's project passes over the fixture trees under
// tests/lint_fixtures/project/ — one firing and one clean tree per pass
// (layering, task-capture safety, identifier registry) — and pins down
// the machine-facing surfaces: the JSON document schema, the baseline
// grandfather/burn-down semantics, and the `%` wildcard matcher.
//
// Each fixture tree is its own scan root: the layering pass only runs
// when the tree has a layers.toml, the registry pass only when it has a
// src/common/registry.hpp, so every tree exercises exactly one pass on
// top of the always-on line rules (the fixtures are written to be clean
// under those).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "lint.hpp"
#include "model.hpp"

namespace {

using hsd::lint::Baseline;
using hsd::lint::Diagnostic;
using hsd::lint::Options;
using hsd::lint::RunResult;

const std::filesystem::path kProjectRoot =
    std::filesystem::path(HSD_LINT_FIXTURE_DIR) / "project";

RunResult run_tree(const std::string& tree, const Baseline* baseline = nullptr) {
  Options options;
  options.root = kProjectRoot / tree;
  if (baseline != nullptr) options.baseline = *baseline;
  return hsd::lint::run_full(options);
}

/// rule -> number of findings.
std::map<std::string, std::size_t> rule_counts(const RunResult& result) {
  std::map<std::string, std::size_t> counts;
  for (const auto& d : result.findings) counts[d.rule]++;
  return counts;
}

std::string all_formatted(const RunResult& result) {
  std::string out;
  for (const auto& d : result.findings) out += hsd::lint::format(d) + "\n";
  return out;
}

// ---------------------------------------------------------------------------
// Layering pass
// ---------------------------------------------------------------------------

TEST(LayeringPass, BadTreeFiresEveryLayeringRule) {
  const RunResult result = run_tree("layering_bad");
  const auto counts = rule_counts(result);
  EXPECT_EQ(counts.at("layer-violation"), 1u) << all_formatted(result);
  EXPECT_EQ(counts.at("include-cycle"), 1u) << all_formatted(result);
  EXPECT_EQ(counts.at("layer-unlisted-module"), 1u) << all_formatted(result);
  EXPECT_EQ(counts.at("layer-manifest-drift"), 1u) << all_formatted(result);
  EXPECT_EQ(counts.at("layer-manifest-error"), 1u) << all_formatted(result);
  EXPECT_EQ(result.findings.size(), 5u) << all_formatted(result);

  for (const auto& d : result.findings) {
    if (d.rule == "layer-violation") {
      EXPECT_EQ(d.file, "src/app/a.cpp");
      EXPECT_EQ(d.line, 2);
      EXPECT_NE(d.message.find("`app` may not include `util`"), std::string::npos)
          << d.message;
    } else if (d.rule == "include-cycle") {
      // Reported once, anchored at the lexicographically smallest file.
      EXPECT_EQ(d.file, "src/app/c1.hpp");
      EXPECT_NE(d.message.find("src/app/c1.hpp -> src/app/c2.hpp -> src/app/c1.hpp"),
                std::string::npos)
          << d.message;
    } else {
      // Manifest-level findings anchor at the manifest itself, line 0.
      EXPECT_EQ(d.file, "layers.toml");
      EXPECT_EQ(d.line, 0);
      if (d.rule == "layer-manifest-drift") {
        EXPECT_NE(d.message.find("`ghost`"), std::string::npos) << d.message;
      } else if (d.rule == "layer-unlisted-module") {
        EXPECT_NE(d.message.find("src/extra/"), std::string::npos) << d.message;
      } else {
        EXPECT_NE(d.message.find("loopx -> loopy -> loopx"), std::string::npos)
            << d.message;
      }
    }
  }
}

TEST(LayeringPass, CleanTreeHasNoFindings) {
  const RunResult result = run_tree("layering_ok");
  EXPECT_TRUE(result.findings.empty()) << all_formatted(result);
}

// The transport layering pinned as fixtures: net reaching up into serve
// fires, serve depending on net is the declared direction and stays clean
// (mirrors the real repo's `net = [...]` / `serve = [..., "net"]` entries).
TEST(LayeringPass, NetMayNotIncludeServe) {
  const RunResult result = run_tree("layering_net_bad");
  ASSERT_EQ(result.findings.size(), 1u) << all_formatted(result);
  EXPECT_EQ(result.findings[0].rule, "layer-violation");
  EXPECT_EQ(result.findings[0].file, "src/net/server.cpp");
  EXPECT_NE(result.findings[0].message.find("`net` may not include `serve`"),
            std::string::npos)
      << result.findings[0].message;
}

TEST(LayeringPass, ServeOverNetIsClean) {
  const RunResult result = run_tree("layering_net_ok");
  EXPECT_TRUE(result.findings.empty()) << all_formatted(result);
}

TEST(LayeringPass, MalformedManifestIsAManifestError) {
  hsd::lint::LayerManifest manifest;
  std::string err;
  EXPECT_FALSE(manifest.parse("[modules]\napp\n", &err));  // missing `=`
  EXPECT_FALSE(err.empty());
  err.clear();
  EXPECT_FALSE(manifest.parse("[modules]\napp = [\"util\"\n", &err));
  EXPECT_FALSE(err.empty());
  EXPECT_TRUE(manifest.parse(
      "[modules]\napp = [\"util\"]\n\"tensor/backend\" = []\nutil = []\n", &err))
      << err;
  EXPECT_TRUE(manifest.allows("app", "util"));
  EXPECT_FALSE(manifest.allows("util", "app"));
  EXPECT_TRUE(manifest.declares("tensor/backend"));
}

// ---------------------------------------------------------------------------
// Task-capture safety pass
// ---------------------------------------------------------------------------

TEST(CapturePass, BadTreeFlagsRefAndThisCaptures) {
  const RunResult result = run_tree("capture_bad");
  ASSERT_EQ(result.findings.size(), 3u) << all_formatted(result);

  EXPECT_EQ(result.findings[0].rule, "deferred-ref-capture");
  EXPECT_EQ(result.findings[0].file, "src/app/deferred.cpp");
  EXPECT_EQ(result.findings[0].line, 18);  // group.run([&total] ...) without wait
  EXPECT_NE(result.findings[0].message.find("`group`.wait()"), std::string::npos)
      << result.findings[0].message;

  EXPECT_EQ(result.findings[1].rule, "deferred-ref-capture");
  EXPECT_EQ(result.findings[1].line, 24);  // pool.submit([&] ...) never joins
  EXPECT_NE(result.findings[1].message.find("fire-and-forget"), std::string::npos)
      << result.findings[1].message;

  EXPECT_EQ(result.findings[2].rule, "detached-this-capture");
  EXPECT_EQ(result.findings[2].line, 30);  // pool.submit([this] ...)
}

TEST(CapturePass, CleanTreeHasNoFindings) {
  // joined.cpp: wait() join path / by-value / [*this] are all fine;
  // suppressed.cpp: inline allow() comments silence pass findings too.
  const RunResult result = run_tree("capture_ok");
  EXPECT_TRUE(result.findings.empty()) << all_formatted(result);
}

// ---------------------------------------------------------------------------
// Identifier-registry pass
// ---------------------------------------------------------------------------

TEST(RegistryPass, BadTreeFlagsEveryRegistryDefect) {
  const RunResult result = run_tree("registry_bad");
  ASSERT_EQ(result.findings.size(), 6u) << all_formatted(result);

  // Sorted by (file, line, rule): call sites first, then the registry.
  EXPECT_EQ(result.findings[0].file, "src/app/uses.cpp");
  EXPECT_EQ(result.findings[0].line, 15);
  EXPECT_EQ(result.findings[0].rule, "unregistered-env");
  EXPECT_NE(result.findings[0].message.find("HSD_FX_SECRET"),  // hsd-lint: allow(unregistered-env)
            std::string::npos);
  EXPECT_NE(result.findings[0].message.find("not a registered"), std::string::npos)
      << result.findings[0].message;

  // A literal that *is* registered still fires: the constant must be used.
  EXPECT_EQ(result.findings[1].line, 19);
  EXPECT_EQ(result.findings[1].rule, "unregistered-env");
  EXPECT_NE(result.findings[1].message.find("use the hsd::reg constant"),
            std::string::npos)
      << result.findings[1].message;

  EXPECT_EQ(result.findings[2].line, 24);
  EXPECT_EQ(result.findings[2].rule, "unregistered-metric");
  EXPECT_NE(result.findings[2].message.find("fx/missing"), std::string::npos);

  // Dynamically-built name: only the unknown fragment is flagged.
  EXPECT_EQ(result.findings[3].line, 29);
  EXPECT_EQ(result.findings[3].rule, "unregistered-metric");
  EXPECT_NE(result.findings[3].message.find("/nope"), std::string::npos);

  EXPECT_EQ(result.findings[4].file, "src/common/registry.hpp");
  EXPECT_EQ(result.findings[4].line, 11);
  EXPECT_EQ(result.findings[4].rule, "registry-duplicate");
  EXPECT_NE(result.findings[4].message.find("src/common/registry.hpp:10"),
            std::string::npos)
      << result.findings[4].message;

  EXPECT_EQ(result.findings[5].line, 12);
  EXPECT_EQ(result.findings[5].rule, "registry-undocumented");
  EXPECT_NE(result.findings[5].message.find("fx/ghost"), std::string::npos);
}

TEST(RegistryPass, CleanTreeHasNoFindings) {
  const RunResult result = run_tree("registry_ok");
  EXPECT_TRUE(result.findings.empty()) << all_formatted(result);
}

TEST(RegistryPass, WildcardMatchSemantics) {
  using hsd::lint::wildcard_match;
  EXPECT_TRUE(wildcard_match("fx/runs", "fx/runs"));
  EXPECT_FALSE(wildcard_match("fx/runs", "fx/run"));
  EXPECT_FALSE(wildcard_match("fx/runs", "fx/runs2"));
  // '%' matches any (possibly empty) substring.
  EXPECT_TRUE(wildcard_match("fx/%/selected", "fx/avx2/selected"));
  EXPECT_TRUE(wildcard_match("fx/%/selected", "fx//selected"));
  EXPECT_TRUE(wildcard_match("serve%/completed", "serve/completed"));
  EXPECT_TRUE(wildcard_match("serve%/completed", "serve_shard3/completed"));
  EXPECT_FALSE(wildcard_match("serve%/completed", "serve/shed"));
  EXPECT_TRUE(wildcard_match("%", ""));
  EXPECT_TRUE(wildcard_match("a%b%c", "a-x-b-y-c"));
  EXPECT_FALSE(wildcard_match("a%b%c", "a-x-c-y-b"));
}

// ---------------------------------------------------------------------------
// JSON document
// ---------------------------------------------------------------------------

TEST(LintJson, SchemaIsStable) {
  RunResult result;
  result.findings.push_back(
      {"src/app/a.cpp", 2, "layer-violation", "module `app` may not include `util`"});
  result.baselined = 3;
  result.stale_baseline.push_back("src/gone.cpp:9:no-rand");

  EXPECT_EQ(hsd::lint::to_json(result),
            "{\"tool\":\"hsd_lint\",\"schema_version\":1,"
            "\"summary\":{\"findings\":1,\"baselined\":3,\"stale_baseline\":1},"
            "\"findings\":[{\"file\":\"src/app/a.cpp\",\"line\":2,"
            "\"rule\":\"layer-violation\",\"category\":\"layering\","
            "\"message\":\"module `app` may not include `util`\"}],"
            "\"stale_baseline\":[\"src/gone.cpp:9:no-rand\"]}");
}

TEST(LintJson, EscapesSpecialCharacters) {
  RunResult result;
  result.findings.push_back({"src/\"odd\".cpp", 1, "no-rand", "a\\b\nc\td"});
  const std::string json = hsd::lint::to_json(result);
  EXPECT_NE(json.find("\"file\":\"src/\\\"odd\\\".cpp\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"message\":\"a\\\\b\\nc\\td\""), std::string::npos) << json;
}

TEST(LintJson, GithubAnnotationsEscapePercentAndColon) {
  const Diagnostic d{"src/a:b.cpp", 0, "unregistered-metric", "pattern fx/% missing"};
  EXPECT_EQ(hsd::lint::format_github(d),
            "::error file=src/a%3Ab.cpp,line=1"
            "::[unregistered-metric] pattern fx/%25 missing");
}

// ---------------------------------------------------------------------------
// Baseline semantics
// ---------------------------------------------------------------------------

TEST(LintBaseline, ParseValidatesShape) {
  Baseline baseline;
  std::string err;
  EXPECT_FALSE(baseline.parse("src/a.cpp\n", &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(baseline.parse("src/a.cpp:xx:no-rand\n", &err));
  EXPECT_TRUE(baseline.parse("# header\n\nsrc/a.cpp:12:no-rand\n", &err)) << err;
  EXPECT_TRUE(baseline.contains("src/a.cpp:12:no-rand"));
  EXPECT_FALSE(baseline.contains("src/a.cpp:13:no-rand"));
}

TEST(LintBaseline, KeyOfRoundTripsThroughParse) {
  const Diagnostic d{"src/app/deferred.cpp", 18, "deferred-ref-capture", "msg"};
  const std::string key = Baseline::key_of(d);
  EXPECT_EQ(key, "src/app/deferred.cpp:18:deferred-ref-capture");
  Baseline baseline;
  std::string err;
  ASSERT_TRUE(baseline.parse(key + "\n", &err)) << err;
  EXPECT_TRUE(baseline.contains(key));
}

TEST(LintBaseline, GrandfathersMatchingFindings) {
  // Baseline every capture_bad finding: the run is clean, all three are
  // counted as baselined, nothing is stale.
  const RunResult raw = run_tree("capture_bad");
  ASSERT_EQ(raw.findings.size(), 3u);
  std::string text;
  for (const auto& d : raw.findings) text += Baseline::key_of(d) + "\n";

  Baseline baseline;
  std::string err;
  ASSERT_TRUE(baseline.parse(text, &err)) << err;
  const RunResult masked = run_tree("capture_bad", &baseline);
  EXPECT_TRUE(masked.findings.empty()) << all_formatted(masked);
  EXPECT_EQ(masked.baselined, 3u);
  EXPECT_TRUE(masked.stale_baseline.empty());
}

TEST(LintBaseline, StaleEntriesAreReportedForBurnDown) {
  // One real entry plus one that matches nothing: the other two findings
  // surface, and the dead entry comes back as stale.
  const RunResult raw = run_tree("capture_bad");
  ASSERT_EQ(raw.findings.size(), 3u);
  Baseline baseline;
  std::string err;
  ASSERT_TRUE(baseline.parse(Baseline::key_of(raw.findings[0]) +
                                 "\nsrc/app/gone.cpp:7:no-rand\n",
                             &err))
      << err;
  const RunResult result = run_tree("capture_bad", &baseline);
  EXPECT_EQ(result.findings.size(), 2u) << all_formatted(result);
  EXPECT_EQ(result.baselined, 1u);
  ASSERT_EQ(result.stale_baseline.size(), 1u);
  EXPECT_EQ(result.stale_baseline[0], "src/app/gone.cpp:7:no-rand");
}

}  // namespace
