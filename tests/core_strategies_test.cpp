// Tests for the extension query strategies (predictive entropy, core-set,
// BADGE) added alongside the paper's sampler.

#include <gtest/gtest.h>

#include <set>

#include "core/entropy_sampling.hpp"
#include "stats/rng.hpp"

namespace hsd::core {
namespace {

struct Query {
  std::vector<std::vector<double>> probs;
  std::vector<std::vector<double>> features;
};

// 3 tight feature clusters; samples 0..2 maximally uncertain, the rest
// confident. Sample n-1 is an isolated feature outlier.
Query make_query(std::size_t n = 24) {
  hsd::stats::Rng rng(31);
  Query q;
  for (std::size_t i = 0; i < n; ++i) {
    const double p1 = i < 3 ? 0.5 : 0.05;
    q.probs.push_back({1.0 - p1, p1});
    std::vector<double> f(3, 0.0);
    if (i == n - 1) {
      f = {5.0, 5.0, 5.0};
    } else {
      f[i % 3] = 1.0 + rng.normal(0.0, 0.01);
    }
    q.features.push_back(f);
  }
  return q;
}

TEST(PredictiveEntropyTest, PicksMaximallyUncertain) {
  const Query q = make_query();
  SamplerConfig cfg;
  cfg.kind = SamplerKind::kPredictiveEntropy;
  hsd::stats::Rng rng(1);
  const auto picked = select_batch(q.probs, q.features, 3, cfg, rng);
  const std::set<std::size_t> s(picked.begin(), picked.end());
  EXPECT_TRUE(s.count(0));
  EXPECT_TRUE(s.count(1));
  EXPECT_TRUE(s.count(2));
}

TEST(CoresetTest, CoversAllClusters) {
  const Query q = make_query();
  SamplerConfig cfg;
  cfg.kind = SamplerKind::kCoreset;
  hsd::stats::Rng rng(1);
  const auto picked = select_batch(q.probs, q.features, 4, cfg, rng);
  // k-center coverage must include the outlier and span the three clusters.
  std::set<std::size_t> clusters;
  bool outlier = false;
  for (std::size_t i : picked) {
    if (i == q.probs.size() - 1) {
      outlier = true;
    } else {
      clusters.insert(i % 3);
    }
  }
  EXPECT_TRUE(outlier);
  EXPECT_EQ(clusters.size(), 3u);
}

TEST(CoresetTest, IsDeterministic) {
  const Query q = make_query();
  SamplerConfig cfg;
  cfg.kind = SamplerKind::kCoreset;
  hsd::stats::Rng r1(5), r2(99);  // coreset ignores the rng entirely
  EXPECT_EQ(select_batch(q.probs, q.features, 5, cfg, r1),
            select_batch(q.probs, q.features, 5, cfg, r2));
}

TEST(BadgeTest, ReturnsDistinctValidBatch) {
  const Query q = make_query();
  SamplerConfig cfg;
  cfg.kind = SamplerKind::kBadge;
  hsd::stats::Rng rng(7);
  const auto picked = select_batch(q.probs, q.features, 6, cfg, rng);
  EXPECT_EQ(picked.size(), 6u);
  const std::set<std::size_t> s(picked.begin(), picked.end());
  EXPECT_EQ(s.size(), 6u);
  for (std::size_t i : picked) EXPECT_LT(i, q.probs.size());
}

TEST(BadgeTest, PrefersLargeGradientSamples) {
  // Confident samples have near-zero gradient embeddings; with k = 1 the
  // D^2-weighted seeding lands on an uncertain sample with overwhelming
  // probability. Run several seeds and require a majority.
  const Query q = make_query();
  SamplerConfig cfg;
  cfg.kind = SamplerKind::kBadge;
  int uncertain_hits = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    hsd::stats::Rng rng(seed);
    const auto picked = select_batch(q.probs, q.features, 2, cfg, rng);
    for (std::size_t i : picked) uncertain_hits += (i < 3);
  }
  EXPECT_GT(uncertain_hits, 5);
}

TEST(ExtensionStrategiesTest, AllHandleKEqualsN) {
  const Query q = make_query(6);
  for (auto kind :
       {SamplerKind::kPredictiveEntropy, SamplerKind::kCoreset, SamplerKind::kBadge}) {
    SamplerConfig cfg;
    cfg.kind = kind;
    hsd::stats::Rng rng(3);
    const auto picked = select_batch(q.probs, q.features, 6, cfg, rng);
    std::set<std::size_t> s(picked.begin(), picked.end());
    EXPECT_EQ(s.size(), 6u);
  }
}

}  // namespace
}  // namespace hsd::core
