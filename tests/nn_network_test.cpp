#include "nn/network.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "common/binio.hpp"
#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/pooling.hpp"

namespace hsd::nn {
namespace {

using hsd::tensor::Tensor;

Network make_mlp(hsd::stats::Rng& rng) {
  Network net;
  net.add<Dense>(4, 8, rng);
  net.add<Relu>();
  net.add<Dense>(8, 2, rng);
  return net;
}

// XOR-ish separable dataset in 4 dims.
void make_toy_data(hsd::stats::Rng& rng, std::size_t n, Tensor& x,
                   std::vector<int>& y) {
  x = Tensor({n, 4});
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(rng.bernoulli(0.5));
    const double base = label == 1 ? 1.0 : -1.0;
    for (std::size_t j = 0; j < 4; ++j) {
      x[i * 4 + j] = static_cast<float>(base + rng.normal(0.0, 0.3));
    }
    y[i] = label;
  }
}

TEST(NetworkTest, ForwardShape) {
  hsd::stats::Rng rng(1);
  Network net = make_mlp(rng);
  const Tensor out = net.forward(Tensor({3, 4}));
  EXPECT_EQ(out.dim(0), 3u);
  EXPECT_EQ(out.dim(1), 2u);
}

TEST(NetworkTest, NumParamsSumsLayers) {
  hsd::stats::Rng rng(1);
  Network net = make_mlp(rng);
  EXPECT_EQ(net.num_params(), (4u * 8 + 8) + (8u * 2 + 2));
}

TEST(NetworkTest, ForwardWithFeaturesTapsPenultimate) {
  hsd::stats::Rng rng(1);
  Network net = make_mlp(rng);
  const ForwardResult r = net.forward_with_features(Tensor({5, 4}));
  EXPECT_EQ(r.logits.dim(1), 2u);
  EXPECT_EQ(r.features.dim(0), 5u);
  EXPECT_EQ(r.features.dim(1), 8u);  // ReLU output feeding the last Dense
}

TEST(NetworkTest, FeaturesAreFlattenedForConvNets) {
  hsd::stats::Rng rng(2);
  Network net;
  net.add<Conv2d>(1, 2, 3, rng, 1, 1);
  net.add<Relu>();
  net.add<Flatten>();
  net.add<Dense>(2 * 4 * 4, 2, rng);
  const ForwardResult r = net.forward_with_features(Tensor({3, 1, 4, 4}));
  EXPECT_EQ(r.features.rank(), 2u);
  EXPECT_EQ(r.features.dim(1), 32u);
}

TEST(NetworkTest, TrainingReducesLoss) {
  hsd::stats::Rng rng(7);
  Network net = make_mlp(rng);
  Tensor x;
  std::vector<int> y;
  make_toy_data(rng, 128, x, y);
  Adam opt(1e-2);
  const auto history = net.fit(x, y, opt, 30, 16, rng);
  ASSERT_EQ(history.size(), 30u);
  EXPECT_LT(history.back().mean_loss, history.front().mean_loss);
  EXPECT_GT(history.back().accuracy, 0.95);
}

TEST(NetworkTest, TrainBatchStepsOptimizer) {
  hsd::stats::Rng rng(9);
  Network net = make_mlp(rng);
  Tensor x;
  std::vector<int> y;
  make_toy_data(rng, 16, x, y);
  Adam opt(1e-2);
  const LossResult before = net.train_batch(x, y, opt);
  double loss_after = 0.0;
  for (int i = 0; i < 20; ++i) {
    loss_after = net.train_batch(x, y, opt).value;
  }
  EXPECT_LT(loss_after, before.value);
}

TEST(NetworkTest, FitValidatesArguments) {
  hsd::stats::Rng rng(1);
  Network net = make_mlp(rng);
  Adam opt(1e-3);
  Tensor x({4, 4});
  std::vector<int> y{0, 1, 0};  // wrong size
  EXPECT_THROW(net.fit(x, y, opt, 1, 8, rng), std::invalid_argument);
  std::vector<int> y2{0, 1, 0, 1};
  EXPECT_THROW(net.fit(x, y2, opt, 1, 0, rng), std::invalid_argument);
}

TEST(NetworkTest, SaveLoadRoundTrip) {
  hsd::stats::Rng rng(11);
  Network a = make_mlp(rng);
  Network b = make_mlp(rng);  // different random weights
  const Tensor x = Tensor::randn({3, 4}, rng);
  std::stringstream buf;
  a.save(buf);
  b.load(buf);
  const Tensor ya = a.forward(x);
  const Tensor yb = b.forward(x);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(NetworkTest, LoadRejectsWrongArchitecture) {
  hsd::stats::Rng rng(11);
  Network a = make_mlp(rng);
  Network small;
  small.add<Dense>(4, 2, rng);
  std::stringstream buf;
  a.save(buf);
  EXPECT_THROW(small.load(buf), std::runtime_error);
}

TEST(NetworkTest, LoadRejectsGarbage) {
  hsd::stats::Rng rng(1);
  Network net = make_mlp(rng);
  std::stringstream buf("not a model");
  EXPECT_THROW(net.load(buf), std::runtime_error);
}

TEST(NetworkTest, SaveLoadWithOptimizerContinuesTrainingBitIdentical) {
  // Checkpoint semantics: snapshotting weights + Adam moments + the data
  // RNG mid-training and continuing in a fresh network must land on
  // bit-identical weights — the property the AL-loop resume relies on.
  hsd::stats::Rng rng(21);
  Network a = make_mlp(rng);
  Tensor x;
  std::vector<int> y;
  make_toy_data(rng, 64, x, y);
  Adam opt_a(1e-2);
  hsd::stats::Rng fit_rng(77);
  a.fit(x, y, opt_a, 8, 16, fit_rng);

  std::stringstream buf;
  a.save(buf, &opt_a);
  const std::string fit_rng_state = fit_rng.save_state();

  a.fit(x, y, opt_a, 8, 16, fit_rng);  // the uninterrupted continuation

  hsd::stats::Rng other_rng(99);
  Network b = make_mlp(other_rng);  // different random init, all overwritten
  Adam opt_b(1e-2);
  b.load(buf, &opt_b);
  hsd::stats::Rng resumed_rng;
  resumed_rng.load_state(fit_rng_state);
  b.fit(x, y, opt_b, 8, 16, resumed_rng);

  const Tensor probe({2, 4}, std::vector<float>{1, -1, 0.5f, 2, 0, 1, -2, 0.25f});
  const Tensor ya = a.forward(probe);
  const Tensor yb = b.forward(probe);
  ASSERT_EQ(ya.size(), yb.size());
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(NetworkTest, SavedOptimizerStateLoadsWithoutOptimizer) {
  // A caller that only wants the weights may ignore a saved optimizer blob.
  hsd::stats::Rng rng(13);
  Network a = make_mlp(rng);
  Adam opt(1e-2);
  std::stringstream buf;
  a.save(buf, &opt);
  Network b = make_mlp(rng);
  EXPECT_NO_THROW(b.load(buf));
}

TEST(NetworkTest, OptimizerKindMismatchIsRejected) {
  hsd::stats::Rng rng(13);
  Network a = make_mlp(rng);
  Adam adam(1e-2);
  std::stringstream buf;
  a.save(buf, &adam);
  Network b = make_mlp(rng);
  Sgd sgd(1e-2);
  EXPECT_THROW(b.load(buf, &sgd), std::runtime_error);
}

TEST(NetworkTest, LegacyParamsOnlyFileStillLoads) {
  // Backward compatibility: weight files written before the versioned
  // header ("HSD1", parameters only) must keep loading forever.
  hsd::stats::Rng rng(11);
  Network a = make_mlp(rng);
  std::stringstream buf;
  hsd::common::write_pod(buf, std::uint32_t{0x48534431});  // "HSD1"
  const auto ps = a.params();
  hsd::common::write_pod(buf, static_cast<std::uint64_t>(ps.size()));
  for (const auto& p : ps) {
    const auto& shape = p.value->shape();
    hsd::common::write_pod(buf, static_cast<std::uint64_t>(shape.size()));
    for (std::size_t d : shape) {
      hsd::common::write_pod(buf, static_cast<std::uint64_t>(d));
    }
    hsd::common::write_f32_array(buf, p.value->data(), p.value->size());
  }

  Network b = make_mlp(rng);  // different weights until the load
  b.load(buf);
  const Tensor probe = Tensor::randn({3, 4}, rng);
  const Tensor ya = a.forward(probe);
  const Tensor yb = b.forward(probe);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(NetworkTest, DeterministicTrainingUnderSeed) {
  auto run = [](std::uint64_t seed) {
    hsd::stats::Rng rng(seed);
    Network net = make_mlp(rng);
    Tensor x;
    std::vector<int> y;
    make_toy_data(rng, 64, x, y);
    Adam opt(1e-2);
    net.fit(x, y, opt, 5, 16, rng);
    return net.forward(Tensor({1, 4}, std::vector<float>{1, 1, 1, 1}));
  };
  const Tensor a = run(33);
  const Tensor b = run(33);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace hsd::nn
